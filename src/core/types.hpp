// Fundamental index and count types.
//
// Product graphs C = A ⊗ B reach 10^11+ vertices and 10^14+ triangles in the
// paper's experiments, so vertex ids and counts are 64-bit everywhere — the
// factors are small, but any quantity describing C must not overflow.
#pragma once

#include <cstdint>

namespace kronotri {

/// Vertex identifier (0-based everywhere; the paper is 1-based).
using vid = std::uint64_t;

/// Nonzero / edge index into CSR storage.
using esz = std::uint64_t;

/// Triangle / degree counts. τ(C) = 6·τ(A)·τ(B) reaches ~1.4e14 in the
/// paper's Table VI; uint64 gives headroom to ~1.8e19.
using count_t = std::uint64_t;

}  // namespace kronotri
