// Compressed-sparse-row matrix with sorted rows.
//
// Canonical storage for adjacency matrices (T = uint8_t, all stored values 1)
// and for count matrices such as the triangle-support matrix Δ
// (T = count_t). Invariants maintained by every constructor:
//   * row_ptr has rows()+1 entries, non-decreasing, row_ptr[rows()] == nnz,
//   * column indices within each row are strictly increasing (no duplicate
//     entries),
//   * col_idx and values have exactly nnz entries.
// Sorted rows give O(log d) membership queries and linear-merge set
// operations, which the triangle kernels rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/coo.hpp"
#include "core/types.hpp"

namespace kronotri {

template <typename T>
class CsrMatrix {
 public:
  using value_type = T;

  /// Empty matrix of the given dimensions (all zero).
  CsrMatrix() : CsrMatrix(0, 0) {}
  CsrMatrix(vid rows, vid cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builds from triplets. Entries are sorted; duplicates are combined
  /// according to `policy`. Zero values are kept (explicit zeros are legal
  /// but none of our generators produce them).
  static CsrMatrix from_coo(const Coo<T>& coo, DupPolicy policy = DupPolicy::kSum) {
    CsrMatrix m(coo.rows(), coo.cols());
    std::vector<CooEntry<T>> entries = coo.entries();
    for (const auto& e : entries) {
      if (e.row >= m.rows_ || e.col >= m.cols_) {
        throw std::out_of_range("Coo entry outside matrix dimensions");
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const CooEntry<T>& a, const CooEntry<T>& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    m.col_idx_.reserve(entries.size());
    m.values_.reserve(entries.size());
    vid last_row = ~vid{0};
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (!m.col_idx_.empty() && last_row == e.row &&
          m.col_idx_.back() == e.col) {
        if (policy == DupPolicy::kSum) m.values_.back() = static_cast<T>(m.values_.back() + e.value);
        continue;
      }
      last_row = e.row;
      ++m.row_ptr_[e.row + 1];
      m.col_idx_.push_back(e.col);
      m.values_.push_back(e.value);
    }
    std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
    return m;
  }

  /// Builds directly from validated CSR arrays.
  static CsrMatrix from_parts(vid rows, vid cols, std::vector<esz> row_ptr,
                              std::vector<vid> col_idx, std::vector<T> values) {
    if (row_ptr.size() != rows + 1 || row_ptr.front() != 0 ||
        row_ptr.back() != col_idx.size() || col_idx.size() != values.size()) {
      throw std::invalid_argument("inconsistent CSR arrays");
    }
    for (vid r = 0; r < rows; ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) {
        throw std::invalid_argument("row_ptr not monotone");
      }
      for (esz k = row_ptr[r]; k + 1 < row_ptr[r + 1]; ++k) {
        if (col_idx[k] >= col_idx[k + 1]) {
          throw std::invalid_argument("row not strictly sorted");
        }
      }
      if (row_ptr[r] < row_ptr[r + 1] && col_idx[row_ptr[r + 1] - 1] >= cols) {
        throw std::invalid_argument("column index out of range");
      }
    }
    CsrMatrix m(rows, cols);
    m.row_ptr_ = std::move(row_ptr);
    m.col_idx_ = std::move(col_idx);
    m.values_ = std::move(values);
    return m;
  }

  /// n×n identity scaled by `value`.
  static CsrMatrix identity(vid n, T value = T{1}) {
    std::vector<esz> rp(n + 1);
    std::iota(rp.begin(), rp.end(), esz{0});
    std::vector<vid> ci(n);
    std::iota(ci.begin(), ci.end(), vid{0});
    return from_parts(n, n, std::move(rp), std::move(ci),
                      std::vector<T>(n, value));
  }

  [[nodiscard]] vid rows() const noexcept { return rows_; }
  [[nodiscard]] vid cols() const noexcept { return cols_; }
  [[nodiscard]] esz nnz() const noexcept { return row_ptr_.back(); }

  [[nodiscard]] std::span<const vid> row_cols(vid i) const {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const T> row_vals(vid i) const {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<T> row_vals_mut(vid i) {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  [[nodiscard]] esz row_degree(vid i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Index into col_idx()/values() of entry (i,j), or nnz() when absent.
  [[nodiscard]] esz find(vid i, vid j) const {
    const auto cols_i = row_cols(i);
    const auto it = std::lower_bound(cols_i.begin(), cols_i.end(), j);
    if (it == cols_i.end() || *it != j) return nnz();
    return row_ptr_[i] + static_cast<esz>(it - cols_i.begin());
  }

  [[nodiscard]] bool contains(vid i, vid j) const { return find(i, j) != nnz(); }

  /// Value at (i,j), T{} when absent.
  [[nodiscard]] T at(vid i, vid j) const {
    const esz k = find(i, j);
    return k == nnz() ? T{} : values_[k];
  }

  // Raw array access for kernels.
  [[nodiscard]] const std::vector<esz>& row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] const std::vector<vid>& col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }
  std::vector<T>& values_mut() noexcept { return values_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

  /// Same sparsity pattern (ignores values).
  [[nodiscard]] bool same_structure(const CsrMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
  }

 private:
  vid rows_;
  vid cols_;
  std::vector<esz> row_ptr_;
  std::vector<vid> col_idx_;
  std::vector<T> values_;
};

using BoolCsr = CsrMatrix<std::uint8_t>;
using CountCsr = CsrMatrix<count_t>;

}  // namespace kronotri
