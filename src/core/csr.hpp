// Compressed-sparse-row matrix with sorted rows.
//
// Canonical storage for adjacency matrices (T = uint8_t, all stored values 1)
// and for count matrices such as the triangle-support matrix Δ
// (T = count_t). Invariants maintained by every constructor:
//   * row_ptr has rows()+1 entries, non-decreasing, row_ptr[rows()] == nnz,
//   * column indices within each row are strictly increasing (no duplicate
//     entries),
//   * col_idx and values have exactly nnz entries.
// Sorted rows give O(log d) membership queries and linear-merge set
// operations, which the triangle kernels rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/coo.hpp"
#include "core/types.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace kronotri {

template <typename T>
class CsrMatrix {
 public:
  using value_type = T;

  /// Empty matrix of the given dimensions (all zero).
  CsrMatrix() : CsrMatrix(0, 0) {}
  CsrMatrix(vid rows, vid cols)
      : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Entry count below which from_coo() takes the serial sort path — a
  /// counting-sort build pays per-chunk row histograms, which only amortize
  /// once the triplet list is comfortably larger than the scheduling and
  /// allocation overhead.
  static constexpr std::size_t kParallelCooCutoff = 1u << 13;

  /// Builds from triplets. Entries are sorted; duplicates are combined
  /// according to `policy` (kKeep retains the value appearing first in the
  /// triplet list). Zero values are kept (explicit zeros are legal but none
  /// of our generators produce them). Large inputs take a parallel
  /// counting-sort path; the result is bit-identical to from_coo_serial()
  /// regardless of size or thread count.
  static CsrMatrix from_coo(const Coo<T>& coo, DupPolicy policy = DupPolicy::kSum) {
    // Tall sparse inputs (rows outnumbering triplets) would pay the
    // counting sort's O(chunks·rows) histograms for no win — the serial
    // sort of a triplet list that small is near-free.
    if (coo.entries().size() < kParallelCooCutoff ||
        static_cast<std::size_t>(coo.rows()) > coo.entries().size()) {
      return from_coo_serial(coo, policy);
    }
    return from_coo_parallel(coo, policy);
  }

  /// The reference single-threaded build: stable sort by (row, col), then a
  /// linear merge pass. Kept callable on its own as the work-equal baseline
  /// for the parallel build (benches) and its determinism oracle (tests).
  static CsrMatrix from_coo_serial(const Coo<T>& coo,
                                   DupPolicy policy = DupPolicy::kSum) {
    CsrMatrix m(coo.rows(), coo.cols());
    std::vector<CooEntry<T>> entries = coo.entries();
    for (const auto& e : entries) {
      if (e.row >= m.rows_ || e.col >= m.cols_) {
        throw std::out_of_range("Coo entry outside matrix dimensions");
      }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const CooEntry<T>& a, const CooEntry<T>& b) {
                       return a.row != b.row ? a.row < b.row : a.col < b.col;
                     });
    m.col_idx_.reserve(entries.size());
    m.values_.reserve(entries.size());
    vid last_row = ~vid{0};
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& e = entries[i];
      if (!m.col_idx_.empty() && last_row == e.row &&
          m.col_idx_.back() == e.col) {
        if (policy == DupPolicy::kSum) m.values_.back() = static_cast<T>(m.values_.back() + e.value);
        continue;
      }
      last_row = e.row;
      ++m.row_ptr_[e.row + 1];
      m.col_idx_.push_back(e.col);
      m.values_.push_back(e.value);
    }
    std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
    return m;
  }

  /// Builds directly from validated CSR arrays.
  static CsrMatrix from_parts(vid rows, vid cols, std::vector<esz> row_ptr,
                              std::vector<vid> col_idx, std::vector<T> values) {
    if (row_ptr.size() != rows + 1 || row_ptr.front() != 0 ||
        row_ptr.back() != col_idx.size() || col_idx.size() != values.size()) {
      throw std::invalid_argument("inconsistent CSR arrays");
    }
    for (vid r = 0; r < rows; ++r) {
      if (row_ptr[r] > row_ptr[r + 1]) {
        throw std::invalid_argument("row_ptr not monotone");
      }
      for (esz k = row_ptr[r]; k + 1 < row_ptr[r + 1]; ++k) {
        if (col_idx[k] >= col_idx[k + 1]) {
          throw std::invalid_argument("row not strictly sorted");
        }
      }
      if (row_ptr[r] < row_ptr[r + 1] && col_idx[row_ptr[r + 1] - 1] >= cols) {
        throw std::invalid_argument("column index out of range");
      }
    }
    CsrMatrix m(rows, cols);
    m.row_ptr_ = std::move(row_ptr);
    m.col_idx_ = std::move(col_idx);
    m.values_ = std::move(values);
    return m;
  }

  /// n×n identity scaled by `value`.
  static CsrMatrix identity(vid n, T value = T{1}) {
    std::vector<esz> rp(n + 1);
    std::iota(rp.begin(), rp.end(), esz{0});
    std::vector<vid> ci(n);
    std::iota(ci.begin(), ci.end(), vid{0});
    return from_parts(n, n, std::move(rp), std::move(ci),
                      std::vector<T>(n, value));
  }

  [[nodiscard]] vid rows() const noexcept { return rows_; }
  [[nodiscard]] vid cols() const noexcept { return cols_; }
  [[nodiscard]] esz nnz() const noexcept { return row_ptr_.back(); }

  [[nodiscard]] std::span<const vid> row_cols(vid i) const {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const T> row_vals(vid i) const {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<T> row_vals_mut(vid i) {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }

  [[nodiscard]] esz row_degree(vid i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Index into col_idx()/values() of entry (i,j), or nnz() when absent.
  [[nodiscard]] esz find(vid i, vid j) const {
    const auto cols_i = row_cols(i);
    const auto it = std::lower_bound(cols_i.begin(), cols_i.end(), j);
    if (it == cols_i.end() || *it != j) return nnz();
    return row_ptr_[i] + static_cast<esz>(it - cols_i.begin());
  }

  [[nodiscard]] bool contains(vid i, vid j) const { return find(i, j) != nnz(); }

  /// Value at (i,j), T{} when absent.
  [[nodiscard]] T at(vid i, vid j) const {
    const esz k = find(i, j);
    return k == nnz() ? T{} : values_[k];
  }

  // Raw array access for kernels.
  [[nodiscard]] const std::vector<esz>& row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] const std::vector<vid>& col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }
  std::vector<T>& values_mut() noexcept { return values_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.values_ == b.values_;
  }

  /// Same sparsity pattern (ignores values).
  [[nodiscard]] bool same_structure(const CsrMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
  }

 private:
  /// Counting-sort build: contiguous input chunks keep per-row entry order
  /// equal to triplet order for every chunk count, so the output (including
  /// which duplicate kKeep retains) is independent of the thread count.
  ///   1. per-chunk row histograms (also the bounds check),
  ///   2. row offsets by prefix sum, per-(chunk,row) cursors,
  ///   3. order-preserving parallel scatter into a row-bucketed staging area,
  ///   4. per-row stable sort by column + duplicate combine in place,
  ///   5. prefix sum of deduplicated row lengths + parallel compaction.
  static CsrMatrix from_coo_parallel(const Coo<T>& coo, DupPolicy policy) {
    CsrMatrix m(coo.rows(), coo.cols());
    const auto& entries = coo.entries();
    const std::size_t nz = entries.size();
    const vid rows = m.rows_;
#ifdef _OPENMP
    const std::size_t workers = static_cast<std::size_t>(omp_get_max_threads());
#else
    const std::size_t workers = 1;
#endif
    const std::size_t chunks =
        std::max<std::size_t>(1, std::min(workers, nz / 2048));
    const auto chunk_begin = [&](std::size_t c) { return nz * c / chunks; };

    std::vector<std::vector<esz>> counts(chunks);
    std::size_t bad = 0;
#pragma omp parallel for schedule(static, 1) reduction(+ : bad)
    for (std::int64_t cc = 0; cc < static_cast<std::int64_t>(chunks); ++cc) {
      const auto c = static_cast<std::size_t>(cc);
      counts[c].assign(rows, 0);
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const auto& e = entries[i];
        if (e.row >= m.rows_ || e.col >= m.cols_) {
          ++bad;
          continue;
        }
        ++counts[c][e.row];
      }
    }
    if (bad != 0) {
      throw std::out_of_range("Coo entry outside matrix dimensions");
    }

    // start[r] = first staging slot of row r; counts[c][r] becomes the
    // running cursor for chunk c's slice of row r.
    std::vector<esz> start(rows + 1, 0);
#pragma omp parallel for schedule(static)
    for (std::int64_t rr = 0; rr < static_cast<std::int64_t>(rows); ++rr) {
      const auto r = static_cast<vid>(rr);
      esz total = 0;
      for (std::size_t c = 0; c < chunks; ++c) total += counts[c][r];
      start[r + 1] = total;
    }
    std::partial_sum(start.begin(), start.end(), start.begin());
#pragma omp parallel for schedule(static)
    for (std::int64_t rr = 0; rr < static_cast<std::int64_t>(rows); ++rr) {
      const auto r = static_cast<vid>(rr);
      esz cursor = start[r];
      for (std::size_t c = 0; c < chunks; ++c) {
        const esz len = counts[c][r];
        counts[c][r] = cursor;
        cursor += len;
      }
    }

    std::vector<vid> stage_cols(nz);
    std::vector<T> stage_vals(nz);
#pragma omp parallel for schedule(static, 1)
    for (std::int64_t cc = 0; cc < static_cast<std::int64_t>(chunks); ++cc) {
      const auto c = static_cast<std::size_t>(cc);
      for (std::size_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
        const auto& e = entries[i];
        const esz pos = counts[c][e.row]++;
        stage_cols[pos] = e.col;
        stage_vals[pos] = e.value;
      }
    }

    struct ColVal {
      vid col;
      T value;
    };
#pragma omp parallel
    {
      std::vector<ColVal> scratch;
#pragma omp for schedule(dynamic, 512)
      for (std::int64_t rr = 0; rr < static_cast<std::int64_t>(rows); ++rr) {
        const auto r = static_cast<vid>(rr);
        const esz lo = start[r];
        const std::size_t len = start[r + 1] - lo;
        if (len == 0) continue;
        scratch.resize(len);
        for (std::size_t k = 0; k < len; ++k) {
          scratch[k] = {stage_cols[lo + k], stage_vals[lo + k]};
        }
        std::stable_sort(scratch.begin(), scratch.end(),
                         [](const ColVal& a, const ColVal& b) {
                           return a.col < b.col;
                         });
        esz out = lo;
        for (std::size_t k = 0; k < len; ++k) {
          if (out != lo && stage_cols[out - 1] == scratch[k].col) {
            if (policy == DupPolicy::kSum) {
              stage_vals[out - 1] =
                  static_cast<T>(stage_vals[out - 1] + scratch[k].value);
            }
            continue;
          }
          stage_cols[out] = scratch[k].col;
          stage_vals[out] = scratch[k].value;
          ++out;
        }
        m.row_ptr_[r + 1] = out - lo;  // deduplicated length, scanned below
      }
    }

    std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
    m.col_idx_.resize(m.row_ptr_.back());
    m.values_.resize(m.row_ptr_.back());
#pragma omp parallel for schedule(static)
    for (std::int64_t rr = 0; rr < static_cast<std::int64_t>(rows); ++rr) {
      const auto r = static_cast<vid>(rr);
      const esz len = m.row_ptr_[r + 1] - m.row_ptr_[r];
      std::copy_n(stage_cols.begin() + start[r], len,
                  m.col_idx_.begin() + m.row_ptr_[r]);
      std::copy_n(stage_vals.begin() + start[r], len,
                  m.values_.begin() + m.row_ptr_[r]);
    }
    return m;
  }

  vid rows_;
  vid cols_;
  std::vector<esz> row_ptr_;
  std::vector<vid> col_idx_;
  std::vector<T> values_;
};

using BoolCsr = CsrMatrix<std::uint8_t>;
using CountCsr = CsrMatrix<count_t>;

}  // namespace kronotri
