// Explicit instantiations of CsrMatrix for the common value types, so most
// translation units link against these rather than re-instantiating.
#include "core/csr.hpp"

namespace kronotri {

template class CsrMatrix<std::uint8_t>;
template class CsrMatrix<count_t>;

}  // namespace kronotri
