// Sparse linear-algebra kernels over CsrMatrix.
//
// This is the minimal kernel set needed to state and evaluate every formula
// in the paper: transpose, Hadamard product (Def. 2), structural set ops
// (for the reciprocal/directed split of Def. 9), SpGEMM, diagonal operators
// (Def. 4), masked products ((A·B)∘M without forming A·B, used for the
// edge-participation matrices Δ), and diag of triple products
// (diag(X·Y·Z), used for the directed census of Def. 10).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace kronotri::ops {

/// In-place inclusive prefix sum — the scan step of every two-pass parallel
/// CSR build (count per row in parallel, scan, fill in parallel). Callers
/// store per-row tallies at v[r+1] with v[0] == 0, so after the scan v[r] is
/// the first output slot of row r and v.back() the total.
template <typename T>
inline void prefix_sum_inplace(std::vector<T>& v) {
  std::partial_sum(v.begin(), v.end(), v.begin());
}

/// Aᵗ — counting-sort based transpose, O(nnz + rows + cols).
template <typename T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a) {
  const vid rows = a.rows(), cols = a.cols();
  std::vector<esz> rp(cols + 1, 0);
  for (esz k = 0; k < a.nnz(); ++k) ++rp[a.col_idx()[k] + 1];
  for (vid c = 0; c < cols; ++c) rp[c + 1] += rp[c];
  std::vector<vid> ci(a.nnz());
  std::vector<T> vals(a.nnz());
  std::vector<esz> cursor(rp.begin(), rp.end() - 1);
  for (vid r = 0; r < rows; ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      const esz pos = cursor[rc[k]]++;
      ci[pos] = r;
      vals[pos] = rv[k];
    }
  }
  return CsrMatrix<T>::from_parts(cols, rows, std::move(rp), std::move(ci),
                                  std::move(vals));
}

namespace detail {

inline void require_same_shape(vid ar, vid ac, vid br, vid bc) {
  if (ar != br || ac != bc) {
    throw std::invalid_argument("matrix dimensions must agree");
  }
}

/// Merge two sorted rows, invoking `on_a_only`, `on_b_only`, `on_both`.
template <typename FA, typename FB, typename FAB>
void merge_rows(std::span<const vid> ac, std::span<const vid> bc, FA&& on_a_only,
                FB&& on_b_only, FAB&& on_both) {
  std::size_t i = 0, j = 0;
  while (i < ac.size() && j < bc.size()) {
    if (ac[i] < bc[j]) {
      on_a_only(i++);
    } else if (ac[i] > bc[j]) {
      on_b_only(j++);
    } else {
      on_both(i++, j++);
    }
  }
  while (i < ac.size()) on_a_only(i++);
  while (j < bc.size()) on_b_only(j++);
}

}  // namespace detail

/// A + B (values summed on overlap).
template <typename T>
CsrMatrix<T> add(const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
  detail::require_same_shape(a.rows(), a.cols(), b.rows(), b.cols());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<T> vals;
  ci.reserve(a.nnz() + b.nnz());
  vals.reserve(a.nnz() + b.nnz());
  for (vid r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r), bc = b.row_cols(r);
    const auto av = a.row_vals(r), bv = b.row_vals(r);
    detail::merge_rows(
        ac, bc,
        [&](std::size_t i) { ci.push_back(ac[i]); vals.push_back(av[i]); },
        [&](std::size_t j) { ci.push_back(bc[j]); vals.push_back(bv[j]); },
        [&](std::size_t i, std::size_t j) {
          ci.push_back(ac[i]);
          vals.push_back(static_cast<T>(av[i] + bv[j]));
        });
    rp[r + 1] = ci.size();
  }
  return CsrMatrix<T>::from_parts(a.rows(), a.cols(), std::move(rp),
                                  std::move(ci), std::move(vals));
}

/// A ∘ B — Hadamard (entrywise) product, Def. 2. Structure = intersection.
template <typename T, typename TB>
CsrMatrix<T> hadamard(const CsrMatrix<T>& a, const CsrMatrix<TB>& b) {
  detail::require_same_shape(a.rows(), a.cols(), b.rows(), b.cols());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<T> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r), bc = b.row_cols(r);
    const auto av = a.row_vals(r), bv = b.row_vals(r);
    detail::merge_rows(
        ac, bc, [](std::size_t) {}, [](std::size_t) {},
        [&](std::size_t i, std::size_t j) {
          ci.push_back(ac[i]);
          vals.push_back(static_cast<T>(av[i] * bv[j]));
        });
    rp[r + 1] = ci.size();
  }
  return CsrMatrix<T>::from_parts(a.rows(), a.cols(), std::move(rp),
                                  std::move(ci), std::move(vals));
}

/// Entries of A at positions not present in B (structural A \ B). Used for
/// the directed part A_d = A − Aᵗ∘A of Def. 9.
template <typename T, typename TB>
CsrMatrix<T> structural_difference(const CsrMatrix<T>& a, const CsrMatrix<TB>& b) {
  detail::require_same_shape(a.rows(), a.cols(), b.rows(), b.cols());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<T> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r), bc = b.row_cols(r);
    const auto av = a.row_vals(r);
    detail::merge_rows(
        ac, bc,
        [&](std::size_t i) { ci.push_back(ac[i]); vals.push_back(av[i]); },
        [](std::size_t) {}, [](std::size_t, std::size_t) {});
    rp[r + 1] = ci.size();
  }
  return CsrMatrix<T>::from_parts(a.rows(), a.cols(), std::move(rp),
                                  std::move(ci), std::move(vals));
}

/// A · B with Gustavson's algorithm and a dense sparse-accumulator (SPA) per
/// worker. Output values are accumulated in TOut (defaults to count_t so 0/1
/// inputs produce path counts without overflow).
///
/// Rows are processed in fixed-size blocks whose results land in per-block
/// staging buffers (sorted exactly once, at emission), then stitched by a
/// prefix sum over row lengths and a parallel copy. Block boundaries do not
/// depend on the thread count and per-row arithmetic is sequential within a
/// row, so the result is bit-identical at every OMP_NUM_THREADS.
template <typename TOut = count_t, typename TA, typename TB>
CsrMatrix<TOut> spgemm(const CsrMatrix<TA>& a, const CsrMatrix<TB>& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("spgemm: inner dimensions must agree");
  }
  const vid rows = a.rows(), cols = b.cols();
  constexpr vid kBlock = 256;
  const std::size_t nblocks =
      static_cast<std::size_t>((rows + kBlock - 1) / kBlock);
  struct Block {
    std::vector<vid> ci;
    std::vector<TOut> vals;
  };
  std::vector<Block> blocks(nblocks);
  std::vector<esz> rp(rows + 1, 0);
#pragma omp parallel
  {
    std::vector<TOut> spa(cols, TOut{});
    std::vector<vid> touched;
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t bb = 0; bb < static_cast<std::int64_t>(nblocks); ++bb) {
      Block& out = blocks[static_cast<std::size_t>(bb)];
      const vid r_begin = static_cast<vid>(bb) * kBlock;
      const vid r_end = std::min<vid>(rows, (static_cast<vid>(bb) + 1) * kBlock);
      // Reserve the Gustavson upper bound (Σ deg_b over a's entries, capped
      // by the dense width) so the emission loop never reallocates.
      esz bound = 0;
      for (vid r = r_begin; r < r_end; ++r) {
        esz row_bound = 0;
        for (const vid mid : a.row_cols(r)) row_bound += b.row_degree(mid);
        bound += std::min<esz>(row_bound, cols);
      }
      out.ci.reserve(bound);
      out.vals.reserve(bound);
      for (vid r = r_begin; r < r_end; ++r) {
        touched.clear();
        const auto arc = a.row_cols(r);
        const auto arv = a.row_vals(r);
        for (std::size_t ka = 0; ka < arc.size(); ++ka) {
          const vid mid = arc[ka];
          const TOut av = static_cast<TOut>(arv[ka]);
          const auto brc = b.row_cols(mid);
          const auto brv = b.row_vals(mid);
          for (std::size_t kb = 0; kb < brc.size(); ++kb) {
            const vid c = brc[kb];
            if (spa[c] == TOut{}) touched.push_back(c);
            spa[c] = static_cast<TOut>(spa[c] + av * static_cast<TOut>(brv[kb]));
          }
        }
        std::sort(touched.begin(), touched.end());
        for (const vid c : touched) {
          out.ci.push_back(c);
          out.vals.push_back(spa[c]);
          spa[c] = TOut{};
        }
        rp[r + 1] = touched.size();
      }
    }
  }
  prefix_sum_inplace(rp);
  std::vector<vid> ci(rp[rows]);
  std::vector<TOut> vals(rp[rows]);
#pragma omp parallel for schedule(static)
  for (std::int64_t bb = 0; bb < static_cast<std::int64_t>(nblocks); ++bb) {
    const Block& blk = blocks[static_cast<std::size_t>(bb)];
    const esz base = rp[static_cast<vid>(bb) * kBlock];
    std::copy(blk.ci.begin(), blk.ci.end(), ci.begin() + base);
    std::copy(blk.vals.begin(), blk.vals.end(), vals.begin() + base);
  }
  return CsrMatrix<TOut>::from_parts(rows, cols, std::move(rp), std::move(ci),
                                     std::move(vals));
}

/// diag(A) as a dense vector (Def. 4).
template <typename T>
std::vector<T> diag_vec(const CsrMatrix<T>& a) {
  std::vector<T> d(std::min(a.rows(), a.cols()), T{});
  for (vid r = 0; r < d.size(); ++r) d[r] = a.at(r, r);
  return d;
}

/// D_A = I ∘ A — the diagonal of A as a sparse matrix (Def. 4).
template <typename T>
CsrMatrix<T> diag_matrix(const CsrMatrix<T>& a) {
  Coo<T> coo(a.rows(), a.cols());
  const vid n = std::min(a.rows(), a.cols());
  for (vid r = 0; r < n; ++r) {
    const T v = a.at(r, r);
    if (v != T{}) coo.add(r, r, v);
  }
  return CsrMatrix<T>::from_coo(coo);
}

/// A − I∘A — drop the diagonal (self loops).
template <typename T>
CsrMatrix<T> remove_diag(const CsrMatrix<T>& a) {
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<T> vals;
  ci.reserve(a.nnz());
  vals.reserve(a.nnz());
  for (vid r = 0; r < a.rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      if (rc[k] == r) continue;
      ci.push_back(rc[k]);
      vals.push_back(rv[k]);
    }
    rp[r + 1] = ci.size();
  }
  return CsrMatrix<T>::from_parts(a.rows(), a.cols(), std::move(rp),
                                  std::move(ci), std::move(vals));
}

/// A with the full unit diagonal present (adjacency semantics of B = A + I:
/// existing diagonal entries stay 1, missing ones are created).
template <typename T>
CsrMatrix<T> with_unit_diag(const CsrMatrix<T>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("with_unit_diag: matrix must be square");
  }
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<T> vals;
  ci.reserve(a.nnz() + a.rows());
  vals.reserve(a.nnz() + a.rows());
  for (vid r = 0; r < a.rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    bool placed = false;
    for (std::size_t k = 0; k < rc.size(); ++k) {
      if (!placed && rc[k] >= r) {
        ci.push_back(r);
        vals.push_back(T{1});
        placed = true;
        if (rc[k] == r) continue;  // overwrite existing loop with 1
      }
      ci.push_back(rc[k]);
      vals.push_back(rv[k]);
    }
    if (!placed) {
      ci.push_back(r);
      vals.push_back(T{1});
    }
    rp[r + 1] = ci.size();
  }
  return CsrMatrix<T>::from_parts(a.rows(), a.cols(), std::move(rp),
                                  std::move(ci), std::move(vals));
}

/// Row sums A·1 as TOut.
template <typename TOut = count_t, typename T>
std::vector<TOut> row_sums(const CsrMatrix<T>& a) {
  std::vector<TOut> s(a.rows(), TOut{});
  for (vid r = 0; r < a.rows(); ++r) {
    for (const T v : a.row_vals(r)) s[r] = static_cast<TOut>(s[r] + static_cast<TOut>(v));
  }
  return s;
}

template <typename T>
bool is_symmetric(const CsrMatrix<T>& a) {
  if (a.rows() != a.cols()) return false;
  return a == transpose(a);
}

/// (A·B) ∘ M computed without forming A·B: for every stored (i,j) of M the
/// value is the sorted-merge dot product  Σ_k A(i,k)·Bᵗ(j,k).  Pass B
/// pre-transposed. Structure of the result equals the structure of M; the
/// mask's own values are NOT multiplied in (all our masks are 0/1).
template <typename TM, typename TA, typename TB>
CsrMatrix<count_t> masked_product(const CsrMatrix<TM>& m, const CsrMatrix<TA>& a,
                                  const CsrMatrix<TB>& bt) {
  if (m.rows() != a.rows() || m.cols() != bt.rows() || a.cols() != bt.cols()) {
    throw std::invalid_argument("masked_product: dimension mismatch");
  }
  std::vector<count_t> vals(m.nnz(), 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(m.rows()); ++r) {
    const vid i = static_cast<vid>(r);
    const auto mc = m.row_cols(i);
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (std::size_t k = 0; k < mc.size(); ++k) {
      const vid j = mc[k];
      const auto bc = bt.row_cols(j);
      const auto bv = bt.row_vals(j);
      count_t acc = 0;
      detail::merge_rows(
          ac, bc, [](std::size_t) {}, [](std::size_t) {},
          [&](std::size_t x, std::size_t y) {
            acc += static_cast<count_t>(av[x]) * static_cast<count_t>(bv[y]);
          });
      vals[m.row_ptr()[i] + k] = acc;
    }
  }
  return CsrMatrix<count_t>::from_parts(
      m.rows(), m.cols(), m.row_ptr(), m.col_idx(), std::move(vals));
}

/// diag(X·Y·Z) for 0/1 matrices via wedge enumeration with membership test:
/// diag(XYZ)_i = Σ_{j∈X(i)} Σ_{k∈Y(j)} Z(k,i). Avoids materializing any
/// product; cost O(Σ_{(i,j)∈X} deg_Y(j) · log deg_Z).
std::vector<count_t> diag_triple(const BoolCsr& x, const BoolCsr& y,
                                 const BoolCsr& z);

/// diag(A³) for a symmetric 0/1 matrix (self loops allowed), via sorted row
/// intersections: diag(A³)_i = Σ_{j∈row(i)} |row(j) ∩ row(i)|.
std::vector<count_t> diag_cube_symmetric(const BoolCsr& a);

}  // namespace kronotri::ops
