// Explicit instantiations of the COO builder for the two value types used
// throughout the library (adjacency bits and triangle counts).
#include "core/coo.hpp"

namespace kronotri {

template class Coo<std::uint8_t>;
template class Coo<count_t>;

}  // namespace kronotri
