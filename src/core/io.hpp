// Graph file I/O.
//
// Supported on read (format sniffed from the first non-blank line):
//   * plain edge lists: one "u v" pair per line, '#' or '%' comments,
//     0-based by default (`one_based` converts),
//   * MatrixMarket coordinate headers ("%%MatrixMarket matrix coordinate
//     ..."): the dimension line is honored, symmetric storage is expanded,
//     and indices are treated as 1-based per the MM spec.
// The paper's §VI experiment reads web-NotreDame in SNAP edge-list form;
// this reader accepts that format directly so the real dataset can be
// substituted for our synthetic stand-in.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"

namespace kronotri::io {

struct ReadOptions {
  bool symmetrize = false;       ///< insert (v,u) for every (u,v)
  bool drop_self_loops = false;  ///< discard diagonal entries on ingest
  bool one_based = false;        ///< subtract 1 from plain edge-list ids
};

/// Reads a graph from `path`; throws std::runtime_error on parse errors.
Graph read_edge_list(const std::string& path, const ReadOptions& opts = {});

/// Writes "u v" per stored nonzero (0-based), with a size header comment.
void write_edge_list(const Graph& g, const std::string& path);

/// Ground-truth exchange format for the validation workflow: one
/// "vertex count" pair per line, '#' comments. Used to hand exact
/// per-vertex triangle counts to an implementation under test (and to read
/// its answers back).
void write_vertex_counts(const std::vector<count_t>& counts,
                         const std::string& path);
std::vector<count_t> read_vertex_counts(const std::string& path);

}  // namespace kronotri::io
