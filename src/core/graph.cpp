#include "core/graph.hpp"

#include <stdexcept>

#include "core/ops.hpp"

namespace kronotri {

Graph::Graph(BoolCsr adjacency) : adj_(std::move(adjacency)) {
  if (adj_.rows() != adj_.cols()) {
    throw std::invalid_argument("Graph: adjacency matrix must be square");
  }
  for (vid u = 0; u < adj_.rows(); ++u) {
    if (adj_.contains(u, u)) ++self_loops_;
  }
  undirected_ = ops::is_symmetric(adj_);
}

Graph Graph::from_edges(vid n, std::span<const std::pair<vid, vid>> edges,
                        bool symmetrize) {
  BoolCoo coo(n, n);
  coo.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const auto& [u, v] : edges) {
    coo.add(u, v, 1);
    if (symmetrize && u != v) coo.add(v, u, 1);
  }
  return Graph(BoolCsr::from_coo(coo, DupPolicy::kKeep));
}

Graph Graph::from_coo(const BoolCoo& coo, bool symmetrize) {
  if (!symmetrize) return Graph(BoolCsr::from_coo(coo, DupPolicy::kKeep));
  BoolCoo sym(coo.rows(), coo.cols());
  sym.reserve(coo.size() * 2);
  for (const auto& e : coo.entries()) {
    sym.add(e.row, e.col, 1);
    if (e.row != e.col) sym.add(e.col, e.row, 1);
  }
  return Graph(BoolCsr::from_coo(sym, DupPolicy::kKeep));
}

count_t Graph::num_undirected_edges() const {
  if (!undirected_) {
    throw std::logic_error("num_undirected_edges: graph is directed");
  }
  return (nnz() - self_loops_) / 2 + self_loops_;
}

Graph Graph::without_self_loops() const {
  return Graph(ops::remove_diag(adj_));
}

Graph Graph::with_all_self_loops() const {
  return Graph(ops::with_unit_diag(adj_));
}

Graph Graph::undirected_closure() const {
  if (undirected_) return *this;
  BoolCoo coo(num_vertices(), num_vertices());
  coo.reserve(nnz() * 2);
  for (vid u = 0; u < num_vertices(); ++u) {
    for (const vid v : neighbors(u)) {
      coo.add(u, v, 1);
      if (u != v) coo.add(v, u, 1);
    }
  }
  return Graph(BoolCsr::from_coo(coo, DupPolicy::kKeep));
}

Graph Graph::transpose() const { return Graph(ops::transpose(adj_)); }

}  // namespace kronotri
