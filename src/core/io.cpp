#include "core/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace kronotri::io {

namespace {

bool is_comment_or_blank(const std::string& line) {
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;
}

}  // namespace

Graph read_edge_list(const std::string& path, const ReadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);

  std::string line;
  bool matrix_market = false;
  bool mm_symmetric = false;
  // Sniff the header.
  if (std::getline(in, line)) {
    if (line.rfind("%%MatrixMarket", 0) == 0) {
      matrix_market = true;
      mm_symmetric = line.find("symmetric") != std::string::npos;
    } else {
      in.seekg(0);
    }
  }

  std::vector<std::pair<vid, vid>> edges;
  vid n = 0;
  bool have_dims = false;

  while (std::getline(in, line)) {
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    if (matrix_market && !have_dims) {
      std::uint64_t mm_rows = 0, mm_cols = 0, mm_nnz = 0;
      if (!(ls >> mm_rows >> mm_cols >> mm_nnz)) {
        throw std::runtime_error("bad MatrixMarket dimension line: " + line);
      }
      n = std::max(mm_rows, mm_cols);
      edges.reserve(mm_nnz * (mm_symmetric || opts.symmetrize ? 2 : 1));
      have_dims = true;
      continue;
    }
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("bad edge line: " + line);
    }
    if (matrix_market || opts.one_based) {
      if (u == 0 || v == 0) {
        throw std::runtime_error("expected 1-based ids, got 0: " + line);
      }
      --u;
      --v;
    }
    if (opts.drop_self_loops && u == v) continue;
    edges.emplace_back(u, v);
    if ((mm_symmetric || opts.symmetrize) && u != v) edges.emplace_back(v, u);
    if (!have_dims) n = std::max({n, u + 1, v + 1});
  }

  return Graph::from_edges(n, edges, /*symmetrize=*/false);
}

void write_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# kronotri edge list: " << g.num_vertices() << " vertices, "
      << g.nnz() << " stored nonzeros\n";
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (const vid v : g.neighbors(u)) out << u << ' ' << v << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_vertex_counts(const std::vector<count_t>& counts,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "# kronotri per-vertex counts: " << counts.size() << " vertices\n";
  for (std::size_t v = 0; v < counts.size(); ++v) {
    out << v << ' ' << counts[v] << '\n';
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<count_t> read_vertex_counts(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open counts file: " + path);
  std::vector<count_t> counts;
  std::string line;
  while (std::getline(in, line)) {
    if (is_comment_or_blank(line)) continue;
    std::istringstream ls(line);
    std::uint64_t v = 0, c = 0;
    if (!(ls >> v >> c)) throw std::runtime_error("bad counts line: " + line);
    if (v >= counts.size()) counts.resize(v + 1, 0);
    counts[v] = c;
  }
  return counts;
}

}  // namespace kronotri::io
