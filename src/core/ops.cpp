#include "core/ops.hpp"

#include <cstdint>

namespace kronotri::ops {

std::vector<count_t> diag_triple(const BoolCsr& x, const BoolCsr& y,
                                 const BoolCsr& z) {
  if (x.rows() != x.cols() || x.rows() != y.rows() ||
      y.rows() != y.cols() || z.rows() != z.cols() || x.rows() != z.rows()) {
    throw std::invalid_argument("diag_triple: matrices must be square, same n");
  }
  const vid n = x.rows();
  std::vector<count_t> d(n, 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(n); ++r) {
    const vid i = static_cast<vid>(r);
    count_t acc = 0;
    for (const vid j : x.row_cols(i)) {
      for (const vid k : y.row_cols(j)) {
        if (z.contains(k, i)) ++acc;
      }
    }
    d[i] = acc;
  }
  return d;
}

std::vector<count_t> diag_cube_symmetric(const BoolCsr& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("diag_cube_symmetric: matrix must be square");
  }
  const vid n = a.rows();
  std::vector<count_t> d(n, 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(n); ++r) {
    const vid i = static_cast<vid>(r);
    const auto ri = a.row_cols(i);
    count_t acc = 0;
    for (const vid j : ri) {
      const auto rj = a.row_cols(j);
      // |row(i) ∩ row(j)| by sorted merge.
      std::size_t p = 0, q = 0;
      while (p < ri.size() && q < rj.size()) {
        if (ri[p] < rj[q]) {
          ++p;
        } else if (ri[p] > rj[q]) {
          ++q;
        } else {
          ++acc;
          ++p;
          ++q;
        }
      }
    }
    d[i] = acc;
  }
  return d;
}

}  // namespace kronotri::ops
