// Coordinate-format (triplet) sparse matrix builder.
//
// COO is the ingestion format: generators and file readers append entries in
// arbitrary order; conversion to CSR sorts, merges duplicates and produces
// the canonical sorted-row representation used by every kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kronotri {

/// One (row, col, value) triplet.
template <typename T>
struct CooEntry {
  vid row;
  vid col;
  T value;
};

/// Duplicate handling policy when converting COO -> CSR.
enum class DupPolicy {
  kSum,   ///< duplicate entries are summed (numeric assembly)
  kKeep,  ///< duplicates collapse to a single entry keeping the first value
          ///< (adjacency-matrix semantics: an edge listed twice is one edge)
};

/// Growable triplet list with fixed logical dimensions.
template <typename T>
class Coo {
 public:
  Coo(vid rows, vid cols) : rows_(rows), cols_(cols) {}

  void add(vid r, vid c, T v) { entries_.push_back({r, c, v}); }

  /// Adds both (r,c) and (c,r); diagonal entries are added once.
  void add_symmetric(vid r, vid c, T v) {
    add(r, c, v);
    if (r != c) add(c, r, v);
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] vid rows() const noexcept { return rows_; }
  [[nodiscard]] vid cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<CooEntry<T>>& entries() const noexcept {
    return entries_;
  }
  std::vector<CooEntry<T>>& entries() noexcept { return entries_; }

 private:
  vid rows_;
  vid cols_;
  std::vector<CooEntry<T>> entries_;
};

using BoolCoo = Coo<std::uint8_t>;

}  // namespace kronotri
