// Graph: a thin semantic wrapper over a square 0/1 CsrMatrix.
//
// Following §II.A of the paper, a graph IS its adjacency matrix: possibly
// non-symmetric (directed), possibly with self loops. The wrapper caches the
// two structural predicates every theorem's precondition mentions —
// symmetry and the presence of self loops — and provides the edge-level
// accessors the triangle kernels need.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace kronotri {

class Graph {
 public:
  Graph() : Graph(BoolCsr{}) {}
  explicit Graph(BoolCsr adjacency);

  /// Build from an explicit edge list on n vertices. Duplicate edges
  /// collapse. With `symmetrize`, each (u,v) also inserts (v,u).
  static Graph from_edges(vid n, std::span<const std::pair<vid, vid>> edges,
                          bool symmetrize = false);

  static Graph from_coo(const BoolCoo& coo, bool symmetrize = false);

  [[nodiscard]] vid num_vertices() const noexcept { return adj_.rows(); }

  /// Number of stored adjacency-matrix nonzeros (directed edge slots).
  [[nodiscard]] esz nnz() const noexcept { return adj_.nnz(); }

  /// Number of self loops (diagonal nonzeros).
  [[nodiscard]] count_t num_self_loops() const noexcept { return self_loops_; }
  [[nodiscard]] bool has_self_loops() const noexcept { return self_loops_ > 0; }

  /// A == Aᵗ. Cached at construction.
  [[nodiscard]] bool is_undirected() const noexcept { return undirected_; }

  /// Undirected edge count: off-diagonal nonzeros / 2 + self loops.
  /// Only meaningful for undirected graphs (throws otherwise).
  [[nodiscard]] count_t num_undirected_edges() const;

  /// Out-neighborhood of u, sorted ascending (may include u for self loop).
  [[nodiscard]] std::span<const vid> neighbors(vid u) const {
    return adj_.row_cols(u);
  }

  /// Out-degree including a self loop if present.
  [[nodiscard]] esz out_degree(vid u) const { return adj_.row_degree(u); }

  /// Degree excluding the self loop — the d_A of §III.A, (A − I∘A)·1.
  [[nodiscard]] esz nonloop_degree(vid u) const {
    return adj_.row_degree(u) - (adj_.contains(u, u) ? 1u : 0u);
  }

  [[nodiscard]] bool has_edge(vid u, vid v) const { return adj_.contains(u, v); }

  [[nodiscard]] const BoolCsr& matrix() const noexcept { return adj_; }

  /// A − I∘A (Rem. 3).
  [[nodiscard]] Graph without_self_loops() const;

  /// A + I with adjacency semantics (diagonal forced to 1); the B = A + I
  /// construction of the paper's §VI experiment.
  [[nodiscard]] Graph with_all_self_loops() const;

  /// A ∨ Aᵗ — the undirected version A_u (Def. 9 uses A + Aᵗ_d; for 0/1
  /// adjacency semantics this is the structural symmetrization).
  [[nodiscard]] Graph undirected_closure() const;

  [[nodiscard]] Graph transpose() const;

  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adj_ == b.adj_;
  }

 private:
  BoolCsr adj_;
  count_t self_loops_ = 0;
  bool undirected_ = false;
};

}  // namespace kronotri
