// The §III.D(b) generator: scale-free graphs whose every edge participates
// in at most one triangle (Δ ≤ 1) — the B factors Thm 3 needs for products
// with a known truss decomposition.
//
// Paper's procedure, verbatim: start with a single edge. For each new node
// u, pick an existing edge (i,j) uniformly at random and a vertex v ∈ {i,j}
// uniformly; add (u,v). If (i,j) participates in no triangle yet, also add
// (u,w) for the other endpoint w, closing exactly one new triangle and
// marking (i,j), (u,v), (u,w) as saturated. Repeat until n vertices exist.
// Picking an edge uniformly and then an endpoint is preferential attachment
// (degree-proportional), so degrees are power-law distributed.
#pragma once

#include <cstdint>

#include "core/graph.hpp"

namespace kronotri::gen {

/// n ≥ 2 vertices; deterministic in `seed`. The result is connected,
/// loop-free, undirected, and satisfies Δ ≤ 1 by construction (asserted in
/// tests via truss::edges_in_at_most_one_triangle).
Graph one_triangle_pa(vid n, std::uint64_t seed);

}  // namespace kronotri::gen
