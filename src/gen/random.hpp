// Random graph generators.
//
// Erdős–Rényi and Barabási–Albert are baselines; Holme–Kim (BA with triad
// formation) is the library's stand-in for the paper's web-NotreDame
// factor: it produces scale-free graphs with tunable, high triangle density
// — the two properties the §VI experiment needs from its factor (see
// DESIGN.md, "Substitutions"). All generators are deterministic in `seed`.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "triangle/labeled.hpp"

namespace kronotri::gen {

/// G(n, p) — every undirected pair independently with probability p
/// (geometric skipping, O(|E|)). No self loops.
Graph erdos_renyi(vid n, double p, std::uint64_t seed);

/// G(n, m) — exactly m distinct undirected edges, uniform. No self loops.
Graph erdos_renyi_m(vid n, esz m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` distinct existing vertices chosen proportionally to degree.
Graph barabasi_albert(vid n, vid m, std::uint64_t seed);

/// Holme–Kim: BA with probability `p_triad` of closing a triangle with a
/// random neighbor of the previous target after each attachment — power-law
/// degrees AND high clustering.
Graph holme_kim(vid n, vid m, double p_triad, std::uint64_t seed);

/// Uniform random labeling with `num_labels` colors.
triangle::Labeling random_labels(vid n, std::uint32_t num_labels,
                                 std::uint64_t seed);

/// Random orientation surgery: keeps each undirected edge of `g` as
/// reciprocal with probability `p_reciprocal`, otherwise keeps one random
/// direction — produces directed test graphs with both edge kinds (Def. 8).
Graph randomly_orient(const Graph& g, double p_reciprocal, std::uint64_t seed);

}  // namespace kronotri::gen
