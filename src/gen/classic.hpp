// Deterministic graph families.
//
// These are the closed-form validation instruments of the paper: the clique
// K_n and looped clique J_n = K_n + I of Ex. 1(a)–(c), and the hub-cycle
// graph of Ex. 2 / Fig. 3 (the counterexample showing the truss
// decomposition of a Kronecker product is not a simple product).
#pragma once

#include "core/graph.hpp"

namespace kronotri::gen {

/// K_n — complete graph, no self loops. Every vertex has degree n−1,
/// participates in C(n−1, 2) triangles; every edge in n−2 triangles.
Graph clique(vid n);

/// J_n = 1·1ᵗ — complete graph plus a self loop at every vertex (Ex. 1).
Graph clique_with_loops(vid n);

/// Cycle on n ≥ 3 vertices (triangle-free for n > 3).
Graph cycle(vid n);

/// Path on n vertices (always triangle-free).
Graph path(vid n);

/// Star: vertex 0 joined to vertices 1…n−1 (triangle-free).
Graph star(vid n);

/// Complete bipartite K_{a,b} (triangle-free).
Graph complete_bipartite(vid a, vid b);

/// The Ex. 2 graph: K_5 minus the two cycle chords — a 4-cycle {1,2,3,4}
/// plus hub vertex 0 joined to all (0-based ids; the paper's Fig. 3 uses
/// 1-based). 5 vertices, 8 undirected edges, 4 triangles; hub edges close 2
/// triangles, cycle edges 1.
Graph hub_cycle();

}  // namespace kronotri::gen
