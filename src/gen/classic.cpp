#include "gen/classic.hpp"

#include <stdexcept>
#include <vector>

namespace kronotri::gen {

namespace {

Graph from_pairs(vid n, const std::vector<std::pair<vid, vid>>& edges,
                 bool symmetrize = true) {
  return Graph::from_edges(n, edges, symmetrize);
}

}  // namespace

Graph clique(vid n) {
  std::vector<std::pair<vid, vid>> e;
  e.reserve(n * (n - 1) / 2);
  for (vid u = 0; u < n; ++u) {
    for (vid v = u + 1; v < n; ++v) e.emplace_back(u, v);
  }
  return from_pairs(n, e);
}

Graph clique_with_loops(vid n) {
  std::vector<std::pair<vid, vid>> e;
  e.reserve(n * (n + 1) / 2);
  for (vid u = 0; u < n; ++u) {
    e.emplace_back(u, u);
    for (vid v = u + 1; v < n; ++v) e.emplace_back(u, v);
  }
  return from_pairs(n, e);
}

Graph cycle(vid n) {
  if (n < 3) throw std::invalid_argument("cycle needs n >= 3");
  std::vector<std::pair<vid, vid>> e;
  e.reserve(n);
  for (vid u = 0; u < n; ++u) e.emplace_back(u, (u + 1) % n);
  return from_pairs(n, e);
}

Graph path(vid n) {
  std::vector<std::pair<vid, vid>> e;
  if (n > 0) e.reserve(n - 1);
  for (vid u = 0; u + 1 < n; ++u) e.emplace_back(u, u + 1);
  return from_pairs(n, e);
}

Graph star(vid n) {
  if (n == 0) throw std::invalid_argument("star needs n >= 1");
  std::vector<std::pair<vid, vid>> e;
  e.reserve(n - 1);
  for (vid u = 1; u < n; ++u) e.emplace_back(0, u);
  return from_pairs(n, e);
}

Graph complete_bipartite(vid a, vid b) {
  std::vector<std::pair<vid, vid>> e;
  e.reserve(a * b);
  for (vid u = 0; u < a; ++u) {
    for (vid v = 0; v < b; ++v) e.emplace_back(u, a + v);
  }
  return from_pairs(a + b, e);
}

Graph hub_cycle() {
  // Hub 0 to all of the 4-cycle 1-2-3-4-1. The paper removes K_5 edges
  // {2,4} and {3,5} (1-based), i.e. the two chords {1,3} and {2,4} here.
  const std::vector<std::pair<vid, vid>> e = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4},  // hub edges
      {1, 2}, {2, 3}, {3, 4}, {4, 1},  // cycle edges
  };
  return from_pairs(5, e);
}

}  // namespace kronotri::gen
