#include "gen/prune.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/ops.hpp"
#include "triangle/forward.hpp"
#include "util/prng.hpp"

namespace kronotri::gen {

namespace {

struct Tri {
  esz e0, e1, e2;  // undirected edge ids
  bool alive = true;
};

}  // namespace

Graph prune_to_one_triangle(const Graph& g, std::uint64_t seed) {
  if (!g.is_undirected()) {
    throw std::invalid_argument("prune_to_one_triangle: graph must be undirected");
  }
  const BoolCsr s =
      g.has_self_loops() ? ops::remove_diag(g.matrix()) : g.matrix();
  const vid n = s.rows();

  // Undirected edge ids.
  std::vector<std::pair<vid, vid>> ends;
  std::vector<esz> id(s.nnz());
  for (vid u = 0; u < n; ++u) {
    const auto row = s.row_cols(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid v = row[k];
      if (u < v) {
        id[s.row_ptr()[u] + k] = ends.size();
        id[s.find(v, u)] = ends.size();
        ends.emplace_back(u, v);
      }
    }
  }
  const esz m = ends.size();

  // Spanning forest by BFS: tree edges are protected.
  std::vector<bool> in_tree(m, false);
  {
    std::vector<bool> seen(n, false);
    std::vector<vid> queue;
    for (vid root = 0; root < n; ++root) {
      if (seen[root]) continue;
      seen[root] = true;
      queue.assign(1, root);
      while (!queue.empty()) {
        const vid x = queue.back();
        queue.pop_back();
        const auto row = s.row_cols(x);
        for (std::size_t k = 0; k < row.size(); ++k) {
          const vid y = row[k];
          if (!seen[y]) {
            seen[y] = true;
            in_tree[id[s.row_ptr()[x] + k]] = true;
            queue.push_back(y);
          }
        }
      }
    }
  }

  // Enumerate all triangles once; build edge -> triangle incidence.
  std::vector<Tri> tris;
  {
    const triangle::Oriented o = triangle::orient_by_degree(s);
    std::vector<Tri> collected;
    triangle::forward_triangles(o, n, [&](vid u, vid v, vid w) {
      const esz e0 = id[s.find(u, v)];
      const esz e1 = id[s.find(u, w)];
      const esz e2 = id[s.find(v, w)];
#pragma omp critical(kronotri_prune_collect)
      collected.push_back({e0, e1, e2, true});
    });
    tris = std::move(collected);
  }
  std::vector<std::vector<std::size_t>> tris_of_edge(m);
  for (std::size_t t = 0; t < tris.size(); ++t) {
    tris_of_edge[tris[t].e0].push_back(t);
    tris_of_edge[tris[t].e1].push_back(t);
    tris_of_edge[tris[t].e2].push_back(t);
  }
  std::vector<count_t> alive_count(m, 0);
  for (esz e = 0; e < m; ++e) {
    alive_count[e] = tris_of_edge[e].size();
  }

  std::vector<bool> edge_alive(m, true);
  util::Xoshiro256 rng(seed);

  auto kill_triangle = [&](std::size_t t) {
    if (!tris[t].alive) return;
    tris[t].alive = false;
    --alive_count[tris[t].e0];
    --alive_count[tris[t].e1];
    --alive_count[tris[t].e2];
  };

  // Greedy: while some edge closes > 1 triangle, delete the non-tree edge
  // (of one of its excess triangles) that currently closes the most.
  for (esz e = 0; e < m; ++e) {
    while (edge_alive[e] && alive_count[e] > 1) {
      // Candidate deletions: non-tree alive edges of e's alive triangles
      // (excluding protected tree edges; e itself is a candidate when it is
      // not a tree edge).
      esz best = m;
      count_t best_damage = 0;
      for (const std::size_t t : tris_of_edge[e]) {
        if (!tris[t].alive) continue;
        for (const esz f : {tris[t].e0, tris[t].e1, tris[t].e2}) {
          if (in_tree[f] || !edge_alive[f]) continue;
          const count_t damage = alive_count[f];
          if (best == m || damage > best_damage ||
              (damage == best_damage && rng.bernoulli(0.5))) {
            best = f;
            best_damage = damage;
          }
        }
      }
      if (best == m) {
        // Cannot happen: every triangle has a non-tree edge.
        throw std::logic_error("prune: no deletable edge found");
      }
      edge_alive[best] = false;
      for (const std::size_t t : tris_of_edge[best]) kill_triangle(t);
    }
  }

  std::vector<std::pair<vid, vid>> kept;
  kept.reserve(m);
  for (esz e = 0; e < m; ++e) {
    if (edge_alive[e]) kept.push_back(ends[e]);
  }
  return Graph::from_edges(n, kept, /*symmetrize=*/true);
}

}  // namespace kronotri::gen
