#include "gen/random.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/prng.hpp"

namespace kronotri::gen {

namespace {

using util::Xoshiro256;

std::uint64_t pack_pair(vid u, vid v) {
  if (u > v) std::swap(u, v);
  return (u << 32) | v;
}

}  // namespace

Graph erdos_renyi(vid n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("p must be in [0,1]");
  Xoshiro256 rng(seed);
  std::vector<std::pair<vid, vid>> edges;
  if (p > 0.0) {
    // Geometric skipping over the strict upper triangle.
    const double log1mp = std::log1p(-p);
    const std::uint64_t total = n * (n - 1) / 2;
    std::uint64_t idx = 0;
    auto unrank = [n](std::uint64_t t) {
      // Row-major strict upper triangle: row u has n-1-u entries.
      vid u = 0;
      std::uint64_t remaining = t;
      while (remaining >= n - 1 - u) {
        remaining -= n - 1 - u;
        ++u;
      }
      return std::pair<vid, vid>{u, u + 1 + remaining};
    };
    while (true) {
      if (p >= 1.0) {
        if (idx >= total) break;
        edges.push_back(unrank(idx));
        ++idx;
        continue;
      }
      // Gap to the next success ~ Geometric(p): floor(log(1−r)/log(1−p)).
      const double r = rng.uniform();
      const auto skip =
          static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
      idx += skip;
      if (idx >= total) break;
      edges.push_back(unrank(idx));
      ++idx;
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true);
}

Graph erdos_renyi_m(vid n, esz m, std::uint64_t seed) {
  const std::uint64_t total = n * (n - 1) / 2;
  if (m > total) throw std::invalid_argument("m exceeds possible edge count");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<vid, vid>> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const vid u = rng.bounded(n);
    const vid v = rng.bounded(n);
    if (u == v) continue;
    if (seen.insert(pack_pair(u, v)).second) {
      edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true);
}

Graph barabasi_albert(vid n, vid m, std::uint64_t seed) {
  return holme_kim(n, m, 0.0, seed);
}

Graph holme_kim(vid n, vid m, double p_triad, std::uint64_t seed) {
  if (m < 1 || n < m + 1) {
    throw std::invalid_argument("holme_kim requires n > m >= 1");
  }
  Xoshiro256 rng(seed);
  // `targets` doubles as the preferential-attachment urn: every endpoint of
  // every edge appears once, so sampling uniformly from it is
  // degree-proportional sampling.
  std::vector<vid> urn;
  std::vector<std::pair<vid, vid>> edges;
  std::vector<std::vector<vid>> adj(n);
  edges.reserve(n * m);
  urn.reserve(2 * n * m);

  auto connect = [&](vid u, vid v) {
    edges.emplace_back(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
    urn.push_back(u);
    urn.push_back(v);
  };

  // Seed clique on m+1 vertices keeps early sampling well-defined.
  for (vid u = 0; u <= m; ++u) {
    for (vid v = u + 1; v <= m; ++v) connect(u, v);
  }

  for (vid u = m + 1; u < n; ++u) {
    std::unordered_set<vid> picked;
    vid last_target = ~vid{0};
    while (picked.size() < m) {
      vid target;
      const bool try_triad =
          last_target != ~vid{0} && rng.bernoulli(p_triad);
      if (try_triad) {
        // Triad step: connect to a random neighbor of the last target.
        const auto& nb = adj[last_target];
        target = nb[rng.bounded(nb.size())];
      } else {
        target = urn[rng.bounded(urn.size())];
      }
      if (target == u || picked.count(target)) {
        // Fall back to pure PA on collisions to guarantee progress.
        target = urn[rng.bounded(urn.size())];
        if (target == u || picked.count(target)) continue;
      }
      picked.insert(target);
      connect(u, target);
      last_target = target;
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true);
}

triangle::Labeling random_labels(vid n, std::uint32_t num_labels,
                                 std::uint64_t seed) {
  if (num_labels == 0) throw std::invalid_argument("need >= 1 label");
  Xoshiro256 rng(seed);
  triangle::Labeling lab;
  lab.num_labels = num_labels;
  lab.label.resize(n);
  for (auto& q : lab.label) {
    q = static_cast<std::uint32_t>(rng.bounded(num_labels));
  }
  return lab;
}

Graph randomly_orient(const Graph& g, double p_reciprocal, std::uint64_t seed) {
  if (!g.is_undirected()) {
    throw std::invalid_argument("randomly_orient expects an undirected graph");
  }
  Xoshiro256 rng(seed);
  std::vector<std::pair<vid, vid>> edges;
  edges.reserve(g.nnz());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (const vid v : g.neighbors(u)) {
      if (v < u) continue;
      if (v == u) {
        edges.emplace_back(u, u);
        continue;
      }
      if (rng.bernoulli(p_reciprocal)) {
        edges.emplace_back(u, v);
        edges.emplace_back(v, u);
      } else if (rng.bernoulli(0.5)) {
        edges.emplace_back(u, v);
      } else {
        edges.emplace_back(v, u);
      }
    }
  }
  return Graph::from_edges(g.num_vertices(), edges, /*symmetrize=*/false);
}

}  // namespace kronotri::gen
