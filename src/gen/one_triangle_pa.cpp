#include "gen/one_triangle_pa.hpp"

#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace kronotri::gen {

Graph one_triangle_pa(vid n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("one_triangle_pa needs n >= 2");
  util::Xoshiro256 rng(seed);

  struct Edge {
    vid u, v;
    bool in_triangle;
  };
  std::vector<Edge> edges;
  edges.push_back({0, 1, false});

  for (vid u = 2; u < n; ++u) {
    const std::size_t pick = rng.bounded(edges.size());
    // Copy endpoints: push_back below may reallocate `edges`.
    const vid i = edges[pick].u;
    const vid j = edges[pick].v;
    const bool saturated = edges[pick].in_triangle;
    const bool pick_i = rng.bernoulli(0.5);
    const vid v = pick_i ? i : j;
    edges.push_back({u, v, false});
    if (!saturated) {
      const vid w = pick_i ? j : i;
      edges[pick].in_triangle = true;       // (i,j)
      edges[edges.size() - 1].in_triangle = true;  // (u,v)
      edges.push_back({u, w, true});        // (u,w)
    }
  }

  std::vector<std::pair<vid, vid>> pairs;
  pairs.reserve(edges.size());
  for (const Edge& e : edges) pairs.emplace_back(e.u, e.v);
  return Graph::from_edges(n, pairs, /*symmetrize=*/true);
}

}  // namespace kronotri::gen
