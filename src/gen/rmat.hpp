// R-MAT / stochastic-Kronecker generator (Chakrabarti–Zhan–Faloutsos [4]).
//
// This is the baseline the paper's Rem. 1 argues against: stochastic
// Kronecker graphs (the Graph500 generator family [1]) have very few
// triangles relative to real-world graphs because edges are sampled
// independently. bench_stochastic_vs_nonstochastic quantifies that claim by
// comparing this generator's triangle census against a non-stochastic
// Kronecker product of equal scale.
#pragma once

#include <cstdint>

#include "core/graph.hpp"

namespace kronotri::gen {

struct RmatParams {
  double a = 0.57;  ///< Graph500 defaults
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};

/// 2^scale vertices, edge_factor·2^scale sampled edge slots (duplicates
/// collapse, self loops dropped, result symmetrized — the undirected
/// Graph500 convention).
Graph rmat(unsigned scale, esz edge_factor, const RmatParams& params,
           std::uint64_t seed);

}  // namespace kronotri::gen
