#include "gen/rmat.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/prng.hpp"

namespace kronotri::gen {

Graph rmat(unsigned scale, esz edge_factor, const RmatParams& params,
           std::uint64_t seed) {
  const double sum = params.a + params.b + params.c + params.d;
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("R-MAT probabilities must sum to 1");
  }
  if (scale >= 40) throw std::invalid_argument("scale too large");
  util::Xoshiro256 rng(seed);
  const vid n = vid{1} << scale;
  const esz m = edge_factor * n;
  std::vector<std::pair<vid, vid>> edges;
  edges.reserve(m);
  for (esz e = 0; e < m; ++e) {
    vid u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.emplace_back(u, v);  // drop self loops
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true);
}

}  // namespace kronotri::gen
