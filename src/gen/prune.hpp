// §III.D strategy (a): make an existing (real-world) graph satisfy the
// Thm 3 precondition by deleting edges until every edge participates in at
// most one triangle, while maintaining connectivity via a spanning tree.
//
// Every triangle contains at least one non-tree edge (a tree is acyclic),
// so deleting only non-tree edges can always reach Δ ≤ 1 without
// disconnecting anything. The implementation enumerates all triangles
// once, then greedily deletes the non-tree edge that kills the most
// remaining excess triangles until every edge closes at most one.
#pragma once

#include <cstdint>

#include "core/graph.hpp"

namespace kronotri::gen {

/// Returns a spanning-connected subgraph of `g` (per component) with
/// Δ ≤ 1. Requires an undirected graph; self loops are dropped.
/// Deterministic in `seed` (used only for tie-breaking among equal-damage
/// deletions).
Graph prune_to_one_triangle(const Graph& g, std::uint64_t seed = 0);

}  // namespace kronotri::gen
