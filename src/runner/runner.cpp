#include "runner/runner.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/fault.hpp"
#include "util/runmeta.hpp"
#include "util/timer.hpp"
#include "validate/report.hpp"

namespace kronotri::runner {

namespace {

using util::json::Value;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One work unit of the decomposed plan: a child plan a worker executes to
/// a RunReport fragment.
struct Unit {
  unsigned id = 0;
  std::string kind;        // "base" | "validate" | "run"
  int analysis_index = -1; // original plan.analyses index (validate units)
  api::RunPlan plan;
};

/// Decomposition: one base unit for everything that is not a validate
/// analysis (it keeps the plan's output/stream duties), plus
/// units_per_validate shard-subset units per validate analysis. Validate
/// is the unit-splittable analysis — its deterministic shard plan is
/// derived identically in every worker, so unit i can take slice i
/// without any coordinator→worker shard negotiation.
std::vector<Unit> decompose(const api::RunPlan& plan,
                            unsigned units_per_validate) {
  std::vector<Unit> units;

  api::RunPlan base = plan;
  base.options.workers = 1;
  base.options.fault.clear();
  base.analyses.clear();
  std::vector<std::size_t> validate_indices;
  for (std::size_t i = 0; i < plan.analyses.size(); ++i) {
    if (plan.analyses[i].name == "validate") {
      validate_indices.push_back(i);
    } else {
      base.analyses.push_back(plan.analyses[i]);
    }
  }

  const bool base_has_work = !base.analyses.empty() ||
                             !base.options.output.empty() ||
                             base.options.stream;
  if (base_has_work || validate_indices.empty()) {
    Unit u;
    u.id = static_cast<unsigned>(units.size());
    u.kind = validate_indices.empty() ? "run" : "base";
    u.plan = base;
    units.push_back(std::move(u));
  }

  for (const std::size_t ai : validate_indices) {
    for (unsigned i = 0; i < units_per_validate; ++i) {
      Unit u;
      u.id = static_cast<unsigned>(units.size());
      u.kind = "validate";
      u.analysis_index = static_cast<int>(ai);
      u.plan = plan;
      u.plan.options.workers = 1;
      u.plan.options.fault.clear();
      u.plan.options.output.clear();
      u.plan.options.stream = false;
      api::AnalysisRequest req = plan.analyses[ai];
      req.params["unit"] = std::to_string(i);
      req.params["units"] = std::to_string(units_per_validate);
      u.plan.analyses = {std::move(req)};
      units.push_back(std::move(u));
    }
  }
  return units;
}

std::string tmp_dir() {
  const char* dir = std::getenv("TMPDIR");
  return (dir != nullptr && *dir != '\0') ? dir : "/tmp";
}

pid_t spawn_worker(const std::string& exe,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec immediately — no OpenMP, no allocation-heavy work
    // between fork and exec (the parent may hold libgomp/locale state a
    // forked child must not touch).
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  return pid;
}

/// A complete fragment frame is the report JSON plus a trailing newline —
/// a missing terminator or a parse failure both classify as "truncated"
/// (the worker died mid-write, or the truncate fault fired).
std::optional<Value> read_fragment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string frame = buf.str();
  if (frame.empty() || frame.back() != '\n') return std::nullopt;
  try {
    return Value::parse(frame);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct RunningAttempt {
  unsigned unit = 0;
  unsigned attempt = 0;
  pid_t pid = -1;
  double start_s = 0;
  std::string out_path;
  bool timed_out = false;   // we SIGKILLed it past its deadline
  bool superseded = false;  // another attempt of the unit already won
  bool aborted = false;     // run is failing, everything was killed
};

struct UnitState {
  unsigned next_attempt = 0;
  unsigned failures = 0;
  bool done = false;
  bool speculated = false;
  Value fragment;
};

/// Merges per-unit validate fragments back into the analysis list in the
/// original plan order; non-validate analyses come from the base fragment
/// verbatim.
api::RunReport merge_fragments(const api::RunPlan& plan,
                               const std::vector<Unit>& units,
                               const std::vector<UnitState>& states) {
  // Skeleton: the base fragment when one exists, else any validate
  // fragment (every top-level field outside `analyses` is identical
  // across fragments of the same plan, timings aside).
  const Value* skeleton = nullptr;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].kind != "validate") skeleton = &states[i].fragment;
  }
  if (skeleton == nullptr) skeleton = &states[0].fragment;
  api::RunReport report = api::RunReport::from_json(*skeleton);
  std::vector<api::AnalysisReport> base_analyses = std::move(report.analyses);

  report.plan = plan;
  report.analyses.clear();
  std::size_t base_next = 0;
  for (std::size_t ai = 0; ai < plan.analyses.size(); ++ai) {
    if (plan.analyses[ai].name != "validate") {
      report.analyses.push_back(std::move(base_analyses.at(base_next++)));
      continue;
    }
    validate::ValidationReport merged;
    bool first = true;
    double wall_s = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (units[i].analysis_index != static_cast<int>(ai)) continue;
      const api::RunReport frag = api::RunReport::from_json(states[i].fragment);
      const api::AnalysisReport& ar = frag.analyses.at(0);
      wall_s += ar.wall_s;
      validate::ValidationReport vr =
          validate::ValidationReport::from_json(ar.data);
      if (first) {
        merged = std::move(vr);
        first = false;
      } else {
        merged.merge(vr);
      }
    }
    merged.finalize_merged();
    api::AnalysisReport ar;
    ar.name = "validate";
    ar.pass = merged.pass();
    ar.wall_s = wall_s;
    std::ostringstream os;
    merged.print(os);
    ar.text = os.str();
    ar.data = merged.to_json();
    report.analyses.push_back(std::move(ar));
  }

  report.pass = true;
  for (const api::AnalysisReport& ar : report.analyses) {
    report.pass = report.pass && ar.pass;
  }
  return report;
}

}  // namespace

Options options_from(const api::RunPlan& plan) {
  Options opt;
  opt.workers = plan.options.workers;
  opt.shard_timeout_s = plan.options.shard_timeout_s;
  opt.max_retries = plan.options.max_retries;
  opt.fault_spec = plan.options.fault;
  return opt;
}

std::string default_worker_exe() {
  if (const char* env = std::getenv("KRONOTRI_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    const std::string self(buf);
    const std::size_t slash = self.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : self.substr(0, slash);
    if (self.substr(slash + 1) == "kronotri") return self;
    // Test and bench binaries live in the build tree next to (or one
    // level below) the CLI binary.
    for (const std::string& cand : {dir + "/kronotri", dir + "/../kronotri"}) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  if (::access("./kronotri", X_OK) == 0) return "./kronotri";
  return "";
}

api::RunReport execute(const api::RunPlan& plan) {
  return execute(plan, options_from(plan));
}

api::RunReport execute(const api::RunPlan& plan, Options opt) {
  if (opt.workers <= 1) return api::run(plan);

  if (opt.fault_spec.empty()) {
    if (const char* env = std::getenv("KRONOTRI_FAULT");
        env != nullptr && *env != '\0') {
      opt.fault_spec = env;
    }
  }
  // Validate the spec in the coordinator: a typo should fail the run with
  // an actionable message, not silently inject nothing in every worker.
  (void)util::fault::Injector(opt.fault_spec);

  std::string exe =
      opt.worker_exe.empty() ? default_worker_exe() : opt.worker_exe;
  if (exe.empty() || ::access(exe.c_str(), X_OK) != 0) {
    // Graceful degradation: no worker binary → in-process serial run,
    // recorded as such instead of silently pretending to be parallel.
    api::RunReport report = api::run(plan);
    api::WorkerEvent e;
    e.kind = "run";
    e.outcome = "degraded";
    report.worker_events.push_back(e);
    return report;
  }

  const util::WallTimer total_wall;
  const util::CpuTimer total_cpu;
  const std::vector<Unit> units =
      decompose(plan, opt.workers * std::max(1u, opt.units_per_worker));
  std::vector<UnitState> states(units.size());
  std::vector<api::WorkerEvent> events;
  std::vector<std::string> cleanup;

  const std::string prefix =
      tmp_dir() + "/kronotri." + std::to_string(::getpid()) + ".";
  std::vector<std::string> plan_files(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    plan_files[i] = prefix + "plan" + std::to_string(units[i].id) + ".json";
    std::ofstream out(plan_files[i], std::ios::trunc);
    units[i].plan.to_json().dump(out);
    out << "\n";
    if (!out) {
      throw std::runtime_error("runner: cannot write " + plan_files[i]);
    }
    cleanup.push_back(plan_files[i]);
  }

  struct Pending {
    unsigned unit;
    double ready_at_s;
  };
  std::deque<Pending> pending;
  for (const Unit& u : units) pending.push_back({u.id, 0.0});
  std::vector<RunningAttempt> running;
  std::string error;
  bool any_spawned = false;

  const auto dispatch = [&](unsigned unit_id) -> bool {
    UnitState& st = states[unit_id];
    RunningAttempt ra;
    ra.unit = unit_id;
    ra.attempt = st.next_attempt++;
    ra.out_path = prefix + "u" + std::to_string(unit_id) + ".a" +
                  std::to_string(ra.attempt) + ".json";
    cleanup.push_back(ra.out_path);
    std::vector<std::string> args = {exe,
                                     "__worker",
                                     "--plan-file",
                                     plan_files[unit_id],
                                     "--out",
                                     ra.out_path,
                                     "--unit",
                                     std::to_string(unit_id),
                                     "--attempt",
                                     std::to_string(ra.attempt)};
    if (!opt.fault_spec.empty()) {
      args.push_back("--fault");
      args.push_back(opt.fault_spec);
    }
    ra.pid = spawn_worker(exe, args);
    ra.start_s = monotonic_s();
    if (ra.pid < 0) {
      api::WorkerEvent e;
      e.unit = unit_id;
      e.kind = units[unit_id].kind;
      e.attempt = ra.attempt;
      e.outcome = "spawn_failed";
      e.detail = errno;
      events.push_back(e);
      return false;
    }
    any_spawned = true;
    running.push_back(std::move(ra));
    return true;
  };

  const auto fail_unit = [&](unsigned unit_id, const std::string& why) {
    error = "unit " + std::to_string(unit_id) + " (" + units[unit_id].kind +
            ") " + why + " after " +
            std::to_string(states[unit_id].failures) + " attempt" +
            (states[unit_id].failures == 1 ? "" : "s") +
            " (max_retries=" + std::to_string(opt.max_retries) + ")";
    pending.clear();
    for (RunningAttempt& ra : running) {
      ra.aborted = true;
      ::kill(ra.pid, SIGKILL);
    }
  };

  // Failure of one attempt: count it against the unit's budget and either
  // re-queue with backoff or fail the whole run.
  const auto on_failure = [&](const RunningAttempt& ra,
                              const std::string& why) {
    UnitState& st = states[ra.unit];
    ++st.failures;
    if (st.failures > opt.max_retries) {
      fail_unit(ra.unit, why);
      return;
    }
    pending.push_back(
        {ra.unit, monotonic_s() + opt.backoff.delay_s(st.failures - 1)});
  };

  while (!running.empty() || (!pending.empty() && error.empty())) {
    const double now = monotonic_s();

    // Deadline enforcement: SIGKILL a worker past its per-attempt budget;
    // the reap below classifies it as "timeout" and re-dispatches.
    for (RunningAttempt& ra : running) {
      if (opt.shard_timeout_s > 0 && !ra.timed_out && !ra.aborted &&
          now - ra.start_s > opt.shard_timeout_s) {
        ra.timed_out = true;
        ::kill(ra.pid, SIGKILL);
      }
    }

    // Reap.
    for (std::size_t i = 0; i < running.size();) {
      RunningAttempt& ra = running[i];
      int status = 0;
      const pid_t got = ::waitpid(ra.pid, &status, WNOHANG);
      if (got != ra.pid) {
        ++i;
        continue;
      }
      api::WorkerEvent e;
      e.unit = ra.unit;
      e.kind = units[ra.unit].kind;
      e.attempt = ra.attempt;
      e.pid = ra.pid;
      e.wall_s = monotonic_s() - ra.start_s;
      UnitState& st = states[ra.unit];

      if (ra.aborted) {
        e.outcome = "aborted";
        if (WIFSIGNALED(status)) e.detail = WTERMSIG(status);
        events.push_back(e);
      } else if (ra.superseded || st.done) {
        // The unit was already won by another attempt — whatever this one
        // did (finished, crashed, got killed) is a speculative loss, never
        // a budget-charged failure.
        e.outcome = "speculative_loss";
        events.push_back(e);
      } else if (ra.timed_out) {
        e.outcome = "timeout";
        e.detail = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        events.push_back(e);
        on_failure(ra, "timed out");
      } else if (WIFSIGNALED(status)) {
        e.outcome = "signal";
        e.detail = WTERMSIG(status);
        events.push_back(e);
        on_failure(ra, "died on signal " + std::to_string(e.detail));
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        e.outcome = "exit";
        e.detail = WEXITSTATUS(status);
        events.push_back(e);
        on_failure(ra, "exited with code " + std::to_string(e.detail));
      } else if (std::optional<Value> frag = read_fragment(ra.out_path)) {
        e.outcome = "ok";
        events.push_back(e);
        st.done = true;
        st.fragment = std::move(*frag);
        // First result wins: kill any other in-flight attempt of the unit.
        for (RunningAttempt& other : running) {
          if (other.unit == ra.unit && other.pid != ra.pid &&
              !other.superseded) {
            other.superseded = true;
            ::kill(other.pid, SIGKILL);
          }
        }
      } else {
        e.outcome = "truncated";
        events.push_back(e);
        on_failure(ra, "wrote a truncated result frame");
      }
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }

    if (!error.empty()) {
      if (running.empty()) break;
      util::Backoff::sleep_s(opt.poll_interval_s);
      continue;
    }

    // Launch pending attempts whose backoff delay has elapsed.
    for (std::size_t i = 0; i < pending.size() && running.size() < opt.workers;) {
      if (pending[i].ready_at_s > now || states[pending[i].unit].done) {
        if (states[pending[i].unit].done) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
        continue;
      }
      const unsigned unit_id = pending[i].unit;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      if (!dispatch(unit_id)) {
        if (!any_spawned) {
          // fork is unavailable before anything ran: degrade to the
          // in-process serial path rather than failing the plan.
          api::RunReport report = api::run(plan);
          api::WorkerEvent ev;
          ev.kind = "run";
          ev.outcome = "degraded";
          report.worker_events = std::move(events);
          report.worker_events.push_back(ev);
          for (const std::string& path : cleanup) ::unlink(path.c_str());
          return report;
        }
        RunningAttempt ra;
        ra.unit = unit_id;
        ra.attempt = states[unit_id].next_attempt - 1;
        on_failure(ra, "could not be spawned");
      }
    }

    // Speculative re-execution: queue drained, slots free, and a running
    // attempt has outlived the straggler threshold — re-issue its unit
    // once; whichever attempt finishes first wins.
    if (opt.speculate && pending.empty() && !running.empty() &&
        running.size() < opt.workers && error.empty()) {
      std::vector<double> walls;
      for (const api::WorkerEvent& ev : events) {
        if (ev.outcome == "ok") walls.push_back(ev.wall_s);
      }
      double threshold = opt.straggler_min_s;
      if (!walls.empty()) {
        std::sort(walls.begin(), walls.end());
        threshold = std::max(threshold, 2 * walls[walls.size() / 2]);
      }
      RunningAttempt* straggler = nullptr;
      for (RunningAttempt& ra : running) {
        const UnitState& st = states[ra.unit];
        if (st.done || st.speculated || ra.timed_out || ra.superseded) {
          continue;
        }
        if (now - ra.start_s < threshold) continue;
        if (straggler == nullptr || ra.start_s < straggler->start_s) {
          straggler = &ra;
        }
      }
      if (straggler != nullptr) {
        states[straggler->unit].speculated = true;
        dispatch(straggler->unit);
      }
    }

    // Always yield a poll interval: also covers the drained-but-backing-
    // off state (nothing running, every pending attempt waiting out its
    // delay), which must not busy-spin.
    if (!running.empty() || !pending.empty()) {
      util::Backoff::sleep_s(opt.poll_interval_s);
    }
  }

  api::RunReport report;
  if (error.empty()) {
    report = merge_fragments(plan, units, states);
  } else {
    report.plan = plan;
    report.pass = false;
    report.error = error;
    report.metadata = util::run_metadata(plan.options.batch_size);
  }
  report.worker_events = std::move(events);
  report.total_wall_s = total_wall.seconds();
  report.total_cpu_s = total_cpu.seconds();
  report.peak_rss_bytes = util::peak_rss_bytes();
  for (const std::string& path : cleanup) ::unlink(path.c_str());
  return report;
}

Value comparable(const Value& report_json) {
  const auto strip_timing = [](const Value& arr,
                               std::initializer_list<const char*> drop) {
    Value out = Value::array();
    for (const Value& item : arr.items()) {
      Value copy = Value::object();
      for (const auto& [key, value] : item.members()) {
        bool dropped = false;
        for (const char* d : drop) dropped = dropped || key == d;
        if (!dropped) copy.set(key, value);
      }
      out.push_back(std::move(copy));
    }
    return out;
  };

  Value out = Value::object();
  for (const auto& [key, value] : report_json.members()) {
    if (key == "total_wall_s" || key == "total_cpu_s" ||
        key == "peak_rss_bytes" || key == "queue_wait_s" ||
        key == "metadata" || key == "worker_events") {
      continue;
    }
    if (key == "stages") {
      out.set(key, strip_timing(value, {"wall_s", "cpu_s"}));
    } else if (key == "analyses") {
      out.set(key, strip_timing(value, {"wall_s"}));
    } else if (key == "plan") {
      Value p = Value::object();
      for (const auto& [pkey, pvalue] : value.members()) {
        if (pkey != "options") {
          p.set(pkey, pvalue);
          continue;
        }
        Value o = Value::object();
        for (const auto& [okey, ovalue] : pvalue.members()) {
          if (okey == "workers" || okey == "shard_timeout" ||
              okey == "max_retries" || okey == "fault") {
            continue;
          }
          o.set(okey, ovalue);
        }
        p.set("options", std::move(o));
      }
      out.set(key, std::move(p));
    } else {
      out.set(key, value);
    }
  }
  return out;
}

}  // namespace kronotri::runner
