#include "runner/runner.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <dirent.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/framing.hpp"
#include "net/remote.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"
#include "util/log.hpp"
#include "util/runmeta.hpp"
#include "util/timer.hpp"
#include "validate/report.hpp"

namespace kronotri::runner {

namespace {

namespace journal = util::journal;
using util::json::Value;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One work unit of the decomposed plan: a child plan a worker executes to
/// a RunReport fragment.
struct Unit {
  unsigned id = 0;
  std::string kind;        // "base" | "validate" | "run"
  int analysis_index = -1; // original plan.analyses index (validate units)
  api::RunPlan plan;
};

/// Decomposition: one base unit for everything that is not a validate
/// analysis (it keeps the plan's output/stream duties), plus
/// units_per_validate shard-subset units per validate analysis. Validate
/// is the unit-splittable analysis — its deterministic shard plan is
/// derived identically in every worker, so unit i can take slice i
/// without any coordinator→worker shard negotiation.
std::vector<Unit> decompose(const api::RunPlan& plan,
                            unsigned units_per_validate) {
  std::vector<Unit> units;

  api::RunPlan base = plan;
  base.options.workers = 1;
  base.options.fault.clear();
  base.analyses.clear();
  std::vector<std::size_t> validate_indices;
  for (std::size_t i = 0; i < plan.analyses.size(); ++i) {
    if (plan.analyses[i].name == "validate") {
      validate_indices.push_back(i);
    } else {
      base.analyses.push_back(plan.analyses[i]);
    }
  }

  const bool base_has_work = !base.analyses.empty() ||
                             !base.options.output.empty() ||
                             base.options.stream;
  if (base_has_work || validate_indices.empty()) {
    Unit u;
    u.id = static_cast<unsigned>(units.size());
    u.kind = validate_indices.empty() ? "run" : "base";
    u.plan = base;
    units.push_back(std::move(u));
  }

  for (const std::size_t ai : validate_indices) {
    for (unsigned i = 0; i < units_per_validate; ++i) {
      Unit u;
      u.id = static_cast<unsigned>(units.size());
      u.kind = "validate";
      u.analysis_index = static_cast<int>(ai);
      u.plan = plan;
      u.plan.options.workers = 1;
      u.plan.options.fault.clear();
      u.plan.options.output.clear();
      u.plan.options.stream = false;
      api::AnalysisRequest req = plan.analyses[ai];
      req.params["unit"] = std::to_string(i);
      req.params["units"] = std::to_string(units_per_validate);
      u.plan.analyses = {std::move(req)};
      units.push_back(std::move(u));
    }
  }
  return units;
}

std::string tmp_dir() {
  const char* dir = std::getenv("TMPDIR");
  return (dir != nullptr && *dir != '\0') ? dir : "/tmp";
}

/// A SIGKILLed coordinator used to leak its kronotri.<pid>.* scratch files
/// in $TMPDIR forever (cleanup only ran on the success path). Every
/// execute() starts by sweeping scratch whose owning pid is gone.
void sweep_stale_tmp() {
  const std::string dir = tmp_dir();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> stale;
  while (dirent* ent = ::readdir(d)) {
    const std::string_view name(ent->d_name);
    constexpr std::string_view kPrefix = "kronotri.";
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    const std::size_t dot = name.find('.', kPrefix.size());
    if (dot == std::string_view::npos || dot == kPrefix.size()) continue;
    const std::string pid_str(name.substr(kPrefix.size(),
                                          dot - kPrefix.size()));
    char* end = nullptr;
    const long pid = std::strtol(pid_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || pid <= 0) continue;
    if (pid == static_cast<long>(::getpid())) continue;
    errno = 0;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    stale.push_back(dir + "/" + std::string(name));
  }
  ::closedir(d);
  for (const std::string& path : stale) ::unlink(path.c_str());
}

constexpr const char* kJournalFile = "run.journal";

std::string frag_path(const std::string& dir, unsigned unit) {
  return dir + "/unit" + std::to_string(unit) + ".frag";
}

/// Deletes a journal directory's contents: always the tmp.* scratch, and
/// (unless scratch_only) the journal and fragment files too — the fresh
/// `--journal` start must not resurrect an older run's records, while a
/// resume clears only scratch.
void clear_journal_dir(const std::string& dir, bool scratch_only) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* ent = ::readdir(d)) {
    const std::string_view name(ent->d_name);
    const bool scratch = name.substr(0, 4) == "tmp.";
    const bool durable =
        name == kJournalFile ||
        (name.substr(0, 4) == "unit" && name.size() > 5 &&
         name.substr(name.size() - 5) == ".frag");
    if (scratch || (!scratch_only && durable)) {
      doomed.push_back(dir + "/" + std::string(name));
    }
  }
  ::closedir(d);
  for (const std::string& path : doomed) ::unlink(path.c_str());
}

pid_t spawn_worker(const std::string& exe,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec immediately — no OpenMP, no allocation-heavy work
    // between fork and exec (the parent may hold libgomp/locale state a
    // forked child must not touch).
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  return pid;
}

struct Fragment {
  Value json;
  std::string payload;  ///< exact bytes the journal digest covers
};

/// A complete fragment is exactly ONE clean CRC64 frame with nothing after
/// it. A trailing newline used to stand in for "the worker finished its
/// write" — a checksum is the honest version of that claim: a torn frame,
/// trailing garbage, a flipped byte or a parse failure all classify as
/// "truncated"/"corrupt", never as a result.
std::optional<Fragment> read_fragment(const std::string& path) {
  const std::optional<std::string> bytes = journal::read_file(path);
  if (!bytes) return std::nullopt;
  journal::Decoded dec = journal::decode_frames(*bytes);
  if (dec.tail != journal::Decoded::Tail::kClean || dec.frames.size() != 1 ||
      dec.valid_bytes != bytes->size()) {
    return std::nullopt;
  }
  try {
    Fragment f;
    f.json = Value::parse(dec.frames[0]);
    f.payload = std::move(dec.frames[0]);
    return f;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Per-unit facts recovered from a journal.
struct UnitRecord {
  bool done = false;         ///< a done record exists (last one wins)
  unsigned attempt = 0;      ///< attempt the winning done record credits
  std::uint64_t digest = 0;  ///< crc64 of the fragment frame payload
  std::uint64_t canon = 0;   ///< hash64 of the fragment's canonical JSON
  std::uint64_t vfp = 0;     ///< ValidationReport::fingerprint (validate)
  bool has_vfp = false;
  unsigned max_attempt = 0;  ///< highest attempt ever dispatched
  bool any_attempt = false;
};

struct JournalState {
  std::string error;  ///< non-empty → structured resume failure
  unsigned units_per_validate = 0;
  std::vector<UnitRecord> units;
  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Decodes DIR/run.journal for a resume. A truncated/corrupt tail is the
/// EXPECTED post-crash state: the file is cut back to its valid prefix
/// (so our own appends decode later) and the prefix is trusted. Anything
/// structurally wrong INSIDE verified frames — no plan record, an identity
/// mismatch, an out-of-range unit — is a refusal, not a guess.
JournalState load_journal(const std::string& dir, std::uint64_t identity) {
  JournalState js;
  const std::string path = dir + "/" + std::string(kJournalFile);
  const std::optional<std::string> bytes = journal::read_file(path);
  if (!bytes) {
    js.error = "resume: cannot read journal " + path;
    return js;
  }
  const journal::Decoded dec = journal::decode_frames(*bytes);
  if (dec.tail != journal::Decoded::Tail::kClean &&
      ::truncate(path.c_str(), static_cast<off_t>(dec.valid_bytes)) != 0) {
    js.error = "resume: cannot drop the torn tail of " + path;
    return js;
  }
  if (dec.frames.empty()) {
    js.error = "resume: journal " + path + " holds no verifiable record";
    return js;
  }

  std::vector<Value> records;
  records.reserve(dec.frames.size());
  for (std::size_t i = 0; i < dec.frames.size(); ++i) {
    try {
      records.push_back(Value::parse(dec.frames[i]));
    } catch (const std::exception&) {
      js.error = "resume: journal record " + std::to_string(i) +
                 " verified its CRC but is not JSON — not a kronotri journal";
      return js;
    }
  }

  const Value& head = records.front();
  if (head.get_string("type", "") != "plan") {
    js.error = "resume: journal " + path + " does not start with a plan record";
    return js;
  }
  const std::uint64_t recorded = head.get_uint("identity", 0);
  if (recorded != identity) {
    js.error = "resume: journal was written for a different plan (identity " +
               std::to_string(recorded) + ", this plan is " +
               std::to_string(identity) + ")";
    return js;
  }
  const std::uint64_t unit_count = head.get_uint("units", 0);
  js.units_per_validate =
      static_cast<unsigned>(head.get_uint("units_per_validate", 0));
  if (unit_count == 0 || unit_count > 1u << 20 ||
      js.units_per_validate == 0) {
    js.error = "resume: journal plan record is malformed";
    return js;
  }
  js.units.resize(unit_count);

  for (std::size_t i = 1; i < records.size(); ++i) {
    const Value& rec = records[i];
    const std::string type = rec.get_string("type", "");
    const std::uint64_t u = rec.get_uint("unit", unit_count);
    if (u >= unit_count) {
      js.error = "resume: journal record " + std::to_string(i) +
                 " names unit " + std::to_string(u) + " of " +
                 std::to_string(unit_count);
      return js;
    }
    UnitRecord& ur = js.units[u];
    const unsigned attempt = static_cast<unsigned>(rec.get_uint("attempt", 0));
    ur.max_attempt = std::max(ur.max_attempt, attempt);
    ur.any_attempt = true;
    if (type == "done") {
      // Duplicate done records for a unit are idempotent: the last one
      // wins, exactly as the last finished attempt's fragment is the one
      // sitting in unit<u>.frag.
      ur.done = true;
      ur.attempt = attempt;
      ur.digest = rec.get_uint("digest", 0);
      ur.canon = rec.get_uint("canon", 0);
      ur.has_vfp = rec.find("vfp") != nullptr;
      ur.vfp = rec.get_uint("vfp", 0);
    }
    // "dispatch" and "failure" records only contribute attempt tracking.
  }
  return js;
}

struct RunningAttempt {
  unsigned unit = 0;
  unsigned attempt = 0;
  pid_t pid = -1;
  int agent = -1;           // index into the remote-agent table; -1 = local
  double start_s = 0;
  double start_us = 0;      // obs::now_us() at spawn, for the attempt span
  std::string out_path;
  std::string trace_path;   // worker trace scratch ("" when tracing is off)
  bool timed_out = false;   // we SIGKILLed it past its deadline
  bool superseded = false;  // another attempt of the unit already won
  bool aborted = false;     // run is failing, everything was killed
};

/// Coordinator-side state of one --agents endpoint. The connection is a
/// cattle resource: dropped and re-dialed (with backoff) whenever the
/// transport reports damage, while the unit bookkeeping stays in the
/// same pending/running structures the local workers use.
struct RemoteAgent {
  std::string endpoint;
  net::AgentClient client;
  unsigned slots = 0;       // advertised by the welcome; 0 until then
  bool welcomed = false;
  double last_rx_s = 0;     // heartbeat/any-message arrival time
  double next_dial_s = 0;   // reconnect backoff deadline
  unsigned dial_failures = 0;
};

/// Trace track for one (unit, attempt) pair. Concurrent attempts all live
/// on the coordinator's event-loop thread, so their spans would interleave
/// on its track and break per-tid nesting; a synthetic tid per attempt
/// keeps every track well-nested.
std::uint32_t attempt_tid(unsigned unit, unsigned attempt) {
  return 10000 + unit * 100 + attempt % 100;
}

struct UnitState {
  unsigned next_attempt = 0;
  unsigned failures = 0;
  bool done = false;
  bool speculated = false;
  Value fragment;
};

/// Merges per-unit validate fragments back into the analysis list in the
/// original plan order; non-validate analyses come from the base fragment
/// verbatim.
api::RunReport merge_fragments(const api::RunPlan& plan,
                               const std::vector<Unit>& units,
                               const std::vector<UnitState>& states) {
  // Skeleton: the base fragment when one exists, else any validate
  // fragment (every top-level field outside `analyses` is identical
  // across fragments of the same plan, timings aside).
  const Value* skeleton = nullptr;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].kind != "validate") skeleton = &states[i].fragment;
  }
  if (skeleton == nullptr) skeleton = &states[0].fragment;
  api::RunReport report = api::RunReport::from_json(*skeleton);
  std::vector<api::AnalysisReport> base_analyses = std::move(report.analyses);

  report.plan = plan;
  report.analyses.clear();
  std::size_t base_next = 0;
  for (std::size_t ai = 0; ai < plan.analyses.size(); ++ai) {
    if (plan.analyses[ai].name != "validate") {
      report.analyses.push_back(std::move(base_analyses.at(base_next++)));
      continue;
    }
    validate::ValidationReport merged;
    bool first = true;
    double wall_s = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (units[i].analysis_index != static_cast<int>(ai)) continue;
      const api::RunReport frag = api::RunReport::from_json(states[i].fragment);
      const api::AnalysisReport& ar = frag.analyses.at(0);
      wall_s += ar.wall_s;
      validate::ValidationReport vr =
          validate::ValidationReport::from_json(ar.data);
      if (first) {
        merged = std::move(vr);
        first = false;
      } else {
        merged.merge(vr);
      }
    }
    merged.finalize_merged();
    api::AnalysisReport ar;
    ar.name = "validate";
    ar.pass = merged.pass();
    ar.wall_s = wall_s;
    std::ostringstream os;
    merged.print(os);
    ar.text = os.str();
    ar.data = merged.to_json();
    report.analyses.push_back(std::move(ar));
  }

  report.pass = true;
  for (const api::AnalysisReport& ar : report.analyses) {
    report.pass = report.pass && ar.pass;
  }
  return report;
}

}  // namespace

Options options_from(const api::RunPlan& plan) {
  Options opt;
  opt.workers = plan.options.workers;
  opt.shard_timeout_s = plan.options.shard_timeout_s;
  opt.max_retries = plan.options.max_retries;
  opt.fault_spec = plan.options.fault;
  return opt;
}

std::uint64_t plan_identity_hash(const api::RunPlan& plan) {
  // Strip exactly the options comparable() strips: how the plan is
  // distributed (workers, timeouts, retries, faults) may change across a
  // resume; everything content-bearing (spec, analyses, threads/partition
  // count, budgets, output) is pinned.
  const Value v = plan.to_json();
  Value out = Value::object();
  for (const auto& [key, value] : v.members()) {
    if (key != "options") {
      out.set(key, value);
      continue;
    }
    Value o = Value::object();
    for (const auto& [okey, ovalue] : value.members()) {
      if (okey == "workers" || okey == "shard_timeout" ||
          okey == "max_retries" || okey == "fault") {
        continue;
      }
      o.set(okey, ovalue);
    }
    out.set("options", std::move(o));
  }
  return util::json::hash64(out.dump_canonical_string());
}

std::string default_worker_exe() {
  if (const char* env = std::getenv("KRONOTRI_BIN");
      env != nullptr && *env != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    const std::string self(buf);
    const std::size_t slash = self.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : self.substr(0, slash);
    if (self.substr(slash + 1) == "kronotri") return self;
    // Test and bench binaries live in the build tree next to (or one
    // level below) the CLI binary.
    for (const std::string& cand : {dir + "/kronotri", dir + "/../kronotri"}) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  if (::access("./kronotri", X_OK) == 0) return "./kronotri";
  return "";
}

api::RunReport execute(const api::RunPlan& plan) {
  return execute(plan, options_from(plan));
}

api::RunReport execute(const api::RunPlan& plan, Options opt) {
  const bool journaled = !opt.journal_dir.empty();
  if (opt.resume && !journaled) {
    throw std::invalid_argument("runner: resume requires a journal_dir");
  }
  // A journaled run goes through the worker machinery even at one worker —
  // durability needs the fragment/WAL protocol, not the in-process path.
  // Remote agents always do: their slots only exist in the dispatch loop.
  if (opt.workers <= 1 && !journaled && opt.agents.empty()) {
    return api::run(plan);
  }
  if (opt.agents.empty()) {
    opt.workers = std::max(1u, opt.workers);
  }

  if (opt.fault_spec.empty()) {
    if (const char* env = std::getenv("KRONOTRI_FAULT");
        env != nullptr && *env != '\0') {
      opt.fault_spec = env;
    }
  }
  // Validate the spec in the coordinator: a typo should fail the run with
  // an actionable message, not silently inject nothing in every worker.
  // The coordinator keeps the injector for its own torn_write actions.
  const util::fault::Injector inject(opt.fault_spec);

  std::string exe =
      opt.worker_exe.empty() ? default_worker_exe() : opt.worker_exe;
  if (exe.empty() || ::access(exe.c_str(), X_OK) != 0) {
    if (opt.agents.empty()) {
      // Graceful degradation: no worker binary → in-process serial run,
      // recorded as such instead of silently pretending to be parallel.
      api::RunReport report = api::run(plan);
      api::WorkerEvent e;
      e.kind = "run";
      e.outcome = "degraded";
      report.worker_events.push_back(e);
      return report;
    }
    // Agents execute remotely with their own binaries; just never spawn
    // a local worker from the missing one.
    opt.workers = 0;
  }

  sweep_stale_tmp();

  const util::WallTimer total_wall;
  const util::CpuTimer total_cpu;
  const Value counters_start = obs::CounterRegistry::instance().snapshot();
  obs::Span coord_span("runner::execute");
  coord_span.arg("workers", opt.workers);
  util::log::info("runner", "coordinator start",
                  {{"workers", opt.workers},
                   {"journaled", journaled ? "yes" : "no"},
                   {"resume", opt.resume ? "yes" : "no"}});
  const auto fail_report = [&](const std::string& why) {
    api::RunReport r;
    r.plan = plan;
    r.pass = false;
    r.error = why;
    r.metadata = util::run_metadata(plan.options.batch_size);
    r.total_wall_s = total_wall.seconds();
    r.total_cpu_s = total_cpu.seconds();
    r.peak_rss_bytes = util::peak_rss_bytes();
    return r;
  };

  const std::uint64_t identity = journaled ? plan_identity_hash(plan) : 0;
  // Decomposition width must be decided before any agent connects (the
  // journal pins it), so remote slots are assumed ~2 per agent; the
  // actual advertised count only shapes scheduling, never the merge.
  const unsigned assumed_width =
      opt.workers + 2 * static_cast<unsigned>(opt.agents.size());
  unsigned units_per_validate =
      std::max(1u, assumed_width) * std::max(1u, opt.units_per_worker);
  JournalState js;
  if (opt.resume) {
    js = load_journal(opt.journal_dir, identity);
    if (!js.ok()) return fail_report(js.error);
    // The journal's decomposition shape wins: resuming with a different
    // --workers must not re-slice the validate units out from under the
    // fragments already on disk.
    units_per_validate = js.units_per_validate;
  }

  const std::vector<Unit> units = decompose(plan, units_per_validate);
  if (opt.resume && js.units.size() != units.size()) {
    return fail_report(
        "resume: journal records " + std::to_string(js.units.size()) +
        " units but this plan decomposes into " +
        std::to_string(units.size()));
  }
  std::vector<UnitState> states(units.size());
  std::vector<api::WorkerEvent> events;
  std::vector<std::string> cleanup;

  journal::Journal wal;
  if (journaled) {
    journal::ensure_dir(opt.journal_dir);
    clear_journal_dir(opt.journal_dir, /*scratch_only=*/opt.resume);
    wal.open(opt.journal_dir + "/" + std::string(kJournalFile));
    if (!opt.resume) {
      Value rec = Value::object();
      rec.set("type", "plan");
      rec.set("identity", identity);
      rec.set("units", units.size());
      rec.set("units_per_validate", units_per_validate);
      wal.append(rec.dump_string(0));
    }
  }

  // Resume: reload every unit whose journaled digest AND fragment bytes
  // agree; anything less re-executes. A resumed unit costs one "resumed"
  // event, a damaged one a "corrupt" event plus a fresh attempt.
  if (opt.resume) {
    for (std::size_t i = 0; i < units.size(); ++i) {
      const UnitRecord& ur = js.units[i];
      UnitState& st = states[i];
      st.next_attempt = ur.any_attempt ? ur.max_attempt + 1 : 0;
      if (!ur.done) continue;
      api::WorkerEvent e;
      e.unit = static_cast<unsigned>(i);
      e.kind = units[i].kind;
      e.attempt = ur.attempt;
      bool verified = false;
      try {
        std::optional<Fragment> frag =
            read_fragment(frag_path(opt.journal_dir, e.unit));
        if (frag && journal::crc64(frag->payload) == ur.digest &&
            util::json::hash64(frag->json.dump_canonical_string()) ==
                ur.canon) {
          bool semantic_ok = true;
          if (ur.has_vfp && units[i].kind == "validate") {
            const api::RunReport fr = api::RunReport::from_json(frag->json);
            semantic_ok =
                validate::ValidationReport::from_json(
                    fr.analyses.at(0).data)
                    .fingerprint() == ur.vfp;
          }
          if (semantic_ok) {
            st.done = true;
            st.fragment = std::move(frag->json);
            verified = true;
          }
        }
      } catch (const std::exception&) {
        verified = false;  // a fragment that throws anywhere is not a result
      }
      e.outcome = verified ? "resumed" : "corrupt";
      obs::counter(verified ? "runner.units_resumed"
                            : "runner.fragments_corrupt")
          .add();
      if (obs::TraceRecorder::instance().enabled()) {
        Value targs = Value::object();
        targs.set("unit", e.unit);
        targs.set("outcome", e.outcome);
        obs::TraceRecorder::instance().instant("journal:resume",
                                               std::move(targs));
      }
      if (!verified) {
        util::log::warn("runner", "journal fragment failed verification",
                        {{"unit", e.unit}});
      }
      events.push_back(e);
    }
  }

  // Scratch lives inside the journal directory when journaling (a killed
  // coordinator then leaks nothing into $TMPDIR), in $TMPDIR otherwise.
  const std::string prefix =
      journaled
          ? opt.journal_dir + "/tmp." + std::to_string(::getpid()) + "."
          : tmp_dir() + "/kronotri." + std::to_string(::getpid()) + ".";
  std::vector<std::string> plan_files(units.size());
  std::vector<std::string> plan_texts(units.size());  // remote dispatch body
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (states[i].done) continue;  // resumed units never touch a worker
    plan_texts[i] = units[i].plan.to_json().dump_string(0);
    plan_files[i] = prefix + "plan" + std::to_string(units[i].id) + ".json";
    std::ofstream out(plan_files[i], std::ios::trunc);
    out << plan_texts[i] << "\n";
    if (!out) {
      throw std::runtime_error("runner: cannot write " + plan_files[i]);
    }
    cleanup.push_back(plan_files[i]);
  }

  struct Pending {
    unsigned unit;
    double ready_at_s;
  };
  std::deque<Pending> pending;
  for (const Unit& u : units) {
    if (!states[u.id].done) pending.push_back({u.id, 0.0});
  }
  std::vector<RunningAttempt> running;
  std::string error;
  bool any_spawned = false;

  // Remote agents: one client per --agents endpoint, each advertised slot
  // a dispatch target. Slot occupancy is derived from `running` (one
  // source of truth), not counted separately.
  std::vector<RemoteAgent> remotes;
  {
    net::AgentClientOptions aco;
    aco.connect_timeout_s = opt.agent_connect_timeout_s;
    for (const std::string& ep : opt.agents) {
      RemoteAgent r;
      r.endpoint = ep;
      r.client = net::AgentClient(aco);
      remotes.push_back(std::move(r));
    }
  }
  const auto local_count = [&]() -> unsigned {
    unsigned n = 0;
    for (const RunningAttempt& ra : running) n += ra.agent < 0 ? 1 : 0;
    return n;
  };
  const auto agent_busy = [&](int ai) -> unsigned {
    unsigned n = 0;
    for (const RunningAttempt& ra : running) n += ra.agent == ai ? 1 : 0;
    return n;
  };
  const auto agent_free = [&](const RemoteAgent& r, int ai) -> bool {
    return r.welcomed && r.client.connected() &&
           agent_busy(ai) < r.slots;
  };
  const auto free_capacity = [&]() -> bool {
    if (local_count() < opt.workers) return true;
    for (std::size_t ai = 0; ai < remotes.size(); ++ai) {
      if (agent_free(remotes[ai], static_cast<int>(ai))) return true;
    }
    return false;
  };
  // Remote slots fill before local ones (they are the scale-out), agents
  // rotating round-robin so one fast welcome does not monopolize units.
  std::size_t agent_rotation = 0;
  const auto pick_agent = [&]() -> int {
    for (std::size_t k = 0; k < remotes.size(); ++k) {
      const std::size_t ai = (agent_rotation + k) % remotes.size();
      if (agent_free(remotes[ai], static_cast<int>(ai))) {
        agent_rotation = (ai + 1) % remotes.size();
        return static_cast<int>(ai);
      }
    }
    return -1;
  };
  const auto send_cancel = [&](const RunningAttempt& ra) {
    if (ra.agent < 0 || !remotes[ra.agent].client.connected()) return;
    Value c = Value::object();
    c.set("type", "cancel");
    c.set("unit", ra.unit);
    c.set("attempt", ra.attempt);
    (void)remotes[ra.agent].client.send(c);
  };

  const auto dispatch = [&](unsigned unit_id) -> bool {
    UnitState& st = states[unit_id];
    RunningAttempt ra;
    ra.unit = unit_id;
    ra.attempt = st.next_attempt++;
    ra.agent = remotes.empty() ? -1 : pick_agent();
    ra.out_path = prefix + "u" + std::to_string(unit_id) + ".a" +
                  std::to_string(ra.attempt) + ".frame";
    cleanup.push_back(ra.out_path);
    // WAL the dispatch BEFORE the spawn: after a crash the journal then
    // names every attempt that may ever have existed, so a resume picks
    // attempt numbers no orphaned worker could still be writing under.
    if (wal.is_open()) {
      Value rec = Value::object();
      rec.set("type", "dispatch");
      rec.set("unit", unit_id);
      rec.set("attempt", ra.attempt);
      wal.append(rec.dump_string(0));
    }
    if (ra.agent >= 0) {
      RemoteAgent& r = remotes[ra.agent];
      Value d = Value::object();
      d.set("type", "dispatch");
      d.set("unit", unit_id);
      d.set("attempt", ra.attempt);
      d.set("plan", plan_texts[unit_id]);
      if (!opt.fault_spec.empty()) d.set("fault", opt.fault_spec);
      if (opt.worker_mem_limit_bytes > 0) {
        d.set("mem_limit", opt.worker_mem_limit_bytes);
      }
      if (obs::TraceRecorder::instance().enabled()) d.set("trace", true);
      ra.start_s = monotonic_s();
      ra.start_us = obs::now_us();
      if (!r.client.send(d)) {
        // The connection died under the dispatch. Nothing ran, so nothing
        // is charged: the unit goes straight back to pending and the
        // agent into its redial backoff.
        r.welcomed = false;
        r.slots = 0;
        r.next_dial_s =
            monotonic_s() + opt.backoff.delay_s(std::min(r.dial_failures, 6u));
        ++r.dial_failures;
        pending.push_back({unit_id, 0.0});
        return true;
      }
      any_spawned = true;
      obs::counter("runner.remote_dispatches").add();
      if (ra.attempt > 0) obs::counter("runner.retries").add();
      util::log::debug("runner", "dispatched to agent",
                       {{"unit", unit_id},
                        {"attempt", ra.attempt},
                        {"agent", r.endpoint}});
      running.push_back(std::move(ra));
      return true;
    }
    std::vector<std::string> args = {exe,
                                     "__worker",
                                     "--plan-file",
                                     plan_files[unit_id],
                                     "--out",
                                     ra.out_path,
                                     "--unit",
                                     std::to_string(unit_id),
                                     "--attempt",
                                     std::to_string(ra.attempt)};
    if (!opt.fault_spec.empty()) {
      args.push_back("--fault");
      args.push_back(opt.fault_spec);
    }
    if (opt.worker_mem_limit_bytes > 0) {
      args.push_back("--mem-limit");
      args.push_back(std::to_string(opt.worker_mem_limit_bytes));
    }
    obs::TraceRecorder& trace = obs::TraceRecorder::instance();
    if (trace.enabled()) {
      // Trace context rides the hidden __worker argv: the worker records
      // on the shared CLOCK_MONOTONIC axis and dumps its buffer here; the
      // coordinator stitches the file in after the reap.
      ra.trace_path = prefix + "u" + std::to_string(unit_id) + ".a" +
                      std::to_string(ra.attempt) + ".trace";
      cleanup.push_back(ra.trace_path);
      args.push_back("--trace-out");
      args.push_back(ra.trace_path);
    }
    ra.pid = spawn_worker(exe, args);
    ra.start_s = monotonic_s();
    ra.start_us = obs::now_us();
    obs::counter("runner.dispatches").add();
    if (ra.attempt > 0) obs::counter("runner.retries").add();
    util::log::debug("runner", "dispatched worker",
                     {{"unit", unit_id},
                      {"attempt", ra.attempt},
                      {"pid", static_cast<std::int64_t>(ra.pid)}});
    if (ra.pid < 0) {
      api::WorkerEvent e;
      e.unit = unit_id;
      e.kind = units[unit_id].kind;
      e.attempt = ra.attempt;
      e.outcome = "spawn_failed";
      e.detail = errno;
      events.push_back(e);
      return false;
    }
    any_spawned = true;
    running.push_back(std::move(ra));
    return true;
  };

  const auto fail_unit = [&](unsigned unit_id, const std::string& why) {
    error = "unit " + std::to_string(unit_id) + " (" + units[unit_id].kind +
            ") " + why + " after " +
            std::to_string(states[unit_id].failures) + " attempt" +
            (states[unit_id].failures == 1 ? "" : "s") +
            " (max_retries=" + std::to_string(opt.max_retries) + ")";
    util::log::error("runner", "unit exhausted its retry budget",
                     {{"unit", unit_id}, {"why", why}});
    pending.clear();
    for (std::size_t i = 0; i < running.size();) {
      RunningAttempt& ra = running[i];
      if (ra.agent < 0) {
        ra.aborted = true;
        if (ra.pid > 0) ::kill(ra.pid, SIGKILL);
        ++i;
        continue;
      }
      // Remote attempts have no child to reap: cancel best-effort and
      // record the abort now so the drain loop only waits on local pids.
      send_cancel(ra);
      api::WorkerEvent e;
      e.unit = ra.unit;
      e.kind = units[ra.unit].kind;
      e.attempt = ra.attempt;
      e.outcome = "aborted";
      e.wall_s = monotonic_s() - ra.start_s;
      e.host = remotes[ra.agent].endpoint;
      events.push_back(e);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }
  };

  // Failure of one attempt: count it against the unit's budget and either
  // re-queue with backoff or fail the whole run. The delay is jittered per
  // unit so a mass worker kill does not re-dispatch every unit in
  // lockstep (deterministic — see util::Backoff).
  const auto on_failure = [&](const RunningAttempt& ra,
                              const std::string& why) {
    UnitState& st = states[ra.unit];
    ++st.failures;
    if (wal.is_open()) {
      Value rec = Value::object();
      rec.set("type", "failure");
      rec.set("unit", ra.unit);
      rec.set("attempt", ra.attempt);
      rec.set("why", why);
      wal.append(rec.dump_string(0));
    }
    if (st.failures > opt.max_retries) {
      fail_unit(ra.unit, why);
      return;
    }
    const double delay_s =
        opt.backoff.delay_jittered_s(st.failures - 1, ra.unit);
    if (obs::TraceRecorder::instance().enabled()) {
      Value targs = Value::object();
      targs.set("unit", ra.unit);
      targs.set("attempt", ra.attempt);
      targs.set("why", why);
      targs.set("backoff_s", delay_s);
      obs::TraceRecorder::instance().instant("retry", std::move(targs));
    }
    pending.push_back({ra.unit, monotonic_s() + delay_s});
  };

  // Unit completion from a verified fragment — shared by the local reap
  // and the remote result path. Persists into the journal, then
  // supersedes every other in-flight attempt of the unit (first result
  // wins, exactly as for local children).
  const auto complete_ok = [&](const RunningAttempt& ra, Fragment&& frag) {
    UnitState& st = states[ra.unit];
    st.done = true;
    if (wal.is_open()) {
      // Persist-then-record: the fragment becomes DIR/unit<u>.frag by
      // rename (never copied, never unlinked), THEN the done record
      // lands in the WAL. A crash between the two re-executes the
      // unit — wasteful, never wrong.
      const std::string fpath = frag_path(opt.journal_dir, ra.unit);
      Value rec = Value::object();
      rec.set("type", "done");
      rec.set("unit", ra.unit);
      rec.set("attempt", ra.attempt);
      rec.set("digest", journal::crc64(frag.payload));
      rec.set("canon", util::json::hash64(frag.json.dump_canonical_string()));
      if (units[ra.unit].kind == "validate") {
        const api::RunReport fr = api::RunReport::from_json(frag.json);
        rec.set("vfp",
                validate::ValidationReport::from_json(fr.analyses.at(0).data)
                    .fingerprint());
      }
      if (const util::fault::Action* torn =
              inject.match("torn_write", ra.unit, ra.attempt)) {
        // Injected coordinator crash mid-persist: write half the
        // fragment frame, no fsync, but still journal the done record
        // (the order a real crash between write and rename produces
        // is covered by the plain re-execute path; THIS is the nastier
        // inversion resume must catch by digest).
        (void)torn;
        const std::string frame = journal::encode_frame(frag.payload);
        std::ofstream out(fpath, std::ios::binary | std::ios::trunc);
        out.write(frame.data(),
                  static_cast<std::streamsize>(frame.size() / 2));
      } else {
        journal::fsync_file_and_dir(ra.out_path);
        if (::rename(ra.out_path.c_str(), fpath.c_str()) != 0) {
          throw std::runtime_error("runner: cannot persist fragment " +
                                   fpath);
        }
        journal::fsync_file_and_dir(fpath);
      }
      wal.append(rec.dump_string(0));
    }
    st.fragment = std::move(frag.json);
    // First result wins: kill/cancel any other in-flight attempt.
    for (RunningAttempt& other : running) {
      if (other.unit == ra.unit && !other.superseded &&
          !(other.attempt == ra.attempt && other.agent == ra.agent)) {
        other.superseded = true;
        if (other.agent < 0) {
          if (other.pid > 0) ::kill(other.pid, SIGKILL);
        } else {
          send_cancel(other);
        }
      }
    }
  };

  // Transport damage on one agent: drop the connection, schedule a
  // backed-off redial, and classify every in-flight attempt of the agent.
  // "disconnect"/"garbled" charge the unit's retry budget exactly like a
  // SIGKILLed local child; superseded/done attempts are losses only.
  const auto drop_agent = [&](int ai, const std::string& outcome) {
    RemoteAgent& r = remotes[ai];
    r.client.close();
    r.welcomed = false;
    r.slots = 0;
    r.next_dial_s =
        monotonic_s() + opt.backoff.delay_s(std::min(r.dial_failures, 6u));
    ++r.dial_failures;
    obs::counter(outcome == "garbled" ? "runner.garbled_frames"
                                      : "runner.disconnects")
        .add();
    util::log::warn("runner", "agent connection lost",
                    {{"agent", r.endpoint}, {"outcome", outcome}});
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].agent != ai) {
        ++i;
        continue;
      }
      const RunningAttempt ra = running[i];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      UnitState& st = states[ra.unit];
      const bool charged = !(ra.superseded || ra.aborted || st.done);
      api::WorkerEvent e;
      e.unit = ra.unit;
      e.kind = units[ra.unit].kind;
      e.attempt = ra.attempt;
      e.wall_s = monotonic_s() - ra.start_s;
      e.host = r.endpoint;
      e.outcome = ra.aborted ? "aborted"
                  : charged  ? outcome
                             : "speculative_loss";
      events.push_back(e);
      if (obs::TraceRecorder::instance().enabled()) {
        Value targs = Value::object();
        targs.set("unit", e.unit);
        targs.set("attempt", e.attempt);
        targs.set("outcome", e.outcome);
        targs.set("agent", r.endpoint);
        obs::TraceRecorder::instance().complete_on(
            attempt_tid(e.unit, e.attempt), "attempt", ra.start_us,
            obs::now_us() - ra.start_us, std::move(targs));
      }
      if (charged) {
        on_failure(ra, outcome == "garbled"
                           ? "returned a garbled result frame"
                           : "lost its agent connection");
        // on_failure may have failed the run; fail_unit then already
        // drained every remote attempt (including the rest of ours).
        if (!error.empty()) break;
        i = 0;  // fail-safe: rescan, indices may have shifted
      }
    }
  };

  // One message from an agent connection. Results are matched to their
  // RunningAttempt by (unit, attempt, agent); a miss is a late/duplicate
  // delivery after a reconnect — dropping it is what makes redelivery
  // idempotent.
  const auto handle_remote_msg = [&](int ai, const Value& m) {
    RemoteAgent& r = remotes[ai];
    const std::string type = m.get_string("type", "");
    if (type == "welcome") {
      r.slots = static_cast<unsigned>(m.get_uint("slots", 1));
      r.welcomed = true;
      r.dial_failures = 0;
      util::log::info("runner", "agent connected",
                      {{"agent", r.endpoint}, {"slots", r.slots}});
      return;
    }
    if (type != "result") return;  // heartbeats only refresh last_rx_s
    const unsigned unit = static_cast<unsigned>(m.get_uint("unit", ~0ull));
    const unsigned attempt =
        static_cast<unsigned>(m.get_uint("attempt", ~0ull));
    std::size_t idx = running.size();
    for (std::size_t i = 0; i < running.size(); ++i) {
      if (running[i].agent == ai && running[i].unit == unit &&
          running[i].attempt == attempt) {
        idx = i;
        break;
      }
    }
    if (idx == running.size()) {
      obs::counter("runner.duplicate_results").add();
      util::log::debug("runner", "ignoring late/duplicate result",
                       {{"unit", unit}, {"attempt", attempt}});
      return;
    }
    const RunningAttempt ra = running[idx];
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(idx));
    UnitState& st = states[ra.unit];
    api::WorkerEvent e;
    e.unit = ra.unit;
    e.kind = units[ra.unit].kind;
    e.attempt = ra.attempt;
    e.pid = static_cast<long>(m.get_uint("pid", 0));
    e.wall_s = monotonic_s() - ra.start_s;
    e.host = r.endpoint;
    e.max_rss_bytes = static_cast<std::size_t>(m.get_uint("max_rss_bytes", 0));
    if (const Value* v = m.find("cpu_user_s"); v && v->is_number()) {
      e.cpu_user_s = v->as_double();
    }
    if (const Value* v = m.find("cpu_sys_s"); v && v->is_number()) {
      e.cpu_sys_s = v->as_double();
    }
    const std::string outcome = m.get_string("outcome", "truncated");
    e.detail = static_cast<int>(m.get_uint("detail", 0));
    obs::TraceRecorder& trace = obs::TraceRecorder::instance();
    if (trace.enabled()) {
      // The worker's trace buffer crossed the socket instead of $TMPDIR;
      // the agent endpoint keys the imported pids into their own band.
      if (const Value* t = m.find("trace"); t && t->is_string()) {
        trace.import_text(t->as_string(), r.endpoint);
      }
    }

    if (ra.aborted) {
      e.outcome = "aborted";
      events.push_back(e);
    } else if (ra.superseded || st.done) {
      e.outcome = "speculative_loss";
      events.push_back(e);
    } else if (outcome == "cancelled") {
      if (ra.timed_out) {
        e.outcome = "timeout";
        events.push_back(e);
        on_failure(ra, "timed out");
      } else {
        e.outcome = "speculative_loss";
        events.push_back(e);
      }
    } else if (outcome == "ok") {
      Fragment frag;
      bool parsed = false;
      if (const Value* f = m.find("fragment"); f && f->is_string()) {
        try {
          frag.json = Value::parse(f->as_string());
          frag.payload = f->as_string();
          parsed = true;
        } catch (const std::exception&) {
        }
      }
      if (parsed) {
        e.outcome = "ok";
        events.push_back(e);
        if (wal.is_open()) {
          // complete_ok's persist path renames ra.out_path into the
          // journal — materialize the remote fragment there first, as the
          // same CRC64 frame a local worker would have written.
          const std::string frame = journal::encode_frame(frag.payload);
          std::ofstream out(ra.out_path, std::ios::binary | std::ios::trunc);
          out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
          out.flush();
          if (!out) {
            events.back().outcome = "truncated";
            on_failure(ra, "could not stage the remote fragment");
            return;
          }
        }
        complete_ok(ra, std::move(frag));
      } else {
        e.outcome = "truncated";
        events.push_back(e);
        on_failure(ra, "returned an unparsable fragment");
      }
    } else if (outcome == "signal") {
      e.outcome = "signal";
      events.push_back(e);
      on_failure(ra, "died on signal " + std::to_string(e.detail));
    } else if (outcome == "oom") {
      e.outcome = "oom";
      events.push_back(e);
      on_failure(ra, "exceeded its memory guard (RLIMIT_AS)");
    } else if (outcome == "exit") {
      e.outcome = "exit";
      events.push_back(e);
      on_failure(ra, "exited with code " + std::to_string(e.detail));
    } else if (outcome == "spawn_failed") {
      e.outcome = "spawn_failed";
      events.push_back(e);
      on_failure(ra, "could not be spawned on its agent");
    } else {
      e.outcome = "truncated";
      events.push_back(e);
      on_failure(ra, "wrote a truncated result frame");
    }
    if (trace.enabled()) {
      Value targs = Value::object();
      targs.set("unit", e.unit);
      targs.set("kind", e.kind);
      targs.set("attempt", e.attempt);
      targs.set("outcome", e.outcome);
      targs.set("agent", r.endpoint);
      trace.complete_on(attempt_tid(e.unit, e.attempt), "attempt",
                        ra.start_us, obs::now_us() - ra.start_us,
                        std::move(targs));
    }
    obs::gauge("runner.worker_max_rss_bytes")
        .max_of(static_cast<double>(e.max_rss_bytes));
    if (e.outcome == "ok") {
      util::log::debug("runner", "remote attempt ok",
                       {{"unit", e.unit},
                        {"attempt", e.attempt},
                        {"agent", r.endpoint},
                        {"wall_s", e.wall_s}});
    } else if (e.outcome != "speculative_loss" && e.outcome != "aborted") {
      util::log::warn("runner", "remote attempt failed",
                      {{"unit", e.unit},
                       {"attempt", e.attempt},
                       {"agent", r.endpoint},
                       {"outcome", e.outcome},
                       {"detail", e.detail}});
    }
  };

  while (!running.empty() || (!pending.empty() && error.empty())) {
    const double now = monotonic_s();

    // Agent transport upkeep: (re)dial disconnected agents whose backoff
    // elapsed, pump every live connection, and declare silent ones dead.
    if (error.empty()) {
      for (std::size_t ai = 0; ai < remotes.size(); ++ai) {
        RemoteAgent& r = remotes[ai];
        if (r.client.connected() || pending.empty() ||
            now < r.next_dial_s) {
          continue;
        }
        std::string derr;
        if (r.client.connect(r.endpoint, &derr)) {
          r.last_rx_s = monotonic_s();
          continue;
        }
        r.next_dial_s =
            monotonic_s() + opt.backoff.delay_s(std::min(r.dial_failures, 6u));
        ++r.dial_failures;
        util::log::debug("runner", "agent dial failed",
                         {{"agent", r.endpoint}, {"error", derr}});
      }
      for (std::size_t ai = 0; ai < remotes.size(); ++ai) {
        RemoteAgent& r = remotes[ai];
        if (!r.client.connected()) continue;
        std::vector<Value> msgs;
        const net::AgentClient::Pump ps = r.client.pump(msgs);
        if (!msgs.empty()) r.last_rx_s = monotonic_s();
        for (const Value& m : msgs) {
          handle_remote_msg(static_cast<int>(ai), m);
        }
        if (ps == net::AgentClient::Pump::kCorrupt) {
          // A frame failed its CRC mid-stream. No resync is possible —
          // drop the connection and re-dispatch whatever was in flight.
          drop_agent(static_cast<int>(ai), "garbled");
        } else if (ps == net::AgentClient::Pump::kClosed) {
          drop_agent(static_cast<int>(ai), "disconnect");
        } else if (opt.heartbeat_timeout_s > 0 &&
                   monotonic_s() - r.last_rx_s > opt.heartbeat_timeout_s) {
          drop_agent(static_cast<int>(ai), "disconnect");
        }
      }
      // Pure-remote runs must not spin forever against a dead fleet: once
      // every agent's dial budget mirrors the unit retry budget with no
      // connection and nothing in flight, fail structurally.
      if (error.empty() && opt.workers == 0 && !remotes.empty() &&
          running.empty() && !pending.empty()) {
        bool any_conn = false;
        bool all_exhausted = true;
        for (const RemoteAgent& r : remotes) {
          any_conn = any_conn || r.client.connected();
          all_exhausted = all_exhausted && r.dial_failures > opt.max_retries + 1;
        }
        if (!any_conn && all_exhausted) {
          std::string list;
          for (const std::string& ep : opt.agents) {
            if (!list.empty()) list += ",";
            list += ep;
          }
          error = "no reachable agents (" + list + ")";
          util::log::error("runner", "no reachable agents",
                           {{"agents", list}});
          pending.clear();
        }
      }
    }

    // Deadline enforcement: SIGKILL a local worker past its per-attempt
    // budget (the reap below classifies it "timeout"); a remote attempt
    // is marked and cancelled, classified when the agent acknowledges —
    // or when its connection drops.
    for (RunningAttempt& ra : running) {
      if (opt.shard_timeout_s > 0 && !ra.timed_out && !ra.aborted &&
          now - ra.start_s > opt.shard_timeout_s) {
        ra.timed_out = true;
        if (ra.agent < 0) {
          ::kill(ra.pid, SIGKILL);
        } else {
          send_cancel(ra);
        }
      }
    }

    // Reap (local children only; remote attempts resolve via pump above).
    for (std::size_t i = 0; i < running.size();) {
      RunningAttempt& ra = running[i];
      if (ra.agent >= 0) {
        ++i;
        continue;
      }
      int status = 0;
      rusage ru{};
      // wait4 = waitpid + the child's rusage: per-attempt peak RSS and
      // split user/sys CPU land in the worker event for free.
      const pid_t got = ::wait4(ra.pid, &status, WNOHANG, &ru);
      if (got != ra.pid) {
        ++i;
        continue;
      }
      api::WorkerEvent e;
      e.unit = ra.unit;
      e.kind = units[ra.unit].kind;
      e.attempt = ra.attempt;
      e.pid = ra.pid;
      e.wall_s = monotonic_s() - ra.start_s;
      e.max_rss_bytes =
          static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
      e.cpu_user_s = static_cast<double>(ru.ru_utime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
      e.cpu_sys_s = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
      UnitState& st = states[ra.unit];

      if (ra.aborted) {
        e.outcome = "aborted";
        if (WIFSIGNALED(status)) e.detail = WTERMSIG(status);
        events.push_back(e);
      } else if (ra.superseded || st.done) {
        // The unit was already won by another attempt — whatever this one
        // did (finished, crashed, got killed) is a speculative loss, never
        // a budget-charged failure.
        e.outcome = "speculative_loss";
        events.push_back(e);
      } else if (ra.timed_out) {
        e.outcome = "timeout";
        e.detail = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
        events.push_back(e);
        on_failure(ra, "timed out");
      } else if (WIFSIGNALED(status)) {
        e.outcome = "signal";
        e.detail = WTERMSIG(status);
        events.push_back(e);
        on_failure(ra, "died on signal " + std::to_string(e.detail));
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == kOomExitCode) {
        // The worker's RLIMIT_AS guard (or the oom fault) tripped its
        // std::bad_alloc path — a resource verdict, not a generic "exit".
        e.outcome = "oom";
        e.detail = kOomExitCode;
        events.push_back(e);
        on_failure(ra, "exceeded its memory guard (RLIMIT_AS)");
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        e.outcome = "exit";
        e.detail = WEXITSTATUS(status);
        events.push_back(e);
        on_failure(ra, "exited with code " + std::to_string(e.detail));
      } else if (std::optional<Fragment> frag = read_fragment(ra.out_path)) {
        e.outcome = "ok";
        events.push_back(e);
        complete_ok(ra, std::move(*frag));
      } else {
        e.outcome = "truncated";
        events.push_back(e);
        on_failure(ra, "wrote a truncated result frame");
      }
      obs::TraceRecorder& trace = obs::TraceRecorder::instance();
      if (trace.enabled()) {
        // Stitch the worker's own timeline in first (missing/truncated
        // files from killed workers are tolerated), then close the
        // coordinator-side attempt span on its synthetic track.
        if (!ra.trace_path.empty()) trace.import_file(ra.trace_path);
        Value targs = Value::object();
        targs.set("unit", e.unit);
        targs.set("kind", e.kind);
        targs.set("attempt", e.attempt);
        targs.set("pid", static_cast<std::int64_t>(e.pid));
        targs.set("outcome", e.outcome);
        trace.complete_on(attempt_tid(e.unit, e.attempt), "attempt",
                          ra.start_us, obs::now_us() - ra.start_us,
                          std::move(targs));
        trace.counter("runner.worker_max_rss_bytes",
                      static_cast<double>(e.max_rss_bytes));
        trace.counter("runner.worker_cpu_s", e.cpu_user_s + e.cpu_sys_s);
      }
      obs::gauge("runner.worker_max_rss_bytes")
          .max_of(static_cast<double>(e.max_rss_bytes));
      if (e.outcome == "ok") {
        util::log::debug("runner", "worker attempt ok",
                         {{"unit", e.unit},
                          {"attempt", e.attempt},
                          {"wall_s", e.wall_s}});
      } else if (e.outcome != "speculative_loss" && e.outcome != "aborted") {
        util::log::warn("runner", "worker attempt failed",
                        {{"unit", e.unit},
                         {"attempt", e.attempt},
                         {"outcome", e.outcome},
                         {"detail", e.detail}});
      }
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }

    if (!error.empty()) {
      if (running.empty()) break;
      util::Backoff::sleep_s(opt.poll_interval_s);
      continue;
    }

    // Launch pending attempts whose backoff delay has elapsed, onto
    // whichever slot is free — a welcomed agent's advertised slots fill
    // before local fork/exec slots.
    for (std::size_t i = 0; i < pending.size() && free_capacity();) {
      if (pending[i].ready_at_s > now || states[pending[i].unit].done) {
        if (states[pending[i].unit].done) {
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
        continue;
      }
      const unsigned unit_id = pending[i].unit;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      if (!dispatch(unit_id)) {
        if (!any_spawned) {
          // fork is unavailable before anything ran: degrade to the
          // in-process serial path rather than failing the plan.
          api::RunReport report = api::run(plan);
          api::WorkerEvent ev;
          ev.kind = "run";
          ev.outcome = "degraded";
          report.worker_events = std::move(events);
          report.worker_events.push_back(ev);
          for (const std::string& path : cleanup) ::unlink(path.c_str());
          return report;
        }
        RunningAttempt ra;
        ra.unit = unit_id;
        ra.attempt = states[unit_id].next_attempt - 1;
        on_failure(ra, "could not be spawned");
      }
    }

    // Speculative re-execution: queue drained, slots free, and a running
    // attempt has outlived the straggler threshold — re-issue its unit
    // once; whichever attempt finishes first wins.
    if (opt.speculate && pending.empty() && !running.empty() &&
        free_capacity() && error.empty()) {
      std::vector<double> walls;
      for (const api::WorkerEvent& ev : events) {
        if (ev.outcome == "ok") walls.push_back(ev.wall_s);
      }
      double threshold = opt.straggler_min_s;
      if (!walls.empty()) {
        std::sort(walls.begin(), walls.end());
        threshold = std::max(threshold, 2 * walls[walls.size() / 2]);
      }
      RunningAttempt* straggler = nullptr;
      for (RunningAttempt& ra : running) {
        const UnitState& st = states[ra.unit];
        if (st.done || st.speculated || ra.timed_out || ra.superseded) {
          continue;
        }
        if (now - ra.start_s < threshold) continue;
        if (straggler == nullptr || ra.start_s < straggler->start_s) {
          straggler = &ra;
        }
      }
      if (straggler != nullptr) {
        states[straggler->unit].speculated = true;
        obs::counter("runner.speculations").add();
        if (obs::TraceRecorder::instance().enabled()) {
          Value targs = Value::object();
          targs.set("unit", straggler->unit);
          targs.set("running_s", now - straggler->start_s);
          obs::TraceRecorder::instance().instant("speculate",
                                                 std::move(targs));
        }
        util::log::info("runner", "speculative re-execution",
                        {{"unit", straggler->unit}});
        dispatch(straggler->unit);
      }
    }

    // Always yield a poll interval: also covers the drained-but-backing-
    // off state (nothing running, every pending attempt waiting out its
    // delay), which must not busy-spin.
    if (!running.empty() || !pending.empty()) {
      util::Backoff::sleep_s(opt.poll_interval_s);
    }
  }

  api::RunReport report;
  if (error.empty()) {
    obs::Span merge_span("runner::merge");
    report = merge_fragments(plan, units, states);
  } else {
    report.plan = plan;
    report.pass = false;
    report.error = error;
    report.metadata = util::run_metadata(plan.options.batch_size);
  }
  report.worker_events = std::move(events);
  report.total_wall_s = total_wall.seconds();
  report.total_cpu_s = total_cpu.seconds();
  report.peak_rss_bytes = util::peak_rss_bytes();
  // The report's counters are the coordinator's own delta plus every
  // finished worker fragment's delta (the workers did the validate shards;
  // their counts must not vanish with the scratch files). Counters sum;
  // gauges (doubles) keep the max.
  Value agg = obs::CounterRegistry::delta(
      counters_start, obs::CounterRegistry::instance().snapshot());
  for (const UnitState& st : states) {
    const Value* frag_counters = st.fragment.find("counters");
    if (frag_counters == nullptr || !frag_counters->is_object()) continue;
    for (const auto& [key, value] : frag_counters->members()) {
      if (value.kind() == Value::Kind::kUInt) {
        std::uint64_t base = 0;
        if (const Value* cur = agg.find(key);
            cur != nullptr && cur->kind() == Value::Kind::kUInt) {
          base = cur->as_uint();
        }
        agg.set(key, base + value.as_uint());
      } else if (value.is_number()) {
        double base = 0;
        if (const Value* cur = agg.find(key);
            cur != nullptr && cur->is_number()) {
          base = cur->as_double();
        }
        agg.set(key, std::max(base, value.as_double()));
      }
    }
  }
  report.counters = std::move(agg);
  // Stamp the resolved execution topology (the --workers auto value and
  // the agent fleet) into the run's metadata. comparable() strips
  // metadata, so this never perturbs bit-identity checks.
  if (report.metadata.is_object()) {
    report.metadata.set("runner_workers", static_cast<std::uint64_t>(opt.workers));
    if (!opt.agents.empty()) {
      Value alist = Value::array();
      for (const std::string& ep : opt.agents) alist.push_back(ep);
      report.metadata.set("runner_agents", std::move(alist));
    }
  }
  util::log::info("runner", "coordinator done",
                  {{"pass", report.pass ? "yes" : "no"},
                   {"attempts", report.worker_events.size()},
                   {"wall_s", report.total_wall_s}});
  for (const std::string& path : cleanup) ::unlink(path.c_str());
  return report;
}

Value comparable(const Value& report_json) {
  const auto strip_timing = [](const Value& arr,
                               std::initializer_list<const char*> drop) {
    Value out = Value::array();
    for (const Value& item : arr.items()) {
      Value copy = Value::object();
      for (const auto& [key, value] : item.members()) {
        bool dropped = false;
        for (const char* d : drop) dropped = dropped || key == d;
        if (!dropped) copy.set(key, value);
      }
      out.push_back(std::move(copy));
    }
    return out;
  };

  Value out = Value::object();
  for (const auto& [key, value] : report_json.members()) {
    if (key == "total_wall_s" || key == "total_cpu_s" ||
        key == "peak_rss_bytes" || key == "queue_wait_s" ||
        key == "metadata" || key == "worker_events" || key == "counters") {
      continue;
    }
    if (key == "stages") {
      out.set(key, strip_timing(value, {"wall_s", "cpu_s"}));
    } else if (key == "analyses") {
      out.set(key, strip_timing(value, {"wall_s"}));
    } else if (key == "plan") {
      Value p = Value::object();
      for (const auto& [pkey, pvalue] : value.members()) {
        if (pkey != "options") {
          p.set(pkey, pvalue);
          continue;
        }
        Value o = Value::object();
        for (const auto& [okey, ovalue] : pvalue.members()) {
          if (okey == "workers" || okey == "shard_timeout" ||
              okey == "max_retries" || okey == "fault") {
            continue;
          }
          o.set(okey, ovalue);
        }
        p.set("options", std::move(o));
      }
      out.set(key, std::move(p));
    } else {
      out.set(key, value);
    }
  }
  return out;
}

}  // namespace kronotri::runner
