// Fault-tolerant multi-process RunPlan execution.
//
// The paper's trillion-edge regime assumes a fleet where individual
// workers stall or die; this module is the single-machine half of that
// story (and the ROADMAP's stated on-ramp to a remote transport): a
// RunPlan is decomposed into per-shard child plans — one "base" unit for
// everything that is not a validate analysis, plus U shard-subset
// validate units riding the deterministic `validate::` shard plan — and
// executed by fork/exec'd worker processes (`kronotri __worker`), each
// writing its RunReport fragment to a private tmp file. The coordinator
// merges fragments into one report BIT-IDENTICAL (modulo timings,
// metadata and the worker_events trail) to the single-process run:
// shard ownership makes fragment counters disjoint, so the merge is a
// pure fold.
//
// Robustness core:
//   * retry with exponential backoff (util::Backoff) under a bounded
//     attempt budget; exhausting it fails the run with a structured
//     error report, never a hang;
//   * per-attempt wall-clock timeouts: a worker past its deadline is
//     SIGKILLed and its unit re-dispatched;
//   * speculative re-execution of stragglers — when the queue is drained
//     and a slot is free, the slowest running unit is re-issued and the
//     first result wins (safe: units are deterministic);
//   * crash-safe accounting via waitpid status — signal vs nonzero-exit
//     vs timeout vs truncated frame vs oom (the RLIMIT_AS guard) are
//     distinguished in the report's worker_events array;
//   * graceful degradation to in-process execution when the worker
//     binary cannot be found/spawned or workers <= 1.
//
// Durability (--journal DIR / --resume): the coordinator write-ahead-logs
// every unit transition (dispatch, done, failure) as CRC64 frames in
// DIR/run.journal and persists each verified fragment as a checksummed
// frame file DIR/unit<u>.frag (rename-into-journal, fsynced). A resume
// verifies the journaled plan identity hash, reloads only fragments whose
// CRC and journaled digest both verify — corrupt or truncated ones are
// re-executed, never trusted — and re-dispatches the rest through the
// same retry/backoff/speculation machinery; the merged report is
// bit-identical (per comparable()) to an uninterrupted run.
//
// fork+exec (not bare fork) on purpose: the parent has usually run OpenMP
// regions (tests, benches, a long-lived service), and libgomp's internal
// state does not survive fork into a child that starts its own parallel
// regions. A fresh exec sidesteps the whole class of deadlocks.
#pragma once

#include <string>
#include <vector>

#include "api/plan.hpp"
#include "util/backoff.hpp"
#include "util/json.hpp"

namespace kronotri::runner {

struct Options {
  unsigned workers = 1;       ///< concurrent LOCAL worker processes
  double shard_timeout_s = 0; ///< per-attempt wall clock (0 = none)
  unsigned max_retries = 2;   ///< re-dispatches per unit beyond attempt 0
  /// Validate units per worker slot: U = workers * units_per_worker
  /// shard-subset units per validate analysis, so the schedule has slack
  /// for stragglers without a unit being too small to measure.
  unsigned units_per_worker = 2;
  bool speculate = true;      ///< re-issue stragglers when otherwise drained
  /// A running attempt becomes a straggler candidate only after
  /// max(straggler_min_s, 2 x median completed attempt wall).
  double straggler_min_s = 1.0;
  double poll_interval_s = 0.002;
  /// Fault-injection spec forwarded to workers; empty falls back to the
  /// KRONOTRI_FAULT environment variable (the CI smoke's entry point).
  std::string fault_spec;
  /// Worker executable; empty resolves via default_worker_exe().
  std::string worker_exe;
  /// Durable-run directory: when non-empty, unit transitions are WAL'd to
  /// <journal_dir>/run.journal and fragments persist as CRC64 frame files
  /// there (scratch files also live there instead of $TMPDIR, so a killed
  /// coordinator leaks nothing outside its own journal directory).
  std::string journal_dir;
  /// Resume from journal_dir instead of starting fresh: verified-complete
  /// units are reloaded ("resumed" events), damaged ones re-executed
  /// ("corrupt" events). Requires journal_dir; a plan-hash mismatch fails
  /// the run with a structured report.
  bool resume = false;
  /// RLIMIT_AS ceiling installed in each worker (bytes; 0 = none). A
  /// worker whose allocations trip it dies at kOomExitCode and is
  /// classified "oom", distinct from "signal"/"exit".
  std::size_t worker_mem_limit_bytes = 0;
  /// Runner re-dispatch backoff: seeded jitter on by default so a mass
  /// re-queue does not re-dispatch in lockstep (the service client keeps
  /// its separate documented no-jitter default).
  util::Backoff backoff{0.05, 2.0, 2.0, 0.5, 0x6b726f6e6f747269ULL};
  /// Remote agent endpoints ("HOST:PORT" / "unix:PATH", the CLI's
  /// --agents list). Every slot a connected `kronotri agent` advertises
  /// becomes one more dispatch target next to the local worker slots —
  /// same backoff, timeouts, speculation and journal records. workers=0
  /// with agents set runs purely remote. A lost connection, a torn
  /// result frame or a missed heartbeat turns the agent's in-flight
  /// attempts into "disconnect"/"garbled" events, re-dispatched exactly
  /// like a SIGKILLed local child.
  std::vector<std::string> agents;
  /// Per-attempt dial deadline for an agent connection (seconds).
  double agent_connect_timeout_s = 1.0;
  /// A connected agent silent for longer than this (agents heartbeat at
  /// ~4 Hz) is declared dead and its attempts re-dispatched.
  double heartbeat_timeout_s = 5.0;
};

/// Exit code a worker dies with when its RLIMIT_AS guard (or the `oom`
/// fault) trips std::bad_alloc — the coordinator classifies it "oom".
/// Distinct from 127 (exec failure) and ordinary analysis exit codes.
inline constexpr int kOomExitCode = 86;

/// Options derived from the plan's RunOptions (workers, shard_timeout,
/// max_retries, fault) with runner defaults for the rest. The durability
/// and guard knobs (journal_dir, resume, worker_mem_limit_bytes) are
/// CLI-level — set them on the returned Options.
Options options_from(const api::RunPlan& plan);

/// Identity hash a journal pins its plan to: canonical-JSON hash of the
/// plan with the distribution options (workers, shard_timeout,
/// max_retries, fault — the same set comparable() strips) removed. A
/// resume may change HOW the plan is distributed, never WHAT it computes.
std::uint64_t plan_identity_hash(const api::RunPlan& plan);

/// The kronotri CLI binary to exec workers from: $KRONOTRI_BIN when set,
/// else a `kronotri` sibling of /proc/self/exe (the binary itself, or the
/// build-tree sibling when the caller is a test/bench binary). Empty when
/// nothing resolves — execute() then degrades to in-process.
std::string default_worker_exe();

/// Executes the plan across opt.workers forked workers and returns the
/// merged report. workers <= 1 runs in-process (api::run). Never throws
/// for worker failures — those come back as a pass=false report with
/// `error` set and the full worker_events trail.
api::RunReport execute(const api::RunPlan& plan, Options opt);

/// execute() with options_from(plan).
api::RunReport execute(const api::RunPlan& plan);

/// A report JSON with every volatile field removed — timings, rss,
/// metadata, worker_events, counters, and the runner-only plan options — so a
/// multi-process report can be compared bit-identically against the
/// serial run. Tests, bench_runner and the CI smoke all use this one
/// definition of "identical".
util::json::Value comparable(const util::json::Value& report_json);

}  // namespace kronotri::runner
