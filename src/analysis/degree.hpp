// Degree-distribution analysis (§III.A of the paper).
//
// d_C = d_A ⊗ d_B for loop-free factors, with the self-loop corrections of
// §III.A otherwise. The qualitative observation the paper makes — the ratio
// of maximum degree to vertex count SQUARES under the product,
// ‖d_C‖∞/n_C = (‖d_A‖∞/n_A)·(‖d_B‖∞/n_B) — is what bench_degree_dist
// reports, together with heavy-tail summary statistics.
#pragma once

#include <map>

#include "core/graph.hpp"
#include "kron/formulas.hpp"

namespace kronotri::analysis {

struct DegreeSummary {
  count_t max_degree = 0;
  double mean_degree = 0.0;
  double max_ratio = 0.0;     ///< ‖d‖∞ / n
  double loglog_slope = 0.0;  ///< crude power-law tail exponent estimate
  std::map<count_t, count_t> histogram;
};

/// Summary of an explicit degree vector.
DegreeSummary summarize_degrees(const std::vector<count_t>& degrees);

/// Summary of the non-loop degrees of an explicit graph.
DegreeSummary summarize_degrees(const Graph& g);

/// Factor-side summary of d_C for C = A ⊗ B: max degree, mean and the
/// squared max-ratio are computed without expanding the n_A·n_B vector.
/// The histogram is the exact degree histogram of C, computed as the
/// product-convolution of the factor histograms (loop-free factors) or by
/// expansion otherwise.
DegreeSummary summarize_kron_degrees(const Graph& a, const Graph& b);

}  // namespace kronotri::analysis
