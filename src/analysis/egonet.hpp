// Egonet extraction on implicit Kronecker product graphs (the validation
// instrument of the paper's Fig. 7).
//
// The egonet of p is the subgraph induced by {p} ∪ N(p). On C = A ⊗ B it is
// built without materializing C: the neighbor list comes from the factor
// rows and each induced edge is two factor-matrix membership tests. The
// number of triangles at p inside its egonet equals t_C[p], so comparing
// the materialized egonet against TriangleOracle::vertex_triangles is an
// end-to-end validation of Thm 1 / Cor 1 at that vertex.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "kron/view.hpp"

namespace kronotri::analysis {

struct Egonet {
  vid center;                  ///< product-graph id of the ego vertex
  std::vector<vid> vertices;   ///< product-graph ids; vertices[0] == center? no: sorted, includes center
  Graph graph;                 ///< induced subgraph on `vertices` (local ids)
  vid local_center = 0;        ///< index of the center within `vertices`
};

/// Extracts the egonet of product vertex p from the implicit view.
Egonet extract_egonet(const kron::KronGraphView& c, vid p);

/// Extracts the egonet of vertex p of an explicit graph (reference path).
Egonet extract_egonet(const Graph& g, vid p);

/// Number of triangles incident to the center inside its egonet — equals
/// t[p] of the full graph.
count_t center_triangles(const Egonet& ego);

/// Number of triangles containing edge (center, neighbor) inside the
/// egonet — equals Δ[p, q] of the full graph (the §VI experiment samples
/// edges as well as vertices). `q` is a product/graph id adjacent to the
/// center; throws std::invalid_argument when it is not in the egonet.
count_t center_edge_triangles(const Egonet& ego, vid q);

}  // namespace kronotri::analysis
