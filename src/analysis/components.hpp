// Connectivity analysis and Weichsel's theorem.
//
// The paper's Def. 1 cites Weichsel [2], "The Kronecker product of graphs"
// (Proc. AMS 1962), whose classical result governs the connectivity of the
// generated benchmark graphs: for connected undirected factors, A ⊗ B is
// connected iff at least one factor contains an odd closed walk
// (non-bipartite; a self loop counts), and splits into exactly two
// components when both factors are bipartite. This module provides BFS
// components / bipartiteness and the factor-side component count of
// C = A ⊗ B — another statistic of the huge graph read off the small
// factors (generalizing Weichsel to disconnected factors and isolated
// vertices).
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace kronotri::analysis {

struct Components {
  std::vector<vid> component;  ///< component id per vertex, in [0, count)
  count_t count = 0;
};

/// Connected components of the undirected closure of g. Parallel
/// Shiloach–Vishkin/Afforest-style union-find: CAS hooking of the larger
/// root onto the smaller endpoint, then pointer-jumping compression. Roots
/// converge to each component's minimum vertex, and labels are the rank of
/// that root — exactly the discovery order of the serial DFS, so the output
/// is bit-identical to connected_components_serial() at every thread count.
Components connected_components(const Graph& g);

/// The reference single-threaded DFS labeling (discovery order of the
/// smallest vertex per component). Work-equal baseline for the parallel
/// implementation (benches) and its determinism oracle (tests).
Components connected_components_serial(const Graph& g);

/// True when every vertex is reachable from vertex 0 (empty graphs are
/// connected).
bool is_connected(const Graph& g);

/// 2-colorability of the undirected closure; a self loop is an odd closed
/// walk, so any looped graph is non-bipartite.
bool is_bipartite(const Graph& g);

/// Number of connected components of C = A ⊗ B, computed from the factors
/// (never materializing C):
///   Σ over component pairs (X ⊆ A, Y ⊆ B) of
///     |X|·|Y|  when X or Y is edgeless (every product vertex isolated),
///     2        when both X and Y are bipartite-with-edges,
///     1        otherwise (Weichsel).
/// Requires undirected factors.
count_t kron_component_count(const Graph& a, const Graph& b);

}  // namespace kronotri::analysis
