#include "analysis/egonet.hpp"

#include <algorithm>

#include "triangle/count.hpp"

namespace kronotri::analysis {

namespace {

template <typename HasEdge>
Egonet build(vid p, std::vector<vid> verts, HasEdge&& has_edge) {
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());

  Egonet ego;
  ego.center = p;
  ego.local_center = static_cast<vid>(
      std::lower_bound(verts.begin(), verts.end(), p) - verts.begin());

  const vid n = verts.size();
  std::vector<std::pair<vid, vid>> edges;
  for (vid x = 0; x < n; ++x) {
    for (vid y = 0; y < n; ++y) {
      if (x != y && has_edge(verts[x], verts[y])) edges.emplace_back(x, y);
    }
  }
  ego.graph = Graph::from_edges(n, edges, /*symmetrize=*/false);
  ego.vertices = std::move(verts);
  return ego;
}

}  // namespace

Egonet extract_egonet(const kron::KronGraphView& c, vid p) {
  std::vector<vid> verts = c.neighbors(p);
  verts.push_back(p);
  return build(p, std::move(verts),
               [&](vid u, vid v) { return c.has_edge(u, v); });
}

Egonet extract_egonet(const Graph& g, vid p) {
  const auto nb = g.neighbors(p);
  std::vector<vid> verts(nb.begin(), nb.end());
  verts.push_back(p);
  return build(p, std::move(verts),
               [&](vid u, vid v) { return g.has_edge(u, v); });
}

count_t center_triangles(const Egonet& ego) {
  const std::vector<count_t> t =
      triangle::participation_vertices(ego.graph);
  return t[ego.local_center];
}

count_t center_edge_triangles(const Egonet& ego, vid q) {
  const auto it =
      std::lower_bound(ego.vertices.begin(), ego.vertices.end(), q);
  if (it == ego.vertices.end() || *it != q) {
    throw std::invalid_argument("center_edge_triangles: q not in egonet");
  }
  const vid local_q = static_cast<vid>(it - ego.vertices.begin());
  const vid c = ego.local_center;
  if (!ego.graph.has_edge(c, local_q)) {
    throw std::invalid_argument("center_edge_triangles: (center,q) not an edge");
  }
  // Common neighbors of center and q inside the egonet close the triangles.
  count_t acc = 0;
  for (const vid w : ego.graph.neighbors(c)) {
    if (w != c && w != local_q && ego.graph.has_edge(local_q, w)) ++acc;
  }
  return acc;
}

}  // namespace kronotri::analysis
