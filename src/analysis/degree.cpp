#include "analysis/degree.hpp"

#include "util/stats.hpp"

namespace kronotri::analysis {

DegreeSummary summarize_degrees(const std::vector<count_t>& degrees) {
  DegreeSummary s;
  if (degrees.empty()) return s;
  s.histogram = util::histogram(std::span<const count_t>(degrees));
  s.max_degree = util::max_value(std::span<const count_t>(degrees));
  s.mean_degree = util::mean(std::span<const count_t>(degrees));
  s.max_ratio = static_cast<double>(s.max_degree) /
                static_cast<double>(degrees.size());
  s.loglog_slope = util::log_log_slope(s.histogram);
  return s;
}

DegreeSummary summarize_degrees(const Graph& g) {
  std::vector<count_t> d(g.num_vertices());
  for (vid u = 0; u < g.num_vertices(); ++u) d[u] = g.nonloop_degree(u);
  return summarize_degrees(d);
}

DegreeSummary summarize_kron_degrees(const Graph& a, const Graph& b) {
  const bool loops = a.has_self_loops() && b.has_self_loops();
  if (!loops) {
    // d_C[p] = rowsum_A(i)·rowsum_B(k): histogram is the product
    // convolution of the factor histograms — no n_A·n_B expansion.
    std::vector<count_t> da(a.num_vertices()), db(b.num_vertices());
    for (vid u = 0; u < a.num_vertices(); ++u) da[u] = a.out_degree(u);
    for (vid u = 0; u < b.num_vertices(); ++u) db[u] = b.out_degree(u);
    const auto ha = util::histogram(std::span<const count_t>(da));
    const auto hb = util::histogram(std::span<const count_t>(db));

    DegreeSummary s;
    long double total = 0, weighted = 0;
    for (const auto& [dva, ca] : ha) {
      for (const auto& [dvb, cb] : hb) {
        const count_t d = dva * dvb;
        const count_t c = ca * cb;
        s.histogram[d] += c;
        s.max_degree = std::max(s.max_degree, d);
        total += static_cast<long double>(c);
        weighted += static_cast<long double>(c) * static_cast<long double>(d);
      }
    }
    s.mean_degree = total == 0 ? 0.0 : static_cast<double>(weighted / total);
    s.max_ratio = total == 0 ? 0.0
                             : static_cast<double>(s.max_degree) /
                                   static_cast<double>(total);
    s.loglog_slope = util::log_log_slope(s.histogram);
    return s;
  }
  // With loops in both factors the -1 correction breaks the convolution;
  // expand (factors are small by assumption).
  return summarize_degrees(kron::degrees(a, b).expand());
}

}  // namespace kronotri::analysis
