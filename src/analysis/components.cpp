#include "analysis/components.hpp"

#include <stdexcept>

namespace kronotri::analysis {

namespace {

constexpr vid kUnvisited = ~vid{0};

/// Per-component classification for the Weichsel count.
struct CompClass {
  count_t size = 0;
  bool has_edge = false;   // any incident edge (self loops count)
  bool bipartite = true;   // 2-colorable; loops break it
};

std::vector<CompClass> classify(const Graph& g, const Components& comps) {
  std::vector<CompClass> cls(comps.count);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    ++cls[comps.component[u]].size;
  }
  // Bipartiteness by BFS 2-coloring over the closure.
  const Graph u = g.is_undirected() ? g : g.undirected_closure();
  std::vector<std::uint8_t> color(u.num_vertices(), 2);  // 2 = uncolored
  std::vector<vid> queue;
  for (vid s = 0; s < u.num_vertices(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    queue.assign(1, s);
    while (!queue.empty()) {
      const vid x = queue.back();
      queue.pop_back();
      CompClass& c = cls[comps.component[x]];
      for (const vid y : u.neighbors(x)) {
        c.has_edge = true;
        if (y == x) {
          c.bipartite = false;  // self loop = odd closed walk
          continue;
        }
        if (color[y] == 2) {
          color[y] = static_cast<std::uint8_t>(1 - color[x]);
          queue.push_back(y);
        } else if (color[y] == color[x]) {
          c.bipartite = false;
        }
      }
    }
  }
  return cls;
}

}  // namespace

Components connected_components(const Graph& g) {
  const Graph u = g.is_undirected() ? g : g.undirected_closure();
  Components out;
  out.component.assign(u.num_vertices(), kUnvisited);
  std::vector<vid> stack;
  for (vid s = 0; s < u.num_vertices(); ++s) {
    if (out.component[s] != kUnvisited) continue;
    const vid id = out.count++;
    out.component[s] = id;
    stack.assign(1, s);
    while (!stack.empty()) {
      const vid x = stack.back();
      stack.pop_back();
      for (const vid y : u.neighbors(x)) {
        if (out.component[y] == kUnvisited) {
          out.component[y] = id;
          stack.push_back(y);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() == 0 || connected_components(g).count == 1;
}

bool is_bipartite(const Graph& g) {
  const Components comps = connected_components(g);
  for (const CompClass& c : classify(g, comps)) {
    if (!c.bipartite) return false;
  }
  return true;
}

count_t kron_component_count(const Graph& a, const Graph& b) {
  if (!a.is_undirected() || !b.is_undirected()) {
    throw std::invalid_argument(
        "kron_component_count requires undirected factors (Weichsel)");
  }
  const Components ca = connected_components(a);
  const Components cb = connected_components(b);
  const auto cls_a = classify(a, ca);
  const auto cls_b = classify(b, cb);
  count_t total = 0;
  for (const CompClass& x : cls_a) {
    for (const CompClass& y : cls_b) {
      if (!x.has_edge || !y.has_edge) {
        total += x.size * y.size;  // the whole block is isolated vertices
      } else if (x.bipartite && y.bipartite) {
        total += 2;  // Weichsel: bipartite × bipartite splits in two
      } else {
        total += 1;
      }
    }
  }
  return total;
}

}  // namespace kronotri::analysis
