#include "analysis/components.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "core/ops.hpp"

namespace kronotri::analysis {

namespace {

constexpr vid kUnvisited = ~vid{0};

/// Relaxed atomic view of a parent slot — every access during the hook and
/// compress phases goes through these, since plain reads racing the CAS
/// writes would be formal data races (and would license the compiler to
/// cache the loads the link loop needs fresh).
vid parent_load(const std::vector<vid>& parent, vid i) {
  return std::atomic_ref<const vid>(parent[i]).load(std::memory_order_relaxed);
}

/// Union by CAS, always hooking the larger root towards the smaller
/// endpoint (GAPBS/Afforest-style). Parent pointers only ever decrease, so
/// the minimum vertex of a component can never be hooked away and ends up
/// as the unique root.
void link(vid x, vid y, std::vector<vid>& parent) {
  vid p1 = parent_load(parent, x);
  vid p2 = parent_load(parent, y);
  while (p1 != p2) {
    const vid high = std::max(p1, p2);
    const vid low = std::min(p1, p2);
    std::atomic_ref<vid> slot(parent[high]);
    vid expected = high;
    if (slot.load(std::memory_order_relaxed) == low ||
        slot.compare_exchange_strong(expected, low,
                                     std::memory_order_relaxed)) {
      break;
    }
    p1 = parent_load(parent, parent_load(parent, high));
    p2 = parent_load(parent, low);
  }
}

/// Per-component classification for the Weichsel count.
struct CompClass {
  count_t size = 0;
  bool has_edge = false;   // any incident edge (self loops count)
  bool bipartite = true;   // 2-colorable; loops break it
};

std::vector<CompClass> classify(const Graph& g, const Components& comps) {
  std::vector<CompClass> cls(comps.count);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    ++cls[comps.component[u]].size;
  }
  // Bipartiteness by BFS 2-coloring over the closure.
  const Graph u = g.is_undirected() ? g : g.undirected_closure();
  std::vector<std::uint8_t> color(u.num_vertices(), 2);  // 2 = uncolored
  std::vector<vid> queue;
  for (vid s = 0; s < u.num_vertices(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    queue.assign(1, s);
    while (!queue.empty()) {
      const vid x = queue.back();
      queue.pop_back();
      CompClass& c = cls[comps.component[x]];
      for (const vid y : u.neighbors(x)) {
        c.has_edge = true;
        if (y == x) {
          c.bipartite = false;  // self loop = odd closed walk
          continue;
        }
        if (color[y] == 2) {
          color[y] = static_cast<std::uint8_t>(1 - color[x]);
          queue.push_back(y);
        } else if (color[y] == color[x]) {
          c.bipartite = false;
        }
      }
    }
  }
  return cls;
}

}  // namespace

Components connected_components(const Graph& g) {
  const Graph u = g.is_undirected() ? g : g.undirected_closure();
  const vid n = u.num_vertices();
  std::vector<vid> parent(n);
  std::iota(parent.begin(), parent.end(), vid{0});

  // Hook: one pass over the edges is enough — link() loops until the two
  // trees share a root or a CAS merges them, so every edge's union
  // completes before the pass moves on.
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t xx = 0; xx < static_cast<std::int64_t>(n); ++xx) {
    const vid x = static_cast<vid>(xx);
    for (const vid y : u.neighbors(x)) {
      if (y > x) link(x, y, parent);  // each undirected edge linked once
    }
  }

  // Compress: pointer jumping to the (stable) roots. Writes shorten paths
  // monotonically, so concurrent readers only ever skip ahead.
#pragma omp parallel for schedule(static)
  for (std::int64_t vv = 0; vv < static_cast<std::int64_t>(n); ++vv) {
    const vid v = static_cast<vid>(vv);
    vid r = parent_load(parent, v);
    while (parent_load(parent, r) != r) r = parent_load(parent, r);
    std::atomic_ref<vid>(parent[v]).store(r, std::memory_order_relaxed);
  }

  // Deterministic numbering: component id = rank of its root (= minimum
  // vertex), matching the serial DFS's discovery order exactly.
  std::vector<vid> rank(n + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t vv = 0; vv < static_cast<std::int64_t>(n); ++vv) {
    const vid v = static_cast<vid>(vv);
    rank[v + 1] = parent[v] == v ? 1 : 0;
  }
  ops::prefix_sum_inplace(rank);

  Components out;
  out.count = rank[n];
  out.component.assign(n, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t vv = 0; vv < static_cast<std::int64_t>(n); ++vv) {
    const vid v = static_cast<vid>(vv);
    out.component[v] = rank[parent[v]];
  }
  return out;
}

Components connected_components_serial(const Graph& g) {
  const Graph u = g.is_undirected() ? g : g.undirected_closure();
  Components out;
  out.component.assign(u.num_vertices(), kUnvisited);
  std::vector<vid> stack;
  for (vid s = 0; s < u.num_vertices(); ++s) {
    if (out.component[s] != kUnvisited) continue;
    const vid id = out.count++;
    out.component[s] = id;
    stack.assign(1, s);
    while (!stack.empty()) {
      const vid x = stack.back();
      stack.pop_back();
      for (const vid y : u.neighbors(x)) {
        if (out.component[y] == kUnvisited) {
          out.component[y] = id;
          stack.push_back(y);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() == 0 || connected_components(g).count == 1;
}

bool is_bipartite(const Graph& g) {
  const Components comps = connected_components(g);
  for (const CompClass& c : classify(g, comps)) {
    if (!c.bipartite) return false;
  }
  return true;
}

count_t kron_component_count(const Graph& a, const Graph& b) {
  if (!a.is_undirected() || !b.is_undirected()) {
    throw std::invalid_argument(
        "kron_component_count requires undirected factors (Weichsel)");
  }
  const Components ca = connected_components(a);
  const Components cb = connected_components(b);
  const auto cls_a = classify(a, ca);
  const auto cls_b = classify(b, cb);
  count_t total = 0;
  for (const CompClass& x : cls_a) {
    for (const CompClass& y : cls_b) {
      if (!x.has_edge || !y.has_edge) {
        total += x.size * y.size;  // the whole block is isolated vertices
      } else if (x.bipartite && y.bipartite) {
        total += 2;  // Weichsel: bipartite × bipartite splits in two
      } else {
        total += 1;
      }
    }
  }
  return total;
}

}  // namespace kronotri::analysis
