// The kronotri command-line tool, as a testable library.
//
// Each subcommand is a function of parsed flags plus explicit output
// streams, so unit tests drive them without spawning processes; the thin
// binary in tools/ dispatches to these.
//
//   kronotri run      --plan plan.json --json report.json
//   kronotri run      --plan "kron:(hk:n=300)x(clique:n=3,loops=1) census degree validate"
//   kronotri serve    --socket /run/kronotri.sock --workers 4 --queue-depth 32
//   kronotri submit   --socket /run/kronotri.sock --plan plan.json
//   kronotri generate --type hk --n 10000 --out A.txt
//   kronotri census   --a A.txt --b B.txt [--truth t.txt] [--sample 9]
//   kronotri validate --a A.txt --b B.txt --claims counts.txt
//   kronotri validate --spec "kron:(hk:n=5000)x(clique:n=3)" --mem-budget 4M
//   kronotri egonet   --a A.txt --b B.txt --vertex 12345
//   kronotri truss    --graph G.txt  |  --a A.txt --b B.txt (Thm 3)
#pragma once

#include <iosfwd>

#include "util/cli.hpp"

namespace kronotri::cli {

/// Dispatch on argv[1]; returns a process exit code.
int run(int argc, char** argv, std::ostream& out, std::ostream& err);

// Individual subcommands (flags documented in usage()). Every one of them
// executes through api::run(); `run` is the direct RunPlan entry point.
int cmd_run(const util::Cli& flags, std::ostream& out, std::ostream& err);
/// Long-running analysis daemon over a unix socket; returns on SIGINT/
/// SIGTERM (graceful drain) or after --idle-timeout seconds of no traffic.
int cmd_serve(const util::Cli& flags, std::ostream& out, std::ostream& err);
/// Client: submit a plan (or request stats) to a serving daemon.
int cmd_submit(const util::Cli& flags, std::ostream& out, std::ostream& err);
/// Remote worker agent: executes dispatched run units for a coordinator
/// (`kronotri run --agents HOST:PORT,...`); returns on SIGINT/SIGTERM.
int cmd_agent(const util::Cli& flags, std::ostream& out, std::ostream& err);
int cmd_generate(const util::Cli& flags, std::ostream& out, std::ostream& err);
int cmd_census(const util::Cli& flags, std::ostream& out, std::ostream& err);
int cmd_validate(const util::Cli& flags, std::ostream& out, std::ostream& err);
int cmd_egonet(const util::Cli& flags, std::ostream& out, std::ostream& err);
int cmd_truss(const util::Cli& flags, std::ostream& out, std::ostream& err);
/// Hidden: one work unit of a multi-process run (`kronotri __worker
/// --plan-file F --out F --unit N --attempt N [--fault SPEC]`). Executes
/// the child plan and writes the RunReport fragment frame to --out;
/// exec'd by runner::execute, never typed by hand.
int cmd_worker(const util::Cli& flags, std::ostream& out, std::ostream& err);

/// Prints the full usage text.
void usage(std::ostream& out);

}  // namespace kronotri::cli
