#include "cli/commands.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "analysis/egonet.hpp"
#include "core/io.hpp"
#include "gen/classic.hpp"
#include "gen/one_triangle_pa.hpp"
#include "gen/prune.hpp"
#include "gen/random.hpp"
#include "gen/rmat.hpp"
#include "kron/oracle.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace kronotri::cli {

namespace {

Graph load(const std::string& path, bool symmetrize, bool drop_loops) {
  io::ReadOptions opts;
  opts.symmetrize = symmetrize;
  opts.drop_self_loops = drop_loops;
  return io::read_edge_list(path, opts);
}

/// Loads the two factors shared by census/validate/egonet: --a is required;
/// --b defaults to A itself; --loops-b adds the B = A + I construction.
struct Factors {
  Graph a;
  Graph b;
};

Factors load_factors(const util::Cli& flags) {
  Factors f;
  f.a = load(flags.get("a", ""), flags.has("symmetrize"), true);
  if (flags.has("b")) {
    f.b = load(flags.get("b", ""), flags.has("symmetrize"), false);
  } else {
    f.b = f.a;
  }
  if (flags.has("loops-b")) f.b = f.b.with_all_self_loops();
  return f;
}

}  // namespace

void usage(std::ostream& out) {
  out << "kronotri — Kronecker graph generation with exact triangle ground truth\n"
         "\n"
         "usage: kronotri <command> [flags]\n"
         "\n"
         "commands:\n"
         "  generate  --type hk|ba|er|rmat|onetri|clique|cycle|hubcycle --out FILE\n"
         "            [--n N] [--m M] [--p P] [--scale S] [--seed S]\n"
         "            [--loops] [--prune]\n"
         "            write a factor graph as an edge list; --prune applies\n"
         "            the §III.D(a) reduction to Δ ≤ 1\n"
         "  census    --a FILE [--b FILE] [--loops-b] [--truth FILE] [--sample K]\n"
         "            exact V/E/triangle census of A, B and C = A ⊗ B;\n"
         "            --truth writes per-vertex counts of sampled product\n"
         "            vertices (all factor-A blocks if omitted --sample)\n"
         "  validate  --a FILE [--b FILE] [--loops-b] --claims FILE\n"
         "            diff claimed per-vertex triangle counts of C against\n"
         "            the oracle; exit 1 on any mismatch\n"
         "  egonet    --a FILE [--b FILE] [--loops-b] --vertex P\n"
         "            materialize the egonet of product vertex P and check\n"
         "            it against the formulas (Fig. 7 protocol)\n"
         "  truss     --graph FILE  (direct decomposition)\n"
         "            --a FILE --b FILE (Thm 3 oracle; B must have Δ_B ≤ 1)\n";
}

int cmd_generate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  const std::string type = flags.get("type", "hk");
  const vid n = flags.get_uint("n", 1000);
  const vid m = flags.get_uint("m", 3);
  const double p = flags.get_double("p", 0.5);
  const std::uint64_t seed = flags.get_uint("seed", 1);
  const std::string path = flags.get("out", "");
  if (path.empty()) {
    err << "generate: --out is required\n";
    return 2;
  }
  Graph g = [&]() -> Graph {
    if (type == "hk") return gen::holme_kim(n, m, p, seed);
    if (type == "ba") return gen::barabasi_albert(n, m, seed);
    if (type == "er") return gen::erdos_renyi(n, p, seed);
    if (type == "rmat") {
      return gen::rmat(static_cast<unsigned>(flags.get_uint("scale", 10)), m,
                       {}, seed);
    }
    if (type == "onetri") return gen::one_triangle_pa(n, seed);
    if (type == "clique") return gen::clique(n);
    if (type == "cycle") return gen::cycle(n);
    if (type == "hubcycle") return gen::hub_cycle();
    throw std::invalid_argument("unknown --type " + type);
  }();
  if (flags.has("prune")) g = gen::prune_to_one_triangle(g, seed);
  if (flags.has("loops")) g = g.with_all_self_loops();
  io::write_edge_list(g, path);
  out << "wrote " << path << ": " << g.num_vertices() << " vertices, "
      << g.num_undirected_edges() << " edges, "
      << triangle::count_total(g) << " triangles\n";
  return 0;
}

int cmd_census(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a")) {
    err << "census: --a is required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  util::WallTimer timer;
  const kron::TriangleOracle oracle(f.a, f.b);
  const double secs = timer.seconds();
  const kron::KronGraphView c(f.a, f.b);

  util::Table t({"Matrix", "Vertices", "Edges", "Triangles"});
  t.row({"A", util::commas(f.a.num_vertices()),
         util::commas(f.a.num_undirected_edges()),
         util::commas(triangle::count_total(f.a))});
  t.row({"B", util::commas(f.b.num_vertices()),
         util::commas(f.b.num_undirected_edges()),
         util::commas(triangle::count_total(f.b))});
  t.row({"C = A (x) B", util::commas(c.num_vertices()),
         util::commas(c.num_undirected_edges()),
         util::commas(oracle.total_triangles())});
  t.print(out);
  out << "census time: " << secs << " s\n";

  if (flags.has("truth")) {
    const count_t sample = flags.get_uint("sample", 0);
    const vid nc = c.num_vertices();
    const vid step = sample == 0 ? 1 : std::max<vid>(1, nc / sample);
    std::vector<count_t> counts;
    std::vector<vid> ids;
    for (vid p = 0; p < nc; p += step) {
      ids.push_back(p);
      counts.push_back(oracle.vertex_triangles(p));
    }
    // Sparse id/count pairs reuse the vertex-counts format via explicit ids.
    std::ofstream file(flags.get("truth", ""));
    if (!file) {
      err << "census: cannot open --truth file\n";
      return 2;
    }
    file << "# kronotri ground truth: product vertex -> triangles\n";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      file << ids[i] << ' ' << counts[i] << '\n';
    }
    out << "wrote " << ids.size() << " ground-truth rows to "
        << flags.get("truth", "") << "\n";
  }
  return 0;
}

int cmd_validate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a") || !flags.has("claims")) {
    err << "validate: --a and --claims are required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  const kron::TriangleOracle oracle(f.a, f.b);

  std::ifstream in(flags.get("claims", ""));
  if (!in) {
    err << "validate: cannot open claims file\n";
    return 2;
  }
  std::string line;
  count_t checked = 0, wrong = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t p = 0, claimed = 0;
    if (!(ls >> p >> claimed)) {
      err << "validate: bad claims line: " << line << "\n";
      return 2;
    }
    ++checked;
    const count_t expected = oracle.vertex_triangles(p);
    if (claimed != expected) {
      ++wrong;
      if (wrong <= 10) {
        out << "MISMATCH at vertex " << p << ": claimed " << claimed
            << ", exact " << expected << "\n";
      }
    }
  }
  out << checked << " claims checked, " << wrong << " wrong — "
      << (wrong == 0 ? "PASS" : "FAIL") << "\n";
  return wrong == 0 ? 0 : 1;
}

int cmd_egonet(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a") || !flags.has("vertex")) {
    err << "egonet: --a and --vertex are required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  const kron::KronGraphView c(f.a, f.b);
  const vid p = flags.get_uint("vertex", 0);
  if (p >= c.num_vertices()) {
    err << "egonet: vertex out of range (product has " << c.num_vertices()
        << " vertices)\n";
    return 2;
  }
  const kron::TriangleOracle oracle(f.a, f.b);
  const auto ego = analysis::extract_egonet(c, p);
  const count_t measured = analysis::center_triangles(ego);
  const count_t formula = oracle.vertex_triangles(p);
  out << "product vertex " << p << " = (A:" << c.index().a_of(p)
      << ", B:" << c.index().b_of(p) << ")\n"
      << "  degree:             " << c.nonloop_degree(p) << "\n"
      << "  egonet size:        " << ego.vertices.size() << " vertices, "
      << ego.graph.num_undirected_edges() << " edges\n"
      << "  triangles (egonet): " << measured << "\n"
      << "  triangles (formula):" << formula << "\n"
      << "  " << (measured == formula ? "MATCH" : "MISMATCH") << "\n";
  return measured == formula ? 0 : 1;
}

int cmd_truss(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (flags.has("graph")) {
    const Graph g = load(flags.get("graph", ""), flags.has("symmetrize"), true);
    util::WallTimer timer;
    const auto t = truss::decompose(g);
    out << "truss decomposition of " << g.num_undirected_edges()
        << " edges in " << timer.seconds() << " s; max truss "
        << t.max_truss << "\n";
    util::Table table({"kappa", "|T^kappa|"});
    for (count_t kappa = 3; kappa <= t.max_truss; ++kappa) {
      table.row({std::to_string(kappa), util::commas(t.edges_in_truss(kappa))});
    }
    table.print(out);
    return 0;
  }
  if (flags.has("a") && flags.has("b")) {
    const Graph a = load(flags.get("a", ""), flags.has("symmetrize"), true);
    const Graph b = load(flags.get("b", ""), flags.has("symmetrize"), true);
    const truss::KronTrussOracle oracle(a, b);
    out << "Thm 3 oracle for C = A (x) B ("
        << kron::KronGraphView(a, b).num_undirected_edges()
        << " edges); max truss " << oracle.max_truss() << "\n";
    util::Table table({"kappa", "|T^kappa(C)|"});
    for (count_t kappa = 3; kappa <= oracle.max_truss(); ++kappa) {
      table.row(
          {std::to_string(kappa), util::commas(oracle.edges_in_truss(kappa))});
    }
    table.print(out);
    return 0;
  }
  err << "truss: need --graph, or --a and --b\n";
  return 2;
}

int run(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    usage(err);
    return 2;
  }
  const std::string command = argv[1];
  const util::Cli flags(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(flags, out, err);
    if (command == "census") return cmd_census(flags, out, err);
    if (command == "validate") return cmd_validate(flags, out, err);
    if (command == "egonet") return cmd_egonet(flags, out, err);
    if (command == "truss") return cmd_truss(flags, out, err);
    if (command == "help" || command == "--help") {
      usage(out);
      return 0;
    }
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << "\n";
    return 1;
  }
  err << "unknown command: " << command << "\n";
  usage(err);
  return 2;
}

}  // namespace kronotri::cli
