#include "cli/commands.hpp"

#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/egonet.hpp"
#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "api/sink.hpp"
#include "core/io.hpp"
#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "validate/report.hpp"

namespace kronotri::cli {

namespace {

/// True when `src` parses as a GraphSpec whose family is registered —
/// the test that routes graph arguments to the registry instead of a file.
bool is_registered_spec(const std::string& src) {
  try {
    return api::GeneratorRegistry::builtin().contains(
        api::GraphSpec::parse(src).family);
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// Loads a graph argument: an existing file is read as an edge list (with
/// the usual ingest options); anything that names a registered generator
/// spec (e.g. "hk:n=5000,seed=7") is built through the registry, exactly as
/// specified — the ingest options do not apply to generated graphs.
Graph load(const std::string& path, bool symmetrize, bool drop_loops) {
  if (!std::ifstream(path).good() && is_registered_spec(path)) {
    return api::GeneratorRegistry::builtin().build(path);
  }
  io::ReadOptions opts;
  opts.symmetrize = symmetrize;
  opts.drop_self_loops = drop_loops;
  return io::read_edge_list(path, opts);
}

/// Loads the two factors shared by census/validate/egonet: --a is required;
/// --b defaults to A itself; --loops-b adds the B = A + I construction.
struct Factors {
  Graph a;
  Graph b;
};

Factors load_factors(const util::Cli& flags) {
  Factors f;
  f.a = load(flags.get("a", ""), flags.has("symmetrize"), true);
  if (flags.has("b")) {
    f.b = load(flags.get("b", ""), flags.has("symmetrize"), false);
  } else {
    f.b = f.a;
  }
  if (flags.has("loops-b")) f.b = f.b.with_all_self_loops();
  return f;
}

}  // namespace

void usage(std::ostream& out) {
  out << "kronotri — Kronecker graph generation with exact triangle ground truth\n"
         "\n"
         "usage: kronotri <command> [flags]\n"
         "\n"
         "Graph arguments (--a, --b, --graph) accept a file path OR a\n"
         "generator spec like \"hk:n=5000,m=3,p=0.6,seed=7\" or\n"
         "\"kron:(hk:n=300)x(clique:n=3,loops=1)\" (see generate --list).\n"
         "\n"
         "commands:\n"
         "  generate  --type FAMILY | --spec SPEC, --out FILE\n"
         "            [--n N] [--m M] [--p P] [--scale S] [--seed S]\n"
         "            [--loops] [--prune] [--stream] [--threads T]\n"
         "            [--format text|binary] [--list]\n"
         "            write a graph as an edge list via the generator\n"
         "            registry; --list prints every registered family;\n"
         "            --prune applies the §III.D(a) reduction to Δ ≤ 1;\n"
         "            --stream writes a 2-factor kron spec straight from\n"
         "            the partitioned edge stream (never materializing C),\n"
         "            fanning out over --threads partitions\n"
         "  census    --a FILE [--b FILE] [--loops-b] [--truth FILE] [--sample K]\n"
         "            exact V/E/triangle census of A, B and C = A ⊗ B;\n"
         "            --truth writes per-vertex counts of sampled product\n"
         "            vertices (all factor-A blocks if omitted --sample)\n"
         "  validate  --a FILE [--b FILE] [--loops-b] --claims FILE\n"
         "            diff claimed per-vertex triangle counts of C against\n"
         "            the oracle; exit 1 on any mismatch\n"
         "            --spec SPEC [--mem-budget BYTES[K|M|G]] [--shards N]\n"
         "            [--json FILE]\n"
         "            sharded streaming census of the product SPEC describes\n"
         "            (C is never materialized; shards sized to the budget),\n"
         "            checked per-vertex AND per-edge against the closed\n"
         "            forms; exit 1 unless every count matches\n"
         "  egonet    --a FILE [--b FILE] [--loops-b] --vertex P\n"
         "            materialize the egonet of product vertex P and check\n"
         "            it against the formulas (Fig. 7 protocol)\n"
         "  truss     --graph FILE  (direct decomposition)\n"
         "            --a FILE --b FILE (Thm 3 oracle; B must have Δ_B ≤ 1)\n";
}

namespace {

/// Builds the GraphSpec a `generate` invocation describes: --spec verbatim,
/// or legacy --type plus the classic parameter flags folded into params.
api::GraphSpec generate_spec(const util::Cli& flags) {
  if (flags.has("spec")) return api::GraphSpec::parse(flags.get("spec", ""));
  const std::string type = flags.get("type", "hk");
  if (type == "kron") {
    throw std::invalid_argument(
        "--type kron needs factor specs; use --spec "
        "\"kron:(spec)x(spec)\" instead");
  }
  if (!api::GeneratorRegistry::builtin().contains(type)) {
    throw std::invalid_argument("unknown --type " + type +
                                " (see generate --list)");
  }
  api::GraphSpec spec;
  spec.family = type;
  spec.params["n"] = std::to_string(flags.get_uint("n", 1000));
  spec.params["m"] = std::to_string(flags.get_uint("m", 3));
  spec.params["ef"] = spec.params["m"];  // rmat reads the edge factor as ef
  spec.params["p"] = flags.get("p", "0.5");
  spec.params["seed"] = std::to_string(flags.get_uint("seed", 1));
  spec.params["scale"] = std::to_string(flags.get_uint("scale", 10));
  for (const char* key : {"a", "b", "c", "d"}) {
    if (flags.has(key)) spec.params[key] = flags.get(key, "");
  }
  return spec;
}

}  // namespace

int cmd_generate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  const auto& registry = api::GeneratorRegistry::builtin();
  if (flags.has("list")) {
    util::Table t({"family", "parameters"});
    for (const auto& [name, help] : registry.families()) t.row({name, help});
    t.print(out);
    out << "universal modifier params: loops=1 (A + I), prune=1 (Δ ≤ 1)\n";
    return 0;
  }
  const std::string path = flags.get("out", "");
  if (path.empty()) {
    err << "generate: --out is required\n";
    return 2;
  }
  api::GraphSpec spec = generate_spec(flags);
  if (flags.has("prune")) {
    spec.params["prune"] = "1";
    if (!spec.has("seed")) spec.params["seed"] = std::to_string(
        flags.get_uint("seed", 1));
  }
  if (flags.has("loops")) spec.params["loops"] = "1";

  // Streaming path: a 2-factor kron spec goes straight from the partitioned
  // edge stream into a file sink — C is never materialized. Refusing the
  // other combinations (rather than quietly materializing) matters: the
  // whole point of --stream is products too large to materialize.
  if (flags.get_bool("stream", false)) {
    if (!spec.is_kron() || spec.factors.size() != 2 ||
        spec.get_bool("prune", false) || spec.get_bool("loops", false)) {
      err << "generate: --stream requires a 2-factor kron spec without "
             "loops/prune modifiers (got \""
          << spec.to_string() << "\"); drop --stream to materialize\n";
      return 2;
    }
    const auto factors = registry.build_factors(spec);
    // --threads 0 = hardware concurrency (the stream_parallel contract).
    const auto nthreads =
        static_cast<unsigned>(flags.get_uint("threads", 1));
    const bool binary = flags.get("format", "text") == "binary";
    std::vector<std::unique_ptr<std::ofstream>> files;
    auto sinks = api::stream_parallel(
        factors[0], factors[1], nthreads,
        [&](std::uint64_t part, std::uint64_t nparts)
            -> std::unique_ptr<api::EdgeSink> {
          const std::string name =
              nparts == 1 ? path : path + ".part" + std::to_string(part);
          files.push_back(std::make_unique<std::ofstream>(
              name, binary ? std::ios::binary : std::ios::out));
          if (!*files.back()) {
            throw std::runtime_error("cannot open " + name);
          }
          if (binary) {
            return std::make_unique<api::BinaryEdgeSink>(*files.back());
          }
          return std::make_unique<api::TextEdgeSink>(*files.back());
        });
    esz total = 0;
    for (const auto& s : sinks) total += s->edges_consumed();
    const kron::KronGraphView c(factors[0], factors[1]);
    out << "streamed " << path << (sinks.size() > 1 ? ".part*" : "") << ": "
        << c.num_vertices() << " vertices, " << total
        << " stored entries across " << sinks.size() << " partition"
        << (sinks.size() > 1 ? "s" : "") << "\n";
    return 0;
  }

  const Graph g = registry.build(spec);
  io::write_edge_list(g, path);
  out << "wrote " << path << ": " << g.num_vertices() << " vertices, "
      << g.num_undirected_edges() << " edges, "
      << triangle::count_total(g) << " triangles\n";
  return 0;
}

int cmd_census(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a")) {
    err << "census: --a is required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  util::WallTimer timer;
  const kron::TriangleOracle oracle(f.a, f.b);
  const double secs = timer.seconds();
  const kron::KronGraphView c(f.a, f.b);

  util::Table t({"Matrix", "Vertices", "Edges", "Triangles"});
  t.row({"A", util::commas(f.a.num_vertices()),
         util::commas(f.a.num_undirected_edges()),
         util::commas(triangle::count_total(f.a))});
  t.row({"B", util::commas(f.b.num_vertices()),
         util::commas(f.b.num_undirected_edges()),
         util::commas(triangle::count_total(f.b))});
  t.row({"C = A (x) B", util::commas(c.num_vertices()),
         util::commas(c.num_undirected_edges()),
         util::commas(oracle.total_triangles())});
  t.print(out);
  out << "census time: " << secs << " s\n";

  if (flags.has("truth")) {
    const count_t sample = flags.get_uint("sample", 0);
    const vid nc = c.num_vertices();
    const vid step = sample == 0 ? 1 : std::max<vid>(1, nc / sample);
    std::vector<count_t> counts;
    std::vector<vid> ids;
    for (vid p = 0; p < nc; p += step) {
      ids.push_back(p);
      counts.push_back(oracle.vertex_triangles(p));
    }
    // Sparse id/count pairs reuse the vertex-counts format via explicit ids.
    std::ofstream file(flags.get("truth", ""));
    if (!file) {
      err << "census: cannot open --truth file\n";
      return 2;
    }
    file << "# kronotri ground truth: product vertex -> triangles\n";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      file << ids[i] << ' ' << counts[i] << '\n';
    }
    out << "wrote " << ids.size() << " ground-truth rows to "
        << flags.get("truth", "") << "\n";
  }
  return 0;
}

namespace {

/// Parses a byte count with an optional K/M/G (KiB/MiB/GiB) suffix.
/// Rejects anything that is not digits-then-one-suffix-letter (stoull alone
/// would wrap negatives and ignore trailing garbage).
std::size_t parse_bytes(const std::string& text) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    throw std::invalid_argument("bad byte count \"" + text + "\"");
  }
  std::size_t end = 0;
  const unsigned long long value = std::stoull(text, &end);
  std::size_t shift = 0;
  if (end < text.size()) {
    switch (text[end]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default:
        throw std::invalid_argument("bad byte suffix in \"" + text + "\"");
    }
    if (end + 1 != text.size()) {
      throw std::invalid_argument("bad byte suffix in \"" + text + "\"");
    }
  }
  return static_cast<std::size_t>(value) << shift;
}

/// The streaming half of `validate`: sharded census of the product a spec
/// describes, checked against the closed-form predictions, never
/// materializing C.
int validate_spec(const util::Cli& flags, std::ostream& out,
                  std::ostream& err) {
  const auto spec = api::GraphSpec::parse(flags.get("spec", ""));
  validate::StreamingOptions opt;
  if (flags.has("mem-budget")) {
    opt.mem_budget_bytes = parse_bytes(flags.get("mem-budget", ""));
  }
  opt.force_shards = flags.get_uint("shards", 0);
  const auto factors = api::GeneratorRegistry::builtin().build_factors(spec);
  validate::ValidationReport report;
  if (factors.size() == 2) {
    report = validate::validate_product(factors[0], factors[1], opt);
  } else {
    // 1 factor (the graph itself as a census self-check) or k ≥ 3.
    const kron::KronChain chain(factors);
    report = validate::validate_chain(chain, opt);
  }
  report.spec = spec.to_string();
  report.print(out);
  if (flags.has("json")) {
    std::ofstream json(flags.get("json", ""));
    if (!json) {
      err << "validate: cannot open --json file\n";
      return 2;
    }
    report.write_json(json);
    json << "\n";
  }
  return report.pass() ? 0 : 1;
}

}  // namespace

int cmd_validate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (flags.has("spec")) return validate_spec(flags, out, err);
  if (!flags.has("a") || !flags.has("claims")) {
    err << "validate: --spec, or --a and --claims, is required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  const kron::TriangleOracle oracle(f.a, f.b);

  std::ifstream in(flags.get("claims", ""));
  if (!in) {
    err << "validate: cannot open claims file\n";
    return 2;
  }
  std::string line;
  count_t checked = 0, wrong = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t p = 0, claimed = 0;
    if (!(ls >> p >> claimed)) {
      err << "validate: bad claims line: " << line << "\n";
      return 2;
    }
    ++checked;
    const count_t expected = oracle.vertex_triangles(p);
    if (claimed != expected) {
      ++wrong;
      if (wrong <= 10) {
        out << "MISMATCH at vertex " << p << ": claimed " << claimed
            << ", exact " << expected << "\n";
      }
    }
  }
  out << checked << " claims checked, " << wrong << " wrong — "
      << (wrong == 0 ? "PASS" : "FAIL") << "\n";
  return wrong == 0 ? 0 : 1;
}

int cmd_egonet(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a") || !flags.has("vertex")) {
    err << "egonet: --a and --vertex are required\n";
    return 2;
  }
  const Factors f = load_factors(flags);
  const kron::KronGraphView c(f.a, f.b);
  const vid p = flags.get_uint("vertex", 0);
  if (p >= c.num_vertices()) {
    err << "egonet: vertex out of range (product has " << c.num_vertices()
        << " vertices)\n";
    return 2;
  }
  const kron::TriangleOracle oracle(f.a, f.b);
  const auto ego = analysis::extract_egonet(c, p);
  const count_t measured = analysis::center_triangles(ego);
  const count_t formula = oracle.vertex_triangles(p);
  out << "product vertex " << p << " = (A:" << c.index().a_of(p)
      << ", B:" << c.index().b_of(p) << ")\n"
      << "  degree:             " << c.nonloop_degree(p) << "\n"
      << "  egonet size:        " << ego.vertices.size() << " vertices, "
      << ego.graph.num_undirected_edges() << " edges\n"
      << "  triangles (egonet): " << measured << "\n"
      << "  triangles (formula):" << formula << "\n"
      << "  " << (measured == formula ? "MATCH" : "MISMATCH") << "\n";
  return measured == formula ? 0 : 1;
}

int cmd_truss(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (flags.has("graph")) {
    const Graph g = load(flags.get("graph", ""), flags.has("symmetrize"), true);
    util::WallTimer timer;
    const auto t = truss::decompose(g);
    out << "truss decomposition of " << g.num_undirected_edges()
        << " edges in " << timer.seconds() << " s; max truss "
        << t.max_truss << "\n";
    util::Table table({"kappa", "|T^kappa|"});
    for (count_t kappa = 3; kappa <= t.max_truss; ++kappa) {
      table.row({std::to_string(kappa), util::commas(t.edges_in_truss(kappa))});
    }
    table.print(out);
    return 0;
  }
  if (flags.has("a") && flags.has("b")) {
    const Graph a = load(flags.get("a", ""), flags.has("symmetrize"), true);
    const Graph b = load(flags.get("b", ""), flags.has("symmetrize"), true);
    const truss::KronTrussOracle oracle(a, b);
    out << "Thm 3 oracle for C = A (x) B ("
        << kron::KronGraphView(a, b).num_undirected_edges()
        << " edges); max truss " << oracle.max_truss() << "\n";
    util::Table table({"kappa", "|T^kappa(C)|"});
    for (count_t kappa = 3; kappa <= oracle.max_truss(); ++kappa) {
      table.row(
          {std::to_string(kappa), util::commas(oracle.edges_in_truss(kappa))});
    }
    table.print(out);
    return 0;
  }
  err << "truss: need --graph, or --a and --b\n";
  return 2;
}

int run(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    usage(err);
    return 2;
  }
  const std::string command = argv[1];
  const util::Cli flags(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(flags, out, err);
    if (command == "census") return cmd_census(flags, out, err);
    if (command == "validate") return cmd_validate(flags, out, err);
    if (command == "egonet") return cmd_egonet(flags, out, err);
    if (command == "truss") return cmd_truss(flags, out, err);
    if (command == "help" || command == "--help") {
      usage(out);
      return 0;
    }
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << "\n";
    return 1;
  }
  err << "unknown command: " << command << "\n";
  usage(err);
  return 2;
}

}  // namespace kronotri::cli
