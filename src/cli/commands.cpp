#include "cli/commands.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "api/plan.hpp"
#include "api/registry.hpp"
#include "net/agent.hpp"
#include "net/socket.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runner/runner.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/backoff.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace kronotri::cli {

namespace {

/// True when `src` parses as a GraphSpec whose family is registered —
/// the test that routes graph arguments to the registry instead of a file.
bool is_registered_spec(const std::string& src) {
  try {
    return api::GeneratorRegistry::builtin().contains(
        api::GraphSpec::parse(src).family);
  } catch (const std::invalid_argument&) {
    return false;
  }
}

/// A graph argument as a GraphSpec: an existing file becomes a `file:` spec
/// (with the usual ingest options); anything that names a registered
/// generator spec (e.g. "hk:n=5000,seed=7") is used verbatim — the ingest
/// options do not apply to generated graphs.
api::GraphSpec graph_arg_spec(const std::string& src, bool symmetrize,
                              bool drop_loops) {
  if (!std::ifstream(src).good() && is_registered_spec(src)) {
    return api::GraphSpec::parse(src);
  }
  api::GraphSpec spec;
  spec.family = "file";
  spec.params["path"] = src;
  if (symmetrize) spec.params["symmetrize"] = "1";
  if (drop_loops) spec.params["drop_loops"] = "1";
  return spec;
}

/// The 2-factor product spec shared by census/validate/egonet: --a is
/// required; --b defaults to A itself; --loops-b adds the B = A + I
/// construction (the universal loops modifier on the B spec).
api::GraphSpec factors_spec(const util::Cli& flags) {
  api::GraphSpec a =
      graph_arg_spec(flags.get("a", ""), flags.has("symmetrize"), true);
  api::GraphSpec b =
      flags.has("b")
          ? graph_arg_spec(flags.get("b", ""), flags.has("symmetrize"), false)
          : a;
  if (flags.has("loops-b")) b.params["loops"] = "1";
  api::GraphSpec product;
  product.family = "kron";
  product.factors = {std::move(a), std::move(b)};
  return product;
}

/// Runs the plan through the job engine — the ONE execution path every
/// subcommand funnels into.
api::RunReport run_plan(const api::RunPlan& plan) { return api::run(plan); }

/// RAII for `--trace FILE`: flips the flight recorder on for the command's
/// lifetime and exports the stitched timeline on destruction — after
/// sampling the counter registry as 'C' events, so every exported trace
/// carries its counters alongside the spans. A command without --trace
/// constructs this with an empty path and it does nothing.
class TraceScope {
 public:
  TraceScope(const util::Cli& flags, std::string_view process_name,
             std::ostream& err)
      : path_(flags.get("trace", "")), err_(err) {
    if (path_.empty()) return;
    obs::TraceRecorder& rec = obs::TraceRecorder::instance();
    rec.clear();
    rec.set_enabled(true);
    rec.set_process_name(process_name);
  }
  ~TraceScope() {
    if (path_.empty()) return;
    obs::TraceRecorder& rec = obs::TraceRecorder::instance();
    const util::json::Value counters =
        obs::CounterRegistry::instance().snapshot();
    for (const auto& [name, value] : counters.members()) {
      rec.counter(name, value.as_double());
    }
    if (!rec.export_file(path_)) {
      err_ << "warning: cannot write trace file " << path_ << "\n";
    }
    rec.set_enabled(false);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string path_;
  std::ostream& err_;
};

}  // namespace

void usage(std::ostream& out) {
  out << "kronotri — Kronecker graph generation with exact triangle ground truth\n"
         "\n"
         "usage: kronotri <command> [flags]\n"
         "\n"
         "Graph arguments (--a, --b, --graph) accept a file path OR a\n"
         "generator spec like \"hk:n=5000,m=3,p=0.6,seed=7\" or\n"
         "\"kron:(hk:n=300)x(clique:n=3,loops=1)\" (see generate --list).\n"
         "Every command below executes through the api::run() job engine;\n"
         "`run` exposes it directly.\n"
         "\n"
         "Observability: `run`, `validate` and `serve` accept --trace FILE\n"
         "to record a Chrome trace-event timeline (stages, per-partition\n"
         "streams, validate shards, every worker attempt stitched under its\n"
         "own pid, counters) loadable at ui.perfetto.dev; KRONOTRI_LOG=\n"
         "debug|info|warn|error|off sets the structured-log level (default\n"
         "warn).\n"
         "\n"
         "commands:\n"
         "  run       --plan FILE|STRING [--json FILE] [--threads T]\n"
         "            [--batch N] [--out FILE] [--format text|binary]\n"
         "            [--workers N|auto] [--shard-timeout SECS]\n"
         "            [--max-retries R] [--agents HOST:PORT[,...]]\n"
         "            [--journal DIR [--resume]] [--trace FILE]\n"
         "            [--worker-mem-limit BYTES[K|M|G]|auto] [--list]\n"
         "            execute a declarative run plan (JSON document or the\n"
         "            shorthand \"SPEC analysis[:k=v,…] …\") in a single\n"
         "            stream pass where possible; prints the RunReport and\n"
         "            writes it as JSON with --json; --list prints every\n"
         "            registered analysis; exit 1 unless every analysis\n"
         "            passes. --workers N > 1 forks the plan over N worker\n"
         "            processes (validate analyses split by shard) with\n"
         "            per-unit retry+backoff, --shard-timeout SIGKILL\n"
         "            re-dispatch, and straggler re-execution; the merged\n"
         "            report is bit-identical to --workers 1 (modulo\n"
         "            timings/metadata), recovery recorded in\n"
         "            worker_events; KRONOTRI_FAULT=spec injects faults\n"
         "            (kill|exit|stall|truncate|oom|torn_write\n"
         "            [:shard=N][:attempt=N]…). --journal DIR write-ahead-\n"
         "            logs every unit transition and persists fragments as\n"
         "            CRC64 frames in DIR; after a crash, --resume reloads\n"
         "            only fragments whose checksum and journaled digest\n"
         "            verify and re-executes the rest — the merged report\n"
         "            is bit-identical to an uninterrupted run.\n"
         "            --worker-mem-limit installs an RLIMIT_AS guard in\n"
         "            each worker (auto = 8x the plan mem budget + 512M);\n"
         "            a worker that trips it is classified oom and retried.\n"
         "            --agents adds remote `kronotri agent` endpoints as\n"
         "            dispatch targets next to the local slots (--workers 0\n"
         "            runs purely remote; --workers auto = all cores); a\n"
         "            lost connection, garbled frame or missed heartbeat\n"
         "            re-dispatches the agent's in-flight units, and the\n"
         "            merged report stays bit-identical to a local run\n"
         "  agent     [--listen HOST:PORT] [--slots N|auto]\n"
         "            remote worker agent for `run --agents`: executes\n"
         "            dispatched run units in sandboxed local worker\n"
         "            processes (same RLIMIT_AS guard and fault-injection\n"
         "            surface as local workers) and streams back fragment\n"
         "            frames + trace buffers; default --listen\n"
         "            127.0.0.1:0 prints the resolved ephemeral port;\n"
         "            SIGINT/SIGTERM stops (children SIGKILLed)\n"
         "  serve     --socket PATH [--workers N] [--queue-depth D]\n"
         "            [--cache-bytes B[K|M|G]] [--mem-budget B[K|M|G]]\n"
         "            [--idle-timeout SECONDS] [--state DIR] [--trace FILE]\n"
         "            run as a long-lived analysis daemon on a unix socket\n"
         "            (newline-delimited JSON protocol): bounded job queue\n"
         "            over a worker pool, admission control (full queue and\n"
         "            over-budget plans are rejected with a reason, never\n"
         "            queued), and a deterministic LRU result cache that\n"
         "            replays repeated plans byte-for-byte; SIGINT/SIGTERM\n"
         "            (or --idle-timeout) drains gracefully — in-flight\n"
         "            jobs finish and their responses are delivered.\n"
         "            --state DIR journals every admitted submit and, on\n"
         "            restart, replays the ones that never finished (a\n"
         "            kill -9 loses no admitted work); a stale socket file\n"
         "            left by a dead server is probed and reclaimed, a\n"
         "            LIVE server on the socket refuses the second serve\n"
         "  submit    --socket PATH --plan FILE|STRING [--json FILE]\n"
         "            [--connect-timeout SECS] [--request-timeout SECS]\n"
         "            [--retries R]\n"
         "            --socket PATH --stats\n"
         "            submit a run plan to a serving daemon and print the\n"
         "            response (the RunReport plus cache/latency metadata),\n"
         "            or fetch server stats; exit 0 only when the plan ran\n"
         "            (or replayed) and every analysis passed; connect\n"
         "            failures retry R times with backoff, and a hung\n"
         "            server surfaces as a --request-timeout error instead\n"
         "            of blocking forever\n"
         "  generate  --type FAMILY | --spec SPEC, --out FILE\n"
         "            [--n N] [--m M] [--p P] [--scale S] [--seed S]\n"
         "            [--loops] [--prune] [--stream] [--threads T]\n"
         "            [--format text|binary] [--list]\n"
         "            write a graph as an edge list via the generator\n"
         "            registry; --list prints every registered family;\n"
         "            --prune applies the §III.D(a) reduction to Δ ≤ 1;\n"
         "            --stream writes a 2-factor kron spec straight from\n"
         "            the partitioned edge stream (never materializing C),\n"
         "            fanning out over --threads partitions\n"
         "  census    --a FILE [--b FILE] [--loops-b] [--truth FILE] [--sample K]\n"
         "            exact V/E/triangle census of A, B and C = A ⊗ B;\n"
         "            --truth writes per-vertex counts of sampled product\n"
         "            vertices (all factor-A blocks if omitted --sample)\n"
         "  validate  --a FILE [--b FILE] [--loops-b] --claims FILE\n"
         "            diff claimed per-vertex triangle counts of C against\n"
         "            the oracle; exit 1 on any mismatch\n"
         "            --spec SPEC [--mem-budget BYTES[K|M|G]] [--shards N]\n"
         "            [--json FILE] [--trace FILE]\n"
         "            sharded streaming census of the product SPEC describes\n"
         "            (C is never materialized; shards sized to the budget),\n"
         "            checked per-vertex AND per-edge against the closed\n"
         "            forms; exit 1 unless every count matches\n"
         "  egonet    --a FILE [--b FILE] [--loops-b] --vertex P\n"
         "            materialize the egonet of product vertex P and check\n"
         "            it against the formulas (Fig. 7 protocol)\n"
         "  truss     --graph FILE  (direct decomposition)\n"
         "            --a FILE --b FILE (Thm 3 oracle; B must have Δ_B ≤ 1)\n";
}

namespace {

/// Builds the GraphSpec a `generate` invocation describes: --spec verbatim,
/// or legacy --type plus the classic parameter flags folded into params.
api::GraphSpec generate_spec(const util::Cli& flags) {
  if (flags.has("spec")) return api::GraphSpec::parse(flags.get("spec", ""));
  const std::string type = flags.get("type", "hk");
  if (type == "kron") {
    throw std::invalid_argument(
        "--type kron needs factor specs; use --spec "
        "\"kron:(spec)x(spec)\" instead");
  }
  if (!api::GeneratorRegistry::builtin().contains(type)) {
    throw std::invalid_argument("unknown --type " + type +
                                " (see generate --list)");
  }
  api::GraphSpec spec;
  spec.family = type;
  spec.params["n"] = std::to_string(flags.get_uint("n", 1000));
  spec.params["m"] = std::to_string(flags.get_uint("m", 3));
  spec.params["ef"] = spec.params["m"];  // rmat reads the edge factor as ef
  spec.params["p"] = flags.get("p", "0.5");
  spec.params["seed"] = std::to_string(flags.get_uint("seed", 1));
  spec.params["scale"] = std::to_string(flags.get_uint("scale", 10));
  for (const char* key : {"a", "b", "c", "d"}) {
    if (flags.has(key)) spec.params[key] = flags.get(key, "");
  }
  return spec;
}

}  // namespace

int cmd_generate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  const auto& registry = api::GeneratorRegistry::builtin();
  if (flags.has("list")) {
    util::Table t({"family", "parameters"});
    for (const auto& [name, help] : registry.families()) t.row({name, help});
    t.print(out);
    out << "universal modifier params: loops=1 (A + I), prune=1 (Δ ≤ 1)\n";
    return 0;
  }
  const std::string path = flags.get("out", "");
  if (path.empty()) {
    err << "generate: --out is required\n";
    return 2;
  }
  api::GraphSpec spec = generate_spec(flags);
  if (flags.has("prune")) {
    spec.params["prune"] = "1";
    if (!spec.has("seed")) spec.params["seed"] = std::to_string(
        flags.get_uint("seed", 1));
  }
  if (flags.has("loops")) spec.params["loops"] = "1";

  api::RunPlan plan;
  plan.options.output = path;
  plan.options.format = flags.get("format", "text");

  // Streaming path: a 2-factor kron spec goes straight from the partitioned
  // edge stream into a file sink — C is never materialized. Refusing the
  // other combinations (rather than quietly materializing) matters: the
  // whole point of --stream is products too large to materialize.
  if (flags.get_bool("stream", false)) {
    if (!spec.is_kron() || spec.factors.size() != 2 ||
        spec.get_bool("prune", false) || spec.get_bool("loops", false)) {
      err << "generate: --stream requires a 2-factor kron spec without "
             "loops/prune modifiers (got \""
          << spec.to_string() << "\"); drop --stream to materialize\n";
      return 2;
    }
    plan.spec = std::move(spec);
    plan.options.stream = true;
    // --threads 0 = hardware concurrency (the stream_parallel contract).
    plan.options.threads =
        static_cast<unsigned>(flags.get_uint("threads", 1));
    const api::RunReport report = run_plan(plan);
    out << "streamed " << path << (report.partitions > 1 ? ".part*" : "")
        << ": " << report.num_vertices << " vertices, "
        << report.stored_entries << " stored entries across "
        << report.partitions << " partition"
        << (report.partitions > 1 ? "s" : "") << "\n";
    return 0;
  }

  // Materialized path: the engine builds the graph, writes the edge list,
  // and the census analysis supplies the exact triangle count.
  plan.spec = std::move(spec);
  plan.analyses.push_back({"census", {}});
  const api::RunReport report = run_plan(plan);
  count_t triangles = 0;
  if (const auto* t = report.analyses.front().data.find("total_triangles")) {
    triangles = t->as_uint();
  }
  out << "wrote " << path << ": " << report.num_vertices << " vertices, "
      << report.num_undirected_edges << " edges, " << triangles
      << " triangles\n";
  return 0;
}

int cmd_census(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a")) {
    err << "census: --a is required\n";
    return 2;
  }
  api::RunPlan plan;
  plan.spec = factors_spec(flags);
  api::AnalysisRequest census{"census", {}};
  if (flags.has("truth")) {
    // The analysis streams the (sampled) ground-truth rows straight to the
    // file — constant memory even for product-sized dumps.
    census.params["truth_file"] = flags.get("truth", "");
    if (flags.has("sample")) {
      census.params["sample"] = flags.get("sample", "0");
    }
  }
  plan.analyses.push_back(std::move(census));
  const api::RunReport report = run_plan(plan);
  const api::AnalysisReport& ar = report.analyses.front();
  out << ar.text;
  out << "census time: " << ar.wall_s << " s\n";

  if (flags.has("truth")) {
    const auto* rows = ar.data.find("ground_truth_rows");
    out << "wrote " << (rows == nullptr ? 0 : rows->as_uint())
        << " ground-truth rows to " << flags.get("truth", "") << "\n";
  }
  return 0;
}

namespace {

/// The streaming half of `validate`: sharded census of the product a spec
/// describes, checked against the closed-form predictions, never
/// materializing C.
int validate_spec(const util::Cli& flags, std::ostream& out,
                  std::ostream& err) {
  const TraceScope trace(flags, "kronotri validate", err);
  api::RunPlan plan;
  plan.spec = api::GraphSpec::parse(flags.get("spec", ""));
  api::AnalysisRequest req{"validate", {}};
  if (flags.has("mem-budget")) {
    req.params["mem_budget"] = flags.get("mem-budget", "");
  }
  if (flags.has("shards")) req.params["shards"] = flags.get("shards", "0");
  plan.analyses.push_back(std::move(req));
  const api::RunReport report = run_plan(plan);
  const api::AnalysisReport& ar = report.analyses.front();
  out << ar.text;
  if (flags.has("json")) {
    std::ofstream json(flags.get("json", ""));
    if (!json) {
      err << "validate: cannot open --json file\n";
      return 2;
    }
    ar.data.dump(json);
    json << "\n";
  }
  return ar.pass ? 0 : 1;
}

}  // namespace

int cmd_validate(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (flags.has("spec")) return validate_spec(flags, out, err);
  if (!flags.has("a") || !flags.has("claims")) {
    err << "validate: --spec, or --a and --claims, is required\n";
    return 2;
  }
  const TraceScope trace(flags, "kronotri validate", err);
  // Claims mode: read the claims first, then ask the census analysis for
  // ground truth at exactly the claimed vertices — claim-sized work, never
  // the full n_A·n_B vector. The diff itself is presentation only.
  std::ifstream in(flags.get("claims", ""));
  if (!in) {
    err << "validate: cannot open claims file\n";
    return 2;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> claims;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t p = 0, claimed = 0;
    if (!(ls >> p >> claimed)) {
      err << "validate: bad claims line: " << line << "\n";
      return 2;
    }
    claims.emplace_back(p, claimed);
  }

  std::string vertex_list;
  for (const auto& [p, claimed] : claims) {
    if (!vertex_list.empty()) vertex_list += ';';
    vertex_list += std::to_string(p);
  }
  api::RunPlan plan;
  plan.spec = factors_spec(flags);
  plan.analyses.push_back({"census", {{"vertices", vertex_list}}});
  const api::RunReport report = run_plan(plan);
  std::map<std::uint64_t, count_t> expected;
  if (const auto* truth =
          report.analyses.front().data.find("ground_truth")) {
    for (const auto& row : truth->items()) {
      expected[row.items()[0].as_uint()] = row.items()[1].as_uint();
    }
  }

  count_t checked = 0, wrong = 0;
  for (const auto& [p, claimed] : claims) {
    ++checked;
    const auto it = expected.find(p);
    if (it == expected.end()) {
      // A claim at a vertex the product does not have can never validate.
      ++wrong;
      if (wrong <= 10) {
        out << "MISMATCH at vertex " << p << ": claimed " << claimed
            << ", vertex out of range\n";
      }
      continue;
    }
    if (claimed != it->second) {
      ++wrong;
      if (wrong <= 10) {
        out << "MISMATCH at vertex " << p << ": claimed " << claimed
            << ", exact " << it->second << "\n";
      }
    }
  }
  out << checked << " claims checked, " << wrong << " wrong — "
      << (wrong == 0 ? "PASS" : "FAIL") << "\n";
  return wrong == 0 ? 0 : 1;
}

int cmd_egonet(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (!flags.has("a") || !flags.has("vertex")) {
    err << "egonet: --a and --vertex are required\n";
    return 2;
  }
  api::RunPlan plan;
  plan.spec = factors_spec(flags);
  plan.analyses.push_back(
      {"egonet", {{"vertex", flags.get("vertex", "0")}}});
  try {
    const api::RunReport report = run_plan(plan);
    out << report.analyses.front().text;
    return report.pass ? 0 : 1;
  } catch (const std::out_of_range& e) {
    err << "egonet: " << e.what() << "\n";
    return 2;
  }
}

int cmd_truss(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  api::RunPlan plan;
  if (flags.has("graph")) {
    plan.spec =
        graph_arg_spec(flags.get("graph", ""), flags.has("symmetrize"), true);
    plan.analyses.push_back({"truss", {}});
  } else if (flags.has("a") && flags.has("b")) {
    api::GraphSpec a =
        graph_arg_spec(flags.get("a", ""), flags.has("symmetrize"), true);
    api::GraphSpec b =
        graph_arg_spec(flags.get("b", ""), flags.has("symmetrize"), true);
    plan.spec.family = "kron";
    plan.spec.factors = {std::move(a), std::move(b)};
    plan.analyses.push_back({"truss", {{"oracle", "1"}}});
  } else {
    err << "truss: need --graph, or --a and --b\n";
    return 2;
  }
  const api::RunReport report = run_plan(plan);
  out << report.analyses.front().text;
  return report.pass ? 0 : 1;
}

int cmd_run(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  if (flags.has("list")) {
    util::Table t({"analysis", "parameters"});
    for (const auto& [name, help] :
         api::AnalysisRegistry::builtin().families()) {
      t.row({name, help});
    }
    t.print(out);
    return 0;
  }
  const std::string arg = flags.get("plan", "");
  if (arg.empty()) {
    err << "run: --plan FILE|STRING is required (see `run --list` for "
           "analyses)\n";
    return 2;
  }
  // A readable file is parsed as its contents; anything else is parsed as
  // an inline plan (JSON document or shorthand).
  std::string text = arg;
  if (std::ifstream file(arg); file.good()) {
    std::stringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }
  api::RunPlan plan = api::RunPlan::parse(text);

  // Flags override the plan's execution options.
  if (flags.has("threads")) {
    plan.options.threads =
        static_cast<unsigned>(flags.get_uint("threads", plan.options.threads));
  }
  if (flags.has("batch")) {
    plan.options.batch_size =
        flags.get_uint("batch", plan.options.batch_size);
  }
  if (flags.has("out")) plan.options.output = flags.get("out", "");
  if (flags.has("format")) {
    plan.options.format = flags.get("format", plan.options.format);
  }
  if (flags.has("workers")) {
    // "auto" resolves to the machine's hardware concurrency — the same
    // resolution `agent --slots auto` uses; the resolved value is
    // stamped into the report's metadata as runner_workers.
    const std::string w = flags.get("workers", "");
    plan.options.workers =
        w == "auto" ? net::parse_slots(w)
                    : static_cast<unsigned>(
                          flags.get_uint("workers", plan.options.workers));
  }
  if (flags.has("shard-timeout")) {
    plan.options.shard_timeout_s =
        flags.get_double("shard-timeout", plan.options.shard_timeout_s);
  }
  if (flags.has("max-retries")) {
    plan.options.max_retries = static_cast<unsigned>(
        flags.get_uint("max-retries", plan.options.max_retries));
  }
  if (flags.has("fault")) plan.options.fault = flags.get("fault", "");

  runner::Options ropt = runner::options_from(plan);
  if (flags.has("agents")) {
    // Comma-separated remote agent endpoints; each advertised slot is one
    // more dispatch target next to the local --workers slots (--workers 0
    // runs purely remote).
    std::stringstream list(flags.get("agents", ""));
    std::string ep;
    while (std::getline(list, ep, ',')) {
      if (!ep.empty()) ropt.agents.push_back(ep);
    }
    if (ropt.agents.empty()) {
      err << "run: --agents requires HOST:PORT[,HOST:PORT...]\n";
      return 2;
    }
  }
  ropt.journal_dir = flags.get("journal", "");
  ropt.resume = flags.has("resume");
  if (ropt.resume && ropt.journal_dir.empty()) {
    err << "run: --resume requires --journal DIR\n";
    return 2;
  }
  if (flags.has("worker-mem-limit")) {
    const std::string v = flags.get("worker-mem-limit", "");
    // "auto" derives the RLIMIT_AS guard from the plan's mem budget plus
    // headroom for the runtime itself; anything else is an explicit byte
    // count (K/M/G suffixes accepted).
    ropt.worker_mem_limit_bytes =
        v == "auto" ? plan.options.mem_budget_bytes * 8 + (512ull << 20)
                    : util::parse_byte_count(v);
  }

  const TraceScope trace(flags, "kronotri run", err);

  // workers > 1 — or any durable run — routes through the fault-tolerant
  // multi-process runner; runner::execute itself degrades back to
  // api::run when it must.
  const bool use_runner = plan.options.workers > 1 ||
                          !ropt.journal_dir.empty() || !ropt.agents.empty();
  const api::RunReport report =
      use_runner ? runner::execute(plan, ropt) : run_plan(plan);
  report.print(out);
  if (flags.has("json")) {
    std::ofstream json(flags.get("json", ""));
    if (!json) {
      err << "run: cannot open --json file\n";
      return 2;
    }
    report.to_json().dump(json);
    json << "\n";
  }
  return report.pass ? 0 : 1;
}

int cmd_worker(const util::Cli& flags, std::ostream&, std::ostream& err) {
  const std::string plan_file = flags.get("plan-file", "");
  const std::string out_path = flags.get("out", "");
  if (plan_file.empty() || out_path.empty()) {
    err << "__worker: --plan-file and --out are required\n";
    return 2;
  }
  const auto unit = flags.get_uint("unit", 0);
  const auto attempt = flags.get_uint("attempt", 0);
  // Trace context arrives through the hidden argv: the coordinator hands
  // each attempt a scratch path; the worker records on the shared
  // CLOCK_MONOTONIC axis and dumps its buffer there for stitching. A
  // worker that dies mid-run just leaves no file — the coordinator
  // tolerates that.
  const std::string trace_out = flags.get("trace-out", "");
  if (!trace_out.empty()) {
    obs::TraceRecorder& rec = obs::TraceRecorder::instance();
    rec.set_enabled(true);
    rec.set_process_name("kronotri worker unit " + std::to_string(unit));
  }
  try {
    // Resource guard: the coordinator hands down an RLIMIT_AS ceiling, so
    // a worker whose allocations run away dies HERE — std::bad_alloc
    // caught below and converted to the dedicated oom exit code — instead
    // of dragging the whole box into swap.
    if (const auto limit = flags.get_uint("mem-limit", 0); limit > 0) {
      struct rlimit rl {};
      rl.rlim_cur = static_cast<rlim_t>(limit);
      rl.rlim_max = static_cast<rlim_t>(limit);
      (void)::setrlimit(RLIMIT_AS, &rl);
    }

    std::ifstream in(plan_file);
    if (!in) {
      err << "__worker: cannot read " << plan_file << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const api::RunPlan plan = api::RunPlan::parse(buf.str());

    // Injected faults fire at exact (unit, attempt) coordinates, before
    // or after the real work, so every coordinator recovery path is
    // reachable from a spec string alone.
    const util::fault::Injector inj =
        flags.has("fault") ? util::fault::Injector(flags.get("fault", ""))
                           : util::fault::Injector::from_env();
    if (inj.match("kill", unit, attempt) != nullptr) {
      ::raise(SIGKILL);
    }
    if (const auto* a = inj.match("exit", unit, attempt)) {
      std::_Exit(a->code);
    }
    if (const auto* a = inj.match("stall", unit, attempt)) {
      util::Backoff::sleep_s(a->secs);
    }
    if (inj.match("oom", unit, attempt) != nullptr) {
      // Exercises the exact guard path a real RLIMIT_AS trip takes.
      throw std::bad_alloc();
    }

    api::RunReport report;
    {
      obs::Span span("worker:run");
      span.arg("unit", unit).arg("attempt", attempt);
      report = api::run(plan);
    }
    std::string frame =
        util::journal::encode_frame(report.to_json().dump_string(0));
    if (inj.match("truncate", unit, attempt) != nullptr) {
      frame.resize(frame.size() / 2);
    }
    std::ofstream out_file(out_path, std::ios::binary | std::ios::trunc);
    out_file << frame;
    out_file.flush();
    if (!out_file) {
      err << "__worker: cannot write " << out_path << "\n";
      return 4;
    }
    if (!trace_out.empty()) {
      obs::TraceRecorder::instance().export_file(trace_out);
    }
    return 0;
  } catch (const std::bad_alloc&) {
    // The RLIMIT_AS guard (or the oom fault) tripped. A dedicated exit
    // code keeps "ran out of memory" distinguishable from every other
    // nonzero exit in the coordinator's worker_events.
    std::_Exit(runner::kOomExitCode);
  } catch (const std::exception& e) {
    err << "__worker: " << e.what() << "\n";
    return 3;
  }
}

namespace {

// Written by the SIGINT/SIGTERM handler, polled by cmd_serve's wait loop.
// sig_atomic_t + no locks: the handler does nothing else.
volatile std::sig_atomic_t g_serve_stop = 0;
void serve_signal_handler(int) { g_serve_stop = 1; }

}  // namespace

int cmd_serve(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  const std::string socket_path = flags.get("socket", "");
  if (socket_path.empty()) {
    err << "serve: --socket PATH is required\n";
    return 2;
  }
  service::ServerOptions opt;
  opt.socket_path = socket_path;
  opt.state_dir = flags.get("state", "");
  opt.workers = static_cast<unsigned>(flags.get_uint("workers", opt.workers));
  opt.queue_depth = static_cast<std::size_t>(
      flags.get_uint("queue-depth", opt.queue_depth));
  if (flags.has("cache-bytes")) {
    opt.cache_bytes = util::parse_byte_count(flags.get("cache-bytes", "64M"));
  }
  if (flags.has("mem-budget")) {
    opt.mem_budget_bytes =
        util::parse_byte_count(flags.get("mem-budget", "1G"));
  }
  const double idle_timeout_s = flags.get_double("idle-timeout", 0);

  const TraceScope trace(flags, "kronotri serve", err);
  service::Server server(opt);
  server.start();
  out << "kronotri: serving on " << socket_path << " (workers=" << opt.workers
      << " queue-depth=" << opt.queue_depth
      << " cache-bytes=" << opt.cache_bytes
      << " mem-budget=" << opt.mem_budget_bytes << ")" << std::endl;

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::string reason = "signal";
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (idle_timeout_s > 0 && server.seconds_idle() >= idle_timeout_s) {
      reason = "idle-timeout";
      break;
    }
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  out << "kronotri: " << reason << ", draining" << std::endl;
  server.stop();  // graceful: in-flight jobs complete, responses delivered
  out << "kronotri: drained; final stats:\n";
  server.stats_json().dump(out);
  out << "\n";
  return 0;
}

int cmd_agent(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  net::AgentOptions opt;
  try {
    const net::Endpoint ep = net::parse_endpoint(flags.get("listen", "127.0.0.1:0"));
    if (ep.kind != net::Endpoint::Kind::kTcp) {
      err << "agent: --listen takes HOST:PORT (PORT 0 = ephemeral)\n";
      return 2;
    }
    opt.host = ep.host;
    opt.port = ep.port;
    opt.slots = net::parse_slots(flags.get("slots", "auto"));
  } catch (const std::invalid_argument& e) {
    err << "agent: " << e.what() << "\n";
    return 2;
  }

  net::Agent agent(opt);
  std::string error;
  if (!agent.start(&error)) {
    err << "agent: " << error << "\n";
    return 1;
  }
  // The resolved endpoint goes to stdout first thing so scripts starting
  // an ephemeral-port agent can scrape the port.
  out << "agent listening on " << agent.endpoint()
      << " (slots=" << agent.slots() << ")" << std::endl;

  g_serve_stop = 0;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  out << "agent: signal, stopping" << std::endl;
  agent.stop();  // disconnects coordinators, SIGKILLs their children
  return 0;
}

int cmd_submit(const util::Cli& flags, std::ostream& out, std::ostream& err) {
  const std::string socket_path = flags.get("socket", "");
  if (socket_path.empty()) {
    err << "submit: --socket PATH is required\n";
    return 2;
  }
  service::ClientOptions copt;
  copt.connect_timeout_s =
      flags.get_double("connect-timeout", copt.connect_timeout_s);
  copt.request_timeout_s =
      flags.get_double("request-timeout", copt.request_timeout_s);
  // --retries R = R extra connect attempts after the first.
  copt.connect_attempts = static_cast<unsigned>(
      flags.get_uint("retries", copt.connect_attempts - 1) + 1);
  service::Client client(copt);
  client.connect(socket_path);

  if (flags.has("stats")) {
    const util::json::Value response = client.stats();
    response.dump(out);
    out << "\n";
    return response.get_bool("ok", false) ? 0 : 1;
  }

  const std::string arg = flags.get("plan", "");
  if (arg.empty()) {
    err << "submit: --plan FILE|STRING is required (or --stats)\n";
    return 2;
  }
  // Same convention as `run`: a readable file is submitted as its contents,
  // anything else as an inline plan (JSON document or shorthand). Parsing
  // happens server-side.
  std::string text = arg;
  if (std::ifstream file(arg); file.good()) {
    std::stringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }
  const util::json::Value response = client.submit_text(text);
  response.dump(out);
  out << "\n";
  if (flags.has("json")) {
    std::ofstream json(flags.get("json", ""));
    if (!json) {
      err << "submit: cannot open --json file\n";
      return 2;
    }
    response.dump(json);
    json << "\n";
  }
  if (!response.get_bool("ok", false)) return 1;
  const util::json::Value* report = response.find("report");
  return (report != nullptr && report->get_bool("pass", false)) ? 0 : 1;
}

int run(int argc, char** argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    usage(err);
    return 2;
  }
  const std::string command = argv[1];
  const util::Cli flags(argc - 1, argv + 1);
  try {
    if (command == "run") return cmd_run(flags, out, err);
    if (command == "serve") return cmd_serve(flags, out, err);
    if (command == "agent") return cmd_agent(flags, out, err);
    if (command == "submit") return cmd_submit(flags, out, err);
    if (command == "generate") return cmd_generate(flags, out, err);
    if (command == "census") return cmd_census(flags, out, err);
    if (command == "validate") return cmd_validate(flags, out, err);
    if (command == "egonet") return cmd_egonet(flags, out, err);
    if (command == "truss") return cmd_truss(flags, out, err);
    if (command == "__worker") return cmd_worker(flags, out, err);
    if (command == "help" || command == "--help") {
      usage(out);
      return 0;
    }
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << "\n";
    return 1;
  }
  err << "unknown command: " << command << "\n";
  usage(err);
  return 2;
}

}  // namespace kronotri::cli
