// The one clock source behind every wall/CPU measurement in the repo.
//
// Three timing paths used to coexist — util::WallTimer (steady_clock),
// util::CpuTimer (CLOCK_PROCESS_CPUTIME_ID) and the service metrics'
// stopwatches — each reading its own clock its own way. obs::Stopwatch
// dedups them: one type reads both clocks, trace spans and report timings
// quote the same time base, and util::{Wall,Cpu}Timer are thin shims over
// it (kept so benches and examples compile unchanged).
//
// Wall time is CLOCK_MONOTONIC, deliberately NOT steady_clock-as-abstract:
// on Linux CLOCK_MONOTONIC is shared across fork/exec, so the trace
// timestamps a fork'd worker records (obs::now_us) land on the SAME axis
// as the coordinator's — the property that lets the flight recorder stitch
// worker timelines under the coordinator's without clock negotiation.
#pragma once

#include <ctime>

namespace kronotri::obs {

/// Microseconds on the process-shared monotonic clock — the trace-event
/// timestamp base (Chrome trace `ts`/`dur` are microseconds).
[[nodiscard]] inline double now_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

/// Summed CPU seconds of every thread in the process. Wall on an
/// oversubscribed box measures the scheduler; CPU seconds measure the work.
[[nodiscard]] inline double cpu_now_s() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Wall + process-CPU stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : wall_start_us_(now_us()), cpu_start_s_(cpu_now_s()) {}

  void reset() noexcept {
    wall_start_us_ = now_us();
    cpu_start_s_ = cpu_now_s();
  }

  [[nodiscard]] double wall_s() const noexcept {
    return (now_us() - wall_start_us_) * 1e-6;
  }
  [[nodiscard]] double wall_ms() const noexcept { return wall_s() * 1e3; }
  [[nodiscard]] double cpu_s() const noexcept {
    return cpu_now_s() - cpu_start_s_;
  }

  /// The start instant on the now_us() axis — what a trace span records as
  /// its `ts` so span timing and report timing agree to the microsecond.
  [[nodiscard]] double start_us() const noexcept { return wall_start_us_; }

 private:
  double wall_start_us_;
  double cpu_start_s_;
};

}  // namespace kronotri::obs
