#include "obs/counters.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace kronotri::obs {

std::uint64_t Gauge::to_bits(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double Gauge::from_bits(std::uint64_t b) noexcept {
  double v = 0;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

// std::map keeps node addresses stable across inserts — the contract that
// lets hot paths cache Counter&/Gauge& across registry growth.
struct CounterRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
};

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry reg;
  return reg;
}

CounterRegistry::Impl& CounterRegistry::impl() const {
  static Impl impl;
  return impl;
}

Counter& CounterRegistry::counter(std::string_view name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& CounterRegistry::gauge(std::string_view name) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  auto it = i.gauges.find(name);
  if (it == i.gauges.end()) {
    it = i.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

util::json::Value CounterRegistry::snapshot() const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  util::json::Value out = util::json::Value::object();
  for (const auto& [name, c] : i.counters) {
    const std::uint64_t v = c->value();
    if (v != 0) out.set(name, v);
  }
  for (const auto& [name, g] : i.gauges) {
    const double v = g->value();
    if (v != 0.0) out.set(name, v);
  }
  return out;
}

util::json::Value CounterRegistry::delta(const util::json::Value& start,
                                         const util::json::Value& end) {
  util::json::Value out = util::json::Value::object();
  if (!end.is_object()) return out;
  for (const auto& [name, v] : end.members()) {
    if (v.kind() == util::json::Value::Kind::kUInt) {
      std::uint64_t base = 0;
      if (const util::json::Value* s = start.find(name);
          s && s->kind() == util::json::Value::Kind::kUInt) {
        base = s->as_uint();
      }
      const std::uint64_t now = v.as_uint();
      if (now > base) out.set(name, now - base);
    } else {
      // Gauges are levels, not accumulators: report the end value.
      out.set(name, v);
    }
  }
  return out;
}

void CounterRegistry::reset() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, g] : i.gauges) g->reset();
}

}  // namespace kronotri::obs
