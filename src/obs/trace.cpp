#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include <unistd.h>

namespace kronotri::obs {

namespace {

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

// The recorder owns every buffer (thread exit must not free events that
// export will read); threads hold a raw thread_local pointer handed out
// once under the registry mutex.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry;  // leak: threads may outlive statics
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    buf = r.buffers.back().get();
    buf->tid = r.next_tid++;
  }
  return *buf;
}

util::json::Value event_to_json(const TraceEvent& ev, std::int64_t self_pid) {
  util::json::Value j = util::json::Value::object();
  j.set("name", ev.name);
  j.set("ph", std::string(1, ev.phase));
  j.set("ts", ev.ts_us);
  if (ev.phase == 'X') j.set("dur", ev.dur_us);
  j.set("pid", ev.pid != 0 ? ev.pid : self_pid);
  j.set("tid", static_cast<std::uint64_t>(ev.tid));
  if (ev.phase == 'i') j.set("s", "t");  // thread-scoped instant
  if (!ev.args.is_null()) j.set("args", ev.args);
  return j;
}

bool event_from_json(const util::json::Value& j, TraceEvent& ev) {
  const util::json::Value* name = j.find("name");
  const util::json::Value* ph = j.find("ph");
  if (!name || !name->is_string() || !ph || !ph->is_string() ||
      ph->as_string().size() != 1) {
    return false;
  }
  ev.name = name->as_string();
  ev.phase = ph->as_string()[0];
  if (const util::json::Value* v = j.find("ts"); v && v->is_number()) {
    ev.ts_us = v->as_double();
  }
  if (const util::json::Value* v = j.find("dur"); v && v->is_number()) {
    ev.dur_us = v->as_double();
  }
  if (const util::json::Value* v = j.find("pid"); v && v->is_number()) {
    ev.pid = v->as_int();
  }
  if (const util::json::Value* v = j.find("tid"); v && v->is_number()) {
    ev.tid = static_cast<std::uint32_t>(v->as_uint());
  }
  if (const util::json::Value* v = j.find("args")) ev.args = *v;
  return true;
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* rec = new TraceRecorder;
  return *rec;
}

void TraceRecorder::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

void TraceRecorder::record(TraceEvent ev) {
  ThreadBuffer& buf = local_buffer();
  if (ev.tid == 0) ev.tid = buf.tid;
  buf.events.push_back(std::move(ev));
}

void TraceRecorder::complete(std::string_view name, double start_us,
                             double dur_us, util::json::Value args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'X';
  ev.ts_us = start_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceRecorder::complete_on(std::uint32_t tid, std::string_view name,
                                double start_us, double dur_us,
                                util::json::Value args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'X';
  ev.ts_us = start_us;
  ev.dur_us = dur_us;
  ev.tid = tid;
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceRecorder::instant(std::string_view name, util::json::Value args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceRecorder::counter(std::string_view name, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name.assign(name);
  ev.phase = 'C';
  ev.ts_us = now_us();
  ev.args = util::json::Value::object();
  ev.args.set("value", value);
  record(std::move(ev));
}

void TraceRecorder::set_process_name(std::string_view name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "process_name";
  ev.phase = 'M';
  ev.ts_us = 0;
  ev.args = util::json::Value::object();
  ev.args.set("name", std::string(name));
  record(std::move(ev));
}

bool TraceRecorder::import_file(const std::string& path) {
  if (!enabled()) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return import_text(text.str(), /*host=*/{});
}

bool TraceRecorder::import_text(const std::string& json_text,
                                std::string_view host) {
  if (!enabled()) return false;
  util::json::Value doc;
  try {
    doc = util::json::Value::parse(json_text);
  } catch (const std::exception&) {
    return false;  // killed worker → truncated buffer; tolerate
  }
  const util::json::Value* events = doc.find("traceEvents");
  if (!events || !events->is_array()) return false;
  std::int64_t pid_band = 0;
  if (!host.empty()) {
    // Per-host pid band: a remote agent's worker pids can collide with
    // local ones, so foreign pids are shifted into a disjoint range (one
    // band per distinct host, stable for the recorder's lifetime) and the
    // host name lands in the process_name metadata.
    static std::mutex bands_mu;
    static std::vector<std::string>* bands = new std::vector<std::string>;
    const std::lock_guard<std::mutex> lock(bands_mu);
    std::size_t idx = 0;
    while (idx < bands->size() && (*bands)[idx] != host) ++idx;
    if (idx == bands->size()) bands->emplace_back(host);
    pid_band = static_cast<std::int64_t>(idx + 1) * 10'000'000;
  }
  std::vector<TraceEvent> imported;
  imported.reserve(events->size());
  for (const util::json::Value& j : events->items()) {
    TraceEvent ev;
    if (event_from_json(j, ev)) imported.push_back(std::move(ev));
  }
  ThreadBuffer& buf = local_buffer();
  for (TraceEvent& ev : imported) {
    if (ev.pid == 0) continue;  // refuse to masquerade as this process
    if (pid_band != 0) {
      ev.pid += pid_band;
      if (ev.phase == 'M' && ev.name == "process_name" &&
          ev.args.is_object()) {
        if (const util::json::Value* n = ev.args.find("name");
            n != nullptr && n->is_string()) {
          ev.args.set("name", n->as_string() + " @" + std::string(host));
        }
      }
    }
    buf.events.push_back(std::move(ev));
  }
  return true;
}

util::json::Value TraceRecorder::export_json() {
  const std::int64_t self = static_cast<std::int64_t>(::getpid());
  util::json::Value events = util::json::Value::array();
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const std::unique_ptr<ThreadBuffer>& buf : r.buffers) {
    for (const TraceEvent& ev : buf->events) {
      events.push_back(event_to_json(ev, self));
    }
  }
  util::json::Value doc = util::json::Value::object();
  doc.set("traceEvents", std::move(events));
  return doc;
}

bool TraceRecorder::export_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  export_json().dump(out, 0);
  out << "\n";
  return static_cast<bool>(out);
}

std::size_t TraceRecorder::event_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const std::unique_ptr<ThreadBuffer>& buf : r.buffers) {
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::clear() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const std::unique_ptr<ThreadBuffer>& buf : r.buffers) {
    buf->events.clear();
  }
}

Span::Span(std::string_view name) {
  if (!TraceRecorder::instance().enabled()) return;
  active_ = true;
  start_us_ = now_us();
  name_.assign(name);
}

Span::Span(std::string_view prefix, std::string_view suffix) {
  if (!TraceRecorder::instance().enabled()) return;
  active_ = true;
  start_us_ = now_us();
  name_.reserve(prefix.size() + suffix.size());
  name_.assign(prefix);
  name_.append(suffix);
}

Span::~Span() {
  if (!active_) return;
  TraceRecorder::instance().complete(name_, start_us_, now_us() - start_us_,
                                     std::move(args_));
}

Span& Span::arg(const char* key, util::json::Value v) {
  if (active_) args_.set(key, std::move(v));
  return *this;
}

}  // namespace kronotri::obs
