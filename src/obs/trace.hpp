// Flight recorder: Chrome trace-event spans/instants/counters with
// lock-free thread-local buffers, exported as Perfetto-loadable JSON.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. Every public entry point starts with
//      one relaxed atomic bool load; when false, nothing allocates — Span
//      keeps only string_views, arg() is a no-op, names are never
//      composed. Untraced runs (the default) must stay measurably
//      unchanged; the bench gates traced overhead ≤5%.
//   2. Lock-free recording. Each thread appends to its own buffer; the
//      recorder hands a thread its buffer once (one mutex acquisition per
//      thread lifetime) via a thread_local pointer and owns the storage,
//      so buffers survive thread exit and export after quiescence needs
//      no synchronization with writers.
//   3. Cross-process stitching. Timestamps are obs::now_us()
//      (CLOCK_MONOTONIC — fork/exec-shared on Linux), so a worker process
//      records with the same time axis as the coordinator, dumps its
//      buffer to a scratch file (export_file), and the coordinator
//      import_file()s it after reaping: one timeline keyed by real pids.
//
// The exported document is the Chrome trace-event JSON Object Format:
//   {"traceEvents":[{"name","ph","ts","dur","pid","tid","args"},...]}
// phases used: 'X' complete span, 'i' instant, 'C' counter, 'M' metadata
// (process_name). Load it at https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/stopwatch.hpp"
#include "util/json.hpp"

namespace kronotri::obs {

struct TraceEvent {
  std::string name;
  char phase = 'X';     // 'X' | 'i' | 'C' | 'M'
  double ts_us = 0;     // obs::now_us() axis
  double dur_us = 0;    // 'X' only
  std::int64_t pid = 0; // 0 = this process (stamped with getpid() at export)
  std::uint32_t tid = 0;
  util::json::Value args;  // null when empty
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Flips recording on/off. Off is the default; every record call bails
  /// on one relaxed load when off.
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// 'X' complete span on the calling thread's track.
  void complete(std::string_view name, double start_us, double dur_us,
                util::json::Value args = {});
  /// Same, but on an explicit synthetic track — for the coordinator's
  /// concurrently in-flight unit attempts, which would interleave (and
  /// break per-tid nesting) if they shared the event-loop thread's track.
  void complete_on(std::uint32_t tid, std::string_view name, double start_us,
                   double dur_us, util::json::Value args = {});
  /// 'i' instant marker (cache hits, retries, journal replay points).
  void instant(std::string_view name, util::json::Value args = {});
  /// 'C' counter sample — Perfetto draws these as a counter track.
  void counter(std::string_view name, double value);
  /// 'M' process_name metadata for this process's pid group.
  void set_process_name(std::string_view name);

  /// Parses a trace file a worker exported and adopts its events,
  /// preserving the recorded pid/tid. Returns false (and records nothing)
  /// if the file is missing or unparsable — a killed worker legitimately
  /// leaves no/truncated output, and stitching must not fail the run.
  bool import_file(const std::string& path);

  /// Same adoption from an in-memory document — the remote-agent path,
  /// where a worker's trace buffer crossed a socket instead of $TMPDIR.
  /// A non-empty `host` keys the import: foreign pids are shifted into a
  /// per-host band (remote pids may collide with local ones) and
  /// " @host" is appended to imported process_name metadata, so the
  /// stitched timeline reads host-by-host in Perfetto.
  bool import_text(const std::string& json_text, std::string_view host);

  /// {"traceEvents":[...]} — local events get ::getpid(), imported events
  /// keep theirs. Call after workers/threads have quiesced.
  [[nodiscard]] util::json::Value export_json();
  /// Writes export_json() to `path`; false on I/O failure.
  bool export_file(const std::string& path);

  [[nodiscard]] std::size_t event_count();
  /// Drops all recorded events (buffers stay registered). Test hygiene and
  /// the CLI's fresh-start on --trace.
  void clear();

 private:
  TraceRecorder() = default;
  void record(TraceEvent ev);

  std::atomic<bool> enabled_{false};
};

/// RAII scoped span. Construction snapshots now_us(); destruction emits a
/// complete event. When the recorder is disabled at construction the span
/// is inert: no name composition, no allocation, arg() no-ops.
class Span {
 public:
  explicit Span(std::string_view name);
  /// Two-part name (`prefix + suffix`, e.g. "analyze:" + name) composed
  /// only when recording is on — callers never build the string just to
  /// throw it away in the disabled case.
  Span(std::string_view prefix, std::string_view suffix);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key to the span's args. No-op when inert.
  Span& arg(const char* key, util::json::Value v);

  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  double start_us_ = 0;
  std::string name_;
  util::json::Value args_;
};

}  // namespace kronotri::obs
