// Process-wide counter/gauge registry.
//
// Counters are monotonically increasing u64s ("edges_streamed",
// "runner.retries"); gauges are last-write/max doubles ("queue_depth",
// "worker.max_rss_bytes"). Registration is mutex-protected and returns a
// stable reference (the registry never erases), so hot paths hold the
// reference and pay one relaxed atomic op per update — no lock, no lookup.
//
// Two consumers:
//   * RunReport.counters / serve stats "counters": snapshot() flattens the
//     registry into a util::json object (a delta vs a start snapshot for
//     per-run reporting, since the registry is process-global);
//   * the flight recorder: TraceRecorder::counter() emits 'C' events that
//     Perfetto renders as counter tracks alongside the spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace kronotri::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  /// Keep the maximum of the current value and `v` (peak-RSS style).
  void max_of(double v) noexcept {
    double cur = value();
    while (v > cur) {
      std::uint64_t expected = to_bits(cur);
      if (bits_.compare_exchange_weak(expected, to_bits(v),
                                      std::memory_order_relaxed)) {
        return;
      }
      cur = from_bits(expected);
    }
  }
  [[nodiscard]] double value() const noexcept {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { bits_.store(0, std::memory_order_relaxed); }

 private:
  static std::uint64_t to_bits(double v) noexcept;
  static double from_bits(std::uint64_t b) noexcept;
  std::atomic<std::uint64_t> bits_{0};
};

class CounterRegistry {
 public:
  static CounterRegistry& instance();

  /// Find-or-create; the returned reference is valid for the process
  /// lifetime (entries are never erased, values only reset).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Flat JSON object name → value. Counters dump as unsigned integers,
  /// gauges as doubles. Zero-valued entries are skipped so an untouched
  /// registry snapshots as {} and per-run deltas stay small.
  [[nodiscard]] util::json::Value snapshot() const;

  /// `now - start` for every counter (gauges report their current value).
  /// This is what lands in RunReport.counters: the registry is
  /// process-global, so a raw snapshot would leak counts across
  /// back-to-back runs (service worker loop, tests).
  [[nodiscard]] static util::json::Value delta(const util::json::Value& start,
                                               const util::json::Value& end);

  /// Zero every value (names and references stay valid). Test hygiene.
  void reset();

 private:
  CounterRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthands: obs::counter("runner.retries").add();
inline Counter& counter(std::string_view name) {
  return CounterRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return CounterRegistry::instance().gauge(name);
}

}  // namespace kronotri::obs
