#include "triangle/census.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/ops.hpp"

namespace kronotri::triangle {

namespace {

BoolCsr simple_part(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument(
        "triangle analytics (Def. 5/6) require an undirected graph");
  }
  return a.has_self_loops() ? ops::remove_diag(a.matrix()) : a.matrix();
}

}  // namespace

EdgeIdMap build_edge_ids(const BoolCsr& s) {
  const vid n = s.rows();
  std::vector<esz> base(n + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    const vid u = static_cast<vid>(uu);
    const auto row = s.row_cols(u);
    base[u + 1] = static_cast<esz>(
        row.end() - std::upper_bound(row.begin(), row.end(), u));
  }
  ops::prefix_sum_inplace(base);

  EdgeIdMap ids;
  ids.slot_id.assign(s.nnz(), 0);
  ids.ends.resize(base[n]);
#pragma omp parallel for schedule(dynamic, 256)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    const vid u = static_cast<vid>(uu);
    const auto row = s.row_cols(u);
    esz eid = base[u];
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid v = row[k];
      if (v <= u) continue;
      // Each undirected edge is owned by exactly one u (< v), so the two
      // slot writes below never collide across threads.
      ids.slot_id[s.row_ptr()[u] + k] = eid;
      ids.slot_id[s.find(v, u)] = eid;
      ids.ends[eid] = {u, v};
      ++eid;
    }
  }
  return ids;
}

CensusWorkspace::CensusWorkspace(const Graph& a, Detail detail)
    : s_(simple_part(a)), o_(orient_by_degree(s_)) {
  if (detail == Detail::kVertexOnly) return;
  ids_ = build_edge_ids(s_);
  // Oriented successor lists are subsequences of the (sorted) structure
  // rows, so a single linear merge per row maps every oriented slot to its
  // undirected edge id — no binary searches.
  oriented_eid_.resize(o_.succ.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(s_.rows()); ++uu) {
    const vid u = static_cast<vid>(uu);
    const auto row = s_.row_cols(u);
    const esz* const sid = ids_.slot_id.data() + s_.row_ptr()[u];
    std::size_t j = 0;
    for (esz k = o_.row_ptr[u]; k < o_.row_ptr[u + 1]; ++k) {
      while (row[j] != o_.succ[k]) ++j;
      oriented_eid_[k] = sid[j];
      ++j;
    }
  }
}

std::vector<count_t> CensusWorkspace::edge_census() const {
  const esz m = num_edges();
  std::vector<std::vector<count_t>> tls(census_workers());
  for (auto& t : tls) t.assign(m, 0);
  for_each_triangle(tls, [](std::vector<count_t>& t, vid, vid, vid, esz e1,
                            esz e2, esz e3) {
    ++t[e1];
    ++t[e2];
    ++t[e3];
  });
  std::vector<count_t> out(m, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < static_cast<std::int64_t>(m); ++e) {
    count_t acc = 0;
    for (const auto& t : tls) acc += t[static_cast<esz>(e)];
    out[static_cast<esz>(e)] = acc;
  }
  return out;
}

CountCsr CensusWorkspace::mirror_edge_counts(
    const std::vector<count_t>& per_edge) const {
  std::vector<count_t> vals(s_.nnz(), 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(s_.nnz()); ++k) {
    vals[static_cast<esz>(k)] = per_edge[ids_.slot_id[static_cast<esz>(k)]];
  }
  return CountCsr::from_parts(s_.rows(), s_.cols(), s_.row_ptr(), s_.col_idx(),
                              std::move(vals));
}

}  // namespace kronotri::triangle
