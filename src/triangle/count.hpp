// Exact undirected triangle analytics on a single graph.
//
// Implements Def. 5 / Def. 6 of the paper:
//   t_A = ½·diag((A − A∘I)³)          triangle participation at vertices,
//   Δ_A = (A − A∘I) ∘ (A − A∘I)²      triangle participation at edges,
// via a degree-ordered adjacency-intersection kernel (the Chiba–Nishizeki
// style "forward" algorithm the paper cites as [10]); self loops are ignored
// per the definitions. The kernel also reports the number of wedge checks
// performed — the work measure the paper quotes in §VI (7,734,429 wedge
// checks for web-NotreDame).
//
// All entry points run on the atomic-free census engine
// (triangle/census.hpp): thread-local accumulation indexed by vertex id and
// undirected edge id, reduced after enumeration — no per-triangle atomics
// or binary searches, bit-identical counts at every thread count.
#pragma once

#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"

namespace kronotri::triangle {

struct UndirectedStats {
  std::vector<count_t> per_vertex;  ///< t_A
  CountCsr per_edge;                ///< Δ_A (symmetric; structure = A − I∘A)
  count_t total = 0;                ///< τ(A) = ⅓·1ᵗt_A
  count_t wedge_checks = 0;         ///< merge comparisons performed
};

/// Full triangle analysis. Requires an undirected graph (throws otherwise);
/// self loops are stripped per Def. 5/6.
UndirectedStats analyze(const Graph& a);

/// t_A only (cheaper: no per-edge scatter).
std::vector<count_t> participation_vertices(const Graph& a);

/// Δ_A only.
CountCsr participation_edges(const Graph& a);

/// τ(A) only.
count_t count_total(const Graph& a);

/// diag(A³) including walks through self loops — the right-factor statistic
/// of Cor. 1 / Thm. 4 / Thm. 6 when B has self loops. Requires undirected.
std::vector<count_t> diag_cube(const Graph& a);

}  // namespace kronotri::triangle
