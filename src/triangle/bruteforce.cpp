#include "triangle/bruteforce.hpp"

#include <algorithm>

#include "core/ops.hpp"

namespace kronotri::triangle::brute {

namespace {

BoolCsr simple_part(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument("brute undirected oracle: graph is directed");
  }
  return a.has_self_loops() ? ops::remove_diag(a.matrix()) : a.matrix();
}

char vertex_role(const Graph& a, vid v, vid x) {
  const bool out = a.has_edge(v, x), in = a.has_edge(x, v);
  if (out && in) return 'u';
  return out ? 's' : 't';
}

char pair_direction(const Graph& a, vid u, vid w) {
  const bool fwd = a.has_edge(u, w), bwd = a.has_edge(w, u);
  if (fwd && bwd) return 'o';
  return fwd ? '+' : '-';
}

bool connected_any(const Graph& a, vid u, vid w) {
  return a.has_edge(u, w) || a.has_edge(w, u);
}

int role_rank(char r) { return r == 's' ? 0 : r == 'u' ? 1 : 2; }
char flip(char d) { return d == '+' ? '-' : d == '-' ? '+' : 'o'; }

VertexTriType classify_vertex(char r1, char r2, char d) {
  if (role_rank(r1) > role_rank(r2)) {
    std::swap(r1, r2);
    d = flip(d);
  }
  if (r1 == r2 && d == '-') d = '+';
  struct Key {
    char r1, r2, d;
    VertexTriType t;
  };
  static constexpr Key kKeys[] = {
      {'s', 's', '+', VertexTriType::kSSp}, {'s', 's', 'o', VertexTriType::kSSo},
      {'s', 'u', '+', VertexTriType::kSUp}, {'s', 'u', '-', VertexTriType::kSUm},
      {'s', 'u', 'o', VertexTriType::kSUo}, {'s', 't', '+', VertexTriType::kSTp},
      {'s', 't', '-', VertexTriType::kSTm}, {'s', 't', 'o', VertexTriType::kSTo},
      {'u', 'u', '+', VertexTriType::kUUp}, {'u', 'u', 'o', VertexTriType::kUUo},
      {'u', 't', '+', VertexTriType::kUTp}, {'u', 't', '-', VertexTriType::kUTm},
      {'u', 't', 'o', VertexTriType::kUTo}, {'t', 't', '+', VertexTriType::kTTp},
      {'t', 't', 'o', VertexTriType::kTTo},
  };
  for (const Key& k : kKeys) {
    if (k.r1 == r1 && k.r2 == r2 && k.d == d) return k.t;
  }
  throw std::logic_error("unreachable vertex flavor");
}

}  // namespace

std::vector<count_t> vertex_participation(const Graph& a) {
  const BoolCsr s = simple_part(a);
  const vid n = s.rows();
  std::vector<count_t> t(n, 0);
  for (vid v = 0; v < n; ++v) {
    const auto nb = s.row_cols(v);
    for (std::size_t x = 0; x < nb.size(); ++x) {
      for (std::size_t y = x + 1; y < nb.size(); ++y) {
        if (s.contains(nb[x], nb[y])) ++t[v];
      }
    }
  }
  return t;
}

CountCsr edge_participation(const Graph& a) {
  const BoolCsr s = simple_part(a);
  std::vector<count_t> vals(s.nnz(), 0);
  for (vid i = 0; i < s.rows(); ++i) {
    const auto row = s.row_cols(i);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid j = row[k];
      count_t c = 0;
      for (const vid w : s.row_cols(i)) {
        if (w != j && s.contains(j, w)) ++c;
      }
      vals[s.row_ptr()[i] + k] = c;
    }
  }
  return CountCsr::from_parts(s.rows(), s.cols(), s.row_ptr(), s.col_idx(),
                              std::move(vals));
}

count_t total(const Graph& a) {
  const std::vector<count_t> t = vertex_participation(a);
  count_t sum = 0;
  for (const count_t v : t) sum += v;
  return sum / 3;
}

std::array<std::vector<count_t>, kNumVertexTriTypes> directed_vertex_census(
    const Graph& a) {
  if (a.has_self_loops()) {
    throw std::invalid_argument("brute directed census: self loops present");
  }
  const Graph u = a.undirected_closure();
  const vid n = a.num_vertices();
  std::array<std::vector<count_t>, kNumVertexTriTypes> out;
  for (auto& v : out) v.assign(n, 0);
  for (vid v = 0; v < n; ++v) {
    const auto nb = u.neighbors(v);
    for (std::size_t x = 0; x < nb.size(); ++x) {
      for (std::size_t y = x + 1; y < nb.size(); ++y) {
        const vid p = nb[x], q = nb[y];
        if (!connected_any(a, p, q)) continue;
        const VertexTriType t = classify_vertex(
            vertex_role(a, v, p), vertex_role(a, v, q), pair_direction(a, p, q));
        ++out[static_cast<std::size_t>(t)][v];
      }
    }
  }
  return out;
}

std::array<CountCsr, kNumEdgeTriTypes> directed_edge_census(const Graph& a) {
  if (a.has_self_loops()) {
    throw std::invalid_argument("brute directed edge census: self loops");
  }
  const BoolCsr at = ops::transpose(a.matrix());
  const BoolCsr ar = ops::hadamard(at, a.matrix());
  const BoolCsr ad = ops::structural_difference(a.matrix(), ar);
  const Graph u = a.undirected_closure();

  // Flavor lookup for an exact (central, d1, d2) pattern; the three
  // non-canonical reciprocal patterns map to kNumEdgeTriTypes (skip).
  auto classify = [&](char central, char d1, char d2) -> int {
    struct Key {
      char c, d1, d2;
      EdgeTriType t;
    };
    static constexpr Key kKeys[] = {
        {'+', '+', '+', EdgeTriType::kDpp}, {'+', '+', '-', EdgeTriType::kDpm},
        {'+', '+', 'o', EdgeTriType::kDpo}, {'+', '-', '+', EdgeTriType::kDmp},
        {'+', '-', '-', EdgeTriType::kDmm}, {'+', '-', 'o', EdgeTriType::kDmo},
        {'+', 'o', '+', EdgeTriType::kDop}, {'+', 'o', '-', EdgeTriType::kDom},
        {'+', 'o', 'o', EdgeTriType::kDoo}, {'o', '+', '+', EdgeTriType::kRpp},
        {'o', '+', '-', EdgeTriType::kRpm}, {'o', '-', '+', EdgeTriType::kRmp},
        {'o', '+', 'o', EdgeTriType::kRpo}, {'o', '-', 'o', EdgeTriType::kRmo},
        {'o', 'o', 'o', EdgeTriType::kRoo},
    };
    for (const Key& k : kKeys) {
      if (k.c == central && k.d1 == d1 && k.d2 == d2) {
        return static_cast<int>(k.t);
      }
    }
    return kNumEdgeTriTypes;  // non-canonical reciprocal pattern
  };

  std::array<std::vector<count_t>, kNumEdgeTriTypes> vals;
  for (int f = 0; f < kNumEdgeTriTypes; ++f) {
    const bool directed_central = f < static_cast<int>(EdgeTriType::kRpp);
    vals[static_cast<std::size_t>(f)].assign(
        (directed_central ? ad : ar).nnz(), 0);
  }

  auto scan = [&](const BoolCsr& structure, char central) {
    for (vid i = 0; i < structure.rows(); ++i) {
      const auto row = structure.row_cols(i);
      for (std::size_t k = 0; k < row.size(); ++k) {
        const vid j = row[k];
        for (const vid w : u.neighbors(i)) {
          if (w == j || !connected_any(a, w, j)) continue;
          const char d1 = pair_direction(a, i, w);
          const char d2 = pair_direction(a, w, j);
          const int f = classify(central, d1, d2);
          if (f == kNumEdgeTriTypes) continue;
          ++vals[static_cast<std::size_t>(f)][structure.row_ptr()[i] + k];
        }
      }
    }
  };
  scan(ad, '+');
  scan(ar, 'o');

  std::array<CountCsr, kNumEdgeTriTypes> out;
  for (int f = 0; f < kNumEdgeTriTypes; ++f) {
    const bool directed_central = f < static_cast<int>(EdgeTriType::kRpp);
    const BoolCsr& st = directed_central ? ad : ar;
    out[static_cast<std::size_t>(f)] =
        CountCsr::from_parts(st.rows(), st.cols(), st.row_ptr(), st.col_idx(),
                             std::move(vals[static_cast<std::size_t>(f)]));
  }
  return out;
}

std::vector<count_t> labeled_vertex_participation(const Graph& a,
                                                  const Labeling& lab,
                                                  std::uint32_t q1,
                                                  std::uint32_t q2,
                                                  std::uint32_t q3) {
  lab.validate(a.num_vertices());
  const BoolCsr s = simple_part(a);
  const vid n = s.rows();
  std::vector<count_t> t(n, 0);
  for (vid v = 0; v < n; ++v) {
    if (lab.label[v] != q1) continue;
    const auto nb = s.row_cols(v);
    for (std::size_t x = 0; x < nb.size(); ++x) {
      for (std::size_t y = x + 1; y < nb.size(); ++y) {
        if (!s.contains(nb[x], nb[y])) continue;
        const std::uint32_t la = lab.label[nb[x]], lb = lab.label[nb[y]];
        if ((la == q2 && lb == q3) || (la == q3 && lb == q2)) ++t[v];
      }
    }
  }
  return t;
}

CountCsr labeled_edge_participation(const Graph& a, const Labeling& lab,
                                    std::uint32_t q1, std::uint32_t q2,
                                    std::uint32_t q3) {
  lab.validate(a.num_vertices());
  const BoolCsr s = simple_part(a);
  const BoolCsr block = label_filtered(s, lab, q2, q1);
  std::vector<count_t> vals(block.nnz(), 0);
  for (vid i = 0; i < block.rows(); ++i) {
    const auto row = block.row_cols(i);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid j = row[k];
      count_t c = 0;
      for (const vid w : s.row_cols(i)) {
        if (w != j && lab.label[w] == q3 && s.contains(j, w)) ++c;
      }
      vals[block.row_ptr()[i] + k] = c;
    }
  }
  return CountCsr::from_parts(block.rows(), block.cols(), block.row_ptr(),
                              block.col_idx(), std::move(vals));
}

}  // namespace kronotri::triangle::brute
