// The degree-ordered "forward" triangle enumeration kernel, shared by the
// undirected analytics, the labeled census, and the ablation benchmarks.
//
// orient_by_degree() turns an undirected loop-free graph into a DAG in which
// u → v when (deg(u), u) < (deg(v), v); forward_triangles() then emits every
// triangle exactly once as (u, v, w) with u ≺ v ≺ w by intersecting
// successor lists, returning the number of wedge checks performed (the §VI
// work statistic).
#pragma once

#include <cstdint>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace kronotri::triangle {

/// Degree-ordered orientation: successor lists sorted by vertex id.
struct Oriented {
  std::vector<esz> row_ptr;
  std::vector<vid> succ;
};

/// Builds the orientation of a symmetric loop-free 0/1 matrix. The
/// orientation bounds each out-degree by O(√nnz), giving the O(|E|^{3/2})
/// worst case of Chiba–Nishizeki [10].
Oriented orient_by_degree(const BoolCsr& s);

/// Enumerates each triangle exactly once, invoking emit(u, v, w) with
/// u ≺ v ≺ w in degree order. Parallel over u; `emit` must be thread-safe.
/// Returns the number of wedge checks (merge comparisons).
template <typename Emit>
count_t forward_triangles(const Oriented& o, vid n, Emit&& emit) {
  count_t checks = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : checks)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    const vid u = static_cast<vid>(uu);
    const esz ub = o.row_ptr[u], ue = o.row_ptr[u + 1];
    for (esz k = ub; k < ue; ++k) {
      const vid v = o.succ[k];
      esz p = ub, q = o.row_ptr[v];
      const esz pe = ue, qe = o.row_ptr[v + 1];
      while (p < pe && q < qe) {
        ++checks;
        if (o.succ[p] < o.succ[q]) {
          ++p;
        } else if (o.succ[p] > o.succ[q]) {
          ++q;
        } else {
          emit(u, v, o.succ[p]);
          ++p;
          ++q;
        }
      }
    }
  }
  return checks;
}

}  // namespace kronotri::triangle
