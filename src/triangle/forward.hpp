// The degree-ordered "forward" triangle enumeration kernel, shared by the
// undirected analytics, the labeled census, and the ablation benchmarks.
//
// orient_by_degree() turns an undirected loop-free graph into a DAG in which
// u → v when (deg(u), u) < (deg(v), v); forward_row() then emits every
// triangle with smallest-ranked vertex u exactly once by intersecting
// successor lists, reporting the number of wedge checks performed (the §VI
// work statistic). forward_row() also hands back the successor-array slots
// of the three triangle edges, which is what lets the census engine
// (triangle/census.hpp) translate each triangle into plain array indices
// instead of per-triangle binary searches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/csr.hpp"
#include "core/types.hpp"

namespace kronotri::triangle {

/// Degree-ordered orientation: successor lists sorted by vertex id.
struct Oriented {
  std::vector<esz> row_ptr;
  std::vector<vid> succ;
};

/// Builds the orientation of a symmetric loop-free 0/1 matrix with a
/// two-pass prefix-sum build (both passes parallel over rows). The
/// orientation bounds each out-degree by O(√nnz), giving the O(|E|^{3/2})
/// worst case of Chiba–Nishizeki [10].
Oriented orient_by_degree(const BoolCsr& s);

/// Enumerates the triangles whose degree-minimal vertex is u, invoking
/// emit(u, v, w, slot_uv, slot_uw, slot_vw) with u ≺ v ≺ w in degree order;
/// slot_xy indexes o.succ at the oriented edge (x, y). Serial — parallel
/// drivers partition the row range themselves. Returns the wedge checks
/// (merge comparisons) performed for this row.
template <typename Emit>
inline count_t forward_row(const Oriented& o, vid u, Emit&& emit) {
  count_t checks = 0;
  const esz ub = o.row_ptr[u], ue = o.row_ptr[u + 1];
  for (esz k = ub; k < ue; ++k) {
    const vid v = o.succ[k];
    esz p = ub, q = o.row_ptr[v];
    const esz pe = ue, qe = o.row_ptr[v + 1];
    while (p < pe && q < qe) {
      ++checks;
      if (o.succ[p] < o.succ[q]) {
        ++p;
      } else if (o.succ[p] > o.succ[q]) {
        ++q;
      } else {
        emit(u, v, o.succ[p], k, p, q);
        ++p;
        ++q;
      }
    }
  }
  return checks;
}

/// Enumerates each triangle exactly once, invoking emit(u, v, w) with
/// u ≺ v ≺ w in degree order. Parallel over u; `emit` must be thread-safe.
/// Returns the number of wedge checks (merge comparisons).
///
/// Prefer the census engine (triangle/census.hpp) for counting workloads:
/// it gives each worker thread-local buffers so `emit` needs no atomics.
template <typename Emit>
count_t forward_triangles(const Oriented& o, vid n, Emit&& emit) {
  count_t checks = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : checks)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    checks += forward_row(o, static_cast<vid>(uu),
                          [&](vid u, vid v, vid w, esz, esz, esz) {
                            emit(u, v, w);
                          });
  }
  return checks;
}

}  // namespace kronotri::triangle
