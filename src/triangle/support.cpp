#include "triangle/support.hpp"

#include "core/ops.hpp"
#include "triangle/census.hpp"

namespace kronotri::triangle {

CountCsr edge_support_masked(const Graph& a) {
  const CensusWorkspace ws(a);
  return ws.mirror_edge_counts(ws.edge_census());
}

std::vector<count_t> vertex_from_edge_support(const CountCsr& delta) {
  std::vector<count_t> t = ops::row_sums<count_t>(delta);
  for (auto& v : t) v /= 2;
  return t;
}

}  // namespace kronotri::triangle
