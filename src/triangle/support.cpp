#include "triangle/support.hpp"

#include <stdexcept>

#include "core/ops.hpp"

namespace kronotri::triangle {

CountCsr edge_support_masked(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument("edge_support_masked requires undirected graph");
  }
  const BoolCsr s =
      a.has_self_loops() ? ops::remove_diag(a.matrix()) : a.matrix();
  // (S·S) ∘ S with S symmetric: pass S as its own transpose.
  return ops::masked_product(s, s, s);
}

std::vector<count_t> vertex_from_edge_support(const CountCsr& delta) {
  std::vector<count_t> t = ops::row_sums<count_t>(delta);
  for (auto& v : t) v /= 2;
  return t;
}

}  // namespace kronotri::triangle
