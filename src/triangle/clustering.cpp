#include "triangle/clustering.hpp"

#include "triangle/count.hpp"

namespace kronotri::triangle {

namespace {

std::vector<count_t> nonloop_degrees(const Graph& a) {
  std::vector<count_t> d(a.num_vertices());
  for (vid v = 0; v < a.num_vertices(); ++v) d[v] = a.nonloop_degree(v);
  return d;
}

}  // namespace

std::vector<double> local_clustering(const Graph& a) {
  const std::vector<count_t> t = participation_vertices(a);
  const std::vector<count_t> d = nonloop_degrees(a);
  std::vector<double> c(t.size(), 0.0);
  for (std::size_t v = 0; v < t.size(); ++v) {
    if (d[v] >= 2) {
      const double wedges = 0.5 * static_cast<double>(d[v]) *
                            static_cast<double>(d[v] - 1);
      c[v] = static_cast<double>(t[v]) / wedges;
    }
  }
  return c;
}

double global_clustering(const Graph& a) {
  const count_t tau = count_total(a);
  const std::vector<count_t> d = nonloop_degrees(a);
  long double wedges = 0;
  for (const count_t dv : d) {
    if (dv >= 2) {
      wedges += 0.5L * static_cast<long double>(dv) *
                static_cast<long double>(dv - 1);
    }
  }
  return wedges == 0 ? 0.0
                     : static_cast<double>(3.0L * static_cast<long double>(tau) /
                                           wedges);
}

double average_clustering(const Graph& a) {
  const std::vector<double> c = local_clustering(a);
  if (c.empty()) return 0.0;
  long double sum = 0;
  for (const double v : c) sum += v;
  return static_cast<double>(sum / static_cast<long double>(c.size()));
}

}  // namespace kronotri::triangle
