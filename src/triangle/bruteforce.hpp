// Brute-force reference implementations (test oracles).
//
// Everything here enumerates vertex triples / neighborhoods directly, with
// none of the linear-algebra or Kronecker machinery, so agreement with the
// fast paths is meaningful evidence of correctness. Only intended for small
// graphs (O(n·d²) or worse).
#pragma once

#include <array>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "triangle/directed.hpp"
#include "triangle/labeled.hpp"

namespace kronotri::triangle::brute {

/// t_A by triple enumeration (undirected, loops ignored).
std::vector<count_t> vertex_participation(const Graph& a);

/// Δ_A by triple enumeration (undirected, loops ignored).
CountCsr edge_participation(const Graph& a);

/// τ(A).
count_t total(const Graph& a);

/// Directed vertex census by neighborhood enumeration + classification.
std::array<std::vector<count_t>, kNumVertexTriTypes> directed_vertex_census(
    const Graph& a);

/// Directed edge census by enumeration + classification.
std::array<CountCsr, kNumEdgeTriTypes> directed_edge_census(const Graph& a);

/// Labeled vertex participation for one type (q1: center, {q2,q3} others).
std::vector<count_t> labeled_vertex_participation(const Graph& a,
                                                  const Labeling& lab,
                                                  std::uint32_t q1,
                                                  std::uint32_t q2,
                                                  std::uint32_t q3);

/// Labeled edge participation for one type (center edge labels (q1,q2) read
/// row→col as (q2,q1) entries per Def. 14; third vertex labeled q3).
CountCsr labeled_edge_participation(const Graph& a, const Labeling& lab,
                                    std::uint32_t q1, std::uint32_t q2,
                                    std::uint32_t q3);

}  // namespace kronotri::triangle::brute
