// Directed triangle census under the reciprocal/directed edge model
// (Def. 8–11 of the paper, following Seshadhri–Pinar–Durak–Kolda [36]).
//
// Every edge of a directed graph is either *directed* ((i,j) ∈ E but
// (j,i) ∉ E) or *reciprocal* (both present), giving the split
// A = A_r + A_d with A_r = Aᵗ∘A (Def. 9). A triangle is then classified:
//
//  * from a VERTEX v's perspective by (r1 r2 d): v's role on its two
//    incident edges — 's' (v is the source of a directed edge), 't'
//    (target) or 'u' (reciprocal) — plus the direction of the opposite
//    edge, '+'/'-'/'o', read from the first-listed neighbor to the second.
//    Swapping the neighbor listing maps (r1 r2 d) → (r2 r1 flip(d)); the 15
//    equivalence classes are the 15 triangle flavors of the paper's Fig. 4.
//
//  * from an EDGE (i,j)'s perspective by (c d1 d2): the central edge is
//    directed '+' (stored once, at its (i,j) orientation) or reciprocal
//    'o'; d1 describes the edge {i,w} oriented i→w and d2 the edge {w,j}
//    oriented w→j. For 'o' central edges, reading the triangle from the
//    other endpoint maps (d1 d2) → (flip(d2) flip(d1)); the classes are the
//    15 flavors of Fig. 5. The count matrix of a class stores, at entry
//    (i,j), the number of third vertices whose pattern read from i equals
//    the class's canonical representative.
//
// NOTE on naming: the paper's Def. 10/11 tables list one closed formula per
// flavor; our canonical labels are self-consistent, verified against an
// independent brute-force enumerator (tests/test_directed.cpp), and the set
// of 15 count vectors/matrices is exactly the paper's (the published table
// uses the mirrored 's'/'t' convention for some rows).
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::triangle {

/// A = A_r + A_d (Def. 9), with the transpose of A_d cached for kernels.
struct DirectedParts {
  BoolCsr ar;   ///< reciprocal part, symmetric
  BoolCsr ad;   ///< directed part
  BoolCsr adt;  ///< A_dᵗ
};

/// Splits the adjacency matrix. Self loops are rejected (the census below is
/// defined for loop-free A; Thm. 4/5 also require diag(A)=0).
DirectedParts split_directed(const Graph& a);

/// The 15 vertex-perspective flavors (Fig. 4), canonical representatives.
/// Role order in labels: s < u < t; for equal roles the third-edge '−'
/// variant folds into '+'.
enum class VertexTriType : int {
  kSSp, kSSo,               // (s,s,+) [covers (s,s,−)], (s,s,o)
  kSUp, kSUm, kSUo,         // (s,u,+), (s,u,−), (s,u,o)
  kSTp, kSTm, kSTo,         // (s,t,+), (s,t,−), (s,t,o)
  kUUp, kUUo,               // (u,u,+) [covers (u,u,−)], (u,u,o)
  kUTp, kUTm, kUTo,         // (u,t,+), (u,t,−), (u,t,o)
  kTTp, kTTo,               // (t,t,+) [covers (t,t,−)], (t,t,o)
};
inline constexpr int kNumVertexTriTypes = 15;
std::string_view to_string(VertexTriType t);

/// The 15 edge-perspective flavors (Fig. 5), canonical representatives.
enum class EdgeTriType : int {
  kDpp, kDpm, kDpo,  // central '+': (d1,d2) = (+,+), (+,−), (+,o)
  kDmp, kDmm, kDmo,  //              (−,+), (−,−), (−,o)
  kDop, kDom, kDoo,  //              (o,+), (o,−), (o,o)
  kRpp,              // central 'o': (+,+) [mirror (−,−)]
  kRpm, kRmp,        //              (+,−), (−,+)  (each self-mirrored)
  kRpo,              //              (+,o) [mirror (o,−)]
  kRmo,              //              (−,o) [mirror (o,+)]
  kRoo,              //              (o,o)
};
inline constexpr int kNumEdgeTriTypes = 15;
std::string_view to_string(EdgeTriType t);

/// t^{(τ)}_A for all 15 flavors, via the diag(M1·M2·M3) formulas of Def. 10
/// (computed without materializing products). Requires diag(A) = 0.
std::array<std::vector<count_t>, kNumVertexTriTypes> directed_vertex_census(
    const Graph& a);

/// Δ^{(τ)}_A for all 15 flavors, via the masked products of Def. 11.
/// Matrices for central '+' flavors have the structure of A_d; for central
/// 'o' flavors the structure of A_r.
std::array<CountCsr, kNumEdgeTriTypes> directed_edge_census(const Graph& a);

}  // namespace kronotri::triangle
