#include "triangle/count.hpp"

#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/census.hpp"
#include "triangle/support.hpp"

namespace kronotri::triangle {

UndirectedStats analyze(const Graph& a) {
  const CensusWorkspace ws(a);
  const vid n = ws.num_vertices();
  const esz m = ws.num_edges();

  struct Tls {
    std::vector<count_t> vert;
    std::vector<count_t> edge;
  };
  std::vector<Tls> tls(census_workers());
  for (auto& t : tls) {
    t.vert.assign(n, 0);
    t.edge.assign(m, 0);
  }

  UndirectedStats st;
  st.wedge_checks = ws.for_each_triangle(
      tls, [](Tls& t, vid u, vid v, vid w, esz euv, esz euw, esz evw) {
        ++t.vert[u];
        ++t.vert[v];
        ++t.vert[w];
        ++t.edge[euv];
        ++t.edge[euw];
        ++t.edge[evw];
      });

  st.per_vertex.assign(n, 0);
  count_t vertex_sum = 0;
#pragma omp parallel for schedule(static) reduction(+ : vertex_sum)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    count_t acc = 0;
    for (const auto& t : tls) acc += t.vert[static_cast<vid>(v)];
    st.per_vertex[static_cast<vid>(v)] = acc;
    vertex_sum += acc;
  }
  st.total = vertex_sum / 3;

  std::vector<count_t> per_edge(m, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t e = 0; e < static_cast<std::int64_t>(m); ++e) {
    count_t acc = 0;
    for (const auto& t : tls) acc += t.edge[static_cast<esz>(e)];
    per_edge[static_cast<esz>(e)] = acc;
  }
  st.per_edge = ws.mirror_edge_counts(per_edge);
  return st;
}

std::vector<count_t> participation_vertices(const Graph& a) {
  const CensusWorkspace ws(a, CensusWorkspace::Detail::kVertexOnly);
  const vid n = ws.num_vertices();
  std::vector<std::vector<count_t>> tls(census_workers());
  for (auto& t : tls) t.assign(n, 0);
  ws.for_each_triangle_vertices(
      tls, [](std::vector<count_t>& t, vid u, vid v, vid w) {
        ++t[u];
        ++t[v];
        ++t[w];
      });
  std::vector<count_t> out(n, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    count_t acc = 0;
    for (const auto& t : tls) acc += t[static_cast<vid>(v)];
    out[static_cast<vid>(v)] = acc;
  }
  return out;
}

CountCsr participation_edges(const Graph& a) { return edge_support_masked(a); }

count_t count_total(const Graph& a) {
  const CensusWorkspace ws(a, CensusWorkspace::Detail::kVertexOnly);
  // Padded per-worker counters: adjacent count_t slots would put every
  // worker's hot counter on one cache line.
  struct alignas(64) PaddedCount {
    count_t value = 0;
  };
  std::vector<PaddedCount> tls(census_workers());
  ws.for_each_triangle_vertices(
      tls, [](PaddedCount& t, vid, vid, vid) { ++t.value; });
  count_t total = 0;
  for (const auto& t : tls) total += t.value;
  return total;
}

std::vector<count_t> diag_cube(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument("diag_cube requires an undirected graph");
  }
  return ops::diag_cube_symmetric(a.matrix());
}

}  // namespace kronotri::triangle
