#include "triangle/count.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/forward.hpp"

namespace kronotri::triangle {

namespace {

BoolCsr simple_part(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument(
        "triangle analytics (Def. 5/6) require an undirected graph");
  }
  return a.has_self_loops() ? ops::remove_diag(a.matrix()) : a.matrix();
}

}  // namespace

UndirectedStats analyze(const Graph& a) {
  const BoolCsr s = simple_part(a);
  const vid n = s.rows();
  const Oriented o = orient_by_degree(s);

  UndirectedStats st;
  st.per_vertex.assign(n, 0);
  std::vector<count_t> edge_vals(s.nnz(), 0);

  auto bump_edge = [&](vid x, vid y) {
    const esz k1 = s.find(x, y), k2 = s.find(y, x);
#pragma omp atomic
    ++edge_vals[k1];
#pragma omp atomic
    ++edge_vals[k2];
  };

  count_t triangles = 0;
  st.wedge_checks = forward_triangles(o, n, [&](vid u, vid v, vid w) {
#pragma omp atomic
    ++st.per_vertex[u];
#pragma omp atomic
    ++st.per_vertex[v];
#pragma omp atomic
    ++st.per_vertex[w];
    bump_edge(u, v);
    bump_edge(u, w);
    bump_edge(v, w);
#pragma omp atomic
    ++triangles;
  });
  st.total = triangles;
  st.per_edge = CountCsr::from_parts(n, n, s.row_ptr(), s.col_idx(),
                                     std::move(edge_vals));
  return st;
}

std::vector<count_t> participation_vertices(const Graph& a) {
  const BoolCsr s = simple_part(a);
  const vid n = s.rows();
  const Oriented o = orient_by_degree(s);
  std::vector<count_t> t(n, 0);
  forward_triangles(o, n, [&](vid u, vid v, vid w) {
#pragma omp atomic
    ++t[u];
#pragma omp atomic
    ++t[v];
#pragma omp atomic
    ++t[w];
  });
  return t;
}

CountCsr participation_edges(const Graph& a) { return analyze(a).per_edge; }

count_t count_total(const Graph& a) {
  const BoolCsr s = simple_part(a);
  const Oriented o = orient_by_degree(s);
  count_t total = 0;
  forward_triangles(o, s.rows(), [&](vid, vid, vid) {
#pragma omp atomic
    ++total;
  });
  return total;
}

std::vector<count_t> diag_cube(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument("diag_cube requires an undirected graph");
  }
  return ops::diag_cube_symmetric(a.matrix());
}

}  // namespace kronotri::triangle
