// Atomic-free parallel triangle-census engine.
//
// The original analyze() bumped 9 shared counters with `#pragma omp atomic`
// and located edge slots with 6 binary-search CsrMatrix::find() calls per
// triangle, serializing every census thread on shared cache lines — the
// throughput ceiling for the paper's core deliverable (exact triangle
// statistics at every edge and vertex). CensusWorkspace removes all
// per-triangle synchronization:
//
//   1. orient_by_degree() is a parallel two-pass prefix-sum build,
//   2. an oriented-slot → undirected-edge-id map is computed once per graph
//      (the edge-id machinery truss/decompose.cpp used to rebuild privately),
//   3. for_each_triangle() hands every worker its own thread-local
//      accumulator plus plain array indices for the three triangle edges, so
//      the inner loop is ordinary unsynchronized increments,
//   4. the per-thread buffers are reduced and mirrored into the symmetric
//      CountCsr in one parallel pass.
//
// Counts are exact integer sums, so results are bit-identical for every
// thread count. All census consumers (triangle/count.cpp,
// triangle/labeled.cpp, triangle/support.cpp, truss/decompose.cpp) run on
// this engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "core/types.hpp"
#include "triangle/forward.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace kronotri::triangle {

/// Number of worker slots for_each_triangle() may use — size thread-local
/// state vectors to exactly this.
inline unsigned census_workers() noexcept {
#ifdef _OPENMP
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Team size for an enumeration whose caller supplied `tls_size`
/// thread-local slots: never more threads than slots, never more slots
/// used than census_workers(), at least one.
inline int census_team(std::size_t tls_size) noexcept {
  return static_cast<int>(std::max<std::size_t>(
      1, std::min<std::size_t>(tls_size, census_workers())));
}

/// Undirected edge ids over a symmetric loop-free structure: the two stored
/// entries (u,v) and (v,u) share one id in [0, num_edges()).
struct EdgeIdMap {
  std::vector<esz> slot_id;               ///< per stored entry → edge id
  std::vector<std::pair<vid, vid>> ends;  ///< id → (u, v) with u < v

  [[nodiscard]] esz num_edges() const noexcept { return ends.size(); }
};

/// Parallel two-pass build (count ids per row, prefix-sum, fill). One
/// binary search per undirected edge to mirror the id into the (v,u) slot —
/// paid once per graph instead of once per triangle.
EdgeIdMap build_edge_ids(const BoolCsr& s);

class CensusWorkspace {
 public:
  /// What the workspace precomputes. Vertex-only censuses (count_total,
  /// participation_vertices) skip the edge-id build — one binary search per
  /// undirected edge plus two m-sized arrays they would never read.
  enum class Detail { kVertexOnly, kEdges };

  /// Requires an undirected graph (throws std::invalid_argument otherwise);
  /// self loops are stripped per Def. 5/6. With Detail::kVertexOnly the
  /// edge-id map is not built: edge_ids(), edge_census(),
  /// mirror_edge_counts() and for_each_triangle() must not be used — only
  /// for_each_triangle_vertices().
  explicit CensusWorkspace(const Graph& a, Detail detail = Detail::kEdges);

  /// A − I∘A: the symmetric loop-free structure every census runs on.
  [[nodiscard]] const BoolCsr& structure() const noexcept { return s_; }
  [[nodiscard]] const Oriented& oriented() const noexcept { return o_; }
  [[nodiscard]] const EdgeIdMap& edge_ids() const noexcept { return ids_; }
  [[nodiscard]] vid num_vertices() const noexcept { return s_.rows(); }
  [[nodiscard]] esz num_edges() const noexcept { return ids_.num_edges(); }

  /// Enumerates each triangle exactly once, calling
  /// visit(tls[worker], u, v, w, eid_uv, eid_uw, eid_vw) with u ≺ v ≺ w in
  /// degree order and the three undirected edge ids. The team size is
  /// min(tls.size(), census_workers()) — callers whose thread-local state
  /// is expensive (the labeled census' O(L²·n) blocks) clamp parallelism by
  /// sizing `tls` smaller. Each worker only touches its own entry, so
  /// `visit` needs no synchronization. Returns the wedge-check count.
  template <typename TLS, typename Visit>
  count_t for_each_triangle(std::vector<TLS>& tls, Visit&& visit) const {
    const std::int64_t n = static_cast<std::int64_t>(s_.rows());
    const esz* const eid = oriented_eid_.data();
    count_t checks = 0;
#ifdef _OPENMP
    const int team = census_team(tls.size());
#endif
#pragma omp parallel num_threads(team) reduction(+ : checks)
    {
#ifdef _OPENMP
      TLS& local = tls[static_cast<std::size_t>(omp_get_thread_num())];
#else
      TLS& local = tls.front();
#endif
#pragma omp for schedule(dynamic, 64) nowait
      for (std::int64_t uu = 0; uu < n; ++uu) {
        checks += forward_row(
            o_, static_cast<vid>(uu),
            [&](vid u, vid v, vid w, esz kuv, esz kuw, esz kvw) {
              visit(local, u, v, w, eid[kuv], eid[kuw], eid[kvw]);
            });
      }
    }
    return checks;
  }

  /// Vertex-only enumeration: visit(tls[worker], u, v, w), no edge ids —
  /// valid for both Detail modes.
  template <typename TLS, typename Visit>
  count_t for_each_triangle_vertices(std::vector<TLS>& tls,
                                     Visit&& visit) const {
    const std::int64_t n = static_cast<std::int64_t>(s_.rows());
    count_t checks = 0;
#ifdef _OPENMP
    const int team = census_team(tls.size());
#endif
#pragma omp parallel num_threads(team) reduction(+ : checks)
    {
#ifdef _OPENMP
      TLS& local = tls[static_cast<std::size_t>(omp_get_thread_num())];
#else
      TLS& local = tls.front();
#endif
#pragma omp for schedule(dynamic, 64) nowait
      for (std::int64_t uu = 0; uu < n; ++uu) {
        checks += forward_row(o_, static_cast<vid>(uu),
                              [&](vid u, vid v, vid w, esz, esz, esz) {
                                visit(local, u, v, w);
                              });
      }
    }
    return checks;
  }

  /// Δ(e) for every undirected edge id — thread-local accumulate + reduce.
  [[nodiscard]] std::vector<count_t> edge_census() const;

  /// Scatters per-edge-id counts into both stored directions of the
  /// symmetric CountCsr (structure = A − I∘A).
  [[nodiscard]] CountCsr mirror_edge_counts(
      const std::vector<count_t>& per_edge) const;

 private:
  BoolCsr s_;
  Oriented o_;
  EdgeIdMap ids_;
  std::vector<esz> oriented_eid_;  // per oriented successor slot → edge id
};

}  // namespace kronotri::triangle
