#include "triangle/directed.hpp"

#include <cassert>
#include <stdexcept>

#include "core/ops.hpp"

namespace kronotri::triangle {

DirectedParts split_directed(const Graph& a) {
  if (a.has_self_loops()) {
    throw std::invalid_argument(
        "directed census requires diag(A) = 0 (Thm. 4/5 precondition)");
  }
  DirectedParts p;
  const BoolCsr at = ops::transpose(a.matrix());
  p.ar = ops::hadamard(at, a.matrix());       // Aᵗ ∘ A, symmetric
  p.ad = ops::structural_difference(a.matrix(), p.ar);  // A − A_r
  p.adt = ops::transpose(p.ad);
  return p;
}

std::string_view to_string(VertexTriType t) {
  switch (t) {
    case VertexTriType::kSSp: return "ss+";
    case VertexTriType::kSSo: return "sso";
    case VertexTriType::kSUp: return "su+";
    case VertexTriType::kSUm: return "su-";
    case VertexTriType::kSUo: return "suo";
    case VertexTriType::kSTp: return "st+";
    case VertexTriType::kSTm: return "st-";
    case VertexTriType::kSTo: return "sto";
    case VertexTriType::kUUp: return "uu+";
    case VertexTriType::kUUo: return "uuo";
    case VertexTriType::kUTp: return "ut+";
    case VertexTriType::kUTm: return "ut-";
    case VertexTriType::kUTo: return "uto";
    case VertexTriType::kTTp: return "tt+";
    case VertexTriType::kTTo: return "tto";
  }
  return "?";
}

std::string_view to_string(EdgeTriType t) {
  switch (t) {
    case EdgeTriType::kDpp: return "+++";
    case EdgeTriType::kDpm: return "++-";
    case EdgeTriType::kDpo: return "++o";
    case EdgeTriType::kDmp: return "+-+";
    case EdgeTriType::kDmm: return "+--";
    case EdgeTriType::kDmo: return "+-o";
    case EdgeTriType::kDop: return "+o+";
    case EdgeTriType::kDom: return "+o-";
    case EdgeTriType::kDoo: return "+oo";
    case EdgeTriType::kRpp: return "o++";
    case EdgeTriType::kRpm: return "o+-";
    case EdgeTriType::kRmp: return "o-+";
    case EdgeTriType::kRpo: return "o+o";
    case EdgeTriType::kRmo: return "o-o";
    case EdgeTriType::kRoo: return "ooo";
  }
  return "?";
}

namespace {

/// Selects the relation matrix for the first incident edge {v,u}, read as
/// the (v,u) entry: role 's' means v→u directed, 't' means u→v directed.
const BoolCsr& first_leg(char role, const DirectedParts& p) {
  switch (role) {
    case 's': return p.ad;
    case 't': return p.adt;
    default: return p.ar;
  }
}

/// The opposite edge {u,w}, read as the (u,w) entry, direction char d.
const BoolCsr& middle_leg(char d, const DirectedParts& p) {
  switch (d) {
    case '+': return p.ad;
    case '-': return p.adt;
    default: return p.ar;
  }
}

/// The second incident edge {w,v}, read as the (w,v) entry: the central
/// vertex v's role 's' means v→w, i.e. the (w,v) entry lives in A_dᵗ.
const BoolCsr& last_leg(char role, const DirectedParts& p) {
  switch (role) {
    case 's': return p.adt;
    case 't': return p.ad;
    default: return p.ar;
  }
}

struct VertexFlavor {
  VertexTriType type;
  char r1, r2, d;
  bool halve;  // ordered enumeration double counts iff r1==r2 && d=='o'
};

constexpr VertexFlavor kVertexFlavors[kNumVertexTriTypes] = {
    {VertexTriType::kSSp, 's', 's', '+', false},
    {VertexTriType::kSSo, 's', 's', 'o', true},
    {VertexTriType::kSUp, 's', 'u', '+', false},
    {VertexTriType::kSUm, 's', 'u', '-', false},
    {VertexTriType::kSUo, 's', 'u', 'o', false},
    {VertexTriType::kSTp, 's', 't', '+', false},
    {VertexTriType::kSTm, 's', 't', '-', false},
    {VertexTriType::kSTo, 's', 't', 'o', false},
    {VertexTriType::kUUp, 'u', 'u', '+', false},
    {VertexTriType::kUUo, 'u', 'u', 'o', true},
    {VertexTriType::kUTp, 'u', 't', '+', false},
    {VertexTriType::kUTm, 'u', 't', '-', false},
    {VertexTriType::kUTo, 'u', 't', 'o', false},
    {VertexTriType::kTTp, 't', 't', '+', false},
    {VertexTriType::kTTo, 't', 't', 'o', true},
};

struct EdgeFlavor {
  EdgeTriType type;
  char central, d1, d2;
};

constexpr EdgeFlavor kEdgeFlavors[kNumEdgeTriTypes] = {
    {EdgeTriType::kDpp, '+', '+', '+'}, {EdgeTriType::kDpm, '+', '+', '-'},
    {EdgeTriType::kDpo, '+', '+', 'o'}, {EdgeTriType::kDmp, '+', '-', '+'},
    {EdgeTriType::kDmm, '+', '-', '-'}, {EdgeTriType::kDmo, '+', '-', 'o'},
    {EdgeTriType::kDop, '+', 'o', '+'}, {EdgeTriType::kDom, '+', 'o', '-'},
    {EdgeTriType::kDoo, '+', 'o', 'o'}, {EdgeTriType::kRpp, 'o', '+', '+'},
    {EdgeTriType::kRpm, 'o', '+', '-'}, {EdgeTriType::kRmp, 'o', '-', '+'},
    {EdgeTriType::kRpo, 'o', '+', 'o'}, {EdgeTriType::kRmo, 'o', '-', 'o'},
    {EdgeTriType::kRoo, 'o', 'o', 'o'},
};

}  // namespace

std::array<std::vector<count_t>, kNumVertexTriTypes> directed_vertex_census(
    const Graph& a) {
  const DirectedParts p = split_directed(a);
  std::array<std::vector<count_t>, kNumVertexTriTypes> out;
  for (const VertexFlavor& f : kVertexFlavors) {
    // Ordered count: diag(M1 · M2 · M3) per Def. 10.
    std::vector<count_t> v = ops::diag_triple(
        first_leg(f.r1, p), middle_leg(f.d, p), last_leg(f.r2, p));
    if (f.halve) {
      for (auto& x : v) {
        assert(x % 2 == 0 && "symmetric flavor must have even ordered count");
        x /= 2;
      }
    }
    out[static_cast<std::size_t>(f.type)] = std::move(v);
  }
  return out;
}

std::array<CountCsr, kNumEdgeTriTypes> directed_edge_census(const Graph& a) {
  const DirectedParts p = split_directed(a);
  // masked_product wants the second operand pre-transposed: the (w,j) leg
  // with direction char d2 lives in matrix middle_leg(d2) whose transpose is
  // middle_leg(flip(d2)).
  auto flip = [](char d) { return d == '+' ? '-' : d == '-' ? '+' : 'o'; };
  std::array<CountCsr, kNumEdgeTriTypes> out;
  for (const EdgeFlavor& f : kEdgeFlavors) {
    const BoolCsr& mask = f.central == '+' ? p.ad : p.ar;
    const BoolCsr& x = middle_leg(f.d1, p);            // (i,w) leg
    const BoolCsr& yt = middle_leg(flip(f.d2), p);     // transpose of (w,j) leg
    out[static_cast<std::size_t>(f.type)] = ops::masked_product(mask, x, yt);
  }
  return out;
}

}  // namespace kronotri::triangle
