#include "triangle/labeled.hpp"

#include <algorithm>
#include <cassert>

#include "core/ops.hpp"
#include "triangle/census.hpp"
#include "util/log.hpp"

namespace kronotri::triangle {

namespace {

void require_census_preconditions(const Graph& a, const Labeling& lab) {
  lab.validate(a.num_vertices());
  if (!a.is_undirected()) {
    throw std::invalid_argument("labeled census requires an undirected graph");
  }
  if (a.has_self_loops()) {
    throw std::invalid_argument(
        "labeled census requires diag(A) = 0 (Def. 13/14 precondition)");
  }
}

}  // namespace

BoolCsr label_filtered(const BoolCsr& a, const Labeling& lab,
                       std::uint32_t q_row, std::uint32_t q_col) {
  lab.validate(a.rows());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    if (lab.label[r] == q_row) {
      for (const vid c : a.row_cols(r)) {
        if (lab.label[c] == q_col) {
          ci.push_back(c);
          vals.push_back(1);
        }
      }
    }
    rp[r + 1] = ci.size();
  }
  return BoolCsr::from_parts(a.rows(), a.cols(), std::move(rp), std::move(ci),
                             std::move(vals));
}

BoolCsr col_filtered(const BoolCsr& a, const Labeling& lab, std::uint32_t q_col) {
  lab.validate(a.rows());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    for (const vid c : a.row_cols(r)) {
      if (lab.label[c] == q_col) {
        ci.push_back(c);
        vals.push_back(1);
      }
    }
    rp[r + 1] = ci.size();
  }
  return BoolCsr::from_parts(a.rows(), a.cols(), std::move(rp), std::move(ci),
                             std::move(vals));
}

std::vector<count_t> labeled_vertex_participation(const Graph& a,
                                                  const Labeling& lab,
                                                  std::uint32_t q1,
                                                  std::uint32_t q2,
                                                  std::uint32_t q3) {
  require_census_preconditions(a, lab);
  // Def. 13: diag(Π_q1 A Π_q3 · A · Π_q2 A Π_q1) — the middle A is filtered
  // on both sides by the outer products' projections, so regrouping gives
  // diag( (Π_q1 A Π_q3) (Π_q3 A Π_q2) (Π_q2 A Π_q1) ).
  const BoolCsr x = label_filtered(a.matrix(), lab, q1, q3);
  const BoolCsr y = label_filtered(a.matrix(), lab, q3, q2);
  const BoolCsr z = label_filtered(a.matrix(), lab, q2, q1);
  std::vector<count_t> t = ops::diag_triple(x, y, z);
  if (q2 == q3) {
    for (auto& v : t) {
      assert(v % 2 == 0 && "equal-label pair must double count");
      v /= 2;
    }
  }
  return t;
}

CountCsr labeled_edge_participation(const Graph& a, const Labeling& lab,
                                    std::uint32_t q1, std::uint32_t q2,
                                    std::uint32_t q3) {
  require_census_preconditions(a, lab);
  // Def. 14: (Π_q2 A Π_q1) ∘ (A Π_q3 · A). With F = A Π_q3 (columns labeled
  // q3) and A symmetric, (A Π_q3 A)_{ij} = Σ_k F_{ik} F_{jk} — a masked
  // product of F against its own rows.
  const BoolCsr mask = label_filtered(a.matrix(), lab, q2, q1);
  const BoolCsr f = col_filtered(a.matrix(), lab, q3);
  return ops::masked_product(mask, f, f);
}

LabeledCensus labeled_census(const Graph& a, const Labeling& lab,
                             std::size_t max_accumulator_bytes) {
  require_census_preconditions(a, lab);
  // Loop-free per the preconditions, so the workspace structure is exactly
  // a.matrix().
  const CensusWorkspace ws(a);
  const vid n = ws.num_vertices();
  const esz m = ws.num_edges();
  const std::uint32_t big_l = lab.num_labels;
  const std::size_t npairs =
      static_cast<std::size_t>(big_l) * (big_l + 1) / 2;

  LabeledCensus census;
  census.num_labels = big_l;

  // Thread-local accumulation: one flat (label-pair × vertex) block and one
  // flat (third-label × edge-id) block per worker, bumped with plain
  // increments and reduced after enumeration. The O(T·L²·n) footprint is
  // estimated up front and the team clamped to the budget — counts are
  // exact integer sums, so any team size gives the same census.
  struct Tls {
    std::vector<count_t> vert;  // npairs × n
    std::vector<count_t> edge;  // big_l × m
  };
  const std::size_t per_worker_bytes =
      (npairs * n + static_cast<std::size_t>(big_l) * m) * sizeof(count_t);
  std::size_t workers = census_workers();
  const std::size_t allowed = std::max<std::size_t>(
      1, per_worker_bytes > 0 ? max_accumulator_bytes / per_worker_bytes
                              : workers);
  if (workers > allowed) {
    util::log::warn("labeled_census", "clamping worker team to memory budget",
                    {{"workers", static_cast<std::uint64_t>(workers)},
                     {"allowed", static_cast<std::uint64_t>(allowed)},
                     {"bytes_per_worker",
                      static_cast<std::uint64_t>(per_worker_bytes)},
                     {"budget",
                      static_cast<std::uint64_t>(max_accumulator_bytes)}});
    workers = allowed;
  }
  std::vector<Tls> tls(workers);
  for (auto& t : tls) {
    t.vert.assign(npairs * n, 0);
    t.edge.assign(static_cast<std::size_t>(big_l) * m, 0);
  }

  const std::uint32_t* const ql = lab.label.data();
  ws.for_each_triangle(
      tls, [&](Tls& t, vid u, vid v, vid w, esz euv, esz euw, esz evw) {
        const std::uint32_t qu = ql[u], qv = ql[v], qw = ql[w];
        t.vert[census.pair_index(qv, qw) * n + u] += 1;
        t.vert[census.pair_index(qu, qw) * n + v] += 1;
        t.vert[census.pair_index(qu, qv) * n + w] += 1;
        t.edge[static_cast<std::size_t>(qw) * m + euv] += 1;
        t.edge[static_cast<std::size_t>(qv) * m + euw] += 1;
        t.edge[static_cast<std::size_t>(qu) * m + evw] += 1;
      });

  census.at_vertices.assign(npairs, std::vector<count_t>(n, 0));
  for (std::size_t pi = 0; pi < npairs; ++pi) {
    auto& out = census.at_vertices[pi];
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      count_t acc = 0;
      for (const auto& t : tls) acc += t.vert[pi * n + static_cast<vid>(v)];
      out[static_cast<vid>(v)] = acc;
    }
  }

  census.at_edges.reserve(big_l);
  std::vector<count_t> per_edge(m);
  for (std::uint32_t q = 0; q < big_l; ++q) {
#pragma omp parallel for schedule(static)
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(m); ++e) {
      count_t acc = 0;
      for (const auto& t : tls) {
        acc += t.edge[static_cast<std::size_t>(q) * m + static_cast<esz>(e)];
      }
      per_edge[static_cast<esz>(e)] = acc;
    }
    census.at_edges.push_back(ws.mirror_edge_counts(per_edge));
  }
  return census;
}

}  // namespace kronotri::triangle
