#include "triangle/labeled.hpp"

#include <cassert>

#include "core/ops.hpp"
#include "triangle/forward.hpp"

namespace kronotri::triangle {

namespace {

void require_census_preconditions(const Graph& a, const Labeling& lab) {
  lab.validate(a.num_vertices());
  if (!a.is_undirected()) {
    throw std::invalid_argument("labeled census requires an undirected graph");
  }
  if (a.has_self_loops()) {
    throw std::invalid_argument(
        "labeled census requires diag(A) = 0 (Def. 13/14 precondition)");
  }
}

}  // namespace

BoolCsr label_filtered(const BoolCsr& a, const Labeling& lab,
                       std::uint32_t q_row, std::uint32_t q_col) {
  lab.validate(a.rows());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    if (lab.label[r] == q_row) {
      for (const vid c : a.row_cols(r)) {
        if (lab.label[c] == q_col) {
          ci.push_back(c);
          vals.push_back(1);
        }
      }
    }
    rp[r + 1] = ci.size();
  }
  return BoolCsr::from_parts(a.rows(), a.cols(), std::move(rp), std::move(ci),
                             std::move(vals));
}

BoolCsr col_filtered(const BoolCsr& a, const Labeling& lab, std::uint32_t q_col) {
  lab.validate(a.rows());
  std::vector<esz> rp(a.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid r = 0; r < a.rows(); ++r) {
    for (const vid c : a.row_cols(r)) {
      if (lab.label[c] == q_col) {
        ci.push_back(c);
        vals.push_back(1);
      }
    }
    rp[r + 1] = ci.size();
  }
  return BoolCsr::from_parts(a.rows(), a.cols(), std::move(rp), std::move(ci),
                             std::move(vals));
}

std::vector<count_t> labeled_vertex_participation(const Graph& a,
                                                  const Labeling& lab,
                                                  std::uint32_t q1,
                                                  std::uint32_t q2,
                                                  std::uint32_t q3) {
  require_census_preconditions(a, lab);
  // Def. 13: diag(Π_q1 A Π_q3 · A · Π_q2 A Π_q1) — the middle A is filtered
  // on both sides by the outer products' projections, so regrouping gives
  // diag( (Π_q1 A Π_q3) (Π_q3 A Π_q2) (Π_q2 A Π_q1) ).
  const BoolCsr x = label_filtered(a.matrix(), lab, q1, q3);
  const BoolCsr y = label_filtered(a.matrix(), lab, q3, q2);
  const BoolCsr z = label_filtered(a.matrix(), lab, q2, q1);
  std::vector<count_t> t = ops::diag_triple(x, y, z);
  if (q2 == q3) {
    for (auto& v : t) {
      assert(v % 2 == 0 && "equal-label pair must double count");
      v /= 2;
    }
  }
  return t;
}

CountCsr labeled_edge_participation(const Graph& a, const Labeling& lab,
                                    std::uint32_t q1, std::uint32_t q2,
                                    std::uint32_t q3) {
  require_census_preconditions(a, lab);
  // Def. 14: (Π_q2 A Π_q1) ∘ (A Π_q3 · A). With F = A Π_q3 (columns labeled
  // q3) and A symmetric, (A Π_q3 A)_{ij} = Σ_k F_{ik} F_{jk} — a masked
  // product of F against its own rows.
  const BoolCsr mask = label_filtered(a.matrix(), lab, q2, q1);
  const BoolCsr f = col_filtered(a.matrix(), lab, q3);
  return ops::masked_product(mask, f, f);
}

LabeledCensus labeled_census(const Graph& a, const Labeling& lab) {
  require_census_preconditions(a, lab);
  const BoolCsr& s = a.matrix();
  const vid n = s.rows();
  const std::uint32_t big_l = lab.num_labels;

  LabeledCensus census;
  census.num_labels = big_l;
  census.at_vertices.assign(static_cast<std::size_t>(big_l) * (big_l + 1) / 2,
                            std::vector<count_t>(n, 0));
  std::vector<std::vector<count_t>> edge_vals(
      big_l, std::vector<count_t>(s.nnz(), 0));

  auto bump_edge = [&](std::uint32_t q3, vid x, vid y) {
    const esz k1 = s.find(x, y), k2 = s.find(y, x);
#pragma omp atomic
    ++edge_vals[q3][k1];
#pragma omp atomic
    ++edge_vals[q3][k2];
  };

  const Oriented o = orient_by_degree(s);
  forward_triangles(o, n, [&](vid u, vid v, vid w) {
    const std::uint32_t qu = lab.label[u], qv = lab.label[v],
                        qw = lab.label[w];
#pragma omp atomic
    ++census.at_vertices[census.pair_index(qv, qw)][u];
#pragma omp atomic
    ++census.at_vertices[census.pair_index(qu, qw)][v];
#pragma omp atomic
    ++census.at_vertices[census.pair_index(qu, qv)][w];
    bump_edge(qw, u, v);
    bump_edge(qv, u, w);
    bump_edge(qu, v, w);
  });

  census.at_edges.reserve(big_l);
  for (std::uint32_t q = 0; q < big_l; ++q) {
    census.at_edges.push_back(CountCsr::from_parts(
        n, n, s.row_ptr(), s.col_idx(), std::move(edge_vals[q])));
  }
  return census;
}

}  // namespace kronotri::triangle
