#include "triangle/forward.hpp"

namespace kronotri::triangle {

Oriented orient_by_degree(const BoolCsr& s) {
  const vid n = s.rows();
  auto precedes = [&](vid u, vid v) {
    const esz du = s.row_degree(u), dv = s.row_degree(v);
    return du != dv ? du < dv : u < v;
  };
  Oriented o;
  o.row_ptr.assign(n + 1, 0);
  for (vid u = 0; u < n; ++u) {
    esz c = 0;
    for (const vid v : s.row_cols(u)) c += precedes(u, v) ? 1u : 0u;
    o.row_ptr[u + 1] = o.row_ptr[u] + c;
  }
  o.succ.resize(o.row_ptr.back());
  for (vid u = 0; u < n; ++u) {
    esz w = o.row_ptr[u];
    for (const vid v : s.row_cols(u)) {
      if (precedes(u, v)) o.succ[w++] = v;  // sorted: the row itself is sorted
    }
  }
  return o;
}

}  // namespace kronotri::triangle
