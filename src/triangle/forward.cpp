#include "triangle/forward.hpp"

#include "core/ops.hpp"

namespace kronotri::triangle {

Oriented orient_by_degree(const BoolCsr& s) {
  const vid n = s.rows();
  auto precedes = [&](vid u, vid v) {
    const esz du = s.row_degree(u), dv = s.row_degree(v);
    return du != dv ? du < dv : u < v;
  };
  Oriented o;
  o.row_ptr.assign(n + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    const vid u = static_cast<vid>(uu);
    esz c = 0;
    for (const vid v : s.row_cols(u)) c += precedes(u, v) ? 1u : 0u;
    o.row_ptr[u + 1] = c;
  }
  ops::prefix_sum_inplace(o.row_ptr);
  o.succ.resize(o.row_ptr.back());
#pragma omp parallel for schedule(static)
  for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(n); ++uu) {
    const vid u = static_cast<vid>(uu);
    esz w = o.row_ptr[u];
    for (const vid v : s.row_cols(u)) {
      if (precedes(u, v)) o.succ[w++] = v;  // sorted: the row itself is sorted
    }
  }
  return o;
}

}  // namespace kronotri::triangle
