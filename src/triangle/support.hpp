// Edge-support computation: Δ_A = A ∘ A² for a loop-free undirected A
// (Def. 6), the paper's Fig. 2 (right) — (A²)_{ij} counts 2-paths between
// i and j, so A ∘ A² counts triangles at every edge.
//
// Since the census-engine rework this runs on the atomic-free enumeration
// engine (triangle/census.hpp) rather than a masked SpGEMM; the
// linear-algebra formulation is still available as
// ops::masked_product(S, S, S) and the ablation bench compares the two.
#pragma once

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::triangle {

/// Δ_A. Requires undirected; self loops are stripped.
CountCsr edge_support_masked(const Graph& a);

/// t_A = ½·Δ_A·1 (useful identity from Def. 6).
std::vector<count_t> vertex_from_edge_support(const CountCsr& delta);

}  // namespace kronotri::triangle
