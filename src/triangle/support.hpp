// Edge-support computation via the masked linear-algebra kernel.
//
// Δ_A = A ∘ A² for a loop-free undirected A (Def. 6) evaluated as a masked
// product, i.e. without materializing A². This mirrors the paper's Fig. 2
// (right): (A²)_{ij} counts 2-paths between i and j, so A ∘ A² counts
// triangles at every edge. It is the linear-algebra counterpart of the
// intersection kernel in count.cpp; tests and the ablation bench compare
// the two.
#pragma once

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::triangle {

/// Δ_A via masked SpGEMM. Requires undirected; self loops are stripped.
CountCsr edge_support_masked(const Graph& a);

/// t_A = ½·Δ_A·1 (useful identity from Def. 6).
std::vector<count_t> vertex_from_edge_support(const CountCsr& delta);

}  // namespace kronotri::triangle
