// Vertex-labeled triangle census (§V of the paper, Fig. 6, Def. 12–14).
//
// A labeling assigns every vertex a color from {0, …, L−1}. Given the label
// of a vertex there are (L+1 choose 2) triangle types it can participate in
// (the unordered pair of the other two vertices' labels); given the labels
// of an edge's endpoints there are L types (the third vertex's label).
//
// Two computation paths are provided:
//  * the paper's filtered-matrix formulas (Def. 13/14) built from the label
//    projection operators Π_q of Def. 12 — these are the formulas that
//    kron/labeled.cpp lifts to product graphs (Thm. 6/7);
//  * a single-pass census that enumerates each triangle once and bins it by
//    labels — used for whole-census queries and as an independent check.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::triangle {

/// f : V → {0, …, num_labels−1} (Def. 12's label set, 0-based).
struct Labeling {
  std::vector<std::uint32_t> label;
  std::uint32_t num_labels = 0;

  void validate(vid n) const {
    if (label.size() != n) {
      throw std::invalid_argument("labeling size != vertex count");
    }
    for (const auto q : label) {
      if (q >= num_labels) throw std::invalid_argument("label out of range");
    }
  }
};

/// Π_{q_row} A Π_{q_col} — keep entries whose row has label q_row and whose
/// column has label q_col (Def. 12).
BoolCsr label_filtered(const BoolCsr& a, const Labeling& lab,
                       std::uint32_t q_row, std::uint32_t q_col);

/// A Π_{q_col} — keep entries whose column has label q_col.
BoolCsr col_filtered(const BoolCsr& a, const Labeling& lab, std::uint32_t q_col);

/// Def. 13: t^{(q1,q2,q3)}_A — triangles at each vertex where the vertex has
/// label q1 and the other two vertices have labels {q2, q3} (unordered).
/// Requires diag(A) = 0 and undirected A. Entries are zero at vertices whose
/// label is not q1.
std::vector<count_t> labeled_vertex_participation(const Graph& a,
                                                  const Labeling& lab,
                                                  std::uint32_t q1,
                                                  std::uint32_t q2,
                                                  std::uint32_t q3);

/// Def. 14: Δ^{(q1,q2,q3)}_A = (Π_{q2} A Π_{q1}) ∘ (A Π_{q3} A) — entry
/// (i,j) counts triangles at edge (i,j), where f(i)=q2, f(j)=q1, and the
/// third vertex has label q3. Structure is the (q2,q1) label block of A.
CountCsr labeled_edge_participation(const Graph& a, const Labeling& lab,
                                    std::uint32_t q1, std::uint32_t q2,
                                    std::uint32_t q3);

struct LabeledCensus {
  std::uint32_t num_labels = 0;
  /// at_vertices[pair_index(qa,qb)][v] = # triangles at v whose other two
  /// vertices are labeled {qa, qb}; pair index over qa ≤ qb.
  std::vector<std::vector<count_t>> at_vertices;
  /// at_edges[q3] = full Δ matrix restricted to triangles whose third vertex
  /// is labeled q3 (structure = A − I∘A, symmetric).
  std::vector<CountCsr> at_edges;

  /// Index into at_vertices for unordered pair {qa, qb}.
  [[nodiscard]] std::size_t pair_index(std::uint32_t qa, std::uint32_t qb) const {
    if (qa > qb) std::swap(qa, qb);
    // row-major upper triangle of an L×L table.
    return static_cast<std::size_t>(qa) * num_labels -
           static_cast<std::size_t>(qa) * (qa + 1) / 2 + qb;
  }
};

/// Default ceiling for the labeled census' thread-local accumulators
/// (ROADMAP "labeled-census memory" item): each worker holds
/// (L(L+1)/2·n + L·m) counters, so wide teams on large labeled graphs can
/// silently allocate tens of GiB.
inline constexpr std::size_t kLabeledCensusAccumulatorBudget = 1ull << 30;

/// Whole census in one triangle-enumeration pass. The worker team is
/// clamped (with a one-line stderr warning) so the thread-local
/// accumulators stay within `max_accumulator_bytes`; counts are identical
/// at every team size.
LabeledCensus labeled_census(
    const Graph& a, const Labeling& lab,
    std::size_t max_accumulator_bytes = kLabeledCensusAccumulatorBudget);

}  // namespace kronotri::triangle
