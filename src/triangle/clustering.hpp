// Clustering coefficients — the canonical consumers of triangle
// participation (§I of the paper cites local clustering as the motivating
// statistic for t_A and Δ_A).
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace kronotri::triangle {

/// Local clustering coefficient per vertex: c_v = t_v / C(d_v, 2), zero for
/// degree < 2. Undirected; loops ignored.
std::vector<double> local_clustering(const Graph& a);

/// Global clustering coefficient (transitivity): 3·τ / #wedges.
double global_clustering(const Graph& a);

/// Mean of the local coefficients (Watts–Strogatz average clustering).
double average_clustering(const Graph& a);

}  // namespace kronotri::triangle
