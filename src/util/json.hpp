// Minimal JSON library: one Value type that both parses and writes.
//
// Every machine-readable artifact the repo emits — the BENCH_*.json
// snapshots, `validate --json`, the RunReport of `kronotri run` — used to
// hand-roll its JSON with ostream inserts, each file re-inventing escaping
// and number formatting. This module centralizes that: build a Value tree
// and dump() it, or parse() an incoming document (the `run --plan` job
// descriptions). The surface is deliberately tiny — objects keep insertion
// order, numbers distinguish unsigned/signed/double so 64-bit triangle
// counts round-trip exactly, and there is no DOM mutation API beyond
// set/push_back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace kronotri::util::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kUInt, kInt, kDouble, kString, kArray, kObject };
  using Member = std::pair<std::string, Value>;

  Value() = default;  ///< null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T v) {  // NOLINT(google-explicit-constructor) — literals as values
    if constexpr (std::is_signed_v<T>) {
      kind_ = Kind::kInt;
      int_ = static_cast<std::int64_t>(v);
    } else {
      kind_ = Kind::kUInt;
      uint_ = static_cast<std::uint64_t>(v);
    }
  }

  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kUInt || kind_ == Kind::kInt ||
           kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch (an
  /// in-range signed/unsigned crossover is allowed, as is reading any
  /// number as double).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // -- arrays ---------------------------------------------------------------
  /// Appends to an array (a null Value becomes an array first).
  Value& push_back(Value v);
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] std::size_t size() const;

  // -- objects --------------------------------------------------------------
  /// Sets (appends or replaces) a member; a null Value becomes an object.
  Value& set(std::string key, Value v);
  /// Appends a member WITHOUT scanning for an existing key — for bulk
  /// builders (histograms) whose keys are known unique; set()'s
  /// replace-scan is linear per insert and would make them quadratic.
  Value& append(std::string key, Value v);
  /// Pointer to the member value, or nullptr when absent / not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Convenience lookups with fallbacks, for plan/report consumers.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Parses one JSON document (trailing non-whitespace is an error); throws
  /// std::invalid_argument with the byte offset of the problem.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Pretty-prints with `indent` spaces per level (0 = single line).
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

  /// Canonical single-line form: object members sorted by key (bytewise,
  /// recursively — insertion order is ignored), no whitespace anywhere, and
  /// the same exact number formatting as dump() (u64/i64 printed integral,
  /// doubles as the shortest round-trippable decimal). Two trees holding
  /// the same data always canonicalize to the same bytes, which is what
  /// makes hash64(dump_canonical_string()) a sound cache key for
  /// deterministic work (the service's result cache).
  void dump_canonical(std::ostream& os) const;
  [[nodiscard]] std::string dump_canonical_string() const;

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;
  void dump_canonical_impl(std::ostream& os) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

/// Writes `text` with JSON string escaping (quotes, backslashes, control
/// characters), without the surrounding quotes.
void escape(std::ostream& os, std::string_view text);

/// 64-bit FNV-1a digest of `bytes`. Stable across platforms and runs (no
/// per-process seeding), so digests can be pinned in tests and exchanged
/// between a service and its clients as job/cache identifiers. Not
/// cryptographic — collision resistance is "good enough for a cache whose
/// lookups also compare the full key".
[[nodiscard]] std::uint64_t hash64(std::string_view bytes) noexcept;

/// Object {"<key>": count, …} from an integer→integer map — the shape every
/// count/degree histogram in the repo serializes to.
template <typename Map>
[[nodiscard]] Value histogram(const Map& hist) {
  Value out = Value::object();
  for (const auto& [value, freq] : hist) {
    out.append(std::to_string(value), freq);  // map keys are unique
  }
  return out;
}

}  // namespace kronotri::util::json
