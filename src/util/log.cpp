#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <sstream>

#include <sys/time.h>
#include <unistd.h>

namespace kronotri::util::log {

namespace {

std::atomic<int>& threshold_cell() {
  static std::atomic<int> cell{-1};  // -1 = not yet read from env
  return cell;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

void append_timestamp(std::ostringstream& os) {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  tm utc{};
  gmtime_r(&tv.tv_sec, &utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03ldZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec,
                static_cast<long>(tv.tv_usec / 1000));
  os << buf;
}

bool needs_quotes(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=') return true;
  }
  return false;
}

}  // namespace

Level level_from(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  return Level::kWarn;
}

Level threshold() {
  std::atomic<int>& cell = threshold_cell();
  int v = cell.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("KRONOTRI_LOG");
    const Level parsed = env != nullptr ? level_from(env) : Level::kWarn;
    v = static_cast<int>(parsed);
    cell.store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void set_threshold(Level level) {
  threshold_cell().store(static_cast<int>(level), std::memory_order_relaxed);
}

Field::Field(std::string_view k, double v) : key(k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

std::string format_line(Level level, std::string_view component,
                        std::string_view message,
                        std::initializer_list<Field> fields) {
  std::ostringstream os;
  append_timestamp(os);
  os << ' ' << level_name(level) << " [" << ::getpid() << "] " << component
     << ": " << message;
  for (const Field& f : fields) {
    os << ' ' << f.key << '=';
    if (needs_quotes(f.value)) {
      os << '"';
      for (char c : f.value) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
      }
      os << '"';
    } else {
      os << f.value;
    }
  }
  return os.str();
}

void write(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields) {
  if (!enabled(level)) return;
  const std::string line = format_line(level, component, message, fields);
  static std::mutex mu;  // one writer: lines never interleave
  const std::lock_guard<std::mutex> lock(mu);
  std::cerr << line << '\n';
}

}  // namespace kronotri::util::log
