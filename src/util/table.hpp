// Plain-text table rendering for the benchmark harnesses. Every bench binary
// re-prints its paper table through this facility so the output of
// `for b in build/bench/*; do $b; done` reads like the paper's evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kronotri::util {

/// Format an integer with thousands separators: 1234567 -> "1,234,567".
std::string commas(std::uint64_t v);

/// Format like the paper's Table VI: 325729 -> "325.7K", 2.38e12 -> "2.38T".
std::string human(double v, int digits = 3);

/// Column-aligned ASCII table. Usage:
///   Table t({"Matrix", "Vertices", "Edges"});
///   t.row({"A", "325.7K", "1.1M"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kronotri::util
