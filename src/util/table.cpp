#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace kronotri::util {

std::string commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string human(double v, int digits) {
  static constexpr const char* suffix[] = {"", "K", "M", "B", "T", "Q"};
  int tier = 0;
  double x = std::fabs(v);
  while (x >= 1000.0 && tier < 5) {
    x /= 1000.0;
    ++tier;
  }
  char buf[64];
  if (tier == 0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    const int frac = std::max(0, digits - (x >= 100 ? 3 : x >= 10 ? 2 : 1));
    std::snprintf(buf, sizeof buf, "%.*f%s", frac, v < 0 ? -x : x, suffix[tier]);
  }
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "  " << r[c];
      for (std::size_t pad = r[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace kronotri::util
