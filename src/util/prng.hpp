// Deterministic pseudo-random number generation for reproducible graph
// generation. All generators in kronotri consume an explicit seed so every
// benchmark table and test sweep is bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <limits>

namespace kronotri::util {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used to seed Xoshiro and to
/// hash integers into well-distributed streams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless integer hash built on the SplitMix64 finalizer.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Xoshiro256**: fast general-purpose PRNG (Blackman & Vigna). Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x6b45cafe1234abcdULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the rejection region tiny.
    unsigned __int128 m = static_cast<unsigned __int128>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace kronotri::util
