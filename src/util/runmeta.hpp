// Hardware/run metadata stamped into every machine-readable artifact.
//
// The BENCH_*.json snapshots and RunReports travel between machines (CI
// artifacts, the single-hardware-thread dev container, real multi-core
// boxes), and a throughput number is meaningless without the execution
// context it was measured in. run_metadata() packages the context once:
// hardware concurrency, the OpenMP team ceiling, the streaming batch size,
// and the source revision (git describe, captured at configure time).
#pragma once

#include <cstddef>

#include "util/json.hpp"

namespace kronotri::util {

/// Metadata object: {hardware_concurrency, omp_max_threads, batch_size,
/// git_describe}. `git_describe` is the configure-time `git describe
/// --always --dirty` ("unknown" outside a git checkout); it goes stale if
/// the build tree outlives the commit it was configured at, which is the
/// accepted precision for a provenance hint.
json::Value run_metadata(std::size_t batch_size);

/// Process peak resident set size in BYTES (getrusage ru_maxrss, which
/// Linux reports in KiB). A monotone high-water mark for the whole process
/// — it never decreases, so in a long-running server it bounds the largest
/// job seen so far rather than the current one. Returns 0 where getrusage
/// is unavailable.
std::size_t peak_rss_bytes();

}  // namespace kronotri::util
