// Hardware/run metadata stamped into every machine-readable artifact.
//
// The BENCH_*.json snapshots and RunReports travel between machines (CI
// artifacts, the single-hardware-thread dev container, real multi-core
// boxes), and a throughput number is meaningless without the execution
// context it was measured in. run_metadata() packages the context once:
// hardware concurrency, the OpenMP team ceiling, the streaming batch size,
// and the source revision (git describe, captured at configure time).
#pragma once

#include <cstddef>

#include "util/json.hpp"

namespace kronotri::util {

/// Metadata object: {hardware_concurrency, omp_max_threads, batch_size,
/// git_describe}. `git_describe` is the configure-time `git describe
/// --always --dirty` ("unknown" outside a git checkout); it goes stale if
/// the build tree outlives the commit it was configured at, which is the
/// accepted precision for a provenance hint.
json::Value run_metadata(std::size_t batch_size);

}  // namespace kronotri::util
