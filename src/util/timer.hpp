// Back-compat timing shims over obs::Stopwatch — the one clock
// implementation (see src/obs/stopwatch.hpp). Benchmarks, examples and the
// run-plan engine keep their WallTimer/CpuTimer call sites; the clocks they
// read are now the same CLOCK_MONOTONIC / CLOCK_PROCESS_CPUTIME_ID pair the
// flight recorder's spans use, so report timings and trace timings agree.
#pragma once

#include "obs/stopwatch.hpp"

namespace kronotri::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept = default;

  void reset() noexcept { sw_.reset(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept { return sw_.wall_s(); }

  [[nodiscard]] double millis() const noexcept { return sw_.wall_ms(); }

  /// Start instant on the obs::now_us() axis — lets a caller pair a report
  /// timing with a trace span without a second clock read.
  [[nodiscard]] double start_us() const noexcept { return sw_.start_us(); }

 private:
  obs::Stopwatch sw_;
};

/// Process-CPU stopwatch: the summed CPU seconds of every thread in the
/// process. The wall/CPU pair is what makes parallel-stage timings portable
/// — wall time on an oversubscribed box measures the scheduler, CPU seconds
/// measure the work. Starts on construction.
class CpuTimer {
 public:
  CpuTimer() noexcept = default;

  void reset() noexcept { sw_.reset(); }

  [[nodiscard]] double seconds() const noexcept { return sw_.cpu_s(); }

 private:
  obs::Stopwatch sw_;
};

}  // namespace kronotri::util
