// Minimal wall-clock timing used by benchmark harnesses and examples.
#pragma once

#include <chrono>

namespace kronotri::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kronotri::util
