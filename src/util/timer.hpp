// Minimal wall-clock and process-CPU timing used by benchmark harnesses,
// examples and the run-plan engine's stage timings.
#pragma once

#include <chrono>
#include <ctime>

namespace kronotri::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Process-CPU stopwatch: the summed CPU seconds of every thread in the
/// process. The wall/CPU pair is what makes parallel-stage timings portable
/// — wall time on an oversubscribed box measures the scheduler, CPU seconds
/// measure the work. Starts on construction.
class CpuTimer {
 public:
  CpuTimer() noexcept : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  [[nodiscard]] double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace kronotri::util
