#include "util/fault.hpp"

#include <cstdlib>
#include <stdexcept>

namespace kronotri::util::fault {

namespace {

[[noreturn]] void bad_spec(const std::string& why) {
  throw std::invalid_argument(
      "fault spec: " + why +
      " (grammar: kind[:key=value]*, kinds "
      "kill|exit|stall|truncate|oom|torn_write|drop_conn|garble_frame, "
      "keys shard|attempt|secs|code, comma-separated actions)");
}

bool known_kind(std::string_view kind) {
  return kind == "kill" || kind == "exit" || kind == "stall" ||
         kind == "truncate" || kind == "oom" || kind == "torn_write" ||
         kind == "drop_conn" || kind == "garble_frame";
}

Action parse_action(std::string_view token) {
  Action a;
  std::size_t pos = token.find(':');
  a.kind = std::string(token.substr(0, pos));
  if (!known_kind(a.kind)) bad_spec("unknown kind \"" + a.kind + "\"");
  while (pos != std::string_view::npos) {
    const std::size_t start = pos + 1;
    pos = token.find(':', start);
    const std::string_view kv = token.substr(
        start, pos == std::string_view::npos ? pos : pos - start);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == kv.size()) {
      bad_spec("expected key=value, got \"" + std::string(kv) + "\"");
    }
    const std::string key(kv.substr(0, eq));
    const std::string value(kv.substr(eq + 1));
    try {
      if (key == "shard") {
        a.shard = std::stoll(value);
      } else if (key == "attempt") {
        a.attempt = std::stoll(value);
      } else if (key == "secs") {
        a.secs = std::stod(value);
      } else if (key == "code") {
        a.code = std::stoi(value);
      } else {
        bad_spec("unknown key \"" + key + "\"");
      }
    } catch (const std::invalid_argument&) {
      bad_spec("non-numeric value \"" + value + "\" for key \"" + key + "\"");
    } catch (const std::out_of_range&) {
      bad_spec("out-of-range value \"" + value + "\" for key \"" + key +
               "\"");
    }
  }
  return a;
}

}  // namespace

Injector::Injector(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view token = spec.substr(pos, comma - pos);
    if (!token.empty()) actions_.push_back(parse_action(token));
    pos = comma + 1;
  }
}

Injector Injector::from_env() {
  const char* spec = std::getenv("KRONOTRI_FAULT");
  return (spec != nullptr && *spec != '\0') ? Injector(spec) : Injector();
}

const Action* Injector::match(std::string_view kind, std::uint64_t shard,
                              std::uint64_t attempt) const noexcept {
  for (const Action& a : actions_) {
    if (a.kind != kind) continue;
    if (a.shard >= 0 && static_cast<std::uint64_t>(a.shard) != shard) continue;
    if (a.attempt >= 0 && static_cast<std::uint64_t>(a.attempt) != attempt) {
      continue;
    }
    return &a;
  }
  return nullptr;
}

}  // namespace kronotri::util::fault
