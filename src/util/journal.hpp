// Crash-safe journaling primitives — the durability layer under the
// multi-process runner's `--journal/--resume` and the service's
// `--state` replay.
//
// Three pieces, each usable on its own:
//
//   * atomic_write_file(): write-to-temp + fsync + rename + parent-dir
//     fsync, so a path either holds the complete old bytes or the
//     complete new bytes — never a torn mixture — even across power loss.
//   * Frames: length-prefixed, CRC64-checksummed records
//     ("KTJ1" magic | u64 LE length | payload | u64 LE CRC-64/XZ of the
//     payload). decode_frames() returns every frame that verifies and
//     classifies the tail as clean, truncated (a writer died mid-append)
//     or corrupt (bit rot, a torn write, a flipped byte) — corrupt and
//     truncated tails are DATA LOSS BOUNDARIES, never parse errors: the
//     valid prefix stays usable.
//   * Journal: an append-only file of frames with an fsync per append —
//     the write-ahead log the runner coordinator records unit transitions
//     in and the service records admitted submits in. Readers truncate to
//     the valid prefix before appending again, so one torn tail never
//     poisons the records that follow it.
//
// CRC-64/XZ (reflected ECMA-182 polynomial) on purpose: it is the
// checksum xz/liblzma uses for exactly this "detect torn or rotted
// frames" job, and its check value is pinned in tests so the format can
// never drift silently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kronotri::util::journal {

/// CRC-64/XZ digest of `bytes` (poly 0x42F0E1EBA9EA3693 reflected, init
/// and xorout ~0). crc64("123456789") == 0x995DC9BBDF1939FA.
[[nodiscard]] std::uint64_t crc64(std::string_view bytes) noexcept;

/// One encoded frame: "KTJ1" | u64 LE payload length | payload |
/// u64 LE crc64(payload).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Bytes every frame costs beyond its payload (magic + length + CRC).
inline constexpr std::size_t kFrameOverhead = 4 + 8 + 8;

struct Decoded {
  enum class Tail {
    kClean,      ///< the byte stream ends exactly on a frame boundary
    kTruncated,  ///< a final frame is incomplete (writer died mid-append)
    kCorrupt,    ///< bad magic or CRC mismatch — bit rot or a torn write
  };
  std::vector<std::string> frames;  ///< verified payloads, in write order
  std::size_t valid_bytes = 0;      ///< offset one past the last good frame
  Tail tail = Tail::kClean;
};

/// Decodes frames until the bytes run out or a frame fails to verify.
/// Never throws: damage is reported through `tail`, and everything before
/// `valid_bytes` is trustworthy.
[[nodiscard]] Decoded decode_frames(std::string_view bytes);

/// Atomically replaces `path` with `bytes`: writes `path`.tmp.<pid>,
/// fsyncs it, renames over `path`, fsyncs the parent directory. Throws
/// std::runtime_error (with errno text) on any failure; the temp file is
/// unlinked on the error paths.
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Whole file as a string; nullopt when it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// fsync() of an existing file, then of its parent directory — what makes
/// a rename-into-journal durable. Throws std::runtime_error on failure.
void fsync_file_and_dir(const std::string& path);

/// mkdir -p: creates `dir` and any missing ancestors (mode 0755). Throws
/// std::runtime_error when a component exists as a non-directory or
/// creation fails.
void ensure_dir(const std::string& dir);

/// Append-only write-ahead log of frames. Not thread-safe — callers that
/// share one Journal across threads (the service) serialize externally.
class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if missing) `path` for appends. Throws
  /// std::runtime_error on failure.
  void open(const std::string& path);
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  void close() noexcept;

  /// Appends one frame and fsyncs — the record is durable when this
  /// returns. Throws std::runtime_error on write/fsync failure.
  void append(std::string_view payload);

  /// Appends only the first `bytes` bytes of what append(payload) would
  /// write, with NO fsync — the deterministic "writer died mid-append"
  /// (torn write) used by fault injection and the malformed-journal tests.
  void append_torn(std::string_view payload, std::size_t bytes);

  /// Decodes the whole file at `path`; a missing file decodes to zero
  /// clean frames (a journal that was never written is an empty journal).
  [[nodiscard]] static Decoded read(const std::string& path);

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace kronotri::util::journal
