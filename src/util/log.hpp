// Leveled structured logging: one writer, timestamped lines, level gated
// by KRONOTRI_LOG (debug|info|warn|error|off; default warn so existing
// output is unchanged). Replaces the ad-hoc std::cerr prints scattered
// through runner/service/triangle — those interleave across threads and
// carry no timestamp or severity, which makes a multi-worker stall
// undebuggable.
//
// Line format (stderr, one write per line under a global mutex):
//   2026-08-08T12:34:56.789Z INFO  [1234] runner: unit dispatched unit=3 pid=77
//
// Usage:
//   util::log::info("runner", "unit dispatched", {{"unit", u}, {"pid", pid}});
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace kronotri::util::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Threshold from KRONOTRI_LOG, cached after the first call.
[[nodiscard]] Level threshold();
/// Override (tests); pass-through to the same cached state threshold() reads.
void set_threshold(Level level);
/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// anything else → kWarn.
[[nodiscard]] Level level_from(std::string_view text);

[[nodiscard]] inline bool enabled(Level level) {
  return static_cast<int>(level) >= static_cast<int>(threshold());
}

/// One key=value pair. The constructors cover what call sites actually
/// pass; values render unquoted except strings containing spaces.
struct Field {
  std::string key;
  std::string value;

  Field(std::string_view k, std::string_view v) : key(k), value(v) {}
  Field(std::string_view k, const std::string& v) : key(k), value(v) {}
  Field(std::string_view k, const char* v) : key(k), value(v) {}
  Field(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, std::int64_t v)
      : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, unsigned v) : key(k), value(std::to_string(v)) {}
  Field(std::string_view k, double v);
};

/// Formats one line WITHOUT writing it — the testable core.
[[nodiscard]] std::string format_line(Level level, std::string_view component,
                                      std::string_view message,
                                      std::initializer_list<Field> fields);

/// Writes to stderr iff `level` clears the threshold. One global mutex
/// serializes writers so multi-thread lines never interleave.
void write(Level level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

inline void debug(std::string_view component, std::string_view message,
                  std::initializer_list<Field> fields = {}) {
  write(Level::kDebug, component, message, fields);
}
inline void info(std::string_view component, std::string_view message,
                 std::initializer_list<Field> fields = {}) {
  write(Level::kInfo, component, message, fields);
}
inline void warn(std::string_view component, std::string_view message,
                 std::initializer_list<Field> fields = {}) {
  write(Level::kWarn, component, message, fields);
}
inline void error(std::string_view component, std::string_view message,
                  std::initializer_list<Field> fields = {}) {
  write(Level::kError, component, message, fields);
}

}  // namespace kronotri::util::log
