// Small statistical helpers for degree/triangle distribution reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace kronotri::util {

/// Exact frequency histogram of integer samples: value -> multiplicity.
template <typename T>
std::map<T, std::uint64_t> histogram(std::span<const T> samples) {
  std::map<T, std::uint64_t> h;
  for (const T& s : samples) ++h[s];
  return h;
}

template <typename T>
T max_value(std::span<const T> samples) {
  T m{};
  for (const T& s : samples) m = std::max(m, s);
  return m;
}

template <typename T>
double mean(std::span<const T> samples) {
  if (samples.empty()) return 0.0;
  long double acc = 0;
  for (const T& s : samples) acc += static_cast<long double>(s);
  return static_cast<double>(acc / static_cast<long double>(samples.size()));
}

/// Least-squares slope of log(count) vs log(value) over the histogram tail —
/// a crude but serviceable power-law exponent estimate for degree
/// distributions (enough to demonstrate heavy-tailedness, §III.A).
template <typename T>
double log_log_slope(const std::map<T, std::uint64_t>& hist) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::uint64_t n = 0;
  for (const auto& [value, count] : hist) {
    if (value == T{0}) continue;
    const double x = std::log(static_cast<double>(value));
    const double y = std::log(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

}  // namespace kronotri::util
