#include "util/journal.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace kronotri::util::journal {

namespace {

constexpr char kMagic[4] = {'K', 'T', 'J', '1'};

[[noreturn]] void io_error(const std::string& what) {
  throw std::runtime_error("journal: " + what + ": " + std::strerror(errno));
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_u64le(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// write() until everything is out or an error other than EINTR hits.
bool write_all_fd(int fd, std::string_view bytes) noexcept {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) io_error("open dir " + dir);
  // Directory fsync failures are real on some filesystems; a durability
  // layer must not shrug them off.
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("fsync dir " + dir);
  }
  ::close(fd);
}

}  // namespace

std::uint64_t crc64(std::string_view bytes) noexcept {
  // Table for the reflected ECMA-182 polynomial (CRC-64/XZ).
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xC96C5795D7870F42ULL : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  std::uint64_t crc = ~0ULL;
  for (const char c : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameOverhead);
  out.append(kMagic, sizeof(kMagic));
  put_u64le(out, payload.size());
  out.append(payload);
  put_u64le(out, crc64(payload));
  return out;
}

Decoded decode_frames(std::string_view bytes) {
  Decoded out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < sizeof(kMagic) + 8) {
      out.tail = Decoded::Tail::kTruncated;
      break;
    }
    if (std::memcmp(bytes.data() + pos, kMagic, sizeof(kMagic)) != 0) {
      out.tail = Decoded::Tail::kCorrupt;
      break;
    }
    const std::uint64_t len = get_u64le(bytes.data() + pos + sizeof(kMagic));
    const std::size_t header = sizeof(kMagic) + 8;
    // A corrupted length field that "asks" for more bytes than exist is
    // indistinguishable from a mid-append death; both stop decoding here.
    if (len > remaining - header || remaining - header - len < 8) {
      out.tail = Decoded::Tail::kTruncated;
      break;
    }
    const std::string_view payload = bytes.substr(pos + header, len);
    const std::uint64_t stored = get_u64le(bytes.data() + pos + header + len);
    if (crc64(payload) != stored) {
      out.tail = Decoded::Tail::kCorrupt;
      break;
    }
    out.frames.emplace_back(payload);
    pos += header + len + 8;
    out.valid_bytes = pos;
  }
  return out;
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_error("open " + tmp);
  if (!write_all_fd(fd, bytes)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    io_error("write " + tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    io_error("fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    io_error("rename " + tmp + " -> " + path);
  }
  fsync_dir(parent_dir(path));
}

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void fsync_file_and_dir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_error("open " + path);
  if (::fsync(fd) != 0) {
    ::close(fd);
    io_error("fsync " + path);
  }
  ::close(fd);
  fsync_dir(parent_dir(path));
}

void ensure_dir(const std::string& dir) {
  if (dir.empty()) return;
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = dir.substr(0, slash == std::string::npos ? dir.size() : slash);
    pos = (slash == std::string::npos ? dir.size() : slash) + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST) {
      struct stat st {};
      if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        throw std::runtime_error("journal: " + prefix +
                                 " exists and is not a directory");
      }
      continue;
    }
    io_error("mkdir " + prefix);
  }
}

void Journal::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) io_error("open " + path);
  path_ = path;
}

void Journal::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

void Journal::append(std::string_view payload) {
  if (fd_ < 0) throw std::logic_error("journal: append on a closed Journal");
  const std::string frame = encode_frame(payload);
  if (!write_all_fd(fd_, frame)) io_error("append to " + path_);
  if (::fsync(fd_) != 0) io_error("fsync " + path_);
}

void Journal::append_torn(std::string_view payload, std::size_t bytes) {
  if (fd_ < 0) throw std::logic_error("journal: append on a closed Journal");
  const std::string frame = encode_frame(payload);
  const std::string_view torn =
      std::string_view(frame).substr(0, std::min(bytes, frame.size()));
  if (!write_all_fd(fd_, torn)) io_error("append to " + path_);
  // Deliberately no fsync: a torn write is a crash, crashes do not sync.
}

Decoded Journal::read(const std::string& path) {
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes) return Decoded{};
  return decode_frames(*bytes);
}

}  // namespace kronotri::util::journal
