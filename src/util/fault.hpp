// Deterministic fault injection for the multi-process runner.
//
// The runner's recovery paths (retry, timeout + SIGKILL, truncated-frame
// re-dispatch, retry-budget exhaustion) are only trustworthy if every one
// of them is exercised, not just claimed — so faults are injected at
// exact (work-unit, attempt) coordinates from a compact spec string:
//
//   spec    := action ( ',' action )*
//   action  := kind ( ':' key '=' value )*
//   kind    := kill | exit | stall | truncate | oom | torn_write
//            | drop_conn | garble_frame
//   keys    := shard=N     work-unit index the fault fires on (default any)
//              attempt=N   0-based attempt it fires on (default every one)
//              secs=F      stall duration (stall only; default 3600)
//              code=N      exit status (exit only; default 1)
//
// `oom` makes the worker hit its std::bad_alloc path (the same one the
// RLIMIT_AS resource guard trips) and die with runner::kOomExitCode;
// `torn_write` fires in the COORDINATOR: the journaled fragment of the
// matched (unit, attempt) is written half-way and never synced, the
// deterministic stand-in for a crash mid-write that resume must detect
// by CRC and re-execute. The network kinds fire in a remote AGENT
// (`kronotri agent`): `drop_conn` hard-closes the coordinator connection
// when the matched (unit, attempt) is dispatched to it — the injectable
// partition the "disconnect" re-dispatch path must survive — and
// `garble_frame` flips a byte inside that attempt's result frame so the
// transport's CRC check, not luck, catches the damage ("garbled" event,
// connection dropped, unit re-dispatched).
//
// Examples: "kill:shard=1:attempt=0" (the CI crash-injection smoke),
// "stall:shard=2:secs=30", "truncate:shard=0:attempt=0,exit:shard=3",
// "oom:shard=1:attempt=0", "torn_write:shard=2".
// The spec reaches a worker via plan options.fault or the KRONOTRI_FAULT
// environment variable; an empty spec is a no-op injector.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kronotri::util::fault {

/// One parsed fault action. shard/attempt of -1 match any value.
struct Action {
  std::string kind;
  std::int64_t shard = -1;
  std::int64_t attempt = -1;
  double secs = 3600;
  int code = 1;
};

class Injector {
 public:
  Injector() = default;
  /// Parses a spec; throws std::invalid_argument naming the offending
  /// token on unknown kinds/keys or malformed key=value pairs.
  explicit Injector(std::string_view spec);

  /// Injector from $KRONOTRI_FAULT (empty injector when unset).
  static Injector from_env();

  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }
  [[nodiscard]] const std::vector<Action>& actions() const noexcept {
    return actions_;
  }

  /// First action of `kind` whose shard/attempt constraints accept the
  /// given coordinates, or nullptr.
  [[nodiscard]] const Action* match(std::string_view kind,
                                    std::uint64_t shard,
                                    std::uint64_t attempt) const noexcept;

 private:
  std::vector<Action> actions_;
};

}  // namespace kronotri::util::fault
