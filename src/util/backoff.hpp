// Deterministic exponential backoff, shared by the multi-process runner
// (re-dispatching a failed shard worker) and service::Client (connect
// retries against a not-yet-listening daemon).
//
// delay_s() has no jitter on purpose: the service client retries against a
// resource on the SAME machine, where determinism (testable delay
// schedules, reproducible worker_events) is worth more than
// thundering-herd protection — that documented no-jitter default stands.
// The runner is different: a mass worker kill re-queues MANY units at the
// same instant, and identical delays re-dispatch them in lockstep against
// the same contended box. delay_jittered_s() spreads those re-dispatches
// with SEEDED jitter (util::hash64 over seed/stream/attempt), so the
// schedule is still bit-reproducible run-to-run — jitter without giving up
// determinism.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/prng.hpp"

namespace kronotri::util {

struct Backoff {
  double base_s = 0.05;    ///< delay before the first retry
  double multiplier = 2.0; ///< growth per additional failure
  double max_s = 2.0;      ///< delay ceiling
  /// Fraction of each delay randomized downward by delay_jittered_s():
  /// 0 keeps the exact schedule (delay_s), 0.5 draws from
  /// [0.5*delay, delay]. Deterministic — see `seed`.
  double jitter = 0;
  std::uint64_t seed = 0;  ///< jitter stream seed (keyed per consumer)

  /// Delay to wait before retry number `attempt` (0-based: delay_s(0) is
  /// the wait after the first failure). Never jittered.
  [[nodiscard]] double delay_s(unsigned attempt) const noexcept {
    double d = base_s;
    for (unsigned i = 0; i < attempt && d < max_s; ++i) d *= multiplier;
    return std::min(d, max_s);
  }

  /// delay_s(attempt) scaled by a deterministic draw from
  /// [1 - jitter, 1]: the draw depends only on (seed, stream, attempt),
  /// so distinct streams (the runner keys by work-unit id) spread out
  /// while the whole schedule stays reproducible. jitter <= 0 is exactly
  /// delay_s.
  [[nodiscard]] double delay_jittered_s(unsigned attempt,
                                        std::uint64_t stream) const noexcept {
    const double d = delay_s(attempt);
    if (jitter <= 0) return d;
    const std::uint64_t h =
        hash64(seed ^ hash64(stream ^ (static_cast<std::uint64_t>(attempt)
                                       << 32)));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    return d * (1.0 - jitter * u);
  }

  static void sleep_s(double seconds) {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace kronotri::util
