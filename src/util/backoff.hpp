// Deterministic exponential backoff, shared by the multi-process runner
// (re-dispatching a failed shard worker) and service::Client (connect
// retries against a not-yet-listening daemon). No jitter on purpose: both
// consumers retry against resources on the SAME machine, where determinism
// (testable delay schedules, reproducible worker_events) is worth more
// than thundering-herd protection.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

namespace kronotri::util {

struct Backoff {
  double base_s = 0.05;    ///< delay before the first retry
  double multiplier = 2.0; ///< growth per additional failure
  double max_s = 2.0;      ///< delay ceiling

  /// Delay to wait before retry number `attempt` (0-based: delay_s(0) is
  /// the wait after the first failure).
  [[nodiscard]] double delay_s(unsigned attempt) const noexcept {
    double d = base_s;
    for (unsigned i = 0; i < attempt && d < max_s; ++i) d *= multiplier;
    return std::min(d, max_s);
  }

  static void sleep_s(double seconds) {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace kronotri::util
