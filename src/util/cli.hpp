// Tiny command-line flag parser shared by the examples and benchmark
// harnesses. Supports `--name value` and `--name=value`, with typed getters
// and defaults; unknown flags are collected so google-benchmark flags pass
// through untouched. A bare `--` ends flag parsing: everything after it is
// positional, so values that themselves start with `--` can be passed
// positionally (or via the always-unambiguous `--name=value` form).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace kronotri::util {

/// Parses a boolean token: 1/true/yes/on → true, 0/false/no/off → false;
/// throws std::invalid_argument naming `context` on anything else. Shared
/// by Cli::get_bool and api::GraphSpec::get_bool so flag and spec booleans
/// accept exactly the same vocabulary.
bool parse_bool_token(const std::string& value, const std::string& context);

/// Parses a byte count with an optional K/M/G (KiB/MiB/GiB) suffix.
/// Rejects anything that is not digits-then-one-suffix-letter (stoull alone
/// would wrap negatives and ignore trailing garbage). Shared by the CLI's
/// --mem-budget flag and the analysis-registry mem_budget params.
std::size_t parse_byte_count(const std::string& text);

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Boolean flag value: a bare `--name` is true; an explicit value must be
  /// one of 1/true/yes/on or 0/false/no/off (throws std::invalid_argument
  /// otherwise). An absent flag returns `fallback`.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional arguments (non-flag tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kronotri::util
