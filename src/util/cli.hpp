// Tiny command-line flag parser shared by the examples and benchmark
// harnesses. Supports `--name value` and `--name=value`, with typed getters
// and defaults; unknown flags are collected so google-benchmark flags pass
// through untouched.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace kronotri::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Positional arguments (non-flag tokens), in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kronotri::util
