#include "util/cli.hpp"

#include <cstddef>
#include <cstdlib>
#include <string>
#include <stdexcept>

namespace kronotri::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!flags_done && tok == "--") {  // end-of-flags terminator
      flags_done = true;
      continue;
    }
    if (flags_done || tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    std::string name = tok.substr(2);
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      flags_[name.substr(0, eq)] = name.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[name] = argv[++i];
    } else {
      flags_[name] = "1";  // boolean flag
    }
  }
}

std::size_t parse_byte_count(const std::string& text) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    throw std::invalid_argument("bad byte count \"" + text + "\"");
  }
  std::size_t end = 0;
  const unsigned long long value = std::stoull(text, &end);
  std::size_t shift = 0;
  if (end < text.size()) {
    switch (text[end]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default:
        throw std::invalid_argument("bad byte suffix in \"" + text + "\"");
    }
    if (end + 1 != text.size()) {
      throw std::invalid_argument("bad byte suffix in \"" + text + "\"");
    }
  }
  return static_cast<std::size_t>(value) << shift;
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::uint64_t Cli::get_uint(const std::string& name, std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool parse_bool_token(const std::string& value, const std::string& context) {
  if (value == "1" || value == "true" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument(context + ": expected a boolean, got \"" +
                              value + "\"");
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return parse_bool_token(it->second, "--" + name);
}

}  // namespace kronotri::util
