#include "util/runmeta.hpp"

#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace kronotri::util {

json::Value run_metadata(std::size_t batch_size) {
  json::Value meta = json::Value::object();
  meta.set("hardware_concurrency", std::thread::hardware_concurrency());
#ifdef _OPENMP
  meta.set("omp_max_threads", omp_get_max_threads());
#else
  meta.set("omp_max_threads", 1);
#endif
  meta.set("batch_size", batch_size);
#ifdef KRONOTRI_GIT_DESCRIBE
  meta.set("git_describe", KRONOTRI_GIT_DESCRIBE);
#else
  meta.set("git_describe", "unknown");
#endif
  return meta;
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace kronotri::util
