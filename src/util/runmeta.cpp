#include "util/runmeta.hpp"

#include <thread>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace kronotri::util {

json::Value run_metadata(std::size_t batch_size) {
  json::Value meta = json::Value::object();
  meta.set("hardware_concurrency", std::thread::hardware_concurrency());
#ifdef _OPENMP
  meta.set("omp_max_threads", omp_get_max_threads());
#else
  meta.set("omp_max_threads", 1);
#endif
  meta.set("batch_size", batch_size);
#ifdef KRONOTRI_GIT_DESCRIBE
  meta.set("git_describe", KRONOTRI_GIT_DESCRIBE);
#else
  meta.set("git_describe", "unknown");
#endif
  return meta;
}

}  // namespace kronotri::util
