#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace kronotri::util::json {

namespace {

[[noreturn]] void kind_error(const char* wanted, Value::Kind got) {
  throw std::invalid_argument(std::string("json: expected ") + wanted +
                              ", value kind is " +
                              std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

std::uint64_t Value::as_uint() const {
  if (kind_ == Kind::kUInt) return uint_;
  if (kind_ == Kind::kInt && int_ >= 0) {
    return static_cast<std::uint64_t>(int_);
  }
  kind_error("unsigned integer", kind_);
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUInt &&
      uint_ <= static_cast<std::uint64_t>(INT64_MAX)) {
    return static_cast<std::int64_t>(uint_);
  }
  kind_error("integer", kind_);
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kDouble: return double_;
    case Kind::kUInt: return static_cast<double>(uint_);
    case Kind::kInt: return static_cast<double>(int_);
    default: kind_error("number", kind_);
  }
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

Value& Value::push_back(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(v));
  return *this;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  kind_error("array or object", kind_);
}

Value& Value::set(std::string key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::append(std::string key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<Value::Member>& Value::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

std::string Value::get_string(std::string_view key,
                              std::string fallback) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

std::uint64_t Value::get_uint(std::string_view key,
                              std::uint64_t fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_uint();
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

// ---- writer ---------------------------------------------------------------

void escape(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

namespace {

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  // Shortest round-trippable decimal form.
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec == std::errc()) {
    os.write(buf, end - buf);
  } else {
    os << d;
  }
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Value::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kUInt: os << uint_; break;
    case Kind::kInt: os << int_; break;
    case Kind::kDouble: write_double(os, double_); break;
    case Kind::kString:
      os << '"';
      escape(os, string_);
      os << '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        os << '"';
        escape(os, object_[i].first);
        os << "\": ";
        object_[i].second.dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Value::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Value::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

void Value::dump_canonical_impl(std::ostream& os) const {
  switch (kind_) {
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        array_[i].dump_canonical_impl(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      // Sort an index vector, not the members themselves: canonicalization
      // must not mutate the tree (dump order elsewhere stays insertion
      // order). Duplicate keys cannot arise — set() replaces — but append()
      // bulk builders could create them; later-wins would be ambiguous, so
      // ties keep first occurrence order and both are emitted (the bytes
      // are still deterministic).
      std::vector<std::size_t> order(object_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return object_[a].first < object_[b].first;
                       });
      os << '{';
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0) os << ',';
        os << '"';
        escape(os, object_[order[i]].first);
        os << "\":";
        object_[order[i]].second.dump_canonical_impl(os);
      }
      os << '}';
      break;
    }
    default: dump_impl(os, 0, 0); break;  // scalars already canonical
  }
}

void Value::dump_canonical(std::ostream& os) const { dump_canonical_impl(os); }

std::string Value::dump_canonical_string() const {
  std::ostringstream os;
  dump_canonical(os);
  return os.str();
}

std::uint64_t hash64(std::string_view bytes) noexcept {
  // FNV-1a, 64-bit: offset basis 14695981039346656037, prime 1099511628211.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- parser ---------------------------------------------------------------

namespace {

/// Nesting ceiling for the recursive-descent parser: plan/report documents
/// are a handful of levels deep; a hostile or corrupt document must raise
/// invalid_argument, not overflow the stack.
constexpr int kMaxParseDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxParseDepth) fail("nesting deeper than 256 levels");
    Value v = parse_value_inner();
    --depth_;
    return v;
  }

  Value parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // BMP code point → UTF-8 (surrogate pairs are not combined; the
          // plan/report vocabulary is ASCII).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && p == token.data() + token.size()) {
          return Value(v);
        }
      } else {
        std::uint64_t v = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && p == token.data() + token.size()) {
          return Value(v);
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    double d = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || p != token.data() + token.size()) {
      fail("bad number \"" + std::string(token) + "\"");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace kronotri::util::json
