// Truss decomposition (Def. 7 of the paper; Cohen [16]).
//
// A κ-truss is a maximal 1-component subgraph in which every edge closes at
// least κ−2 triangles inside the subgraph (we follow the paper and compute
// the edge sets T^{(κ)} without splitting into components). The *truss
// number* of an edge is the largest κ with e ∈ T^{(κ)}; triangle-free edges
// get truss number 2.
//
// decompose() peels level-synchronously in the style of PKT (Kabir &
// Madduri): all edges at the current support level form a frontier whose
// triangles are enumerated in parallel, supports of surviving edges drop via
// bounded CAS (never below the level), and edges crossing the level join the
// next sub-round's frontier. The κ-truss decomposition is unique, so the
// result is bit-identical to the serial Batagelj–Zaveršnik bucket peel
// (decompose_serial) at every thread count. Both run in roughly
// O(Σ_e Δ(e)) after the initial support computation.
#pragma once

#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::truss {

struct TrussDecomposition {
  /// Symmetric matrix over the structure of A − I∘A; entry (i,j) is the
  /// truss number of edge (i,j) (≥ 2).
  CountCsr truss_number;
  /// Largest κ with a nonempty κ-truss (2 for triangle-free graphs).
  count_t max_truss = 2;

  /// Number of (undirected) edges with truss number ≥ κ, i.e. |T^{(κ)}|.
  [[nodiscard]] count_t edges_in_truss(count_t kappa) const;
};

/// Computes the decomposition with the parallel level-synchronous peel.
/// Requires an undirected graph; self loops are ignored.
TrussDecomposition decompose(const Graph& a);

/// The reference single-threaded bucket peel (Batagelj–Zaveršnik order).
/// Work-equal baseline for decompose() (benches) and its determinism oracle
/// (tests).
TrussDecomposition decompose_serial(const Graph& a);

/// The κ-truss T^{(κ)} as a subgraph of g (same vertex set, only edges with
/// truss number ≥ κ). Pass the decomposition of g.
Graph truss_subgraph(const TrussDecomposition& t, count_t kappa);

/// Precondition probe for Thm 3: true iff every edge of B participates in at
/// most one triangle (Δ_B ≤ 1).
bool edges_in_at_most_one_triangle(const Graph& b);

}  // namespace kronotri::truss
