// Kronecker truss transfer (Thm 3 of the paper).
//
// In general the truss decomposition of C = A ⊗ B is NOT a simple product
// of the factor decompositions (the paper's Ex. 2 is the counterexample,
// reproduced in bench_ex2_truss). Under the strong assumption Δ_B ≤ 1
// (every edge of B in at most one triangle) Thm 3 gives an exact transfer:
//
//   (p,q) ∈ T^{(κ)}_C  ⟺  (i,j) ∈ T^{(κ)}_A and (k,l) ∈ T^{(3)}_B,
//
// i.e. the truss number of a product edge is the truss number of its
// A-edge when its B-edge closes a triangle, and 2 otherwise. §III.D(b)'s
// preferential-attachment generator (gen/one_triangle_pa) produces
// scale-free B factors satisfying the assumption.
#pragma once

#include "core/graph.hpp"
#include "kron/index.hpp"
#include "truss/decompose.hpp"

namespace kronotri::truss {

class KronTrussOracle {
 public:
  /// Preconditions (checked): both factors undirected, loop-free;
  /// Δ_B ≤ 1. Computes the truss decomposition of A only.
  KronTrussOracle(const Graph& a, const Graph& b);

  /// Truss number of product edge (p,q); throws std::invalid_argument when
  /// (p,q) is not an edge of C.
  [[nodiscard]] count_t truss_number(vid p, vid q) const;

  /// |T^{(κ)}_C| — undirected edge count of the κ-truss of C, computed
  /// factor-side: |T^{(κ)}_A| · |T^{(3)}_B| ... counted over nonzero pairs.
  [[nodiscard]] count_t edges_in_truss(count_t kappa) const;

  [[nodiscard]] count_t max_truss() const noexcept {
    return b_tri_edges_ == 0 ? 2 : a_truss_.max_truss;
  }

  [[nodiscard]] const TrussDecomposition& factor_a_truss() const noexcept {
    return a_truss_;
  }

 private:
  const Graph* a_;
  const Graph* b_;
  kron::KronIndex index_;
  TrussDecomposition a_truss_;
  CountCsr b_delta_;        // Δ_B (0/1 valued by assumption)
  count_t b_tri_edges_ = 0; // |T^{(3)}_B| as undirected edges
};

}  // namespace kronotri::truss
