#include "truss/kron_truss.hpp"

#include <stdexcept>

#include "triangle/support.hpp"

namespace kronotri::truss {

KronTrussOracle::KronTrussOracle(const Graph& a, const Graph& b)
    : a_(&a),
      b_(&b),
      index_(b.num_vertices()),
      a_truss_(decompose(a)),
      b_delta_(triangle::edge_support_masked(b)) {
  if (a.has_self_loops() || b.has_self_loops()) {
    throw std::invalid_argument("Thm 3 requires loop-free factors");
  }
  for (const count_t v : b_delta_.values()) {
    if (v > 1) {
      throw std::invalid_argument(
          "Thm 3 requires Δ_B ≤ 1 (every B edge in at most one triangle)");
    }
    b_tri_edges_ += v;
  }
  b_tri_edges_ /= 2;  // symmetric storage
}

count_t KronTrussOracle::truss_number(vid p, vid q) const {
  const vid i = index_.a_of(p), j = index_.a_of(q);
  const vid k = index_.b_of(p), l = index_.b_of(q);
  if (!a_->has_edge(i, j) || !b_->has_edge(k, l)) {
    throw std::invalid_argument("truss_number: (p,q) is not an edge of C");
  }
  if (b_delta_.at(k, l) == 0) return 2;  // B edge closes no triangle
  return a_truss_.truss_number.at(i, j);
}

count_t KronTrussOracle::edges_in_truss(count_t kappa) const {
  // Every product edge pairs one stored A entry with one stored B entry;
  // it belongs to T^{(κ)}_C iff the A edge is in T^{(κ)}_A and the B edge
  // closes a triangle. Count stored pairs, then halve for undirectedness.
  count_t a_entries = 0;
  for (const count_t t : a_truss_.truss_number.values()) {
    if (t >= kappa) ++a_entries;
  }
  return a_entries * (b_tri_edges_ * 2) / 2;
}

}  // namespace kronotri::truss
