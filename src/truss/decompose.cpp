#include "truss/decompose.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/census.hpp"
#include "triangle/support.hpp"

namespace kronotri::truss {

namespace {

/// Edge lifecycle in the level-synchronous peel. Transitions only happen at
/// sub-round barriers, so a round always reads the state fixed at its start.
enum : std::uint8_t { kAlive = 0, kInFrontier = 1, kPeeled = 2 };

/// Assembles the symmetric truss_number matrix from per-edge-id values.
TrussDecomposition assemble(const BoolCsr& s, const triangle::EdgeIdMap& eids,
                            const std::vector<count_t>& truss_of, esz m) {
  TrussDecomposition out;
  std::vector<count_t> vals(s.nnz(), 0);
  count_t max_truss = 2;
  for (esz k = 0; k < s.nnz(); ++k) {
    vals[k] = truss_of[eids.slot_id[k]];
    max_truss = std::max(max_truss, vals[k]);
  }
  out.truss_number = CountCsr::from_parts(s.rows(), s.cols(), s.row_ptr(),
                                          s.col_idx(), std::move(vals));
  out.max_truss = m == 0 ? 2 : max_truss;
  return out;
}

}  // namespace

count_t TrussDecomposition::edges_in_truss(count_t kappa) const {
  count_t c = 0;
  for (const count_t t : truss_number.values()) {
    if (t >= kappa) ++c;
  }
  return c / 2;  // symmetric storage counts both directions
}

TrussDecomposition decompose(const Graph& a) {
  const triangle::CensusWorkspace ws(a);
  const BoolCsr& s = ws.structure();
  const triangle::EdgeIdMap& eids = ws.edge_ids();
  const esz m = eids.num_edges();

  std::vector<count_t> sup = ws.edge_census();
  std::vector<std::uint8_t> state(m, kAlive);
  std::vector<count_t> truss_of(m, 2);

  const unsigned workers = triangle::census_workers();
  std::vector<std::vector<esz>> tl_found(workers);
  std::vector<esz> curr;
  count_t level = 0;

  // Decrement sup[t] unless it already sits at the level (edges at or below
  // the threshold keep their peel level — the clamp the serial peel applies
  // by never touching the peeled prefix). Exactly one CAS observes the
  // crossing to `level`, so the crossing thread enqueues t exactly once.
  const auto try_decrement = [&](esz t, std::vector<esz>& found) {
    std::atomic_ref<count_t> slot(sup[t]);
    count_t cur = slot.load(std::memory_order_relaxed);
    while (cur > level) {
      if (slot.compare_exchange_weak(cur, cur - 1,
                                     std::memory_order_relaxed)) {
        if (cur - 1 == level) found.push_back(t);
        break;
      }
    }
  };

  esz remaining = m;
  while (remaining > 0) {
    // Jump to the smallest surviving support: the level loop advances by
    // distinct support values, not by 1, so sparse distributions don't pay
    // an O(m) scan per empty level.
    count_t lo = std::numeric_limits<count_t>::max();
#pragma omp parallel
    {
      count_t local_lo = std::numeric_limits<count_t>::max();
#pragma omp for schedule(static) nowait
      for (std::int64_t e = 0; e < static_cast<std::int64_t>(m); ++e) {
        if (state[static_cast<esz>(e)] == kAlive) {
          local_lo = std::min(local_lo, sup[static_cast<esz>(e)]);
        }
      }
#pragma omp critical(kronotri_truss_min)
      lo = std::min(lo, local_lo);
    }
    level = std::max(level, lo);

    // Initial frontier of this level (thread-local gather, then concat).
#pragma omp parallel
    {
#ifdef _OPENMP
      auto& found = tl_found[static_cast<std::size_t>(omp_get_thread_num())];
#else
      auto& found = tl_found.front();
#endif
      found.clear();
#pragma omp for schedule(static) nowait
      for (std::int64_t e = 0; e < static_cast<std::int64_t>(m); ++e) {
        if (state[static_cast<esz>(e)] == kAlive &&
            sup[static_cast<esz>(e)] <= level) {
          found.push_back(static_cast<esz>(e));
        }
      }
    }
    curr.clear();
    for (auto& found : tl_found) {
      curr.insert(curr.end(), found.begin(), found.end());
      found.clear();
    }
    for (const esz e : curr) state[e] = kInFrontier;

    // Sub-rounds: peel the frontier, collect the edges its removal drags to
    // the level, repeat until the level is exhausted.
    while (!curr.empty()) {
#pragma omp parallel
      {
#ifdef _OPENMP
        auto& found = tl_found[static_cast<std::size_t>(omp_get_thread_num())];
#else
        auto& found = tl_found.front();
#endif
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < static_cast<std::int64_t>(curr.size());
             ++i) {
          const esz e = curr[static_cast<std::size_t>(i)];
          const auto [u, v] = eids.ends[e];
          const auto ru = s.row_cols(u), rv = s.row_cols(v);
          std::size_t p = 0, q = 0;
          while (p < ru.size() && q < rv.size()) {
            if (ru[p] < rv[q]) {
              ++p;
            } else if (ru[p] > rv[q]) {
              ++q;
            } else {
              const esz euw = eids.slot_id[s.row_ptr()[u] + p];
              const esz evw = eids.slot_id[s.row_ptr()[v] + q];
              const std::uint8_t su = state[euw], sv = state[evw];
              if (su != kPeeled && sv != kPeeled) {
                // Frontier-frontier triangles are destroyed once: the
                // smaller edge id performs the shared decrement.
                if (su == kInFrontier && sv == kInFrontier) {
                  // all three peel together — nothing survives to update
                } else if (su == kInFrontier) {
                  if (e < euw) try_decrement(evw, found);
                } else if (sv == kInFrontier) {
                  if (e < evw) try_decrement(euw, found);
                } else {
                  try_decrement(euw, found);
                  try_decrement(evw, found);
                }
              }
              ++p;
              ++q;
            }
          }
        }
      }

      remaining -= curr.size();
      const count_t kappa = level + 2;
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(curr.size());
           ++i) {
        const esz e = curr[static_cast<std::size_t>(i)];
        truss_of[e] = kappa;
        state[e] = kPeeled;
      }

      curr.clear();
      for (auto& found : tl_found) {
        curr.insert(curr.end(), found.begin(), found.end());
        found.clear();
      }
      for (const esz e : curr) state[e] = kInFrontier;
    }
  }

  return assemble(s, eids, truss_of, m);
}

TrussDecomposition decompose_serial(const Graph& a) {
  // The census workspace provides the loop-free structure, the shared
  // undirected edge ids, and the initial supports Δ(e) — already indexed by
  // edge id, so no symmetric count matrix has to be built and re-read.
  const triangle::CensusWorkspace ws(a);
  const BoolCsr& s = ws.structure();
  const triangle::EdgeIdMap& eids = ws.edge_ids();
  const esz m = eids.num_edges();

  std::vector<count_t> sup = ws.edge_census();

  // Bucket ordering (Batagelj–Zaveršnik): edges sorted by current support,
  // with position/bucket arrays allowing O(1) "decrement support" moves.
  const count_t max_sup =
      m == 0 ? 0 : *std::max_element(sup.begin(), sup.end());
  std::vector<esz> bin(max_sup + 2, 0);
  for (esz e = 0; e < m; ++e) ++bin[sup[e] + 1];
  for (std::size_t i = 1; i < bin.size(); ++i) bin[i] += bin[i - 1];
  std::vector<esz> order(m);   // edges sorted by support
  std::vector<esz> pos(m);     // position of edge in `order`
  {
    std::vector<esz> cursor(bin.begin(), bin.end() - 1);
    for (esz e = 0; e < m; ++e) {
      pos[e] = cursor[sup[e]]++;
      order[pos[e]] = e;
    }
  }
  // bin[b] = first index in `order` whose support is >= b.
  auto decrement_support = [&](esz e) {
    const count_t sv = sup[e];
    // Swap e with the first edge of its bucket, then shrink the bucket.
    const esz first_pos = bin[sv];
    const esz first_edge = order[first_pos];
    if (first_edge != e) {
      std::swap(order[pos[e]], order[first_pos]);
      std::swap(pos[e], pos[first_edge]);
    }
    ++bin[sv];
    --sup[e];
  };

  // uint8_t, not vector<bool>: the peel inner loop reads this per triangle
  // and the bitset proxy costs show up there.
  std::vector<std::uint8_t> peeled(m, 0);
  std::vector<count_t> truss_of(m, 2);
  count_t current = 0;  // monotone support threshold
  for (esz step = 0; step < m; ++step) {
    const esz e = order[step];
    current = std::max(current, sup[e]);
    truss_of[e] = current + 2;
    peeled[e] = true;

    // Remove e = (u,v): every remaining triangle through e loses support on
    // its other two edges.
    const auto [u, v] = eids.ends[e];
    const auto ru = s.row_cols(u), rv = s.row_cols(v);
    std::size_t p = 0, q = 0;
    while (p < ru.size() && q < rv.size()) {
      if (ru[p] < rv[q]) {
        ++p;
      } else if (ru[p] > rv[q]) {
        ++q;
      } else {
        const esz euw = eids.slot_id[s.row_ptr()[u] + p];
        const esz evw = eids.slot_id[s.row_ptr()[v] + q];
        if (!peeled[euw] && !peeled[evw]) {
          // Decrement only above the threshold: edges at or below it keep
          // their (already determined) peel level, and the bucket swap must
          // never touch the peeled prefix of `order`.
          if (sup[euw] > current) decrement_support(euw);
          if (sup[evw] > current) decrement_support(evw);
        }
        ++p;
        ++q;
      }
    }
  }

  return assemble(s, eids, truss_of, m);
}

Graph truss_subgraph(const TrussDecomposition& t, count_t kappa) {
  const CountCsr& m = t.truss_number;
  std::vector<esz> rp(m.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid u = 0; u < m.rows(); ++u) {
    const auto row = m.row_cols(u);
    const auto rv = m.row_vals(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (rv[k] >= kappa) {
        ci.push_back(row[k]);
        vals.push_back(1);
      }
    }
    rp[u + 1] = ci.size();
  }
  return Graph(BoolCsr::from_parts(m.rows(), m.cols(), std::move(rp),
                                   std::move(ci), std::move(vals)));
}

bool edges_in_at_most_one_triangle(const Graph& b) {
  const CountCsr delta = triangle::edge_support_masked(b);
  for (const count_t v : delta.values()) {
    if (v > 1) return false;
  }
  return true;
}

}  // namespace kronotri::truss
