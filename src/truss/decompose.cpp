#include "truss/decompose.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/support.hpp"

namespace kronotri::truss {

count_t TrussDecomposition::edges_in_truss(count_t kappa) const {
  count_t c = 0;
  for (const count_t t : truss_number.values()) {
    if (t >= kappa) ++c;
  }
  return c / 2;  // symmetric storage counts both directions
}

namespace {

/// Undirected edge ids: every off-diagonal stored entry (i,j) of the
/// symmetric structure maps to one id shared with (j,i).
struct EdgeIds {
  BoolCsr structure;           // A − I∘A
  std::vector<esz> id;         // per stored entry
  std::vector<std::pair<vid, vid>> ends;  // id -> (u,v) with u < v
};

EdgeIds build_edge_ids(const Graph& a) {
  if (!a.is_undirected()) {
    throw std::invalid_argument("truss decomposition requires undirected graph");
  }
  EdgeIds e;
  e.structure = a.has_self_loops() ? ops::remove_diag(a.matrix()) : a.matrix();
  e.id.assign(e.structure.nnz(), 0);
  for (vid u = 0; u < e.structure.rows(); ++u) {
    const auto row = e.structure.row_cols(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vid v = row[k];
      if (u < v) {
        const esz eid = e.ends.size();
        e.id[e.structure.row_ptr()[u] + k] = eid;
        e.id[e.structure.find(v, u)] = eid;
        e.ends.emplace_back(u, v);
      }
    }
  }
  return e;
}

}  // namespace

TrussDecomposition decompose(const Graph& a) {
  EdgeIds eids = build_edge_ids(a);
  const BoolCsr& s = eids.structure;
  const esz m = eids.ends.size();

  // Initial support Δ(e) via the masked kernel.
  const CountCsr delta = triangle::edge_support_masked(Graph(s));
  std::vector<count_t> sup(m, 0);
  for (vid u = 0; u < s.rows(); ++u) {
    const auto row = s.row_cols(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (u < row[k]) {
        sup[eids.id[s.row_ptr()[u] + k]] =
            delta.values()[s.row_ptr()[u] + k];
      }
    }
  }

  // Bucket ordering (Batagelj–Zaveršnik): edges sorted by current support,
  // with position/bucket arrays allowing O(1) "decrement support" moves.
  const count_t max_sup =
      m == 0 ? 0 : *std::max_element(sup.begin(), sup.end());
  std::vector<esz> bin(max_sup + 2, 0);
  for (esz e = 0; e < m; ++e) ++bin[sup[e] + 1];
  for (std::size_t i = 1; i < bin.size(); ++i) bin[i] += bin[i - 1];
  std::vector<esz> order(m);   // edges sorted by support
  std::vector<esz> pos(m);     // position of edge in `order`
  {
    std::vector<esz> cursor(bin.begin(), bin.end() - 1);
    for (esz e = 0; e < m; ++e) {
      pos[e] = cursor[sup[e]]++;
      order[pos[e]] = e;
    }
  }
  // bin[b] = first index in `order` whose support is >= b.
  auto decrement_support = [&](esz e) {
    const count_t sv = sup[e];
    // Swap e with the first edge of its bucket, then shrink the bucket.
    const esz first_pos = bin[sv];
    const esz first_edge = order[first_pos];
    if (first_edge != e) {
      std::swap(order[pos[e]], order[first_pos]);
      std::swap(pos[e], pos[first_edge]);
    }
    ++bin[sv];
    --sup[e];
  };

  std::vector<bool> peeled(m, false);
  std::vector<count_t> truss_of(m, 2);
  count_t current = 0;  // monotone support threshold
  for (esz step = 0; step < m; ++step) {
    const esz e = order[step];
    current = std::max(current, sup[e]);
    truss_of[e] = current + 2;
    peeled[e] = true;

    // Remove e = (u,v): every remaining triangle through e loses support on
    // its other two edges.
    const auto [u, v] = eids.ends[e];
    const auto ru = s.row_cols(u), rv = s.row_cols(v);
    std::size_t p = 0, q = 0;
    while (p < ru.size() && q < rv.size()) {
      if (ru[p] < rv[q]) {
        ++p;
      } else if (ru[p] > rv[q]) {
        ++q;
      } else {
        const esz euw = eids.id[s.row_ptr()[u] + p];
        const esz evw = eids.id[s.row_ptr()[v] + q];
        if (!peeled[euw] && !peeled[evw]) {
          // Decrement only above the threshold: edges at or below it keep
          // their (already determined) peel level, and the bucket swap must
          // never touch the peeled prefix of `order`.
          if (sup[euw] > current) decrement_support(euw);
          if (sup[evw] > current) decrement_support(evw);
        }
        ++p;
        ++q;
      }
    }
  }

  TrussDecomposition out;
  std::vector<count_t> vals(s.nnz(), 0);
  count_t max_truss = 2;
  for (esz k = 0; k < s.nnz(); ++k) {
    vals[k] = truss_of[eids.id[k]];
    max_truss = std::max(max_truss, vals[k]);
  }
  out.truss_number = CountCsr::from_parts(s.rows(), s.cols(), s.row_ptr(),
                                          s.col_idx(), std::move(vals));
  out.max_truss = m == 0 ? 2 : max_truss;
  return out;
}

Graph truss_subgraph(const TrussDecomposition& t, count_t kappa) {
  const CountCsr& m = t.truss_number;
  std::vector<esz> rp(m.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<std::uint8_t> vals;
  for (vid u = 0; u < m.rows(); ++u) {
    const auto row = m.row_cols(u);
    const auto rv = m.row_vals(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (rv[k] >= kappa) {
        ci.push_back(row[k]);
        vals.push_back(1);
      }
    }
    rp[u + 1] = ci.size();
  }
  return Graph(BoolCsr::from_parts(m.rows(), m.cols(), std::move(rp),
                                   std::move(ci), std::move(vals)));
}

bool edges_in_at_most_one_triangle(const Graph& b) {
  const CountCsr delta = triangle::edge_support_masked(b);
  for (const count_t v : delta.values()) {
    if (v > 1) return false;
  }
  return true;
}

}  // namespace kronotri::truss
