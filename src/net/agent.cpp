#include "net/agent.hpp"

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <optional>
#include <stdexcept>

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "runner/runner.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"
#include "util/log.hpp"

namespace kronotri::net {

namespace {

using util::json::Value;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string tmp_dir() {
  const char* dir = std::getenv("TMPDIR");
  return (dir != nullptr && *dir != '\0') ? dir : "/tmp";
}

pid_t spawn_worker(const std::string& exe,
                   const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: exec immediately — the agent may hold OpenMP/thread state a
    // forked child must not touch.
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  return pid;
}

/// One dispatched unit waiting for a slot.
struct Job {
  unsigned unit = 0;
  unsigned attempt = 0;
  std::string plan_text;
  std::string fault;
  std::size_t mem_limit = 0;
  bool trace = false;
};

/// One running worker process of this connection.
struct Child {
  Job job;
  pid_t pid = -1;
  double start_s = 0;
  std::string plan_path;
  std::string out_path;
  std::string trace_path;
  bool cancelled = false;
};

std::optional<std::string> slurp(const std::string& path) {
  return util::journal::read_file(path);
}

}  // namespace

unsigned parse_slots(std::string_view text) {
  if (text == "auto") {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  unsigned n = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), n);
  if (ec != std::errc() || ptr != text.data() + text.size() || n == 0) {
    throw std::invalid_argument("slots/workers: expected a positive integer "
                                "or \"auto\", got \"" +
                                std::string(text) + "\"");
  }
  return n;
}

Agent::Agent(AgentOptions opt) : opt_(std::move(opt)) {
  opt_.slots = std::max(1u, opt_.slots);
}

Agent::~Agent() { stop(); }

std::string Agent::endpoint() const {
  return opt_.host + ":" + std::to_string(port_);
}

bool Agent::start(std::string* error) {
  if (running()) return true;
  exe_ = opt_.worker_exe.empty() ? runner::default_worker_exe()
                                 : opt_.worker_exe;
  if (exe_.empty() || ::access(exe_.c_str(), X_OK) != 0) {
    if (error != nullptr) {
      *error = "agent: no worker executable (set $KRONOTRI_BIN or run from "
               "the build tree)";
    }
    return false;
  }
  ListenResult lr = listen_tcp(opt_.host, opt_.port);
  if (!lr.ok()) {
    if (error != nullptr) {
      *error = "agent: cannot listen on " + opt_.host + ":" +
               std::to_string(opt_.port) + ": " + lr.error;
    }
    return false;
  }
  listen_fd_ = lr.fd;
  port_ = lr.port;
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  util::log::info("agent", "listening",
                  {{"endpoint", endpoint()},
                   {"slots", opt_.slots}});
  return true;
}

void Agent::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

void Agent::accept_loop() {
  while (running()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(mu_);
    conns_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Agent::connection_loop(int fd) {
  FrameReader reader;
  std::deque<Job> queue;
  std::vector<Child> children;
  double last_send = monotonic_s();
  const std::string prefix = tmp_dir() + "/kronotri." +
                             std::to_string(::getpid()) + ".agent" +
                             std::to_string(fd) + ".";

  const auto send_raw = [&](std::string_view bytes) -> bool {
    last_send = monotonic_s();
    return write_all(fd, bytes);
  };
  const auto send_msg = [&](const Value& msg) -> bool {
    return send_raw(encode_message(msg));
  };

  const auto cleanup_child = [&](Child& c) {
    if (!c.plan_path.empty()) ::unlink(c.plan_path.c_str());
    if (!c.out_path.empty()) ::unlink(c.out_path.c_str());
    if (!c.trace_path.empty()) ::unlink(c.trace_path.c_str());
    busy_.fetch_sub(1, std::memory_order_acq_rel);
  };

  // Kill + reap every child of this connection — run on any exit path so
  // a lost coordinator never races its own re-dispatched attempts.
  const auto kill_children = [&] {
    for (Child& c : children) {
      if (c.pid > 0) ::kill(c.pid, SIGKILL);
    }
    for (Child& c : children) {
      if (c.pid > 0) {
        int status = 0;
        ::waitpid(c.pid, &status, 0);
      }
      cleanup_child(c);
    }
    children.clear();
  };

  const auto spawn = [&](Job&& job) {
    Child c;
    c.job = std::move(job);
    const std::string stem = prefix + "u" + std::to_string(c.job.unit) +
                             ".a" + std::to_string(c.job.attempt);
    c.plan_path = stem + ".plan";
    c.out_path = stem + ".frame";
    {
      std::ofstream out(c.plan_path, std::ios::trunc);
      out << c.job.plan_text << "\n";
      if (!out) {
        Value r = Value::object();
        r.set("type", "result");
        r.set("unit", c.job.unit);
        r.set("attempt", c.job.attempt);
        r.set("outcome", "spawn_failed");
        r.set("detail", errno);
        r.set("wall_s", 0.0);
        (void)send_msg(r);
        ::unlink(c.plan_path.c_str());
        return;
      }
    }
    std::vector<std::string> args = {exe_,
                                     "__worker",
                                     "--plan-file",
                                     c.plan_path,
                                     "--out",
                                     c.out_path,
                                     "--unit",
                                     std::to_string(c.job.unit),
                                     "--attempt",
                                     std::to_string(c.job.attempt)};
    if (!c.job.fault.empty()) {
      args.push_back("--fault");
      args.push_back(c.job.fault);
    }
    if (c.job.mem_limit > 0) {
      args.push_back("--mem-limit");
      args.push_back(std::to_string(c.job.mem_limit));
    }
    if (c.job.trace) {
      c.trace_path = stem + ".trace";
      args.push_back("--trace-out");
      args.push_back(c.trace_path);
    }
    c.pid = spawn_worker(exe_, args);
    c.start_s = monotonic_s();
    if (c.pid < 0) {
      Value r = Value::object();
      r.set("type", "result");
      r.set("unit", c.job.unit);
      r.set("attempt", c.job.attempt);
      r.set("outcome", "spawn_failed");
      r.set("detail", errno);
      r.set("wall_s", 0.0);
      (void)send_msg(r);
      ::unlink(c.plan_path.c_str());
      return;
    }
    busy_.fetch_add(1, std::memory_order_acq_rel);
    children.push_back(std::move(c));
  };

  // Reaps one finished child into a result message. The wait4
  // classification mirrors the local runner's reap exactly, so a unit
  // dies the same way whether its worker was local or remote.
  const auto reap = [&] {
    for (std::size_t i = 0; i < children.size();) {
      Child& c = children[i];
      int status = 0;
      rusage ru{};
      const pid_t got = ::wait4(c.pid, &status, WNOHANG, &ru);
      if (got != c.pid) {
        ++i;
        continue;
      }
      Value r = Value::object();
      r.set("type", "result");
      r.set("unit", c.job.unit);
      r.set("attempt", c.job.attempt);
      r.set("pid", static_cast<std::int64_t>(c.pid));
      r.set("wall_s", monotonic_s() - c.start_s);
      r.set("max_rss_bytes",
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024);  // KiB on Linux
      r.set("cpu_user_s", static_cast<double>(ru.ru_utime.tv_sec) +
                              static_cast<double>(ru.ru_utime.tv_usec) * 1e-6);
      r.set("cpu_sys_s", static_cast<double>(ru.ru_stime.tv_sec) +
                             static_cast<double>(ru.ru_stime.tv_usec) * 1e-6);
      std::optional<std::string> fragment;
      if (c.cancelled) {
        r.set("outcome", "cancelled");
      } else if (WIFSIGNALED(status)) {
        r.set("outcome", "signal");
        r.set("detail", WTERMSIG(status));
      } else if (WIFEXITED(status) &&
                 WEXITSTATUS(status) == runner::kOomExitCode) {
        r.set("outcome", "oom");
        r.set("detail", runner::kOomExitCode);
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        r.set("outcome", "exit");
        r.set("detail", WEXITSTATUS(status));
      } else if ((fragment = read_frame_file(c.out_path))) {
        r.set("outcome", "ok");
        r.set("fragment", *fragment);
      } else {
        r.set("outcome", "truncated");
      }
      if (!c.trace_path.empty()) {
        if (const std::optional<std::string> trace = slurp(c.trace_path)) {
          r.set("trace", *trace);
        }
      }
      bool garble = false;
      if (!c.job.fault.empty() && !c.cancelled) {
        try {
          const util::fault::Injector inject(c.job.fault);
          garble = inject.match("garble_frame", c.job.unit, c.job.attempt) !=
                   nullptr;
        } catch (const std::exception&) {
          // The coordinator validated the spec; an unparsable one here is
          // inert rather than fatal.
        }
      }
      if (garble) {
        // Flip one payload byte AFTER framing: the length still parses,
        // the CRC check is what has to catch it.
        std::string bytes = encode_message(r);
        bytes[util::journal::kFrameOverhead / 2 + bytes.size() / 2] ^= 0x20;
        util::log::info("agent", "garbling result frame (fault injection)",
                        {{"unit", c.job.unit}, {"attempt", c.job.attempt}});
        (void)send_raw(bytes);
      } else if (!send_msg(r)) {
        // Peer gone mid-result: nothing to do — the poll loop below will
        // see the EOF and tear the connection down.
      }
      cleanup_child(c);
      children.erase(children.begin() + static_cast<std::ptrdiff_t>(i));
    }
  };

  std::string payload;
  bool open = true;
  while (open && running()) {
    pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms =
        std::max(1, static_cast<int>(opt_.poll_interval_s * 1000));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      std::string chunk;
      const IoStatus st = read_some(fd, chunk);
      if (st == IoStatus::kEof || st == IoStatus::kError) break;
      if (st == IoStatus::kData) reader.feed(chunk);
      while (open) {
        const FrameReader::Status fs = reader.next(payload);
        if (fs == FrameReader::Status::kNeedMore) break;
        if (fs == FrameReader::Status::kCorrupt) {
          open = false;  // a coordinator speaking garbage gets hung up on
          break;
        }
        Value msg;
        try {
          msg = Value::parse(payload);
        } catch (const std::exception&) {
          open = false;
          break;
        }
        const std::string type = msg.get_string("type", "");
        if (type == "hello") {
          Value w = Value::object();
          w.set("type", "welcome");
          w.set("proto", kProtoVersion);
          w.set("slots", opt_.slots);
          w.set("pid", static_cast<std::int64_t>(::getpid()));
          if (!send_msg(w)) open = false;
        } else if (type == "dispatch") {
          Job job;
          job.unit = static_cast<unsigned>(msg.get_uint("unit", 0));
          job.attempt = static_cast<unsigned>(msg.get_uint("attempt", 0));
          job.plan_text = msg.get_string("plan", "");
          job.fault = msg.get_string("fault", "");
          job.mem_limit =
              static_cast<std::size_t>(msg.get_uint("mem_limit", 0));
          if (const Value* t = msg.find("trace")) job.trace = t->as_bool();
          bool drop = false;
          if (!job.fault.empty()) {
            try {
              const util::fault::Injector inject(job.fault);
              drop = inject.match("drop_conn", job.unit, job.attempt) !=
                     nullptr;
            } catch (const std::exception&) {
            }
          }
          if (drop) {
            // Injected partition: children die, the socket slams shut,
            // and the coordinator's disconnect path takes it from here.
            util::log::info("agent",
                            "dropping connection (fault injection)",
                            {{"unit", job.unit}, {"attempt", job.attempt}});
            open = false;
            break;
          }
          queue.push_back(std::move(job));
        } else if (type == "cancel") {
          const unsigned unit = static_cast<unsigned>(msg.get_uint("unit", 0));
          const unsigned attempt =
              static_cast<unsigned>(msg.get_uint("attempt", 0));
          bool queued = false;
          for (auto it = queue.begin(); it != queue.end(); ++it) {
            if (it->unit == unit && it->attempt == attempt) {
              queue.erase(it);
              queued = true;
              break;
            }
          }
          if (queued) {
            Value r = Value::object();
            r.set("type", "result");
            r.set("unit", unit);
            r.set("attempt", attempt);
            r.set("outcome", "cancelled");
            r.set("wall_s", 0.0);
            if (!send_msg(r)) open = false;
          } else {
            for (Child& c : children) {
              if (c.job.unit == unit && c.job.attempt == attempt &&
                  !c.cancelled) {
                c.cancelled = true;
                if (c.pid > 0) ::kill(c.pid, SIGKILL);
              }
            }
          }
        }
        // Unknown types are ignored: a newer coordinator may speak more.
      }
    } else if (ready < 0 && errno != EINTR) {
      break;
    }

    while (open && !queue.empty() &&
           busy_.load(std::memory_order_acquire) < opt_.slots) {
      Job job = std::move(queue.front());
      queue.pop_front();
      spawn(std::move(job));
    }
    reap();
    if (open && monotonic_s() - last_send > opt_.heartbeat_interval_s) {
      Value hb = Value::object();
      hb.set("type", "heartbeat");
      if (!send_msg(hb)) open = false;
    }
  }
  kill_children();
  ::close(fd);
}

}  // namespace kronotri::net
