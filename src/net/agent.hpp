// Remote worker agent: the daemon behind `kronotri agent --listen
// HOST:PORT --slots N`.
//
// An agent accepts coordinator connections, receives per-unit child
// plans as CRC-64 frames (net/framing.hpp), executes each unit in a
// sandboxed local worker process (the same fork/exec `kronotri
// __worker` contract the single-machine runner uses, RLIMIT_AS guard
// included), and streams back RunReport fragments plus trace buffers.
// It holds NO retry or merge policy of its own — scheduling, backoff,
// speculation, journaling and timeouts all stay in the coordinator; the
// agent's whole job is "run this unit here, tell me how it died".
//
// Failure semantics:
//   * coordinator connection lost → every child of that connection is
//     SIGKILLed and its scratch removed (a partitioned agent must not
//     race a re-dispatched attempt elsewhere for side effects);
//   * `cancel` → SIGKILL the attempt, answer with outcome "cancelled"
//     so the coordinator's slot accounting closes the loop;
//   * agent death → the coordinator's heartbeat timeout / EOF turns
//     in-flight attempts into "disconnect" events, re-dispatched like a
//     SIGKILLed local child.
// Fault injection: a `drop_conn` action matching a dispatched
// (unit, attempt) makes the agent hard-close the connection (children
// killed first); `garble_frame` flips a byte inside that attempt's
// result frame so the coordinator's CRC check — not good luck — has to
// catch the damage.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace kronotri::net {

struct AgentOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral, resolved port via port()
  unsigned slots = 1;      ///< concurrent worker processes
  /// Worker executable; empty resolves via runner::default_worker_exe().
  std::string worker_exe;
  double heartbeat_interval_s = 0.25;
  double poll_interval_s = 0.01;
};

/// "auto" → hardware_concurrency() (≥1), else a positive integer.
/// Throws std::invalid_argument on anything else — shared by
/// `run --workers auto` and `agent --slots auto`.
[[nodiscard]] unsigned parse_slots(std::string_view text);

class Agent {
 public:
  explicit Agent(AgentOptions opt = {});
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Binds, listens and starts the acceptor thread. False (with *error
  /// set) when the address cannot be bound or no worker exe resolves.
  bool start(std::string* error = nullptr);
  /// Stops accepting, disconnects every coordinator (killing their
  /// children) and joins all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound port (resolves --listen :0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// "host:port" with the resolved port — what a coordinator dials.
  [[nodiscard]] std::string endpoint() const;
  [[nodiscard]] unsigned slots() const noexcept { return opt_.slots; }

 private:
  void accept_loop();
  void connection_loop(int fd);

  AgentOptions opt_;
  std::string exe_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<unsigned> busy_{0};  ///< children across all connections
  std::thread acceptor_;
  std::mutex mu_;  ///< guards conns_
  std::vector<std::thread> conns_;
};

}  // namespace kronotri::net
