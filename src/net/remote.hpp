// Coordinator-side handle to one remote agent connection.
//
// Deliberately dumb: AgentClient dials, frames, and pumps — every
// policy decision (when to reconnect, what a silent agent means, how a
// lost attempt is charged) lives in runner::execute(), which treats a
// remote slot as just another dispatch target next to its forked
// children. The fd is non-blocking after connect so the coordinator's
// single-threaded poll loop can pump every agent without ever parking
// on one of them.
#pragma once

#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "util/json.hpp"

namespace kronotri::net {

struct AgentClientOptions {
  double connect_timeout_s = 1.0;
  unsigned connect_attempts = 1;
  util::Backoff backoff{0.05, 2.0, 1.0};
};

class AgentClient {
 public:
  AgentClient() = default;
  explicit AgentClient(AgentClientOptions opt) : opt_(opt) {}
  ~AgentClient() { close(); }

  AgentClient(const AgentClient&) = delete;
  AgentClient& operator=(const AgentClient&) = delete;
  AgentClient(AgentClient&& other) noexcept { *this = std::move(other); }
  AgentClient& operator=(AgentClient&& other) noexcept {
    if (this != &other) {
      close();
      opt_ = other.opt_;
      fd_ = other.fd_;
      reader_ = std::move(other.reader_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Dials `endpoint` ("HOST:PORT" or unix:PATH), sends the hello, and
  /// leaves the fd non-blocking. False with *error set on failure; the
  /// welcome arrives later through pump().
  bool connect(const std::string& endpoint, std::string* error);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Frames and writes one message. False → the connection is gone (the
  /// caller runs its disconnect path; the fd is closed here).
  [[nodiscard]] bool send(const util::json::Value& msg);

  enum class Pump {
    kIdle,     ///< nothing new (messages may still have been appended)
    kClosed,   ///< peer EOF / hard error — fd closed
    kCorrupt,  ///< CRC-failed or unparsable frame — fd closed
  };
  /// Drains whatever the socket holds right now (never blocks), appending
  /// parsed messages to `out` in arrival order. Messages decoded before
  /// damage are delivered even when the return value is kClosed/kCorrupt.
  [[nodiscard]] Pump pump(std::vector<util::json::Value>& out);

 private:
  AgentClientOptions opt_;
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace kronotri::net
