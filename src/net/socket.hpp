// Shared socket plumbing for every kronotri network consumer — the
// service client (unix sockets) and the remote-agent transport (TCP)
// used to each carry their own connect/timeout/EINTR/partial-IO loops;
// this is the one copy.
//
// Scope is deliberately small and synchronous:
//   * parse_endpoint(): "HOST:PORT" → TCP, "unix:PATH" or "/abs/path" →
//     unix-domain — one spelling for --agents and the service socket.
//   * dial()/dial_retry(): bounded-time connect (non-blocking connect +
//     poll + SO_ERROR, EINTR-correct) with optional backoff retries.
//   * write_all(): full-buffer send loop (MSG_NOSIGNAL, EINTR/EAGAIN
//     handled — EAGAIN waits on POLLOUT so it also serves non-blocking
//     fds).
//   * read_some(): one read() with the EINTR/EAGAIN/EOF cases folded
//     into an explicit status instead of errno spelunking at every
//     call site.
//   * listen_tcp(): bound+listening socket for the agent daemon, with
//     the ephemeral-port case (port 0) resolved via getsockname so
//     tests can listen on whatever is free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/backoff.hpp"

namespace kronotri::net {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;      ///< TCP only
  std::uint16_t port = 0; ///< TCP only
  std::string path;      ///< unix only
  std::string text;      ///< the spec as written, for error messages
};

/// Parses "HOST:PORT" (TCP; host may be a name or numeric address),
/// "unix:PATH", or a bare path starting with '/' or '.' (unix). Throws
/// std::invalid_argument naming the offending spec.
[[nodiscard]] Endpoint parse_endpoint(std::string_view spec);

struct DialResult {
  int fd = -1;
  std::string error;  ///< empty on success
  [[nodiscard]] bool ok() const noexcept { return fd >= 0; }
};

/// One connect attempt bounded by `timeout_s` (0 = OS default blocking
/// connect). Returns a connected blocking fd or an error message; never
/// throws. TCP endpoints resolve via getaddrinfo and try each address
/// until one connects inside the deadline.
[[nodiscard]] DialResult dial(const Endpoint& ep, double timeout_s);

/// dial() up to `attempts` times, sleeping backoff.delay_s(attempt-1)
/// between tries — the "daemon still binding its socket" race both the
/// service client and the agent transport have to tolerate.
[[nodiscard]] DialResult dial_retry(const Endpoint& ep, double timeout_s,
                                    unsigned attempts,
                                    const util::Backoff& backoff);

/// Writes all of `data` (send with MSG_NOSIGNAL where available; EINTR
/// retried, EAGAIN waits for POLLOUT). False on any hard failure — the
/// caller treats that as a lost peer.
[[nodiscard]] bool write_all(int fd, std::string_view data) noexcept;

enum class IoStatus {
  kData,   ///< ≥1 byte appended to the buffer
  kEof,    ///< orderly shutdown by the peer
  kAgain,  ///< non-blocking fd with nothing to read right now
  kError,  ///< hard read error (connection reset, bad fd, …)
};

/// One read() of up to 64 KiB appended to `out`; EINTR retried.
[[nodiscard]] IoStatus read_some(int fd, std::string& out) noexcept;

/// Sets or clears O_NONBLOCK. Returns false on fcntl failure.
bool set_nonblocking(int fd, bool on) noexcept;

struct ListenResult {
  int fd = -1;
  std::uint16_t port = 0;  ///< actual bound port (resolves port 0)
  std::string error;
  [[nodiscard]] bool ok() const noexcept { return fd >= 0; }
};

/// Bound + listening TCP socket on host:port (SO_REUSEADDR; port 0 picks
/// an ephemeral port, reported back). Never throws.
[[nodiscard]] ListenResult listen_tcp(const std::string& host,
                                      std::uint16_t port, int backlog = 16);

}  // namespace kronotri::net
