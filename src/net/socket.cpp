#include "net/socket.hpp"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace kronotri::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Completes a non-blocking connect() under a deadline: poll for POLLOUT,
/// then read SO_ERROR — the only portable way to learn whether the
/// connect actually succeeded. Empty string on success.
std::string await_connect(int fd, double timeout_s) {
  pollfd pfd{fd, POLLOUT, 0};
  const int timeout_ms = static_cast<int>(timeout_s * 1000);
  int ready;
  do {
    ready = ::poll(&pfd, 1, timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready == 0) {
    return "connect timed out after " + std::to_string(timeout_s) + " s";
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (ready < 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
      err != 0) {
    return std::string("connect: ") + std::strerror(err != 0 ? err : errno);
  }
  return {};
}

/// Connect `fd` to `addr` with the bounded-time dance shared by every
/// dial path: O_NONBLOCK when a timeout is set, EINTR resolved by the
/// poll, EINPROGRESS/EAGAIN awaited, flags restored to blocking after.
std::string connect_bounded(int fd, const sockaddr* addr, socklen_t addrlen,
                            double timeout_s) {
#ifdef SO_NOSIGPIPE
  // BSD/macOS have no MSG_NOSIGNAL; suppress SIGPIPE at the socket level
  // so a peer hanging up mid-send surfaces as EPIPE, not a signal.
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof(on));
#endif
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_s > 0 && flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = ::connect(fd, addr, addrlen);
  if (rc < 0 && errno == EINTR) rc = 0;  // resolved by the poll below
  if (rc < 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    const std::string err = await_connect(fd, timeout_s > 0 ? timeout_s : 60);
    if (!err.empty()) return err;
    rc = 0;
  }
  if (rc < 0) return errno_text("connect");
  if (timeout_s > 0 && flags >= 0) {
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for send/read
  }
  return {};
}

DialResult dial_unix(const Endpoint& ep, double timeout_s) {
  DialResult r;
  if (ep.path.empty() || ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    r.error = "bad socket path \"" + ep.path + "\"";
    return r;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    r.error = errno_text("socket");
    return r;
  }
  r.error = connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), timeout_s);
  if (!r.error.empty()) {
    ::close(fd);
    return r;
  }
  r.fd = fd;
  return r;
}

DialResult dial_tcp(const Endpoint& ep, double timeout_s) {
  DialResult r;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(ep.port);
  const int gai = ::getaddrinfo(ep.host.c_str(), service.c_str(), &hints,
                                &res);
  if (gai != 0) {
    r.error = "resolve " + ep.host + ": " + ::gai_strerror(gai);
    return r;
  }
  std::string last_error = "no addresses for " + ep.host;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    last_error = connect_bounded(fd, ai->ai_addr, ai->ai_addrlen, timeout_s);
    if (last_error.empty()) {
      r.fd = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (!r.ok()) r.error = std::move(last_error);
  return r;
}

}  // namespace

Endpoint parse_endpoint(std::string_view spec) {
  Endpoint ep;
  ep.text.assign(spec);
  if (spec.empty()) {
    throw std::invalid_argument("net: empty endpoint");
  }
  constexpr std::string_view kUnixPrefix = "unix:";
  if (spec.substr(0, kUnixPrefix.size()) == kUnixPrefix) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path.assign(spec.substr(kUnixPrefix.size()));
    if (ep.path.empty()) {
      throw std::invalid_argument("net: empty unix path in \"" + ep.text +
                                  "\"");
    }
    return ep;
  }
  if (spec.front() == '/' || spec.front() == '.') {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path.assign(spec);
    return ep;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    throw std::invalid_argument("net: endpoint \"" + ep.text +
                                "\" is not HOST:PORT or unix:PATH");
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host.assign(spec.substr(0, colon));
  const std::string_view port_text = spec.substr(colon + 1);
  unsigned port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() ||
      port > 65535) {
    throw std::invalid_argument("net: bad port in \"" + ep.text + "\"");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

DialResult dial(const Endpoint& ep, double timeout_s) {
  return ep.kind == Endpoint::Kind::kUnix ? dial_unix(ep, timeout_s)
                                          : dial_tcp(ep, timeout_s);
}

DialResult dial_retry(const Endpoint& ep, double timeout_s, unsigned attempts,
                      const util::Backoff& backoff) {
  if (attempts == 0) attempts = 1;
  DialResult r;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) util::Backoff::sleep_s(backoff.delay_s(attempt - 1));
    r = dial(ep, timeout_s);
    if (r.ok()) return r;
  }
  return r;
}

bool write_all(int fd, std::string_view data) noexcept {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, /*timeout_ms=*/10000) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

IoStatus read_some(int fd, std::string& out) noexcept {
  char chunk[65536];
  ssize_t n;
  do {
    n = ::read(fd, chunk, sizeof(chunk));
  } while (n < 0 && errno == EINTR);
  if (n > 0) {
    out.append(chunk, static_cast<std::size_t>(n));
    return IoStatus::kData;
  }
  if (n == 0) return IoStatus::kEof;
  return (errno == EAGAIN || errno == EWOULDBLOCK) ? IoStatus::kAgain
                                                   : IoStatus::kError;
}

bool set_nonblocking(int fd, bool on) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) >= 0;
}

ListenResult listen_tcp(const std::string& host, std::uint16_t port,
                        int backlog) {
  ListenResult r;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                service.c_str(), &hints, &res);
  if (gai != 0) {
    r.error = "resolve " + host + ": " + ::gai_strerror(gai);
    return r;
  }
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      r.error = errno_text("socket");
      continue;
    }
    int on = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      r.error = errno_text("bind/listen");
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        r.port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        r.port = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    r.fd = fd;
    r.error.clear();
    break;
  }
  ::freeaddrinfo(res);
  return r;
}

}  // namespace kronotri::net
