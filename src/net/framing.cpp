#include "net/framing.hpp"

#include "util/journal.hpp"

namespace kronotri::net {

namespace journal = util::journal;

FrameReader::Status FrameReader::next(std::string& payload) {
  constexpr std::string_view kMagic = "KTJ1";
  // Validate the magic as soon as any of it is buffered: a stream that
  // opens with garbage is corrupt now, not after 4 GiB of "length".
  const std::size_t have_magic = std::min(buf_.size(), kMagic.size());
  if (std::string_view(buf_).substr(0, have_magic) !=
      kMagic.substr(0, have_magic)) {
    return Status::kCorrupt;
  }
  if (buf_.size() < kMagic.size() + 8) return Status::kNeedMore;
  std::uint64_t len = 0;
  for (int i = 7; i >= 0; --i) {
    len = (len << 8) |
          static_cast<unsigned char>(buf_[kMagic.size() + static_cast<std::size_t>(i)]);
  }
  // A length no sane message reaches is corruption, not a huge frame —
  // refuse before trying to buffer it.
  constexpr std::uint64_t kMaxFrame = 1ull << 30;
  if (len > kMaxFrame) return Status::kCorrupt;
  const std::size_t total = journal::kFrameOverhead + static_cast<std::size_t>(len);
  if (buf_.size() < total) return Status::kNeedMore;
  const journal::Decoded dec =
      journal::decode_frames(std::string_view(buf_).substr(0, total));
  if (dec.tail != journal::Decoded::Tail::kClean || dec.frames.size() != 1) {
    return Status::kCorrupt;
  }
  payload = dec.frames[0];
  buf_.erase(0, total);
  return Status::kFrame;
}

std::string encode_message(const util::json::Value& msg) {
  return journal::encode_frame(msg.dump_string(0));
}

std::optional<std::string> read_frame_file(const std::string& path) {
  const std::optional<std::string> bytes = journal::read_file(path);
  if (!bytes) return std::nullopt;
  journal::Decoded dec = journal::decode_frames(*bytes);
  if (dec.tail != journal::Decoded::Tail::kClean || dec.frames.size() != 1 ||
      dec.valid_bytes != bytes->size()) {
    return std::nullopt;
  }
  return std::move(dec.frames[0]);
}

}  // namespace kronotri::net
