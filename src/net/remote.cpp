#include "net/remote.hpp"

#include <unistd.h>

namespace kronotri::net {

using util::json::Value;

bool AgentClient::connect(const std::string& endpoint, std::string* error) {
  close();
  Endpoint ep;
  try {
    ep = parse_endpoint(endpoint);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  DialResult dr = dial_retry(ep, opt_.connect_timeout_s,
                             opt_.connect_attempts, opt_.backoff);
  if (!dr.ok()) {
    if (error != nullptr) *error = endpoint + ": " + dr.error;
    return false;
  }
  fd_ = dr.fd;
  reader_.reset();
  set_nonblocking(fd_, true);
  Value hello = Value::object();
  hello.set("type", "hello");
  hello.set("proto", kProtoVersion);
  if (!send(hello)) {
    if (error != nullptr) *error = endpoint + ": connection lost on hello";
    return false;
  }
  return true;
}

void AgentClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

bool AgentClient::send(const Value& msg) {
  if (fd_ < 0) return false;
  if (!write_all(fd_, encode_message(msg))) {
    close();
    return false;
  }
  return true;
}

AgentClient::Pump AgentClient::pump(std::vector<Value>& out) {
  if (fd_ < 0) return Pump::kClosed;
  bool closed = false;
  while (true) {
    std::string chunk;
    const IoStatus st = read_some(fd_, chunk);
    if (st == IoStatus::kData) {
      reader_.feed(chunk);
      continue;
    }
    if (st == IoStatus::kAgain) break;
    closed = true;  // kEof or kError
    break;
  }
  // Deliver everything decodable before reporting damage: results that
  // arrived intact ahead of an EOF or a torn frame are real results.
  while (true) {
    std::string payload;
    const FrameReader::Status fs = reader_.next(payload);
    if (fs == FrameReader::Status::kNeedMore) break;
    if (fs == FrameReader::Status::kCorrupt) {
      close();
      return Pump::kCorrupt;
    }
    try {
      out.push_back(Value::parse(payload));
    } catch (const std::exception&) {
      close();
      return Pump::kCorrupt;
    }
  }
  if (closed) {
    close();
    return Pump::kClosed;
  }
  return Pump::kIdle;
}

}  // namespace kronotri::net
