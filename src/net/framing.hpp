// Wire framing of the agent transport: util::journal CRC-64 frames
// ("KTJ1" | u64 LE length | payload | u64 LE crc64) carried over a
// stream socket, payloads being one JSON object each. The SAME frame
// format the runner journals to disk — a fragment that crossed the
// network verifies with the identical checksum discipline a fragment
// read from a crashed coordinator's journal does.
//
// Protocol (all messages carry "type"):
//   coordinator → agent
//     {"type":"hello","proto":1}
//     {"type":"dispatch","unit":U,"attempt":A,"plan":"<RunPlan JSON>",
//      "fault":"<spec>","mem_limit":N,"trace":bool}
//     {"type":"cancel","unit":U,"attempt":A}        kill/forget the attempt
//   agent → coordinator
//     {"type":"welcome","proto":1,"slots":N,"pid":P}
//     {"type":"heartbeat"}                          liveness, every ~250 ms
//     {"type":"result","unit":U,"attempt":A,"outcome":"ok|exit|signal|oom|
//      truncated|spawn_failed|cancelled","detail":D,"pid":P,"wall_s":W,
//      "max_rss_bytes":R,"cpu_user_s":…,"cpu_sys_s":…,
//      "fragment":"<RunReport JSON>",               ok only
//      "trace":"<trace doc JSON>"}                  when tracing was asked
//
// A frame that fails its CRC poisons the stream (no resync marker): the
// reader reports kCorrupt, the coordinator drops the connection,
// classifies in-flight attempts "garbled" and re-dispatches — exactly
// the torn-journal recovery story, applied to a socket.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace kronotri::net {

/// Incremental decoder of journal frames from a byte stream. feed()
/// appends received bytes; next() yields verified payloads one at a
/// time without re-checksumming partial frames (the length prefix gates
/// the CRC pass until a whole candidate frame is buffered).
class FrameReader {
 public:
  enum class Status {
    kFrame,     ///< one verified payload extracted
    kNeedMore,  ///< no complete frame buffered yet
    kCorrupt,   ///< bad magic/length/CRC — the stream is poisoned
  };

  void feed(std::string_view bytes) { buf_.append(bytes); }
  Status next(std::string& payload);
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }
  void reset() { buf_.clear(); }

 private:
  std::string buf_;
};

/// `msg` dumped at indent 0 inside one encoded frame — the unit of
/// transmission for every protocol message.
[[nodiscard]] std::string encode_message(const util::json::Value& msg);

/// Reads a worker's single-frame output file (the same contract the
/// runner's fragment reader enforces: exactly one clean frame, nothing
/// after it) and returns the payload; nullopt on missing/torn/dirty.
[[nodiscard]] std::optional<std::string> read_frame_file(
    const std::string& path);

/// Protocol version stamped into hello/welcome.
inline constexpr int kProtoVersion = 1;

}  // namespace kronotri::net
