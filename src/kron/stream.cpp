#include "kron/stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace kronotri::kron {

namespace {

std::vector<std::pair<vid, vid>> flatten(const Graph& g) {
  std::vector<std::pair<vid, vid>> out;
  out.reserve(g.nnz());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (const vid v : g.neighbors(u)) out.emplace_back(u, v);
  }
  return out;
}

}  // namespace

FlatEdges::FlatEdges(const Graph& g)
    : edges_(flatten(g)), num_vertices_(g.num_vertices()) {}

void EdgeStream::init_partition(std::uint64_t part, std::uint64_t nparts) {
  if (nparts == 0 || part >= nparts) {
    throw std::invalid_argument("EdgeStream: part must be < nparts");
  }
  const esz total = a_edges_.size() * b_edges_.size();
  // Contiguous split with remainder spread over the first partitions.
  const esz base = total / nparts, rem = total % nparts;
  lo_ = part * base + std::min<esz>(part, rem);
  hi_ = lo_ + base + (part < rem ? 1 : 0);
  cursor_ = lo_;
}

EdgeStream::EdgeStream(const Graph& a, const Graph& b, std::uint64_t part,
                       std::uint64_t nparts)
    : a_owned_(flatten(a)),
      b_owned_(flatten(b)),
      a_edges_(a_owned_),
      b_edges_(b_owned_),
      index_(b.num_vertices()) {
  init_partition(part, nparts);
}

EdgeStream::EdgeStream(const FlatEdges& a, const FlatEdges& b,
                       std::uint64_t part, std::uint64_t nparts)
    : a_edges_(a.edges()),
      b_edges_(b.edges()),
      index_(b.num_vertices()) {
  init_partition(part, nparts);
}

std::optional<EdgeRecord> EdgeStream::next() {
  if (cursor_ >= hi_) return std::nullopt;
  const esz t = cursor_++;
  const auto& [i, j] = a_edges_[t / b_edges_.size()];
  const auto& [k, l] = b_edges_[t % b_edges_.size()];
  return EdgeRecord{index_.compose(i, k), index_.compose(j, l)};
}

std::size_t EdgeStream::next_batch(std::span<EdgeRecord> out) noexcept {
  const esz bsz = b_edges_.size();
  if (cursor_ >= hi_ || bsz == 0 || out.empty()) return 0;
  std::size_t written = 0;
  const std::size_t want =
      static_cast<std::size_t>(std::min<esz>(out.size(), hi_ - cursor_));
  // Decompose the cursor once; afterwards advance (ia, ib) incrementally.
  esz ia = cursor_ / bsz;
  esz ib = cursor_ % bsz;
  while (written < want) {
    const auto& [i, j] = a_edges_[ia];
    const vid ubase = index_.compose(i, 0);
    const vid vbase = index_.compose(j, 0);
    const esz run = std::min<esz>(bsz - ib, want - written);
    for (esz s = 0; s < run; ++s, ++ib) {
      out[written++] = EdgeRecord{ubase + b_edges_[ib].first,
                                  vbase + b_edges_[ib].second};
    }
    if (ib == bsz) {
      ib = 0;
      ++ia;
    }
  }
  cursor_ += want;
  return written;
}

}  // namespace kronotri::kron
