#include "kron/formulas.hpp"

#include <stdexcept>

#include "core/ops.hpp"
#include "kron/product.hpp"
#include "triangle/count.hpp"
#include "triangle/support.hpp"

namespace kronotri::kron {

namespace {

using i128 = __int128;

[[noreturn]] void formula_misuse() {
  throw std::logic_error(
      "Kronecker formula evaluated to a negative or non-divisible value — "
      "factor statistics do not match the formula's preconditions");
}

count_t checked_result(i128 acc, std::int64_t divisor) {
  if (acc < 0 || acc % divisor != 0) formula_misuse();
  return static_cast<count_t>(acc / divisor);
}

/// 0/1 self-loop indicator vector diag(D_A).
std::vector<count_t> loop_vector(const Graph& g) {
  std::vector<count_t> v(g.num_vertices(), 0);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    v[u] = g.has_edge(u, u) ? 1u : 0u;
  }
  return v;
}

/// diag(A²·D_A): (A²)_ii·loop_i; for symmetric 0/1 A, (A²)_ii is the row
/// degree (each stored neighbor j contributes A_ij·A_ji = 1).
std::vector<count_t> diag_a2_d(const Graph& g) {
  std::vector<count_t> v(g.num_vertices(), 0);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    if (g.has_edge(u, u)) v[u] = g.out_degree(u);
  }
  return v;
}

/// diag(A·D_A·A): Σ_{j ∈ row(i)} loop_j for symmetric 0/1 A.
std::vector<count_t> diag_ada(const Graph& g) {
  std::vector<count_t> v(g.num_vertices(), 0);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    count_t acc = 0;
    for (const vid j : g.neighbors(u)) acc += g.has_edge(j, j) ? 1u : 0u;
    v[u] = acc;
  }
  return v;
}

/// A ∘ A² including self-loop structure (the un-stripped variant the general
/// Δ formula needs; for loop-free graphs this IS Δ_A).
CountCsr a_hadamard_a2(const Graph& g) {
  const BoolCsr& m = g.matrix();
  return ops::masked_product(m, m, m);  // symmetric: m is its own transpose
}

/// D_A·A — rows of A kept only where a self loop exists.
CountCsr rows_where_loop(const Graph& g) {
  const BoolCsr& m = g.matrix();
  std::vector<esz> rp(m.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<count_t> vals;
  for (vid r = 0; r < m.rows(); ++r) {
    if (g.has_edge(r, r)) {
      for (const vid c : m.row_cols(r)) {
        ci.push_back(c);
        vals.push_back(1);
      }
    }
    rp[r + 1] = ci.size();
  }
  return CountCsr::from_parts(m.rows(), m.cols(), std::move(rp), std::move(ci),
                              std::move(vals));
}

/// A·D_A — columns of A kept only where a self loop exists.
CountCsr cols_where_loop(const Graph& g) {
  const BoolCsr& m = g.matrix();
  std::vector<esz> rp(m.rows() + 1, 0);
  std::vector<vid> ci;
  std::vector<count_t> vals;
  for (vid r = 0; r < m.rows(); ++r) {
    for (const vid c : m.row_cols(r)) {
      if (g.has_edge(c, c)) {
        ci.push_back(c);
        vals.push_back(1);
      }
    }
    rp[r + 1] = ci.size();
  }
  return CountCsr::from_parts(m.rows(), m.cols(), std::move(rp), std::move(ci),
                              std::move(vals));
}

/// D_A as a count matrix.
CountCsr loop_matrix(const Graph& g) {
  Coo<count_t> coo(g.num_vertices(), g.num_vertices());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    if (g.has_edge(u, u)) coo.add(u, u, 1);
  }
  return CountCsr::from_coo(coo);
}

/// D_A ∘ A² — diagonal matrix with (A²)_ii at looped vertices.
CountCsr diag_hadamard_a2(const Graph& g) {
  Coo<count_t> coo(g.num_vertices(), g.num_vertices());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    if (g.has_edge(u, u)) coo.add(u, u, g.out_degree(u));
  }
  return CountCsr::from_coo(coo);
}

void require_undirected(const Graph& a, const Graph& b, const char* what) {
  if (!a.is_undirected() || !b.is_undirected()) {
    throw std::invalid_argument(std::string(what) +
                                ": §III formulas require undirected factors");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// KronVectorExpr
// ---------------------------------------------------------------------------

KronVectorExpr::KronVectorExpr(std::int64_t divisor, std::vector<Term> terms)
    : divisor_(divisor), terms_(std::move(terms)) {
  if (divisor_ <= 0) throw std::invalid_argument("divisor must be positive");
  if (terms_.empty()) throw std::invalid_argument("expression needs >= 1 term");
  na_ = terms_.front().a.size();
  nb_ = terms_.front().b.size();
  for (const Term& t : terms_) {
    if (t.a.size() != na_ || t.b.size() != nb_) {
      throw std::invalid_argument("terms must have equal factor sizes");
    }
  }
}

count_t KronVectorExpr::at(vid p) const {
  const KronIndex idx(nb_);
  const vid i = idx.a_of(p), k = idx.b_of(p);
  i128 acc = 0;
  for (const Term& t : terms_) {
    acc += static_cast<i128>(t.coeff) * static_cast<i128>(t.a[i]) *
           static_cast<i128>(t.b[k]);
  }
  return checked_result(acc, divisor_);
}

std::vector<count_t> KronVectorExpr::expand() const {
  std::vector<count_t> out;
  out.reserve(size());
  for (vid i = 0; i < na_; ++i) {
    for (vid k = 0; k < nb_; ++k) {
      i128 acc = 0;
      for (const Term& t : terms_) {
        acc += static_cast<i128>(t.coeff) * static_cast<i128>(t.a[i]) *
               static_cast<i128>(t.b[k]);
      }
      out.push_back(checked_result(acc, divisor_));
    }
  }
  return out;
}

count_t KronVectorExpr::sum() const {
  i128 acc = 0;
  for (const Term& t : terms_) {
    i128 sa = 0, sb = 0;
    for (const count_t v : t.a) sa += v;
    for (const count_t v : t.b) sb += v;
    acc += static_cast<i128>(t.coeff) * sa * sb;
  }
  return checked_result(acc, divisor_);
}

std::map<count_t, count_t> KronVectorExpr::histogram() const {
  if (terms_.size() != 1 || terms_.front().coeff < 0) {
    throw std::logic_error(
        "KronVectorExpr::histogram needs a single nonnegative term "
        "(multi-term self-loop formulas do not convolve)");
  }
  const Term& t = terms_.front();
  std::map<count_t, count_t> ha, hb;
  for (const count_t v : t.a) ++ha[v];
  for (const count_t v : t.b) ++hb[v];
  std::map<count_t, count_t> out;
  const auto coeff = static_cast<count_t>(t.coeff);
  const auto div = static_cast<count_t>(divisor_);
  for (const auto& [va, ca] : ha) {
    for (const auto& [vb, cb] : hb) {
      const count_t raw = coeff * va * vb;
      if (raw % div != 0) formula_misuse();
      out[raw / div] += ca * cb;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// KronMatrixExpr
// ---------------------------------------------------------------------------

KronMatrixExpr::KronMatrixExpr(std::int64_t divisor, std::vector<Term> terms)
    : divisor_(divisor), terms_(std::move(terms)) {
  if (divisor_ <= 0) throw std::invalid_argument("divisor must be positive");
  if (terms_.empty()) throw std::invalid_argument("expression needs >= 1 term");
  ra_ = terms_.front().a.rows();
  rb_ = terms_.front().b.rows();
  for (const Term& t : terms_) {
    if (t.a.rows() != ra_ || t.b.rows() != rb_) {
      throw std::invalid_argument("terms must have equal factor sizes");
    }
  }
}

count_t KronMatrixExpr::at(vid p, vid q) const {
  const KronIndex idx(rb_);
  const vid i = idx.a_of(p), j = idx.a_of(q);
  const vid k = idx.b_of(p), l = idx.b_of(q);
  i128 acc = 0;
  for (const Term& t : terms_) {
    acc += static_cast<i128>(t.coeff) * static_cast<i128>(t.a.at(i, j)) *
           static_cast<i128>(t.b.at(k, l));
  }
  return checked_result(acc, divisor_);
}

CountCsr KronMatrixExpr::expand() const {
  // Expand each term over signed values, sum, check, and compact.
  using SignedCsr = CsrMatrix<long long>;
  auto to_signed = [](const CountCsr& m, std::int64_t coeff) {
    std::vector<long long> vals(m.values().size());
    for (std::size_t k = 0; k < vals.size(); ++k) {
      vals[k] = coeff * static_cast<long long>(m.values()[k]);
    }
    return SignedCsr::from_parts(m.rows(), m.cols(), m.row_ptr(), m.col_idx(),
                                 std::move(vals));
  };
  SignedCsr acc;
  bool first = true;
  for (const Term& t : terms_) {
    SignedCsr term = kron_matrix<long long>(to_signed(t.a, t.coeff),
                                            to_signed(t.b, 1));
    acc = first ? std::move(term) : ops::add(acc, term);
    first = false;
  }
  Coo<count_t> out(acc.rows(), acc.cols());
  for (vid r = 0; r < acc.rows(); ++r) {
    const auto rc = acc.row_cols(r);
    const auto rv = acc.row_vals(r);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      if (rv[k] == 0) continue;
      if (rv[k] < 0 || rv[k] % divisor_ != 0) formula_misuse();
      out.add(r, rc[k], static_cast<count_t>(rv[k] / divisor_));
    }
  }
  return CountCsr::from_coo(out);
}

count_t KronMatrixExpr::sum() const {
  i128 acc = 0;
  for (const Term& t : terms_) {
    i128 sa = 0, sb = 0;
    for (const count_t v : t.a.values()) sa += v;
    for (const count_t v : t.b.values()) sb += v;
    acc += static_cast<i128>(t.coeff) * sa * sb;
  }
  return checked_result(acc, divisor_);
}

// ---------------------------------------------------------------------------
// §III.A — degrees
// ---------------------------------------------------------------------------

KronVectorExpr degrees(const Graph& a, const Graph& b) {
  std::vector<KronVectorExpr::Term> terms;
  terms.push_back({1, ops::row_sums<count_t>(a.matrix()),
                   ops::row_sums<count_t>(b.matrix())});
  if (a.has_self_loops() && b.has_self_loops()) {
    terms.push_back({-1, loop_vector(a), loop_vector(b)});
  }
  return KronVectorExpr(1, std::move(terms));
}

KronVectorExpr in_degrees(const Graph& a, const Graph& b) {
  std::vector<KronVectorExpr::Term> terms;
  terms.push_back({1, ops::row_sums<count_t>(ops::transpose(a.matrix())),
                   ops::row_sums<count_t>(ops::transpose(b.matrix()))});
  if (a.has_self_loops() && b.has_self_loops()) {
    terms.push_back({-1, loop_vector(a), loop_vector(b)});
  }
  return KronVectorExpr(1, std::move(terms));
}

// ---------------------------------------------------------------------------
// Thm 1 / Cor 1 / general — t_C
// ---------------------------------------------------------------------------

KronVectorExpr vertex_triangles(const Graph& a, const Graph& b) {
  require_undirected(a, b, "vertex_triangles");
  const bool la = a.has_self_loops(), lb = b.has_self_loops();
  std::vector<KronVectorExpr::Term> terms;
  if (!la && !lb) {
    // Thm 1: t_C = 2·t_A ⊗ t_B.
    terms.push_back({2, triangle::participation_vertices(a),
                     triangle::participation_vertices(b)});
    return KronVectorExpr(1, std::move(terms));
  }
  if (!la) {
    // Cor 1: t_C = t_A ⊗ diag(B³).
    terms.push_back(
        {1, triangle::participation_vertices(a), triangle::diag_cube(b)});
    return KronVectorExpr(1, std::move(terms));
  }
  if (!lb) {
    // Cor 1 mirrored: t_C = diag(A³) ⊗ t_B.
    terms.push_back(
        {1, triangle::diag_cube(a), triangle::participation_vertices(b)});
    return KronVectorExpr(1, std::move(terms));
  }
  // General case (§III.B): ½[diag(A³)⊗diag(B³) − 2·diag(A²D_A)⊗diag(B²D_B)
  //                          − diag(A D_A A)⊗diag(B D_B B)
  //                          + 2·diag(D_A)⊗diag(D_B)].
  terms.push_back({1, triangle::diag_cube(a), triangle::diag_cube(b)});
  terms.push_back({-2, diag_a2_d(a), diag_a2_d(b)});
  terms.push_back({-1, diag_ada(a), diag_ada(b)});
  terms.push_back({2, loop_vector(a), loop_vector(b)});
  return KronVectorExpr(2, std::move(terms));
}

// ---------------------------------------------------------------------------
// Thm 2 / Cor 2 / general — Δ_C
// ---------------------------------------------------------------------------

KronMatrixExpr edge_triangles(const Graph& a, const Graph& b) {
  require_undirected(a, b, "edge_triangles");
  const bool la = a.has_self_loops(), lb = b.has_self_loops();
  std::vector<KronMatrixExpr::Term> terms;
  if (!la && !lb) {
    // Thm 2: Δ_C = Δ_A ⊗ Δ_B.
    terms.push_back({1, triangle::edge_support_masked(a),
                     triangle::edge_support_masked(b)});
    return KronMatrixExpr(1, std::move(terms));
  }
  if (!la) {
    // Cor 2: Δ_C = Δ_A ⊗ (B ∘ B²).
    terms.push_back({1, triangle::edge_support_masked(a), a_hadamard_a2(b)});
    return KronMatrixExpr(1, std::move(terms));
  }
  if (!lb) {
    // Cor 2 mirrored.
    terms.push_back({1, a_hadamard_a2(a), triangle::edge_support_masked(b)});
    return KronMatrixExpr(1, std::move(terms));
  }
  // General case (§III.C): (A∘A²)⊗(B∘B²) − (D_A A)⊗(D_B B) − (A D_A)⊗(B D_B)
  //                        + 2·D_A⊗D_B − (D_A∘A²)⊗(D_B∘B²).
  terms.push_back({1, a_hadamard_a2(a), a_hadamard_a2(b)});
  terms.push_back({-1, rows_where_loop(a), rows_where_loop(b)});
  terms.push_back({-1, cols_where_loop(a), cols_where_loop(b)});
  terms.push_back({2, loop_matrix(a), loop_matrix(b)});
  terms.push_back({-1, diag_hadamard_a2(a), diag_hadamard_a2(b)});
  return KronMatrixExpr(1, std::move(terms));
}

count_t total_triangles(const Graph& a, const Graph& b) {
  return vertex_triangles(a, b).sum() / 3;
}

}  // namespace kronotri::kron
