// Kronecker formulas for directed triangle statistics (§IV, Thm 4/5).
//
// Preconditions (checked): A has no self loops; B is undirected (B_d = O),
// self loops in B allowed. Then C = A ⊗ B decomposes as C_r = A_r ⊗ B,
// C_d = A_d ⊗ B, and for every directed flavor τ of Fig. 4 / Fig. 5:
//
//    t^{(τ)}_C = t^{(τ)}_A ⊗ diag(B³)          (Thm 4)
//    Δ^{(τ)}_C = Δ^{(τ)}_A ⊗ (B ∘ B²)          (Thm 5)
#pragma once

#include <array>

#include "core/graph.hpp"
#include "kron/formulas.hpp"
#include "triangle/directed.hpp"

namespace kronotri::kron {

/// All 15 vertex-flavor expressions for C = A ⊗ B.
std::array<KronVectorExpr, triangle::kNumVertexTriTypes>
directed_vertex_triangles(const Graph& a, const Graph& b);

/// All 15 edge-flavor expressions for C = A ⊗ B. Matrices for central-'+'
/// flavors have structure A_d ⊗ B; central-'o' flavors A_r ⊗ B.
std::array<KronMatrixExpr, triangle::kNumEdgeTriTypes>
directed_edge_triangles(const Graph& a, const Graph& b);

/// Reciprocal / directed-out / directed-in degree vectors of C (§IV.B):
/// d_{C_r} = d_{A_r} ⊗ d_B, d^out_{C_d} = d^out_{A_d} ⊗ d_B,
/// d^in_{C_d} = d^in_{A_d} ⊗ d_B (row sums of B since B symmetric).
struct DirectedDegrees {
  KronVectorExpr reciprocal;
  KronVectorExpr directed_out;
  KronVectorExpr directed_in;
};
DirectedDegrees directed_degrees(const Graph& a, const Graph& b);

}  // namespace kronotri::kron
