#include "kron/census_oracle.hpp"

namespace kronotri::kron {

DirectedTriangleOracle::DirectedTriangleOracle(const Graph& a, const Graph& b)
    : a_(&a),
      b_(&b),
      index_(b.num_vertices()),
      parts_(triangle::split_directed(a)),
      vertex_(directed_vertex_triangles(a, b)),
      edge_(directed_edge_triangles(a, b)),
      n_(a.num_vertices() * b.num_vertices()) {}

count_t DirectedTriangleOracle::vertex_triangles(
    triangle::VertexTriType flavor, vid p) const {
  return vertex_[static_cast<std::size_t>(flavor)].at(p);
}

std::optional<count_t> DirectedTriangleOracle::edge_triangles(
    triangle::EdgeTriType flavor, vid p, vid q) const {
  const vid i = index_.a_of(p), j = index_.a_of(q);
  const vid k = index_.b_of(p), l = index_.b_of(q);
  const bool directed_central =
      static_cast<int>(flavor) < static_cast<int>(triangle::EdgeTriType::kRpp);
  const BoolCsr& structure = directed_central ? parts_.ad : parts_.ar;
  if (!structure.contains(i, j) || !b_->has_edge(k, l)) return std::nullopt;
  return edge_[static_cast<std::size_t>(flavor)].at(p, q);
}

count_t DirectedTriangleOracle::total(triangle::VertexTriType flavor) const {
  return vertex_[static_cast<std::size_t>(flavor)].sum();
}

LabeledTriangleOracle::LabeledTriangleOracle(const Graph& a,
                                             triangle::Labeling labels,
                                             const Graph& b)
    : a_(&a),
      b_(&b),
      index_(b.num_vertices()),
      labels_(std::move(labels)),
      product_labels_(kron_labeling(labels_, b.num_vertices())) {
  labels_.validate(a.num_vertices());
  const std::size_t slots = static_cast<std::size_t>(labels_.num_labels) *
                            labels_.num_labels * labels_.num_labels;
  vertex_cache_.resize(slots);
  edge_cache_.resize(slots);
  // Validate Thm 6/7 preconditions eagerly by building one expression.
  (void)labeled_vertex_triangles(*a_, labels_, *b_, 0, 0, 0);
}

std::size_t LabeledTriangleOracle::key(std::uint32_t q1, std::uint32_t q2,
                                       std::uint32_t q3) const {
  const std::uint32_t big_l = labels_.num_labels;
  if (q1 >= big_l || q2 >= big_l || q3 >= big_l) {
    throw std::invalid_argument("label out of range");
  }
  return (static_cast<std::size_t>(q1) * big_l + q2) * big_l + q3;
}

count_t LabeledTriangleOracle::vertex_triangles(std::uint32_t q1,
                                                std::uint32_t q2,
                                                std::uint32_t q3, vid p) const {
  if (q2 > q3) std::swap(q2, q3);  // unordered pair of outer labels
  auto& slot = vertex_cache_[key(q1, q2, q3)];
  if (!slot) {
    slot = labeled_vertex_triangles(*a_, labels_, *b_, q1, q2, q3);
  }
  return slot->at(p);
}

std::optional<count_t> LabeledTriangleOracle::edge_triangles(
    std::uint32_t q1, std::uint32_t q2, std::uint32_t q3, vid p, vid q) const {
  const vid i = index_.a_of(p), j = index_.a_of(q);
  const vid k = index_.b_of(p), l = index_.b_of(q);
  // Def. 14 structure: entry (p,q) lives in the (q2,q1) label block.
  if (labels_.label[i] != q2 || labels_.label[j] != q1 ||
      !a_->has_edge(i, j) || !b_->has_edge(k, l)) {
    return std::nullopt;
  }
  auto& slot = edge_cache_[key(q1, q2, q3)];
  if (!slot) {
    slot = labeled_edge_triangles(*a_, labels_, *b_, q1, q2, q3);
  }
  return slot->at(p, q);
}

}  // namespace kronotri::kron
