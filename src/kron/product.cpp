#include "kron/product.hpp"

namespace kronotri::kron {

Graph kron_graph(const Graph& a, const Graph& b) {
  return Graph(kron_matrix<std::uint8_t>(a.matrix(), b.matrix()));
}

}  // namespace kronotri::kron
