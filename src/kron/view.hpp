// Implicit view of the product graph C = A ⊗ B.
//
// This is the "highly compressible" representation the paper's abstract
// highlights: |E_C| = nnz(A)·nnz(B) edges are represented by the O(|E_C|^½)
// storage of the two factors. The view answers vertex/edge queries directly
// from the factors — degree in O(1), edge membership in O(log d), neighbor
// enumeration in output-linear time — without ever materializing C.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

class KronGraphView {
 public:
  /// The view keeps references; both factors must outlive it.
  KronGraphView(const Graph& a, const Graph& b)
      : a_(&a), b_(&b), index_(b.num_vertices()) {}

  [[nodiscard]] vid num_vertices() const {
    return a_->num_vertices() * b_->num_vertices();
  }

  /// Stored adjacency nonzeros of C: nnz(A)·nnz(B).
  [[nodiscard]] esz nnz() const { return a_->nnz() * b_->nnz(); }

  /// Self loops of C: one per (loop in A) × (loop in B).
  [[nodiscard]] count_t num_self_loops() const {
    return a_->num_self_loops() * b_->num_self_loops();
  }

  [[nodiscard]] bool is_undirected() const {
    return a_->is_undirected() && b_->is_undirected();
  }

  /// Undirected edge count of C (off-diagonal nonzeros / 2 + loops).
  /// Requires undirected factors.
  [[nodiscard]] count_t num_undirected_edges() const;

  /// Out-degree of product vertex p, including a self loop if present.
  [[nodiscard]] esz out_degree(vid p) const {
    return a_->out_degree(index_.a_of(p)) * b_->out_degree(index_.b_of(p));
  }

  /// Non-loop degree d_C(p) (§III.A).
  [[nodiscard]] esz nonloop_degree(vid p) const;

  [[nodiscard]] bool has_edge(vid p, vid q) const {
    return a_->has_edge(index_.a_of(p), index_.a_of(q)) &&
           b_->has_edge(index_.b_of(p), index_.b_of(q));
  }

  /// Sorted out-neighbor list of p (materialized per call; size = degree).
  [[nodiscard]] std::vector<vid> neighbors(vid p) const;

  /// Materializes the full product graph — small factors only.
  [[nodiscard]] Graph materialize() const;

  [[nodiscard]] const Graph& factor_a() const noexcept { return *a_; }
  [[nodiscard]] const Graph& factor_b() const noexcept { return *b_; }
  [[nodiscard]] const KronIndex& index() const noexcept { return index_; }

 private:
  const Graph* a_;
  const Graph* b_;
  KronIndex index_;
};

}  // namespace kronotri::kron
