// Closed Kronecker formulas for undirected triangle statistics (§III).
//
// Every theorem in the paper expresses a statistic of C = A ⊗ B as a small
// signed sum of Kronecker products of factor statistics:
//
//   Thm 1  (no self loops):         t_C = 2·t_A ⊗ t_B
//   Cor 1  (loops in B only):       t_C = t_A ⊗ diag(B³)
//   general (loops in both):        t_C = ½[ diag(A³)⊗diag(B³)
//                                           − 2·diag(A²D_A)⊗diag(B²D_B)
//                                           − diag(A D_A A)⊗diag(B D_B B)
//                                           + 2·diag(D_A)⊗diag(D_B) ]
//   Thm 2  (no self loops):         Δ_C = Δ_A ⊗ Δ_B
//   Cor 2  (loops in B only):       Δ_C = Δ_A ⊗ (B∘B²)
//   general (loops in both):        Δ_C = (A∘A²)⊗(B∘B²) − (D_A A)⊗(D_B B)
//                                         − (A D_A)⊗(B D_B) + 2·D_A⊗D_B
//                                         − (D_A∘A²)⊗(D_B∘B²)
//   §III.A (degrees):               d_C = (A·1)⊗(B·1) − loops_A⊗loops_B
//
// Rather than dispatching per case at every call site, the formulas are
// returned as KronVectorExpr / KronMatrixExpr — signed sums of Kronecker
// product terms over precomputed factor statistics. An expression supports
// O(1)-ish point evaluation at a product vertex/edge (the generation-time
// ground-truth oracle), factor-side summation (exact global totals without
// expanding), and full expansion (for tests and small graphs).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

/// Signed sum of Kronecker products of factor vectors, divided by a common
/// positive divisor: v[p] = (Σ_t coeff_t · a_t[i(p)] · b_t[k(p)]) / divisor.
class KronVectorExpr {
 public:
  struct Term {
    std::int64_t coeff;
    std::vector<count_t> a;
    std::vector<count_t> b;
  };

  KronVectorExpr(std::int64_t divisor, std::vector<Term> terms);

  /// Exact value at product vertex p. Throws std::logic_error if the
  /// expression evaluates negative or non-divisible (formula misuse).
  [[nodiscard]] count_t at(vid p) const;

  /// Materializes the full n_A·n_B vector.
  [[nodiscard]] std::vector<count_t> expand() const;

  /// Σ_p value — computed factor-side: Σ_t coeff·(Σa_t)(Σb_t)/divisor.
  [[nodiscard]] count_t sum() const;

  /// Exact value histogram of the full n_A·n_B vector, computed as the
  /// product-convolution of the factor histograms — O(|distinct_a|·
  /// |distinct_b|) instead of O(n_A·n_B). Only defined for single-term
  /// expressions (Thm 1 / Cor 1 shapes — the paper's contribution (d) on
  /// triangle distributions); throws std::logic_error otherwise.
  [[nodiscard]] std::map<count_t, count_t> histogram() const;

  [[nodiscard]] vid size() const noexcept { return na_ * nb_; }
  [[nodiscard]] const std::vector<Term>& terms() const noexcept { return terms_; }
  [[nodiscard]] std::int64_t divisor() const noexcept { return divisor_; }

 private:
  std::int64_t divisor_;
  std::vector<Term> terms_;
  vid na_ = 0;
  vid nb_ = 0;
};

/// Signed sum of Kronecker products of factor count matrices:
/// M[p,q] = (Σ_t coeff_t · A_t(i,j) · B_t(k,l)) / divisor.
class KronMatrixExpr {
 public:
  struct Term {
    std::int64_t coeff;
    CountCsr a;
    CountCsr b;
  };

  KronMatrixExpr(std::int64_t divisor, std::vector<Term> terms);

  /// Exact value at product entry (p,q) — two binary searches per term.
  [[nodiscard]] count_t at(vid p, vid q) const;

  /// Materializes the full product matrix (small factors only). Entries
  /// that evaluate to zero are dropped.
  [[nodiscard]] CountCsr expand() const;

  /// Σ over all entries, computed factor-side.
  [[nodiscard]] count_t sum() const;

  [[nodiscard]] vid rows() const noexcept { return ra_ * rb_; }
  [[nodiscard]] const std::vector<Term>& terms() const noexcept { return terms_; }

 private:
  std::int64_t divisor_;
  std::vector<Term> terms_;
  vid ra_ = 0, rb_ = 0;  // factor row counts
};

/// Non-loop degree vector d_C of C = A ⊗ B (§III.A; works for directed
/// factors too, giving out-degrees).
KronVectorExpr degrees(const Graph& a, const Graph& b);

/// In-degree vector of C (column sums less loops).
KronVectorExpr in_degrees(const Graph& a, const Graph& b);

/// Triangle participation at vertices t_C. Dispatches between Thm 1, Cor 1
/// (either orientation), and the general self-loop formula based on the
/// factors' loop structure. Requires undirected factors.
KronVectorExpr vertex_triangles(const Graph& a, const Graph& b);

/// Triangle participation at edges Δ_C (Thm 2 / Cor 2 / general case).
/// Requires undirected factors.
KronMatrixExpr edge_triangles(const Graph& a, const Graph& b);

/// τ(C) = ⅓·1ᵗt_C, computed factor-side. For loop-free factors this equals
/// the paper's 6·τ(A)·τ(B).
count_t total_triangles(const Graph& a, const Graph& b);

}  // namespace kronotri::kron
