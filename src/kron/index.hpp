// Index maps for block-structured Kronecker products (§II of the paper).
//
// The paper defines, for block size n and 1-based indices,
//   α_n(i) = ⌊(i−1)/n⌋ + 1,  β_n(i) = ((i−1) mod n) + 1,
//   γ_n(x, y) = (x−1)·n + y,
// with i = γ_n(α_n(i), β_n(i)). The whole library is 0-based, so these
// become plain division/modulus: a product vertex p of C = A ⊗ B
// corresponds to the factor pair (i, k) = (p / n_B, p mod n_B), and
// C[p,q] = A[i(p), i(q)] · B[k(p), k(q)].
#pragma once

#include "core/types.hpp"

namespace kronotri::kron {

/// Bijection between product indices and factor index pairs for block size
/// nb (= number of vertices of the right factor B).
class KronIndex {
 public:
  explicit constexpr KronIndex(vid nb) noexcept : nb_(nb) {}

  /// γ: (A-vertex i, B-vertex k) → product vertex.
  [[nodiscard]] constexpr vid compose(vid i, vid k) const noexcept {
    return i * nb_ + k;
  }
  /// α: product vertex → A-vertex.
  [[nodiscard]] constexpr vid a_of(vid p) const noexcept { return p / nb_; }
  /// β: product vertex → B-vertex.
  [[nodiscard]] constexpr vid b_of(vid p) const noexcept { return p % nb_; }

  [[nodiscard]] constexpr vid block_size() const noexcept { return nb_; }

 private:
  vid nb_;
};

}  // namespace kronotri::kron
