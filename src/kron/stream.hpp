// Communication-free edge-stream generation of C = A ⊗ B.
//
// The nonzeros of C are in bijection with pairs (nonzero of A, nonzero of
// B): C[γ(i,k), γ(j,l)] = A[i,j]·B[k,l]. Enumerating the pair space
// [0, nnz(A)·nnz(B)) therefore emits every stored edge of C exactly once,
// and splitting that space into contiguous ranges gives the
// "essentially communication-free" distributed generation of [3]: each
// worker needs only the two small factors and its range bounds. This class
// is one such worker.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

struct EdgeRecord {
  vid u;  ///< source product vertex
  vid v;  ///< destination product vertex
};

class EdgeStream {
 public:
  /// Stream partition `part` of `nparts` (contiguous split of the nonzero
  /// pair space). Factors must outlive the stream.
  EdgeStream(const Graph& a, const Graph& b, std::uint64_t part = 0,
             std::uint64_t nparts = 1);

  /// Next edge of C in this partition, or nullopt when exhausted.
  std::optional<EdgeRecord> next();

  /// Fill `out` with the next edges of this partition; returns how many were
  /// written (< out.size() only at exhaustion, 0 when done). The hot path:
  /// the pair-space division is amortized over each run of a single A-edge,
  /// so the inner loop is two adds per emitted edge instead of a div/mod.
  std::size_t next_batch(std::span<EdgeRecord> out) noexcept;

  /// Total number of edges this partition will emit.
  [[nodiscard]] esz partition_size() const noexcept { return hi_ - lo_; }

  /// Edges already emitted from this partition.
  [[nodiscard]] esz emitted() const noexcept { return cursor_ - lo_; }

  void reset() noexcept { cursor_ = lo_; }

 private:
  std::vector<std::pair<vid, vid>> a_edges_;  // flattened nonzeros of A
  std::vector<std::pair<vid, vid>> b_edges_;  // flattened nonzeros of B
  KronIndex index_;
  esz lo_ = 0;
  esz hi_ = 0;
  esz cursor_ = 0;
};

}  // namespace kronotri::kron
