// Communication-free edge-stream generation of C = A ⊗ B.
//
// The nonzeros of C are in bijection with pairs (nonzero of A, nonzero of
// B): C[γ(i,k), γ(j,l)] = A[i,j]·B[k,l]. Enumerating the pair space
// [0, nnz(A)·nnz(B)) therefore emits every stored edge of C exactly once,
// and splitting that space into contiguous ranges gives the
// "essentially communication-free" distributed generation of [3]: each
// worker needs only the two small factors and its range bounds.
//
// FlatEdges is the flattened nonzero list of one factor, built once and
// shared read-only by every partition — the seed implementation had each
// worker's EdgeStream re-flatten both factors, so an N-way fan-out paid the
// flatten (and its allocations) N times before emitting a single edge.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

struct EdgeRecord {
  vid u;  ///< source product vertex
  vid v;  ///< destination product vertex
};

/// Flattened nonzero list of a factor graph. Immutable after construction,
/// safe to share across partition streams and worker threads.
class FlatEdges {
 public:
  explicit FlatEdges(const Graph& g);

  [[nodiscard]] std::span<const std::pair<vid, vid>> edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] vid num_vertices() const noexcept { return num_vertices_; }

 private:
  std::vector<std::pair<vid, vid>> edges_;
  vid num_vertices_;
};

class EdgeStream {
 public:
  /// Stream partition `part` of `nparts` (contiguous split of the nonzero
  /// pair space). Flattens both factors privately; factors need not outlive
  /// the stream. Prefer the FlatEdges overload when fanning out.
  EdgeStream(const Graph& a, const Graph& b, std::uint64_t part = 0,
             std::uint64_t nparts = 1);

  /// Same partition semantics over pre-flattened factors shared by all
  /// partitions. `a` and `b` must outlive the stream.
  EdgeStream(const FlatEdges& a, const FlatEdges& b, std::uint64_t part = 0,
             std::uint64_t nparts = 1);

  // Copying is deleted: a Graph-constructed stream's spans point into its
  // own owned vectors, so a memberwise copy would alias the source's
  // storage. Moves keep the spans valid (heap buffers move with the
  // vectors).
  EdgeStream(const EdgeStream&) = delete;
  EdgeStream& operator=(const EdgeStream&) = delete;
  EdgeStream(EdgeStream&&) noexcept = default;
  EdgeStream& operator=(EdgeStream&&) noexcept = default;

  /// Next edge of C in this partition, or nullopt when exhausted.
  std::optional<EdgeRecord> next();

  /// Fill `out` with the next edges of this partition; returns how many were
  /// written (< out.size() only at exhaustion, 0 when done). The hot path:
  /// the pair-space division is amortized over each run of a single A-edge,
  /// so the inner loop is two adds per emitted edge instead of a div/mod.
  std::size_t next_batch(std::span<EdgeRecord> out) noexcept;

  /// Total number of edges this partition will emit.
  [[nodiscard]] esz partition_size() const noexcept { return hi_ - lo_; }

  /// Edges already emitted from this partition.
  [[nodiscard]] esz emitted() const noexcept { return cursor_ - lo_; }

  void reset() noexcept { cursor_ = lo_; }

 private:
  void init_partition(std::uint64_t part, std::uint64_t nparts);

  std::vector<std::pair<vid, vid>> a_owned_;  // backing store, Graph ctor only
  std::vector<std::pair<vid, vid>> b_owned_;
  std::span<const std::pair<vid, vid>> a_edges_;  // flattened nonzeros of A
  std::span<const std::pair<vid, vid>> b_edges_;  // flattened nonzeros of B
  KronIndex index_;
  esz lo_ = 0;
  esz hi_ = 0;
  esz cursor_ = 0;
};

}  // namespace kronotri::kron
