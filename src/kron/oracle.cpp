#include "kron/oracle.hpp"

#include "kron/view.hpp"

namespace kronotri::kron {

TriangleOracle::TriangleOracle(const Graph& a, const Graph& b)
    : a_(&a),
      b_(&b),
      index_(b.num_vertices()),
      tvec_(kronotri::kron::vertex_triangles(a, b)),
      dmat_(kronotri::kron::edge_triangles(a, b)),
      deg_(kronotri::kron::degrees(a, b)) {
  total_ = tvec_.sum() / 3;
  n_ = a.num_vertices() * b.num_vertices();
  edges_ = KronGraphView(a, b).num_undirected_edges();
}

double TriangleOracle::local_clustering(vid p) const {
  const count_t d = deg_.at(p);
  if (d < 2) return 0.0;
  const double wedges = 0.5 * static_cast<double>(d) *
                        static_cast<double>(d - 1);
  return static_cast<double>(tvec_.at(p)) / wedges;
}

std::optional<count_t> TriangleOracle::edge_triangles(vid p, vid q) const {
  const vid i = index_.a_of(p), j = index_.a_of(q);
  const vid k = index_.b_of(p), l = index_.b_of(q);
  if (!a_->has_edge(i, j) || !b_->has_edge(k, l)) return std::nullopt;
  return dmat_.at(p, q);
}

}  // namespace kronotri::kron
