// Explicit (materialized) Kronecker products.
//
// Materialization is quadratic in the compressed representation and is only
// used for small factors: unit tests validate every closed formula against
// direct computation on a materialized C = A ⊗ B, and the egonet benches
// materialize local neighborhoods. Production-scale use goes through
// kron::KronGraphView / kron::EdgeStream instead.
#pragma once

#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

/// Dense Kronecker product of vectors: out[i·|b| + k] = a[i]·b[k].
template <typename T>
std::vector<T> kron_vector(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() * b.size());
  for (const T& x : a) {
    for (const T& y : b) out.push_back(static_cast<T>(x * y));
  }
  return out;
}

/// Sparse Kronecker product of matrices (Def. 1). Row p = i·rows(B)+k of the
/// result is the outer combination of row i of A and row k of B, which keeps
/// rows sorted without any extra sorting.
template <typename TOut, typename TA, typename TB>
CsrMatrix<TOut> kron_matrix(const CsrMatrix<TA>& a, const CsrMatrix<TB>& b) {
  const vid rows = a.rows() * b.rows();
  const vid cols = a.cols() * b.cols();
  std::vector<esz> rp(rows + 1, 0);
  std::vector<vid> ci;
  std::vector<TOut> vals;
  ci.reserve(a.nnz() * b.nnz());
  vals.reserve(a.nnz() * b.nnz());
  for (vid i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (vid k = 0; k < b.rows(); ++k) {
      const auto bc = b.row_cols(k);
      const auto bv = b.row_vals(k);
      for (std::size_t x = 0; x < ac.size(); ++x) {
        for (std::size_t y = 0; y < bc.size(); ++y) {
          ci.push_back(ac[x] * b.cols() + bc[y]);
          vals.push_back(static_cast<TOut>(static_cast<TOut>(av[x]) *
                                           static_cast<TOut>(bv[y])));
        }
      }
      rp[i * b.rows() + k + 1] = ci.size();
    }
  }
  return CsrMatrix<TOut>::from_parts(rows, cols, std::move(rp), std::move(ci),
                                     std::move(vals));
}

/// Materialized product graph G_C with C = A ⊗ B.
Graph kron_graph(const Graph& a, const Graph& b);

}  // namespace kronotri::kron
