// Kronecker formulas for vertex-labeled triangle statistics (§V, Thm 6/7).
//
// The product graph inherits labels from the left factor:
// f_C(p) = f_A(α(p)) (so Π_{C,q} = Π_{A,q} ⊗ I_B). Preconditions (checked):
// A undirected, labeled, no self loops; B undirected, unlabeled, loops
// allowed. For every labeled flavor τ = (q1, q2, q3):
//
//    t^{(τ)}_C = t^{(τ)}_A ⊗ diag(B³)          (Thm 6)
//    Δ^{(τ)}_C = Δ^{(τ)}_A ⊗ (B ∘ B²)          (Thm 7)
#pragma once

#include "core/graph.hpp"
#include "kron/formulas.hpp"
#include "triangle/labeled.hpp"

namespace kronotri::kron {

/// The labeling of C = A ⊗ B inherited from A's labeling.
triangle::Labeling kron_labeling(const triangle::Labeling& la, vid nb);

/// Thm 6: t^{(q1,q2,q3)}_C as an expression over factor statistics.
KronVectorExpr labeled_vertex_triangles(const Graph& a,
                                        const triangle::Labeling& lab,
                                        const Graph& b, std::uint32_t q1,
                                        std::uint32_t q2, std::uint32_t q3);

/// Thm 7: Δ^{(q1,q2,q3)}_C as an expression over factor statistics.
KronMatrixExpr labeled_edge_triangles(const Graph& a,
                                      const triangle::Labeling& lab,
                                      const Graph& b, std::uint32_t q1,
                                      std::uint32_t q2, std::uint32_t q3);

}  // namespace kronotri::kron
