// Census oracles: the directed (Thm 4/5) and labeled (Thm 6/7) analogues of
// TriangleOracle — per-flavor point queries on product vertices and edges,
// backed by factor-sized precomputation only.
//
// These are the "diverse triangle statistics" of the paper's title as a
// queryable API: a benchmark harness generates C = A ⊗ B, runs the
// implementation under test, and asks these oracles for the exact expected
// value of any of the 15 directed flavors (Fig. 4/5) or any labeled type
// (Fig. 6) at any vertex or edge it wishes to check.
#pragma once

#include <array>
#include <optional>

#include "core/graph.hpp"
#include "kron/directed.hpp"
#include "kron/index.hpp"
#include "kron/labeled.hpp"

namespace kronotri::kron {

/// Directed-flavor oracle for C = A ⊗ B (A directed loop-free, B
/// undirected; Thm 4/5 preconditions checked at construction).
class DirectedTriangleOracle {
 public:
  DirectedTriangleOracle(const Graph& a, const Graph& b);

  /// t^{(τ)}_C[p] for any of the 15 vertex flavors.
  [[nodiscard]] count_t vertex_triangles(triangle::VertexTriType flavor,
                                         vid p) const;

  /// Δ^{(τ)}_C[p,q] for any of the 15 edge flavors; nullopt when (p,q) is
  /// not a stored entry of the flavor's structure (A_d ⊗ B for central-'+'
  /// flavors, A_r ⊗ B for central-'o').
  [[nodiscard]] std::optional<count_t> edge_triangles(
      triangle::EdgeTriType flavor, vid p, vid q) const;

  /// Σ_p t^{(τ)}_C[p] for one flavor, factor-side.
  [[nodiscard]] count_t total(triangle::VertexTriType flavor) const;

  [[nodiscard]] vid num_vertices() const noexcept { return n_; }

 private:
  const Graph* a_;
  const Graph* b_;
  KronIndex index_;
  triangle::DirectedParts parts_;
  std::array<KronVectorExpr, triangle::kNumVertexTriTypes> vertex_;
  std::array<KronMatrixExpr, triangle::kNumEdgeTriTypes> edge_;
  vid n_ = 0;
};

/// Labeled-flavor oracle for C = A ⊗ B with labels inherited from A
/// (Thm 6/7 preconditions checked at construction). Flavors are addressed
/// as (q1 = center label, {q2, q3} = other labels) for vertices and
/// (q1, q2 = endpoint labels, q3 = third-vertex label) for edges.
class LabeledTriangleOracle {
 public:
  LabeledTriangleOracle(const Graph& a, triangle::Labeling labels,
                        const Graph& b);

  [[nodiscard]] count_t vertex_triangles(std::uint32_t q1, std::uint32_t q2,
                                         std::uint32_t q3, vid p) const;

  /// Δ^{(q1,q2,q3)}_C[p,q]; nullopt when (p,q) is outside the type's label
  /// block or not an edge.
  [[nodiscard]] std::optional<count_t> edge_triangles(std::uint32_t q1,
                                                      std::uint32_t q2,
                                                      std::uint32_t q3, vid p,
                                                      vid q) const;

  /// The product graph's inherited labeling.
  [[nodiscard]] const triangle::Labeling& product_labels() const noexcept {
    return product_labels_;
  }

  [[nodiscard]] std::uint32_t num_labels() const noexcept {
    return labels_.num_labels;
  }

 private:
  /// Dense per-(q1,q2,q3) cache index.
  [[nodiscard]] std::size_t key(std::uint32_t q1, std::uint32_t q2,
                                std::uint32_t q3) const;

  const Graph* a_;
  const Graph* b_;
  KronIndex index_;
  triangle::Labeling labels_;
  triangle::Labeling product_labels_;
  // Lazily built per-type expressions (L³ slots, populated on demand).
  mutable std::vector<std::optional<KronVectorExpr>> vertex_cache_;
  mutable std::vector<std::optional<KronMatrixExpr>> edge_cache_;
};

}  // namespace kronotri::kron
