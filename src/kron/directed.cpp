#include "kron/directed.hpp"

#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/count.hpp"

namespace kronotri::kron {

namespace {

void require_thm45(const Graph& a, const Graph& b) {
  if (a.has_self_loops()) {
    throw std::invalid_argument("Thm 4/5 require diag(A) = 0");
  }
  if (!b.is_undirected()) {
    throw std::invalid_argument("Thm 4/5 require B undirected (B_d = O)");
  }
}

/// B ∘ B² with self loops kept (right factor of Thm 5).
CountCsr b_hadamard_b2(const Graph& b) {
  const BoolCsr& m = b.matrix();
  return ops::masked_product(m, m, m);
}

}  // namespace

std::array<KronVectorExpr, triangle::kNumVertexTriTypes>
directed_vertex_triangles(const Graph& a, const Graph& b) {
  require_thm45(a, b);
  const std::vector<count_t> b3 = triangle::diag_cube(b);
  auto census = triangle::directed_vertex_census(a);
  // KronVectorExpr has no default constructor; build through a vector.
  std::vector<KronVectorExpr> exprs;
  exprs.reserve(triangle::kNumVertexTriTypes);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    std::vector<KronVectorExpr::Term> terms;
    terms.push_back({1, std::move(census[static_cast<std::size_t>(f)]), b3});
    exprs.emplace_back(1, std::move(terms));
  }
  return {exprs[0],  exprs[1],  exprs[2],  exprs[3],  exprs[4],
          exprs[5],  exprs[6],  exprs[7],  exprs[8],  exprs[9],
          exprs[10], exprs[11], exprs[12], exprs[13], exprs[14]};
}

std::array<KronMatrixExpr, triangle::kNumEdgeTriTypes> directed_edge_triangles(
    const Graph& a, const Graph& b) {
  require_thm45(a, b);
  const CountCsr bb2 = b_hadamard_b2(b);
  auto census = triangle::directed_edge_census(a);
  std::vector<KronMatrixExpr> exprs;
  exprs.reserve(triangle::kNumEdgeTriTypes);
  for (int f = 0; f < triangle::kNumEdgeTriTypes; ++f) {
    std::vector<KronMatrixExpr::Term> terms;
    terms.push_back({1, std::move(census[static_cast<std::size_t>(f)]), bb2});
    exprs.emplace_back(1, std::move(terms));
  }
  return {exprs[0],  exprs[1],  exprs[2],  exprs[3],  exprs[4],
          exprs[5],  exprs[6],  exprs[7],  exprs[8],  exprs[9],
          exprs[10], exprs[11], exprs[12], exprs[13], exprs[14]};
}

DirectedDegrees directed_degrees(const Graph& a, const Graph& b) {
  require_thm45(a, b);
  const triangle::DirectedParts parts = triangle::split_directed(a);
  const std::vector<count_t> db = ops::row_sums<count_t>(b.matrix());

  auto make = [&](std::vector<count_t> da) {
    std::vector<KronVectorExpr::Term> terms;
    terms.push_back({1, std::move(da), db});
    return KronVectorExpr(1, std::move(terms));
  };
  return DirectedDegrees{
      make(ops::row_sums<count_t>(parts.ar)),
      make(ops::row_sums<count_t>(parts.ad)),
      make(ops::row_sums<count_t>(parts.adt)),
  };
}

}  // namespace kronotri::kron
