// TriangleOracle — the generation-time ground-truth interface.
//
// This is the deliverable the paper's title promises: while (or after)
// generating C = A ⊗ B, answer "how many triangles touch vertex p?" and
// "how many triangles contain edge (p,q)?" exactly, from factor statistics
// alone. Construction costs one triangle analysis per factor
// (O(|E_A|^{3/2} + |E_B|^{3/2}) worst case — the square-root-of-|E_C| bound
// of §I); queries touch only factor-sized data.
#pragma once

#include <map>
#include <optional>

#include "core/graph.hpp"
#include "kron/formulas.hpp"
#include "kron/index.hpp"

namespace kronotri::kron {

class TriangleOracle {
 public:
  /// Factors must be undirected; any self-loop configuration is handled
  /// (Thm 1/2, Cor 1/2 or the general formulas are selected internally).
  /// Factors must outlive the oracle.
  TriangleOracle(const Graph& a, const Graph& b);

  /// t_C[p] — exact triangle count at product vertex p.
  [[nodiscard]] count_t vertex_triangles(vid p) const { return tvec_.at(p); }

  /// Δ_C[p,q] — exact triangle count at product edge (p,q). Returns nullopt
  /// when (p,q) is not an edge of C (a stored count of 0 is a real edge in
  /// zero triangles).
  [[nodiscard]] std::optional<count_t> edge_triangles(vid p, vid q) const;

  /// τ(C) — 6·τ(A)·τ(B) when the factors are loop-free.
  [[nodiscard]] count_t total_triangles() const { return total_; }

  /// Non-loop degree of p (§III.A formulas).
  [[nodiscard]] count_t degree(vid p) const { return deg_.at(p); }

  /// Local clustering coefficient of p: t_C[p] / C(d_C[p], 2) — the §I
  /// motivating statistic, exact at any product vertex in O(1).
  [[nodiscard]] double local_clustering(vid p) const;

  /// Exact histogram of t_C over all n_A·n_B vertices, computed
  /// factor-side (contribution (d): triangle distributions). Only
  /// available when the triangle formula is a single Kronecker term
  /// (Thm 1 / Cor 1 regimes); throws std::logic_error otherwise.
  [[nodiscard]] std::map<count_t, count_t> triangle_histogram() const {
    return tvec_.histogram();
  }

  [[nodiscard]] vid num_vertices() const noexcept { return n_; }
  [[nodiscard]] count_t num_undirected_edges() const noexcept { return edges_; }

  [[nodiscard]] const KronVectorExpr& vertex_expr() const noexcept { return tvec_; }
  [[nodiscard]] const KronMatrixExpr& edge_expr() const noexcept { return dmat_; }

 private:
  const Graph* a_;
  const Graph* b_;
  KronIndex index_;
  KronVectorExpr tvec_;
  KronMatrixExpr dmat_;
  KronVectorExpr deg_;
  count_t total_ = 0;
  count_t edges_ = 0;
  vid n_ = 0;
};

}  // namespace kronotri::kron
