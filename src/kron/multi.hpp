// Multi-factor Kronecker chains: C = A₁ ⊗ A₂ ⊗ … ⊗ A_k.
//
// The paper's companion work ([3], Kepner et al., "Design, generation, and
// validation of extreme-scale power-law graphs") builds benchmark graphs
// from MORE than two factors — the formulas of §III generalize directly by
// associativity of ⊗. This module implements the k-factor case:
//
//   * mixed-radix index maps p ↔ (x₁, …, x_k), left factor most
//     significant (the k-fold γ/α/β of §II),
//   * implicit edge/degree queries from the factors,
//   * closed triangle formulas whenever the product is loop-free (i.e. at
//     least one factor has no self loops — loops in C need a loop in EVERY
//     factor):
//       diag(C³)  = ⊗ᵢ diag(Aᵢ³)            so  t_C = ½·⊗ᵢ diag(Aᵢ³)
//       Δ_C       = ⊗ᵢ (Aᵢ ∘ Aᵢ²)
//       τ(C)      = (1/6)·Πᵢ Σ diag(Aᵢ³)    (= 6^{k-1}·Πᵢ τ(Aᵢ) when all
//                                              factors are loop-free)
//       d_C       = ⊗ᵢ (Aᵢ·1)
//     For two factors these reduce exactly to Thm 1 / Cor 1 / Thm 2 /
//     Cor 2. The all-factors-looped case (which needs the §III.B general
//     expansion at every level) is rejected with an exception.
#pragma once

#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"

namespace kronotri::kron {

class KronChain {
 public:
  /// Takes ownership of copies of the factors (factor graphs are small by
  /// design). Requires k ≥ 1 undirected factors; triangle statistics
  /// additionally require at least one loop-free factor.
  explicit KronChain(std::vector<Graph> factors);

  [[nodiscard]] std::size_t num_factors() const noexcept {
    return factors_.size();
  }
  [[nodiscard]] const Graph& factor(std::size_t i) const {
    return factors_[i];
  }

  [[nodiscard]] vid num_vertices() const noexcept { return n_; }
  [[nodiscard]] esz nnz() const noexcept { return nnz_; }
  [[nodiscard]] count_t num_undirected_edges() const;

  /// Mixed-radix decomposition of a product vertex, left factor first.
  [[nodiscard]] std::vector<vid> decompose(vid p) const;
  /// Inverse of decompose().
  [[nodiscard]] vid compose(const std::vector<vid>& xs) const;

  [[nodiscard]] bool has_edge(vid p, vid q) const;
  [[nodiscard]] esz out_degree(vid p) const;
  [[nodiscard]] esz nonloop_degree(vid p) const;

  /// Sorted out-neighbor list of p (materialized per call; size =
  /// out_degree, includes p itself when every factor has the loop) — the
  /// k-factor analogue of KronGraphView::neighbors.
  [[nodiscard]] std::vector<vid> neighbors(vid p) const;

  /// Materializes the product — small chains only (tests/examples).
  [[nodiscard]] Graph materialize() const;

  // -- exact triangle statistics (require ≥ 1 loop-free factor) ----------

  /// t_C[p] — exact triangle participation at product vertex p.
  [[nodiscard]] count_t vertex_triangles(vid p) const;

  /// Δ_C[p,q]; throws std::invalid_argument when (p,q) is not an edge.
  [[nodiscard]] count_t edge_triangles(vid p, vid q) const;

  /// τ(C).
  [[nodiscard]] count_t total_triangles() const;

 private:
  void require_triangle_stats() const;

  std::vector<Graph> factors_;
  vid n_ = 1;
  esz nnz_ = 1;
  bool product_loop_free_ = false;
  // Per-factor precomputed statistics (lazily built on first use).
  mutable std::vector<std::vector<count_t>> diag_cube_;  // diag(Aᵢ³)
  mutable std::vector<CountCsr> support_;                // Aᵢ ∘ Aᵢ²
  mutable bool stats_ready_ = false;
};

}  // namespace kronotri::kron
