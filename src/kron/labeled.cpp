#include "kron/labeled.hpp"

#include <stdexcept>

#include "core/ops.hpp"
#include "triangle/count.hpp"

namespace kronotri::kron {

namespace {

void require_thm67(const Graph& a, const Graph& b) {
  if (a.has_self_loops()) {
    throw std::invalid_argument("Thm 6/7 require diag(A) = 0");
  }
  if (!a.is_undirected() || !b.is_undirected()) {
    throw std::invalid_argument("Thm 6/7 require undirected factors");
  }
}

}  // namespace

triangle::Labeling kron_labeling(const triangle::Labeling& la, vid nb) {
  triangle::Labeling lc;
  lc.num_labels = la.num_labels;
  lc.label.reserve(la.label.size() * nb);
  for (const std::uint32_t q : la.label) {
    lc.label.insert(lc.label.end(), nb, q);
  }
  return lc;
}

KronVectorExpr labeled_vertex_triangles(const Graph& a,
                                        const triangle::Labeling& lab,
                                        const Graph& b, std::uint32_t q1,
                                        std::uint32_t q2, std::uint32_t q3) {
  require_thm67(a, b);
  std::vector<KronVectorExpr::Term> terms;
  terms.push_back({1,
                   triangle::labeled_vertex_participation(a, lab, q1, q2, q3),
                   triangle::diag_cube(b)});
  return KronVectorExpr(1, std::move(terms));
}

KronMatrixExpr labeled_edge_triangles(const Graph& a,
                                      const triangle::Labeling& lab,
                                      const Graph& b, std::uint32_t q1,
                                      std::uint32_t q2, std::uint32_t q3) {
  require_thm67(a, b);
  const BoolCsr& m = b.matrix();
  std::vector<KronMatrixExpr::Term> terms;
  terms.push_back({1, triangle::labeled_edge_participation(a, lab, q1, q2, q3),
                   ops::masked_product(m, m, m)});
  return KronMatrixExpr(1, std::move(terms));
}

}  // namespace kronotri::kron
