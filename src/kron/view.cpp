#include "kron/view.hpp"

#include <stdexcept>

#include "kron/product.hpp"

namespace kronotri::kron {

count_t KronGraphView::num_undirected_edges() const {
  if (!is_undirected()) {
    throw std::logic_error("num_undirected_edges: product graph is directed");
  }
  const count_t loops = num_self_loops();
  return (nnz() - loops) / 2 + loops;
}

esz KronGraphView::nonloop_degree(vid p) const {
  const vid i = index_.a_of(p), k = index_.b_of(p);
  const esz loop =
      (a_->has_edge(i, i) && b_->has_edge(k, k)) ? esz{1} : esz{0};
  return a_->out_degree(i) * b_->out_degree(k) - loop;
}

std::vector<vid> KronGraphView::neighbors(vid p) const {
  const vid i = index_.a_of(p), k = index_.b_of(p);
  std::vector<vid> out;
  out.reserve(a_->out_degree(i) * b_->out_degree(k));
  for (const vid j : a_->neighbors(i)) {
    for (const vid l : b_->neighbors(k)) {
      out.push_back(index_.compose(j, l));  // ascending: j asc, l asc
    }
  }
  return out;
}

Graph KronGraphView::materialize() const { return kron_graph(*a_, *b_); }

}  // namespace kronotri::kron
