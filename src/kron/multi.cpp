#include "kron/multi.hpp"

#include <stdexcept>

#include "core/ops.hpp"
#include "kron/product.hpp"
#include "triangle/count.hpp"

namespace kronotri::kron {

KronChain::KronChain(std::vector<Graph> factors)
    : factors_(std::move(factors)) {
  if (factors_.empty()) {
    throw std::invalid_argument("KronChain needs at least one factor");
  }
  bool any_loop_free = false;
  for (const Graph& f : factors_) {
    if (!f.is_undirected()) {
      throw std::invalid_argument("KronChain factors must be undirected");
    }
    n_ *= f.num_vertices();
    nnz_ *= f.nnz();
    any_loop_free |= !f.has_self_loops();
  }
  product_loop_free_ = any_loop_free;
}

count_t KronChain::num_undirected_edges() const {
  count_t loops = 1;
  for (const Graph& f : factors_) loops *= f.num_self_loops();
  return (nnz_ - loops) / 2 + loops;
}

std::vector<vid> KronChain::decompose(vid p) const {
  std::vector<vid> xs(factors_.size());
  for (std::size_t i = factors_.size(); i-- > 0;) {
    const vid ni = factors_[i].num_vertices();
    xs[i] = p % ni;
    p /= ni;
  }
  return xs;
}

vid KronChain::compose(const std::vector<vid>& xs) const {
  if (xs.size() != factors_.size()) {
    throw std::invalid_argument("compose: wrong number of coordinates");
  }
  vid p = 0;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    p = p * factors_[i].num_vertices() + xs[i];
  }
  return p;
}

bool KronChain::has_edge(vid p, vid q) const {
  const std::vector<vid> xs = decompose(p), ys = decompose(q);
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (!factors_[i].has_edge(xs[i], ys[i])) return false;
  }
  return true;
}

esz KronChain::out_degree(vid p) const {
  const std::vector<vid> xs = decompose(p);
  esz d = 1;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    d *= factors_[i].out_degree(xs[i]);
  }
  return d;
}

esz KronChain::nonloop_degree(vid p) const {
  const std::vector<vid> xs = decompose(p);
  esz d = 1, loop = 1;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    d *= factors_[i].out_degree(xs[i]);
    loop &= factors_[i].has_edge(xs[i], xs[i]) ? esz{1} : esz{0};
  }
  return d - loop;
}

std::vector<vid> KronChain::neighbors(vid p) const {
  const std::vector<vid> xs = decompose(p);
  std::vector<vid> out;
  out.reserve(out_degree(p));
  // Odometer over the factor rows, left factor most significant; factor
  // rows are sorted, so composed ids come out ascending.
  std::vector<std::span<const vid>> rows(factors_.size());
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    rows[i] = factors_[i].neighbors(xs[i]);
    if (rows[i].empty()) return out;
  }
  std::vector<std::size_t> idx(factors_.size(), 0);
  for (;;) {
    vid id = 0;
    for (std::size_t i = 0; i < factors_.size(); ++i) {
      id = id * factors_[i].num_vertices() + rows[i][idx[i]];
    }
    out.push_back(id);
    std::size_t i = factors_.size();
    while (i > 0 && idx[i - 1] + 1 == rows[i - 1].size()) --i;
    if (i == 0) return out;
    ++idx[i - 1];
    for (std::size_t j = i; j < factors_.size(); ++j) idx[j] = 0;
  }
}

Graph KronChain::materialize() const {
  BoolCsr acc = factors_.front().matrix();
  for (std::size_t i = 1; i < factors_.size(); ++i) {
    acc = kron_matrix<std::uint8_t>(acc, factors_[i].matrix());
  }
  return Graph(std::move(acc));
}

void KronChain::require_triangle_stats() const {
  if (!product_loop_free_) {
    throw std::invalid_argument(
        "KronChain triangle formulas need at least one loop-free factor "
        "(otherwise the §III.B general expansion applies at every level); "
        "strip loops from one factor or use the two-factor kron::formulas");
  }
  if (stats_ready_) return;
  diag_cube_.reserve(factors_.size());
  support_.reserve(factors_.size());
  for (const Graph& f : factors_) {
    diag_cube_.push_back(ops::diag_cube_symmetric(f.matrix()));
    support_.push_back(ops::masked_product(f.matrix(), f.matrix(), f.matrix()));
  }
  stats_ready_ = true;
}

count_t KronChain::vertex_triangles(vid p) const {
  require_triangle_stats();
  const std::vector<vid> xs = decompose(p);
  count_t prod = 1;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    prod *= diag_cube_[i][xs[i]];
  }
  return prod / 2;  // ½·diag(C³); the product of even/odd walks is even
}

count_t KronChain::edge_triangles(vid p, vid q) const {
  require_triangle_stats();
  const std::vector<vid> xs = decompose(p), ys = decompose(q);
  count_t prod = 1;
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (!factors_[i].has_edge(xs[i], ys[i])) {
      throw std::invalid_argument("edge_triangles: (p,q) is not an edge of C");
    }
    prod *= support_[i].at(xs[i], ys[i]);
  }
  return prod;
}

count_t KronChain::total_triangles() const {
  require_triangle_stats();
  count_t prod = 1;
  for (const auto& dc : diag_cube_) {
    count_t sum = 0;
    for (const count_t v : dc) sum += v;
    prod *= sum;
  }
  return prod / 6;  // (1/3)·Σt = (1/6)·Σ diag(C³)
}

}  // namespace kronotri::kron
