// Deterministic result cache: canonical plan identity → cached RunReport.
//
// Generation is seed-deterministic and every analysis in the repo is
// determinism-tested across thread counts, so two plans that describe the
// same work produce bit-identical reports — caching is SOUND, not
// best-effort. The key is therefore the plan's semantic identity, not its
// spelling: cache_key() canonicalizes the plan JSON (sorted keys via
// util::json::dump_canonical, defaults normalized by RunPlan::to_json
// emitting every option) and DROPS the fields that provably cannot change
// the result — description (free text), threads and batch_size (all
// kernels are bit-identical across both, the PR-2/3/4 invariant the tests
// pin). seed, mem_budget and the full spec/analysis list stay in.
//
// Plans that write output files (options.output) are side-effecting and are
// never cached — the server rejects them outright (cacheable() is the
// admission predicate).
//
// The store is an LRU bounded by bytes (key + value + fixed per-entry
// overhead), looked up by the full canonical key string — the 64-bit
// FNV digest is the cheap wire/report identifier, the string comparison is
// what makes collisions harmless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/plan.hpp"
#include "util/json.hpp"

namespace kronotri::service {

/// Canonical identity string of a plan (see file comment for what is
/// dropped). hash64() of this string is the plan_hash on the wire.
[[nodiscard]] std::string cache_key(const api::RunPlan& plan);

/// False when the plan has side effects a cached replay would skip
/// (currently: a non-empty options.output).
[[nodiscard]] bool cacheable(const api::RunPlan& plan);

class ResultCache {
 public:
  /// capacity_bytes == 0 disables the cache (every get misses, put drops).
  explicit ResultCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// The cached serialized report for `key`, refreshing its recency.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) key → serialized report, evicting
  /// least-recently-used entries until under capacity. A single value
  /// larger than the whole capacity is not stored.
  void put(const std::string& key, std::string report_json);

  struct Stats {
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t capacity_bytes = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] util::json::Value stats_json() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  /// Bookkeeping charge per entry: the two strings plus map/list overhead.
  static constexpr std::size_t kEntryOverhead = 128;
  [[nodiscard]] static std::size_t charge(const Entry& e) {
    return e.key.size() + e.value.size() + kEntryOverhead;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace kronotri::service
