#include "service/protocol.hpp"

#include "net/socket.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace kronotri::service {

bool LineReader::next_line(std::string& line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("service: read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, std::string_view data) noexcept {
  // One full-buffer send loop for the whole codebase (MSG_NOSIGNAL,
  // EINTR retried, EAGAIN awaited) — shared with the agent transport.
  return net::write_all(fd, data);
}

std::string frame(const util::json::Value& payload) {
  std::string out = payload.dump_string(0);
  out.push_back('\n');
  return out;
}

std::string error_frame(std::string_view code, std::string_view message) {
  using util::json::Value;
  Value err = Value::object();
  err.set("code", code);
  err.set("message", message);
  Value v = Value::object();
  v.set("ok", false);
  v.set("error", std::move(err));
  return frame(v);
}

std::string report_frame(std::string_view cache_disposition,
                         std::uint64_t plan_hash, double queue_wait_s,
                         double execute_s, std::string_view report_json) {
  using util::json::Value;
  // Everything except the report goes through the Value writer; the report
  // is spliced verbatim so cached bytes replay exactly.
  Value head = Value::object();
  head.set("ok", true);
  head.set("cache", cache_disposition);
  // Hex string, not a JSON number: 64-bit hashes with the high bit set
  // survive every client-side JSON parser this way.
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(plan_hash));
  head.set("plan_hash", hex);
  head.set("queue_wait_s", queue_wait_s);
  head.set("execute_s", execute_s);
  std::string out = head.dump_string(0);
  // "{…}" → "{…,\"report\":<splice>}\n"
  out.pop_back();
  out += ",\"report\":";
  out += report_json;
  out += "}\n";
  return out;
}

}  // namespace kronotri::service
