// kronotri as a long-running analysis server.
//
// The production story the ROADMAP names: a daemon that accepts RunPlan
// JSON over a unix-domain socket (newline-delimited JSON protocol, see
// protocol.hpp), executes plans on a bounded FIFO queue over a worker
// pool, and streams back RunReports. The load-bearing properties:
//
//   * Admission control happens on the connection thread, BEFORE anything
//     is queued: a full queue or an over-budget cost estimate
//     (admission.hpp) returns a structured rejection immediately — one
//     huge Kronecker product cannot wedge the server, and backpressure is
//     a reply, not a hang.
//   * The deterministic result cache (cache.hpp) is probed before
//     admission: a hit is served even when the queue is full, and replays
//     the first execution's report byte-for-byte.
//   * Per-job exception isolation: a throwing plan produces an
//     execution_failed response; workers never die. Client disconnects are
//     detected at write time and only drop that connection.
//   * stop() is a graceful drain: admissions stop (rejected "draining"),
//     queued and in-flight jobs complete and their responses are
//     delivered, then connections and threads are joined. Safe to call
//     from a signal-watching loop (the CLI's SIGINT/SIGTERM handling) or
//     from tests.
//   * Durable admission (--state DIR): accepted submits are journaled
//     before the client hears "accepted", completions are journaled after
//     the cache put, and start() replays the difference — so even kill -9
//     loses no admitted work (the replayed result lands in the cache; the
//     client re-submits and hits). A stale socket file from a dead
//     predecessor is probed with a ping and reclaimed; a LIVE predecessor
//     makes start() refuse instead of stealing its clients.
//
// Threading: one acceptor thread, one thread per live connection (requests
// on a connection are served in order; concurrency comes from concurrent
// connections), `workers` execution threads popping the shared queue.
// Tests drive an in-process Server through service::Client on the same
// socket path.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/analysis.hpp"
#include "api/plan.hpp"
#include "api/registry.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"

namespace kronotri::service {

struct ServerOptions {
  std::string socket_path;
  unsigned workers = 2;
  std::size_t queue_depth = 16;       ///< waiting jobs (executing excluded)
  std::size_t cache_bytes = 64 << 20;
  std::size_t mem_budget_bytes = 1ull << 30;  ///< per-job admission budget
  /// Durable admission: when non-empty, every accepted submit is journaled
  /// to <state_dir>/state.journal (CRC64 frames, fsync per record) and its
  /// completion recorded; on restart, admitted-but-unfinished submits are
  /// replayed into the queue — a kill -9 loses no admitted work.
  std::string state_dir;
};

class Server {
 public:
  /// The registries are captured by reference and must outlive the server;
  /// the builtins are the production wiring, tests inject their own.
  explicit Server(
      ServerOptions opt,
      const api::GeneratorRegistry& generators =
          api::GeneratorRegistry::builtin(),
      const api::AnalysisRegistry& analyses = api::AnalysisRegistry::builtin());
  ~Server();  ///< stop(drain=true)

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (unlinking a stale file first), spawns the acceptor
  /// and worker threads. Throws std::runtime_error on socket errors.
  void start();

  /// Graceful drain, idempotent: stop accepting, finish queued/in-flight
  /// jobs, deliver their responses, join every thread, unlink the socket.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  /// Seconds since the last admission, completion or accepted connection —
  /// what an idle-timeout loop polls.
  [[nodiscard]] double seconds_idle() const;

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const ServerOptions& options() const noexcept { return opt_; }

  /// The `stats` response payload (also handy for tests/benches).
  [[nodiscard]] util::json::Value stats_json() const;

 private:
  struct Connection;

  struct Job {
    api::RunPlan plan;
    std::string key;           ///< cache_key() — the result-cache identity
    double enqueued_at_s = 0;  ///< metrics_.uptime timestamp
    /// Fulfilled by the worker with the COMPLETE response frame (the worker
    /// knows the wait/execute split); an execution error arrives as the
    /// thrown exception, which the connection thread wraps in an
    /// execution_failed frame.
    std::promise<std::string> result;
  };

  void accept_loop();
  void worker_loop();
  void connection_loop(Connection* conn);
  /// One request line → one response frame (never throws).
  [[nodiscard]] std::string handle_request(const std::string& line);
  [[nodiscard]] std::string handle_submit(const util::json::Value& request);
  void touch_activity();

  /// Appends a state-journal record (no-op without state_dir). The journal
  /// is shared across connection and worker threads — state_mutex_
  /// serializes the appends.
  void journal_state(const util::json::Value& record);
  /// Opens the state journal (dropping a torn tail) and re-enqueues every
  /// journaled submit without a matching done record. Called from start().
  void replay_state();

  ServerOptions opt_;
  const api::GeneratorRegistry& generators_;
  const api::AnalysisRegistry& analyses_;

  Metrics metrics_;
  ResultCache cache_;
  std::unique_ptr<BoundedQueue<std::shared_ptr<Job>>> queue_;

  util::journal::Journal state_wal_;
  std::mutex state_mutex_;
  std::atomic<std::uint64_t> jobs_replayed_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<double> last_activity_s_{0};

  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  struct Connection {
    int fd = -1;
    std::thread thread;
    /// True from reading a request to finishing its response write. stop()
    /// must not shut the fd down in that window: the worker join only
    /// guarantees the promise is FULFILLED, not that the connection thread
    /// has woken and written the frame yet.
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace kronotri::service
