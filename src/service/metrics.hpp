// Lock-cheap service metrics: counters, gauges and latency quantiles.
//
// Every admission decision, job completion and cache probe bumps a relaxed
// atomic; the only lock on the hot path is a tiny per-sample mutex in
// LatencyRecorder (two stores under the lock). Quantiles are computed at
// `stats` time from a bounded reservoir, never on the submit path, so
// observability costs the server nanoseconds per job — the requirement for
// a daemon whose whole point is throughput.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/stopwatch.hpp"
#include "util/json.hpp"

namespace kronotri::service {

/// Bounded latency reservoir: keeps the most recent kCapacity samples in a
/// ring (a long-running daemon must not grow without bound) plus lifetime
/// count/max. summarize() sorts a snapshot — O(kCapacity log kCapacity) but
/// only when someone asks for stats.
class LatencyRecorder {
 public:
  static constexpr std::size_t kCapacity = 4096;

  void record(double seconds);

  struct Summary {
    std::uint64_t count = 0;  ///< lifetime samples (not just retained ones)
    double p50_s = 0;
    double p99_s = 0;
    double max_s = 0;  ///< lifetime max
  };
  [[nodiscard]] Summary summarize() const;

  /// {count, p50_s, p99_s, max_s}.
  [[nodiscard]] util::json::Value to_json() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;  ///< grows to kCapacity, then wraps
  std::size_t next_ = 0;
  std::uint64_t count_ = 0;
  double max_ = 0;
};

/// One shared metrics struct for the whole server. Counters are relaxed
/// atomics: they are statistics, not synchronization, and per-counter
/// exactness under concurrent bumps is all that matters.
struct Metrics {
  obs::Stopwatch uptime;  ///< started when the server constructs

  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> client_disconnects{0};  ///< mid-stream EOF/EPIPE

  std::atomic<std::uint64_t> jobs_accepted{0};
  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_failed{0};  ///< plan threw during execute
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_over_budget{0};
  std::atomic<std::uint64_t> rejected_bad_request{0};
  std::atomic<std::uint64_t> rejected_draining{0};

  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};

  /// Jobs currently inside api::run() on a worker.
  std::atomic<std::uint64_t> jobs_active{0};

  LatencyRecorder wait_latency;     ///< enqueue → worker pop
  LatencyRecorder execute_latency;  ///< worker pop → report ready
  LatencyRecorder total_latency;    ///< admission → response built

  /// Everything above as the `stats` response payload; `queue_depth` is the
  /// caller's instantaneous gauge (the queue owns it, not the metrics).
  [[nodiscard]] util::json::Value to_json(std::size_t queue_depth) const;
};

}  // namespace kronotri::service
