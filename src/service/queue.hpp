// Bounded FIFO job queue — the server's backpressure primitive.
//
// Admission control needs "the queue is full" to be an immediate, cheap,
// structured answer, never a block: a client holding a connection open
// must not wedge the accept path because 64 other clients got there first.
// So push is try-only (false = full or closed) and only the worker-side
// pop blocks. close() flips the queue into drain mode: pushes fail, pops
// keep succeeding until the backlog is empty, then return nullopt — which
// is exactly the graceful-shutdown contract (finish in-flight work,
// reject new work with a reason).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace kronotri::service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t depth) : depth_(depth) {}

  /// False when the queue holds `depth` items or is closed.
  [[nodiscard]] bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= depth_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained;
  /// nullopt is the worker's "no more work ever" signal.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admissions; queued items remain poppable (drain semantics).
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t depth_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kronotri::service
