#include "service/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hpp"

namespace kronotri::service {

Client::~Client() { close(); }

void Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("service::Client: bad socket path \"" +
                             socket_path + "\"");
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("service::Client: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close();
    throw std::runtime_error("service::Client: connect " + socket_path +
                             ": " + why);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send(const util::json::Value& request) {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  if (!write_all(fd_, frame(request))) {
    throw std::runtime_error("service::Client: connection lost while sending");
  }
}

util::json::Value Client::read_response() {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return util::json::Value::parse(line);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("service::Client: read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error(
          "service::Client: server closed the connection before responding");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::json::Value Client::request(const util::json::Value& req) {
  send(req);
  return read_response();
}

util::json::Value Client::submit(const api::RunPlan& plan) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan.to_json());
  return request(req);
}

util::json::Value Client::submit_text(std::string_view plan_text) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan_text);
  return request(req);
}

util::json::Value Client::stats() {
  util::json::Value req = util::json::Value::object();
  req.set("type", "stats");
  return request(req);
}

}  // namespace kronotri::service
