#include "service/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hpp"

namespace kronotri::service {

Client::~Client() { close(); }

std::string Client::try_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return std::string("socket: ") + std::strerror(errno);
  }
#ifdef SO_NOSIGPIPE
  // BSD/macOS have no MSG_NOSIGNAL; suppress SIGPIPE at the socket level
  // so a server hanging up mid-send surfaces as EPIPE, not a signal.
  int on = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof(on));
#endif
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (opt_.connect_timeout_s > 0 && flags >= 0) {
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINTR) rc = 0;  // resolved by the poll below
  if (rc < 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    // AF_UNIX connect can block on a full server backlog; bound the wait.
    pollfd pfd{fd_, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(opt_.connect_timeout_s * 1000);
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      close();
      return "connect timed out after " +
             std::to_string(opt_.connect_timeout_s) + " s";
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready < 0 ||
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      const std::string why = std::strerror(err != 0 ? err : errno);
      close();
      return "connect: " + why;
    }
    rc = 0;
  }
  if (rc < 0) {
    const std::string why = std::strerror(errno);
    close();
    return "connect: " + why;
  }
  if (opt_.connect_timeout_s > 0 && flags >= 0) {
    ::fcntl(fd_, F_SETFL, flags);  // back to blocking for send/read
  }
  return {};
}

void Client::connect(const std::string& socket_path) {
  close();
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("service::Client: bad socket path \"" +
                             socket_path + "\"");
  }
  const unsigned attempts = opt_.connect_attempts > 0
                                ? opt_.connect_attempts
                                : 1;
  std::string last_error;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) util::Backoff::sleep_s(opt_.backoff.delay_s(attempt - 1));
    last_error = try_connect(socket_path);
    if (last_error.empty()) return;
  }
  throw std::runtime_error("service::Client: " + socket_path + ": " +
                           last_error + " (" + std::to_string(attempts) +
                           " attempt" + (attempts > 1 ? "s" : "") + ")");
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send(const util::json::Value& request) {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  if (!write_all(fd_, frame(request))) {
    throw std::runtime_error("service::Client: connection lost while sending");
  }
}

util::json::Value Client::read_response() {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  // One overall deadline per response frame, not per read(): a server
  // trickling bytes forever must still hit it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt_.request_timeout_s);
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return util::json::Value::parse(line);
    }
    if (opt_.request_timeout_s > 0) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1,
          static_cast<int>(std::max<long long>(0, remaining.count())));
      if (ready == 0) {
        throw std::runtime_error(
            "service::Client: request timed out after " +
            std::to_string(opt_.request_timeout_s) +
            " s waiting for a response");
      }
      if (ready < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("service::Client: poll: ") +
                                 std::strerror(errno));
      }
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("service::Client: read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error(
          "service::Client: server closed the connection before responding");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::json::Value Client::request(const util::json::Value& req) {
  send(req);
  return read_response();
}

util::json::Value Client::submit(const api::RunPlan& plan) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan.to_json());
  return request(req);
}

util::json::Value Client::submit_text(std::string_view plan_text) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan_text);
  return request(req);
}

util::json::Value Client::stats() {
  util::json::Value req = util::json::Value::object();
  req.set("type", "stats");
  return request(req);
}

}  // namespace kronotri::service
