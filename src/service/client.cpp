#include "service/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "net/socket.hpp"
#include "service/protocol.hpp"

namespace kronotri::service {

Client::~Client() { close(); }

std::string Client::try_connect(const std::string& socket_path) {
  // The bounded-time dial (non-blocking connect + poll + SO_ERROR) lives
  // in net::dial — one implementation shared with the agent transport.
  net::Endpoint ep;
  ep.kind = net::Endpoint::Kind::kUnix;
  ep.path = socket_path;
  ep.text = socket_path;
  net::DialResult r = net::dial(ep, opt_.connect_timeout_s);
  if (!r.ok()) return std::move(r.error);
  fd_ = r.fd;
  return {};
}

void Client::connect(const std::string& socket_path) {
  close();
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("service::Client: bad socket path \"" +
                             socket_path + "\"");
  }
  const unsigned attempts = opt_.connect_attempts > 0
                                ? opt_.connect_attempts
                                : 1;
  std::string last_error;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) util::Backoff::sleep_s(opt_.backoff.delay_s(attempt - 1));
    last_error = try_connect(socket_path);
    if (last_error.empty()) return;
  }
  throw std::runtime_error("service::Client: " + socket_path + ": " +
                           last_error + " (" + std::to_string(attempts) +
                           " attempt" + (attempts > 1 ? "s" : "") + ")");
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send(const util::json::Value& request) {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  if (!write_all(fd_, frame(request))) {
    throw std::runtime_error("service::Client: connection lost while sending");
  }
}

util::json::Value Client::read_response() {
  if (fd_ < 0) throw std::runtime_error("service::Client: not connected");
  // One overall deadline per response frame, not per read(): a server
  // trickling bytes forever must still hit it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt_.request_timeout_s);
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return util::json::Value::parse(line);
    }
    if (opt_.request_timeout_s > 0) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1,
          static_cast<int>(std::max<long long>(0, remaining.count())));
      if (ready == 0) {
        throw std::runtime_error(
            "service::Client: request timed out after " +
            std::to_string(opt_.request_timeout_s) +
            " s waiting for a response");
      }
      if (ready < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("service::Client: poll: ") +
                                 std::strerror(errno));
      }
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("service::Client: read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error(
          "service::Client: server closed the connection before responding");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::json::Value Client::request(const util::json::Value& req) {
  send(req);
  return read_response();
}

util::json::Value Client::submit(const api::RunPlan& plan) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan.to_json());
  return request(req);
}

util::json::Value Client::submit_text(std::string_view plan_text) {
  util::json::Value req = util::json::Value::object();
  req.set("type", "submit");
  req.set("plan", plan_text);
  return request(req);
}

util::json::Value Client::stats() {
  util::json::Value req = util::json::Value::object();
  req.set("type", "stats");
  return request(req);
}

}  // namespace kronotri::service
