#include "service/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "service/admission.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace kronotri::service {

namespace {

namespace journal = util::journal;

[[noreturn]] void socket_error(const std::string& what) {
  throw std::runtime_error("service: " + what + ": " + std::strerror(errno));
}

constexpr const char* kStateFile = "state.journal";

/// True when something on the other end of `path` answers a ping — the
/// probe that tells a live predecessor from a stale socket file.
bool socket_alive(const std::string& path) {
  try {
    ClientOptions copt;
    copt.connect_timeout_s = 0.5;
    copt.request_timeout_s = 1.0;
    Client client(copt);
    client.connect(path);
    util::json::Value ping = util::json::Value::object();
    ping.set("type", "ping");
    return client.request(ping).get_bool("pong", false);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Server::Server(ServerOptions opt, const api::GeneratorRegistry& generators,
               const api::AnalysisRegistry& analyses)
    : opt_(std::move(opt)),
      generators_(generators),
      analyses_(analyses),
      cache_(opt_.cache_bytes),
      queue_(std::make_unique<BoundedQueue<std::shared_ptr<Job>>>(
          opt_.queue_depth)) {
  if (opt_.workers == 0) opt_.workers = 1;
}

Server::~Server() { stop(); }

void Server::touch_activity() {
  last_activity_s_.store(metrics_.uptime.wall_s(), std::memory_order_relaxed);
}

double Server::seconds_idle() const {
  if (metrics_.jobs_active.load() > 0 || queue_->size() > 0) return 0;
  return metrics_.uptime.wall_s() -
         last_activity_s_.load(std::memory_order_relaxed);
}

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("service: Server::start() called twice");
  }
  // A client hanging up mid-response must surface as a write_all failure
  // (counted in client_disconnects), never as a process-killing SIGPIPE.
  // write_all already passes MSG_NOSIGNAL where available; this covers
  // the fallback write() path and keeps the guarantee platform-wide.
  std::signal(SIGPIPE, SIG_IGN);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.empty() ||
      opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("service: socket path empty or longer than " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes: \"" + opt_.socket_path + "\"");
  }
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // Something already at the path is either a stale socket file a dead
  // predecessor left behind (reclaim it) or a LIVE server (refuse loudly —
  // unlinking it would steal its clients mid-flight). A ping probe tells
  // them apart; anything that is not a socket is never deleted.
  struct stat st {};
  if (::lstat(opt_.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      running_ = false;
      throw std::runtime_error("service: " + opt_.socket_path +
                               " exists and is not a socket; refusing to "
                               "delete it");
    }
    if (socket_alive(opt_.socket_path)) {
      running_ = false;
      throw std::runtime_error("service: a live server already answers on " +
                               opt_.socket_path +
                               "; refusing to take over its socket");
    }
    ::unlink(opt_.socket_path.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) socket_error("socket");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    socket_error("bind " + opt_.socket_path);
  }
  if (::listen(listen_fd_, 128) < 0) socket_error("listen");

  touch_activity();
  // Replay before the workers spawn: re-enqueued jobs sit in the queue and
  // are the first thing the pool drains.
  if (!opt_.state_dir.empty()) replay_state();
  workers_.reserve(opt_.workers);
  for (unsigned i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  util::log::info("service", "listening",
                  {{"socket", opt_.socket_path}, {"workers", opt_.workers}});
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  draining_ = true;

  // 1. Stop accepting: shutdown wakes a blocked accept(); close after join.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain: no new pushes succeed, workers pop the backlog dry and
  // fulfil every promise, so no connection thread can be stuck on a
  // future.
  queue_->close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 3. Connections: every promise is fulfilled, but a connection thread
  // may still be between waking on its future and writing the frame — a
  // `busy` connection must not be shut down yet or its delivered-but-
  // unwritten response would be lost. Idle ones (blocked in read()) are
  // woken by shutdown; busy ones finish their write, notice draining_, and
  // exit on their own. fds are closed only after the owning thread joins.
  while (true) {
    bool pending = false;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const auto& conn : connections_) {
        if (conn->done.load()) continue;
        pending = true;
        if (!conn->busy.load()) ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
    if (!pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Joining outside the lock: connection threads never touch the vector,
  // but keeping lock scope minimal is cheap insurance.
  for (const auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }

  ::unlink(opt_.socket_path.c_str());
  state_wal_.close();
  util::log::info("service", "drained and stopped",
                  {{"jobs_completed", metrics_.jobs_completed.load()}});
}

void Server::journal_state(const util::json::Value& record) {
  if (!state_wal_.is_open()) return;
  const std::lock_guard<std::mutex> lock(state_mutex_);
  state_wal_.append(record.dump_string(0));
}

void Server::replay_state() {
  journal::ensure_dir(opt_.state_dir);
  const std::string path = opt_.state_dir + "/" + std::string(kStateFile);
  const journal::Decoded dec = journal::Journal::read(path);
  if (dec.tail != journal::Decoded::Tail::kClean) {
    // A torn tail is the expected residue of a kill -9 mid-append: cut the
    // file back to its verified prefix so our own appends stay decodable.
    (void)::truncate(path.c_str(), static_cast<off_t>(dec.valid_bytes));
  }

  // Two-pass, order-independent diff: a done record may precede its submit
  // in the byte stream (worker and connection threads append
  // concurrently), so collect both sides before comparing.
  std::map<std::string, std::string> submits;  // cache key → plan JSON
  std::set<std::string> finished;
  for (const std::string& payload : dec.frames) {
    util::json::Value rec;
    try {
      rec = util::json::Value::parse(payload);
    } catch (const std::exception&) {
      continue;  // CRC-valid but foreign bytes: not ours to replay
    }
    const std::string type = rec.get_string("type", "");
    const std::string key = rec.get_string("key", "");
    if (key.empty()) continue;
    if (type == "submit") {
      submits[key] = rec.get_string("plan", "");
    } else if (type == "done") {
      finished.insert(key);
    }
  }

  state_wal_.open(path);

  for (const auto& [key, plan_text] : submits) {
    if (finished.count(key) > 0 || plan_text.empty()) continue;
    api::RunPlan plan;
    try {
      plan = api::RunPlan::parse(plan_text);
    } catch (const std::exception&) {
      continue;  // journaled by an incompatible version; skip, don't crash
    }
    auto job = std::make_shared<Job>();
    job->plan = std::move(plan);
    job->key = key;
    job->enqueued_at_s = metrics_.uptime.wall_s();
    // No connection is waiting on a replayed job — its promise is simply
    // never read; the result lands in the cache (and its done record in
    // the journal), which is what the re-submitting client will hit.
    if (!queue_->try_push(job)) break;  // full queue: the rest wait for the
                                       // next restart, records intact
    jobs_replayed_.fetch_add(1);
    metrics_.jobs_accepted.fetch_add(1);
  }
  if (const std::uint64_t n = jobs_replayed_.load(); n > 0) {
    util::log::info("service", "replayed journaled submits", {{"jobs", n}});
  }
  touch_activity();
}

void Server::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down — server stopping
    }
    metrics_.connections_opened.fetch_add(1);
    touch_activity();

    const std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap finished connections so a long-lived server does not accumulate
    // one zombie entry per past client.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        ::close((*it)->fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      connection_loop(raw);
      raw->done.store(true);
    });
    connections_.push_back(std::move(conn));
  }
}

void Server::connection_loop(Connection* conn) {
  const int fd = conn->fd;
  LineReader reader(fd);
  std::string line;
  try {
    while (reader.next_line(line)) {
      if (line.empty()) continue;
      conn->busy.store(true);
      const std::string response = handle_request(line);
      const bool delivered = write_all(fd, response);
      conn->busy.store(false);
      if (!delivered) {
        // Peer vanished between submit and response: the job (if any)
        // already completed and is cached — only this connection dies.
        metrics_.client_disconnects.fetch_add(1);
        break;
      }
      touch_activity();
      // In a drain, responses owed have now been written; exit instead of
      // blocking in read() so stop() can finish.
      if (draining_.load()) break;
    }
  } catch (const std::exception&) {
    // Read error (reset mid-stream): same as a disconnect.
    conn->busy.store(false);
    metrics_.client_disconnects.fetch_add(1);
  }
  ::shutdown(fd, SHUT_RDWR);  // close happens after join (fd reuse safety)
}

std::string Server::handle_request(const std::string& line) {
  using util::json::Value;
  Value request;
  try {
    request = Value::parse(line);
    if (!request.is_object()) {
      throw std::invalid_argument("request must be a JSON object");
    }
  } catch (const std::exception& e) {
    metrics_.rejected_bad_request.fetch_add(1);
    return error_frame("bad_request", e.what());
  }

  const std::string type = request.get_string("type", "");
  if (type == "submit") return handle_submit(request);
  if (type == "stats") {
    Value v = Value::object();
    v.set("ok", true);
    v.set("stats", stats_json());
    return frame(v);
  }
  if (type == "ping") {
    Value v = Value::object();
    v.set("ok", true);
    v.set("pong", true);
    return frame(v);
  }
  metrics_.rejected_bad_request.fetch_add(1);
  return error_frame("bad_request", "unknown request type \"" + type +
                                        "\" (expected submit|stats|ping)");
}

std::string Server::handle_submit(const util::json::Value& request) {
  const util::WallTimer total;
  // One span per request: admission → (queue wait + execute, inside the
  // worker's span) → respond, with the cache verdict as an arg/marker.
  obs::Span span("service:submit");
  obs::counter("service.requests").add();
  api::RunPlan plan;
  try {
    const util::json::Value* p = request.find("plan");
    if (p == nullptr) {
      throw std::invalid_argument("submit request is missing \"plan\"");
    }
    plan = p->is_string() ? api::RunPlan::parse(p->as_string())
                          : api::RunPlan::from_json(*p);
  } catch (const std::exception& e) {
    metrics_.rejected_bad_request.fetch_add(1);
    return error_frame("bad_request", e.what());
  }
  if (!cacheable(plan)) {
    // options.output would write files on the SERVER's filesystem and make
    // the result uncacheable; neither is something a remote client should
    // trigger.
    metrics_.rejected_bad_request.fetch_add(1);
    return error_frame("bad_request",
                       "plans with options.output are not accepted over the "
                       "service (server-side file writes); fetch the report "
                       "and materialize client-side");
  }

  const std::string key = cache_key(plan);
  const std::uint64_t hash = util::json::hash64(key);

  // Cache first: a hit costs no admission and no queue slot, and must be
  // served even when the server is saturated — that is the whole point.
  if (auto cached = cache_.get(key)) {
    metrics_.cache_hits.fetch_add(1);
    obs::counter("service.cache_hits").add();
    span.arg("cache", "hit");
    if (obs::TraceRecorder::instance().enabled()) {
      util::json::Value targs = util::json::Value::object();
      targs.set("key_hash", hash);
      obs::TraceRecorder::instance().instant("cache:hit", std::move(targs));
    }
    const double wall = total.seconds();
    metrics_.total_latency.record(wall);
    touch_activity();
    return report_frame("hit", hash, 0.0, wall, *cached);
  }
  metrics_.cache_misses.fetch_add(1);
  obs::counter("service.cache_misses").add();
  span.arg("cache", "miss");

  if (draining_.load()) {
    metrics_.rejected_draining.fetch_add(1);
    return error_frame("draining", "server is shutting down");
  }
  if (const std::string reason =
          over_budget_reason(plan, opt_.mem_budget_bytes);
      !reason.empty()) {
    metrics_.rejected_over_budget.fetch_add(1);
    return error_frame("over_budget", reason);
  }

  auto job = std::make_shared<Job>();
  job->plan = std::move(plan);
  job->key = key;
  job->enqueued_at_s = metrics_.uptime.wall_s();
  std::future<std::string> result = job->result.get_future();
  if (!queue_->try_push(job)) {
    if (draining_.load()) {
      metrics_.rejected_draining.fetch_add(1);
      return error_frame("draining", "server is shutting down");
    }
    metrics_.rejected_queue_full.fetch_add(1);
    return error_frame(
        "queue_full",
        "job queue is full (" + std::to_string(opt_.queue_depth) +
            " waiting jobs); retry with backoff");
  }
  metrics_.jobs_accepted.fetch_add(1);
  // Admission is durable from this point: the submit record is fsynced
  // before the connection blocks on the result, so a kill -9 anywhere
  // after here replays the job on restart.
  if (state_wal_.is_open()) {
    util::json::Value rec = util::json::Value::object();
    rec.set("type", "submit");
    rec.set("key", job->key);
    rec.set("plan", job->plan.to_json().dump_string(0));
    journal_state(rec);
  }
  touch_activity();

  try {
    std::string response = result.get();  // worker-built complete frame
    metrics_.total_latency.record(total.seconds());
    return response;
  } catch (const std::exception& e) {
    metrics_.total_latency.record(total.seconds());
    return error_frame("execution_failed", e.what());
  }
}

void Server::worker_loop() {
  while (auto popped = queue_->pop()) {
    const std::shared_ptr<Job>& job = *popped;
    const double wait_s = metrics_.uptime.wall_s() - job->enqueued_at_s;
    metrics_.wait_latency.record(wait_s);
    metrics_.jobs_active.fetch_add(1);
    obs::Span span("service:execute");
    span.arg("queue_wait_s", wait_s);
    const util::WallTimer exec;
    try {
      api::RunReport report = api::run(job->plan, generators_, analyses_);
      report.queue_wait_s = wait_s;
      const double execute_s = exec.seconds();
      metrics_.execute_latency.record(execute_s);
      // indent 0 keeps the document newline-free — the framing invariant.
      std::string report_json = report.to_json().dump_string(0);
      cache_.put(job->key, report_json);
      metrics_.jobs_completed.fetch_add(1);
      if (state_wal_.is_open()) {
        util::json::Value rec = util::json::Value::object();
        rec.set("type", "done");
        rec.set("key", job->key);
        journal_state(rec);
      }
      job->result.set_value(report_frame("miss",
                                         util::json::hash64(job->key), wait_s,
                                         execute_s, report_json));
      obs::counter("service.jobs_completed").add();
    } catch (...) {
      // Exception isolation: the plan failed, the worker survives. The
      // connection thread turns this into an execution_failed frame.
      metrics_.execute_latency.record(exec.seconds());
      metrics_.jobs_failed.fetch_add(1);
      obs::counter("service.jobs_failed").add();
      util::log::warn("service", "job failed during execute");
      job->result.set_exception(std::current_exception());
    }
    metrics_.jobs_active.fetch_sub(1);
    touch_activity();
  }
}

util::json::Value Server::stats_json() const {
  util::json::Value v = metrics_.to_json(queue_->size());
  v.set("cache_store", cache_.stats_json());
  v.set("jobs_replayed", jobs_replayed_.load());
  // The process-wide obs registry rides along: analysis-layer counts
  // (edges streamed, shards executed) the service metrics don't track.
  v.set("counters", obs::CounterRegistry::instance().snapshot());
  util::json::Value cfg = util::json::Value::object();
  cfg.set("socket", opt_.socket_path);
  cfg.set("workers", opt_.workers);
  cfg.set("queue_depth", static_cast<std::uint64_t>(opt_.queue_depth));
  cfg.set("cache_bytes", static_cast<std::uint64_t>(opt_.cache_bytes));
  cfg.set("mem_budget_bytes",
          static_cast<std::uint64_t>(opt_.mem_budget_bytes));
  cfg.set("state_dir", opt_.state_dir);
  v.set("config", std::move(cfg));
  return v;
}

}  // namespace kronotri::service
