#include "service/metrics.hpp"

#include <algorithm>

namespace kronotri::service {

void LatencyRecorder::record(double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(seconds);
  } else {
    ring_[next_] = seconds;
  }
  next_ = (next_ + 1) % kCapacity;
  ++count_;
  if (seconds > max_) max_ = seconds;
}

LatencyRecorder::Summary LatencyRecorder::summarize() const {
  std::vector<double> samples;
  Summary s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples = ring_;
    s.count = count_;
    s.max_s = max_;
  }
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank quantiles over the retained window.
  const auto rank = [&](double q) {
    const std::size_t i =
        static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
    return samples[i];
  };
  s.p50_s = rank(0.50);
  s.p99_s = rank(0.99);
  return s;
}

util::json::Value LatencyRecorder::to_json() const {
  const Summary s = summarize();
  util::json::Value v = util::json::Value::object();
  v.set("count", s.count);
  v.set("p50_s", s.p50_s);
  v.set("p99_s", s.p99_s);
  v.set("max_s", s.max_s);
  return v;
}

util::json::Value Metrics::to_json(std::size_t queue_depth) const {
  using util::json::Value;
  Value v = Value::object();
  v.set("uptime_s", uptime.wall_s());
  v.set("connections_opened", connections_opened.load());
  v.set("client_disconnects", client_disconnects.load());
  v.set("jobs_accepted", jobs_accepted.load());
  v.set("jobs_completed", jobs_completed.load());
  v.set("jobs_failed", jobs_failed.load());
  v.set("jobs_active", jobs_active.load());
  v.set("queue_depth", static_cast<std::uint64_t>(queue_depth));
  Value rejected = Value::object();
  rejected.set("queue_full", rejected_queue_full.load());
  rejected.set("over_budget", rejected_over_budget.load());
  rejected.set("bad_request", rejected_bad_request.load());
  rejected.set("draining", rejected_draining.load());
  v.set("rejected", std::move(rejected));
  const std::uint64_t hits = cache_hits.load();
  const std::uint64_t misses = cache_misses.load();
  Value cache = Value::object();
  cache.set("hits", hits);
  cache.set("misses", misses);
  cache.set("hit_rate",
            hits + misses == 0
                ? 0.0
                : static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
  v.set("cache", std::move(cache));
  Value latency = Value::object();
  latency.set("wait", wait_latency.to_json());
  latency.set("execute", execute_latency.to_json());
  latency.set("total", total_latency.to_json());
  v.set("latency", std::move(latency));
  return v;
}

}  // namespace kronotri::service
