#include "service/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sys/stat.h>

namespace kronotri::service {

namespace {

struct FamilyCost {
  double vertices = 0;
  double entries = 0;  ///< stored (directed) entries
};

/// Per-family size model. Deterministic families are exact; random models
/// use their expected edge count. The registry's default parameter values
/// are mirrored here so an omitted param estimates what would actually run.
FamilyCost family_cost(const api::GraphSpec& s) {
  const double n = static_cast<double>(s.get_uint("n", 1000));
  if (s.family == "clique") {
    const double k = static_cast<double>(s.get_uint("n", 5));
    return {k, k * (k - 1)};
  }
  if (s.family == "cycle" || s.family == "path") {
    const double k = static_cast<double>(s.get_uint("n", 5));
    return {k, 2 * k};
  }
  if (s.family == "star") {
    const double k = static_cast<double>(s.get_uint("n", 5));
    return {k, 2 * (k - 1)};
  }
  if (s.family == "bipartite") {
    const double a = static_cast<double>(s.get_uint("a", 3));
    const double b = static_cast<double>(s.get_uint("b", 3));
    return {a + b, 2 * a * b};
  }
  if (s.family == "hubcycle") return {7, 24};
  if (s.family == "er") {
    const double p = s.get_double("p", 0.01);
    return {n, n * (n - 1) * p};
  }
  if (s.family == "er-m") {
    return {n, 2.0 * static_cast<double>(s.get_uint("m", 2000))};
  }
  if (s.family == "ba" || s.family == "hk") {
    const double m = static_cast<double>(s.get_uint("m", 3));
    return {n, 2 * n * m};
  }
  if (s.family == "rmat") {
    const double scale = static_cast<double>(s.get_uint("scale", 10));
    const double ef = static_cast<double>(s.get_uint("ef", 16));
    const double nv = std::pow(2.0, scale);
    return {nv, 2 * nv * ef};
  }
  if (s.family == "onetri") return {n, 3 * n};
  if (s.family == "file") {
    // One text edge per ~12 bytes is a dense lower bound; symmetrize could
    // double it, so charge both directions.
    struct stat st{};
    const double size =
        ::stat(s.get("path", "").c_str(), &st) == 0
            ? static_cast<double>(st.st_size)
            : 0.0;
    const double edges = size / 12.0;
    return {edges, 2 * edges};  // vertices unknowable; bound by edge count
  }
  // Unknown family (typo or not-yet-registered): assume the worst
  // plausible shape its generic params describe so admission stays safe.
  const double m = static_cast<double>(s.get_uint("m", 16));
  return {n, 2 * n * std::max(1.0, m)};
}

FamilyCost spec_cost(const api::GraphSpec& s) {
  if (!s.is_kron()) {
    FamilyCost c = family_cost(s);
    if (s.get_bool("loops", false)) c.entries += c.vertices;
    return c;
  }
  FamilyCost c{1, 1};
  for (const api::GraphSpec& f : s.factors) {
    FamilyCost fc = family_cost(f);
    if (f.get_bool("loops", false)) fc.entries += fc.vertices;
    c.vertices *= std::max(1.0, fc.vertices);
    c.entries *= std::max(1.0, fc.entries);
  }
  if (s.get_bool("loops", false)) c.entries += c.vertices;
  return c;
}

/// Analyses that run factor-side or ride the stream pass on an unmodified
/// 2-factor product — the set that never forces materializing C. Mirrors
/// the needs_graph() answers of the builtin analyses in that regime.
bool streams_on_two_factor(const std::string& name) {
  return name == "census" || name == "degree" || name == "validate" ||
         name == "components" || name == "egonet";
}

constexpr double kBytesPerEntry = 24;   // CSR cols+offsets + census counters
constexpr double kBytesPerVertex = 16;  // degree/count arrays

}  // namespace

CostEstimate estimate_plan_cost(const api::RunPlan& plan) {
  const api::GraphSpec& spec = plan.spec;
  const FamilyCost total = spec_cost(spec);

  CostEstimate est;
  est.vertices = total.vertices;
  est.stored_entries = total.entries;

  const bool modified =
      spec.get_bool("prune", false) || spec.get_bool("loops", false);
  const bool two_factor =
      spec.is_kron() && spec.factors.size() == 2 && !modified;
  bool all_stream = two_factor;
  for (const api::AnalysisRequest& req : plan.analyses) {
    all_stream = all_stream && streams_on_two_factor(req.name);
  }
  est.materializes = !all_stream;

  if (est.materializes) {
    est.bytes = total.entries * kBytesPerEntry + total.vertices * kBytesPerVertex;
  } else {
    // Streaming regime: the factors are explicit, C never is; the census
    // accumulators are clamped to the plan's own budget.
    double factor_bytes = 0;
    for (const api::GraphSpec& f : spec.factors) {
      const FamilyCost fc = family_cost(f);
      factor_bytes += fc.entries * kBytesPerEntry + fc.vertices * kBytesPerVertex;
    }
    est.bytes =
        factor_bytes + static_cast<double>(plan.options.mem_budget_bytes);
  }

  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%.3g vertices, %.3g stored entries, %s -> %.3g bytes",
                est.vertices, est.stored_entries,
                est.materializes ? "materialized" : "streamed", est.bytes);
  est.detail = buf;
  return est;
}

std::string over_budget_reason(const api::RunPlan& plan,
                               std::size_t budget_bytes) {
  const CostEstimate est = estimate_plan_cost(plan);
  if (est.bytes <= static_cast<double>(budget_bytes)) return {};
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "estimated %.3g bytes exceeds the per-job budget of %zu "
                "bytes (%s)",
                est.bytes, budget_bytes, est.detail.c_str());
  return buf;
}

}  // namespace kronotri::service
