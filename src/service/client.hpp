// Blocking client for the kronotri analysis service.
//
// One unix-socket connection, one request/response at a time — the shape
// the `kronotri submit` subcommand, the tests and the latency bench all
// want (the bench gets concurrency by running many Clients on many
// threads). send()/read_response() are exposed separately so tests can
// exercise the rude paths: disconnect between send and read, half-written
// frames, a server draining mid-conversation.
#pragma once

#include <string>
#include <string_view>

#include "api/plan.hpp"
#include "util/json.hpp"

namespace kronotri::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a serving socket; throws std::runtime_error on failure.
  void connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Fire-and-forget half of a round trip (tests use it to hang up early).
  /// Throws std::runtime_error when the connection is gone.
  void send(const util::json::Value& request);
  /// Reads one response frame; throws std::runtime_error on EOF/parse
  /// failure (a draining server closing the socket surfaces here).
  [[nodiscard]] util::json::Value read_response();

  /// send + read_response.
  [[nodiscard]] util::json::Value request(const util::json::Value& req);

  /// {"type":"submit","plan":<plan.to_json()>} round trip.
  [[nodiscard]] util::json::Value submit(const api::RunPlan& plan);
  /// Submit with the plan passed as text (JSON document or the run-plan
  /// shorthand) — parsed server-side, so malformed text exercises the
  /// server's bad_request path, not the client's.
  [[nodiscard]] util::json::Value submit_text(std::string_view plan_text);
  [[nodiscard]] util::json::Value stats();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< LineReader state folded in (single-frame reads)
};

}  // namespace kronotri::service
