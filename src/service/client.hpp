// Blocking client for the kronotri analysis service.
//
// One unix-socket connection, one request/response at a time — the shape
// the `kronotri submit` subcommand, the tests and the latency bench all
// want (the bench gets concurrency by running many Clients on many
// threads). send()/read_response() are exposed separately so tests can
// exercise the rude paths: disconnect between send and read, half-written
// frames, a server draining mid-conversation.
#pragma once

#include <string>
#include <string_view>

#include "api/plan.hpp"
#include "util/backoff.hpp"
#include "util/json.hpp"

namespace kronotri::service {

/// Robustness knobs for a client conversation. Defaults preserve the
/// original single-shot semantics except that a hung socket can no longer
/// block connect() forever.
struct ClientOptions {
  /// Per-attempt connect deadline (seconds; 0 = OS default blocking).
  double connect_timeout_s = 5.0;
  /// Total connect attempts: failures short of this are retried after a
  /// backoff delay — covers a daemon still binding its socket.
  unsigned connect_attempts = 1;
  /// Deadline for one read_response() call (seconds; 0 = block forever).
  /// A server that accepted the request but never answers surfaces as a
  /// timeout error instead of a hang.
  double request_timeout_s = 0;
  util::Backoff backoff{0.05, 2.0, 1.0};
};

class Client {
 public:
  Client() = default;
  explicit Client(ClientOptions opt) : opt_(opt) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a serving socket; throws std::runtime_error on failure.
  void connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Fire-and-forget half of a round trip (tests use it to hang up early).
  /// Throws std::runtime_error when the connection is gone.
  void send(const util::json::Value& request);
  /// Reads one response frame; throws std::runtime_error on EOF/parse
  /// failure (a draining server closing the socket surfaces here).
  [[nodiscard]] util::json::Value read_response();

  /// send + read_response.
  [[nodiscard]] util::json::Value request(const util::json::Value& req);

  /// {"type":"submit","plan":<plan.to_json()>} round trip.
  [[nodiscard]] util::json::Value submit(const api::RunPlan& plan);
  /// Submit with the plan passed as text (JSON document or the run-plan
  /// shorthand) — parsed server-side, so malformed text exercises the
  /// server's bad_request path, not the client's.
  [[nodiscard]] util::json::Value submit_text(std::string_view plan_text);
  [[nodiscard]] util::json::Value stats();

 private:
  /// One connect attempt under opt_.connect_timeout_s; returns an error
  /// message on failure (empty on success).
  [[nodiscard]] std::string try_connect(const std::string& socket_path);

  ClientOptions opt_;
  int fd_ = -1;
  std::string buffer_;  ///< LineReader state folded in (single-frame reads)
};

}  // namespace kronotri::service
