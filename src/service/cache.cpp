#include "service/cache.hpp"

#include <utility>

namespace kronotri::service {

std::string cache_key(const api::RunPlan& plan) {
  using util::json::Value;
  // RunPlan::to_json emits every option with its default filled in, which
  // is the "normalized defaults" half of canonicalization; dump_canonical
  // is the sorted-keys half. Execution-shape fields are dropped here —
  // results are bit-identical across threads/batch_size by the repo's
  // determinism contract, so plans differing only there must share a slot.
  Value v = plan.to_json();
  Value key = Value::object();
  key.set("spec", *v.find("spec"));
  key.set("analyses", *v.find("analyses"));
  const Value* opts = v.find("options");
  Value kopts = Value::object();
  kopts.set("mem_budget", *opts->find("mem_budget"));
  kopts.set("seed", *opts->find("seed"));
  kopts.set("stream", *opts->find("stream"));
  key.set("options", std::move(kopts));
  return key.dump_canonical_string();
}

bool cacheable(const api::RunPlan& plan) {
  return plan.options.output.empty();
}

std::optional<std::string> ResultCache::get(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void ResultCache::put(const std::string& key, std::string report_json) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= charge(*it->second);
    it->second->value = std::move(report_json);
    bytes_ += charge(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(report_json)});
    bytes_ += charge(lru_.front());
    index_.emplace(key, lru_.begin());
  }
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= charge(victim);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Stats{lru_.size(), bytes_, capacity_, evictions_};
}

util::json::Value ResultCache::stats_json() const {
  const Stats s = stats();
  util::json::Value v = util::json::Value::object();
  v.set("entries", static_cast<std::uint64_t>(s.entries));
  v.set("bytes", static_cast<std::uint64_t>(s.bytes));
  v.set("capacity_bytes", static_cast<std::uint64_t>(s.capacity_bytes));
  v.set("evictions", s.evictions);
  return v;
}

}  // namespace kronotri::service
