// Wire protocol of the kronotri analysis service.
//
// Newline-delimited JSON over a unix-domain stream socket: every request
// and every response is exactly one JSON object on one line (the framing
// layer guarantees no interior '\n' — documents are dumped with indent 0).
// Requests:
//   {"type":"submit","plan":{…RunPlan JSON…}}   execute (or serve cached)
//   {"type":"stats"}                            metrics snapshot
//   {"type":"ping"}                             liveness probe
// Responses always carry "ok":
//   {"ok":true,"cache":"hit"|"miss"|"bypass","plan_hash":"…",
//    "queue_wait_s":…,"execute_s":…,"report":{…RunReport JSON…}}
//   {"ok":true,"stats":{…}}   /   {"ok":true,"pong":true}
//   {"ok":false,"error":{"code":"…","message":"…"}}
// Error codes: bad_request, queue_full, over_budget, draining,
// execution_failed. Responses on one connection come back in request
// order (the connection is handled serially server-side).
//
// The cached-report splice: a hit response embeds the report EXACTLY as the
// bytes serialized when the job first executed (string splice, no
// re-parse), so "deterministic result cache" is a byte-level guarantee the
// CI can assert with a diff, not a semantic one.
#pragma once

#include <string>
#include <string_view>

#include "util/json.hpp"

namespace kronotri::service {

/// Buffered reader of '\n'-terminated frames from a socket/pipe fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one line (without the terminator) into `line`. False on orderly
  /// EOF with no buffered partial line; throws std::runtime_error on a
  /// read error. A final unterminated line before EOF is returned as-is.
  bool next_line(std::string& line);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Writes all of `data` to fd (send with MSG_NOSIGNAL where available, so a
/// dead peer raises EPIPE instead of killing the process). Returns false on
/// any write failure — the caller treats that as a client disconnect.
[[nodiscard]] bool write_all(int fd, std::string_view data) noexcept;

/// One-line frame: `payload` dumped at indent 0 plus the '\n' terminator.
[[nodiscard]] std::string frame(const util::json::Value& payload);

/// {"ok":false,"error":{"code":code,"message":message}} as a ready frame.
[[nodiscard]] std::string error_frame(std::string_view code,
                                      std::string_view message);

/// Successful submit response with `report_json` (an already-serialized,
/// newline-free RunReport document) spliced in verbatim.
[[nodiscard]] std::string report_frame(std::string_view cache_disposition,
                                       std::uint64_t plan_hash,
                                       double queue_wait_s, double execute_s,
                                       std::string_view report_json);

}  // namespace kronotri::service
