// Admission control: can this plan run inside the per-job memory budget?
//
// The whole point of a bounded server is that one huge Kronecker product
// must be turned away with a reason, not wedge a worker. The estimate is
// analytic — arithmetic over the spec's parameters, the same philosophy as
// validate::StreamingCensus::upper_degree (O(k log d) from the factors, no
// enumeration) pushed one level earlier: here NOTHING is generated, so
// admission costs microseconds even for plans that would cost terabytes.
//
// Model (documented upper-bound flavor, exact for deterministic families,
// expected-value for random ones):
//   * per family: vertices n and stored entries nnz (directed entries, both
//     directions of an undirected edge);
//   * kron: n = Π n_i, nnz = Π nnz_i (the Kronecker identity), +n per
//     modifier that adds loops;
//   * a plan whose analyses all run factor-side/streaming on an unmodified
//     2-factor product never materializes C — its footprint is the factor
//     graphs plus the configured accumulator budget; anything else
//     materializes, charged at bytes-per-entry CSR + census-counter rates.
#pragma once

#include <cstddef>
#include <string>

#include "api/plan.hpp"

namespace kronotri::service {

struct CostEstimate {
  double vertices = 0;        ///< product vertices the plan touches
  double stored_entries = 0;  ///< nnz of the (would-be) materialized graph
  double bytes = 0;           ///< estimated peak job footprint
  bool materializes = false;  ///< the product/graph must be built explicitly
  std::string detail;         ///< human-readable model summary
};

/// Never generates anything; unknown families are estimated pessimistically
/// from their n/m/scale params so a typo'd spec still fails fast later in
/// the worker (plan validation), not here.
[[nodiscard]] CostEstimate estimate_plan_cost(const api::RunPlan& plan);

/// Empty string when the plan fits `budget_bytes`; otherwise the structured
/// rejection reason ("estimated N bytes exceeds per-job budget M: <model>").
[[nodiscard]] std::string over_budget_reason(const api::RunPlan& plan,
                                             std::size_t budget_bytes);

}  // namespace kronotri::service
