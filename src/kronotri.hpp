// Umbrella header: the full public API of kronotri.
//
//   #include "kronotri.hpp"
//
// brings in the graph substrate, triangle analytics, Kronecker machinery,
// truss decomposition, generators and analysis helpers. Individual headers
// can be included directly for faster builds.
#pragma once

#include "analysis/components.hpp"  // IWYU pragma: export
#include "analysis/degree.hpp"    // IWYU pragma: export
#include "analysis/egonet.hpp"    // IWYU pragma: export
#include "api/analysis.hpp"       // IWYU pragma: export
#include "api/pipeline.hpp"       // IWYU pragma: export
#include "api/plan.hpp"           // IWYU pragma: export
#include "api/registry.hpp"       // IWYU pragma: export
#include "api/sink.hpp"           // IWYU pragma: export
#include "api/spec.hpp"           // IWYU pragma: export
#include "core/coo.hpp"           // IWYU pragma: export
#include "core/csr.hpp"           // IWYU pragma: export
#include "core/graph.hpp"         // IWYU pragma: export
#include "core/io.hpp"            // IWYU pragma: export
#include "core/ops.hpp"           // IWYU pragma: export
#include "core/types.hpp"         // IWYU pragma: export
#include "gen/classic.hpp"        // IWYU pragma: export
#include "gen/one_triangle_pa.hpp"  // IWYU pragma: export
#include "gen/prune.hpp"          // IWYU pragma: export
#include "gen/random.hpp"         // IWYU pragma: export
#include "gen/rmat.hpp"           // IWYU pragma: export
#include "kron/census_oracle.hpp"  // IWYU pragma: export
#include "kron/directed.hpp"      // IWYU pragma: export
#include "kron/formulas.hpp"      // IWYU pragma: export
#include "kron/index.hpp"         // IWYU pragma: export
#include "kron/labeled.hpp"       // IWYU pragma: export
#include "kron/multi.hpp"         // IWYU pragma: export
#include "kron/oracle.hpp"        // IWYU pragma: export
#include "kron/product.hpp"       // IWYU pragma: export
#include "kron/stream.hpp"        // IWYU pragma: export
#include "kron/view.hpp"          // IWYU pragma: export
#include "triangle/bruteforce.hpp"  // IWYU pragma: export
#include "triangle/census.hpp"    // IWYU pragma: export
#include "triangle/clustering.hpp"  // IWYU pragma: export
#include "triangle/count.hpp"     // IWYU pragma: export
#include "triangle/directed.hpp"  // IWYU pragma: export
#include "triangle/labeled.hpp"   // IWYU pragma: export
#include "triangle/support.hpp"   // IWYU pragma: export
#include "truss/decompose.hpp"    // IWYU pragma: export
#include "truss/kron_truss.hpp"   // IWYU pragma: export
#include "util/cli.hpp"           // IWYU pragma: export
#include "util/json.hpp"          // IWYU pragma: export
#include "util/prng.hpp"          // IWYU pragma: export
#include "util/runmeta.hpp"       // IWYU pragma: export
#include "util/stats.hpp"         // IWYU pragma: export
#include "util/table.hpp"         // IWYU pragma: export
#include "util/timer.hpp"         // IWYU pragma: export
#include "validate/report.hpp"    // IWYU pragma: export
#include "validate/streaming_census.hpp"  // IWYU pragma: export
