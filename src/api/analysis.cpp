#include "api/analysis.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <mutex>
#include <stdexcept>

#include "analysis/components.hpp"
#include "analysis/degree.hpp"
#include "analysis/egonet.hpp"
#include "triangle/clustering.hpp"
#include "triangle/count.hpp"
#include "triangle/labeled.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "validate/report.hpp"

namespace kronotri::api {

// ---- Params ----------------------------------------------------------------

void throw_unknown_key(const std::string& context, const std::string& key,
                       std::initializer_list<const char*> known) {
  std::string msg = context + ": unknown key \"" + key + "\"; accepted:";
  if (known.size() == 0) {
    msg += " (none)";
  } else {
    bool first = true;
    for (const char* k : known) {
      msg += (first ? " " : ", ");
      msg += k;
      first = false;
    }
  }
  throw std::invalid_argument(msg);
}

std::string Params::get(const std::string& key,
                        const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::uint64_t Params::get_uint(const std::string& key,
                               std::uint64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  try {
    // Leading-digit check: stoull would silently wrap "-1" to 2^64-1.
    if (it->second.empty() || it->second[0] < '0' || it->second[0] > '9') {
      throw std::invalid_argument(it->second);
    }
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(analysis_ + ": param " + key + "=\"" +
                                it->second + "\" is not an unsigned integer");
  }
}

double Params::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument(it->second);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(analysis_ + ": param " + key + "=\"" +
                                it->second + "\" is not a number");
  }
}

bool Params::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return util::parse_bool_token(it->second, analysis_ + " param " + key);
}

std::size_t Params::get_bytes(const std::string& key,
                              std::size_t fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : util::parse_byte_count(it->second);
}

void Params::require_known(std::initializer_list<const char*> known) const {
  for (const auto& [key, value] : kv_) {
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return key == k;
        }) == known.end()) {
      throw_unknown_key(analysis_, key, known);
    }
  }
}

// ---- PlanContext -----------------------------------------------------------

PlanContext::PlanContext(GraphSpec spec, RunOptions options,
                         std::vector<Graph> factors)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      factors_(std::move(factors)) {
  // Outer modifiers apply to the materialized product, so the factor-side
  // structures (view/oracle/chain/stream) would describe a DIFFERENT graph;
  // a modified product is treated as a plain explicit graph.
  const bool modified = spec_.get_bool("prune", false) ||
                        spec_.get_bool("loops", false);
  product_ = spec_.is_kron() && factors_.size() >= 2 && !modified;
  two_factor_ = product_ && factors_.size() == 2;
}

const kron::KronGraphView& PlanContext::view() const {
  if (!two_factor_) {
    throw std::logic_error("PlanContext::view() requires a 2-factor product");
  }
  if (!view_) view_.emplace(factors_[0], factors_[1]);
  return *view_;
}

const kron::TriangleOracle& PlanContext::oracle() const {
  if (!two_factor_) {
    throw std::logic_error(
        "PlanContext::oracle() requires a 2-factor product");
  }
  if (!oracle_) oracle_.emplace(factors_[0], factors_[1]);
  return *oracle_;
}

const kron::KronChain& PlanContext::chain() const {
  if (!product_) {
    throw std::logic_error("PlanContext::chain() requires a product spec");
  }
  if (!chain_) chain_.emplace(factors_);
  return *chain_;
}

const Graph& PlanContext::graph() const {
  if (!product_) return factors_.front();
  if (!graph_) graph_ = chain().materialize();
  return *graph_;
}

bool PlanContext::graph_ready() const noexcept {
  return !product_ || graph_.has_value();
}

void PlanContext::set_graph(Graph g) { graph_ = std::move(g); }

// ---- registry --------------------------------------------------------------

void AnalysisRegistry::add(std::string name, std::string help,
                           Factory factory) {
  const std::unique_lock lock(mutex_);
  if (factories_.emplace(name, factory).second) {
    help_.emplace_back(name, std::move(help));
  } else {
    factories_[name] = std::move(factory);
    for (auto& [n, text] : help_) {
      if (n == name) text = help;
    }
  }
}

bool AnalysisRegistry::contains(const std::string& name) const {
  const std::shared_lock lock(mutex_);
  return factories_.count(name) > 0;
}

std::unique_ptr<Analysis> AnalysisRegistry::build(
    const std::string& name, const ParamMap& params) const {
  const std::shared_lock lock(mutex_);
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string msg =
        "AnalysisRegistry: unknown analysis \"" + name + "\"; registered:";
    bool first = true;
    for (const auto& [n, help] : help_) {
      msg += (first ? " " : ", ");
      msg += n;
      first = false;
    }
    throw std::invalid_argument(msg);
  }
  auto analysis = it->second(Params(name, params));
  analysis->set_name(name);
  return analysis;
}

std::vector<std::pair<std::string, std::string>> AnalysisRegistry::families()
    const {
  const std::shared_lock lock(mutex_);
  return help_;
}

// ---- built-in analyses -----------------------------------------------------

namespace {

/// `census` — the paper's headline table: vertices / edges / exact
/// triangles of the factors and of C, from factor-side formulas whenever a
/// product is available (TriangleOracle for two factors, KronChain beyond).
/// Params:
///   truth=1     include per-vertex ground-truth counts in the report data
///   truth_file=PATH  stream the (sampled) ground-truth rows straight to a
///               file instead of the report tree — constant memory, the
///               path for product-sized truth dumps
///   sample=K    sample every (n/K)-th vertex for the truth rows (0 = all)
///   vertices=L  ground truth at exactly these ;-separated vertex ids
///               (claim-sized work — never expands the full vector)
///   edges=1     additionally ride the stream pass with a TriangleCensusSink
///               (Σ Δ(e) + edge-count histogram measured during generation)
class CensusAnalysis final : public Analysis {
 public:
  explicit CensusAnalysis(const Params& p)
      : truth_(p.get_bool("truth", false)),
        truth_file_(p.get("truth_file", "")),
        sample_(p.get_uint("sample", 0)),
        edges_(p.get_bool("edges", false)) {
    p.require_known({"truth", "truth_file", "sample", "vertices", "edges"});
    if (p.has("vertices")) {
      const std::string list = p.get("vertices", "");
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t sep = list.find(';', pos);
        if (sep == std::string::npos) sep = list.size();
        const std::string token = list.substr(pos, sep - pos);
        try {
          std::size_t end = 0;
          vertices_.push_back(std::stoull(token, &end));
          if (end != token.size()) throw std::invalid_argument(token);
        } catch (const std::exception&) {
          throw std::invalid_argument(
              "census: param vertices entry \"" + token +
              "\" is not a vertex id");
        }
        pos = sep + 1;
      }
    }
  }

  bool wants_stream(const PlanContext& ctx) const override {
    return edges_ && ctx.two_factor();
  }

  std::unique_ptr<EdgeSink> make_sink(const PlanContext& ctx, std::uint64_t,
                                      std::uint64_t) override {
    if (!edges_ || !ctx.two_factor()) return nullptr;
    return std::make_unique<TriangleCensusSink>(ctx.oracle());
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const> sinks) override {
    AnalysisReport r = report();
    util::json::Value matrices = util::json::Value::array();
    util::Table t({"Matrix", "Vertices", "Edges", "Triangles"});
    const auto add = [&](const std::string& name, count_t v, count_t e,
                         count_t tri) {
      t.row({name, util::commas(v), util::commas(e), util::commas(tri)});
      util::json::Value m = util::json::Value::object();
      m.set("name", name);
      m.set("vertices", v);
      m.set("edges", e);
      m.set("triangles", tri);
      matrices.push_back(std::move(m));
    };

    count_t product_total = 0;
    if (ctx.two_factor()) {
      const auto& a = ctx.factors()[0];
      const auto& b = ctx.factors()[1];
      add("A", a.num_vertices(), a.num_undirected_edges(),
          triangle::count_total(a));
      add("B", b.num_vertices(), b.num_undirected_edges(),
          triangle::count_total(b));
      const auto& oracle = ctx.oracle();
      product_total = oracle.total_triangles();
      add("C = A (x) B", oracle.num_vertices(),
          oracle.num_undirected_edges(), product_total);
    } else if (ctx.is_product()) {
      for (std::size_t i = 0; i < ctx.factors().size(); ++i) {
        const auto& f = ctx.factors()[i];
        add("A" + std::to_string(i + 1), f.num_vertices(),
            f.num_undirected_edges(), triangle::count_total(f));
      }
      const auto& chain = ctx.chain();
      product_total = chain.total_triangles();
      add("C (chain)", chain.num_vertices(), chain.num_undirected_edges(),
          product_total);
    } else {
      const Graph& g = ctx.graph();
      product_total = triangle::count_total(g);
      add("G", g.num_vertices(), g.num_undirected_edges(), product_total);
    }

    if (truth_ || !truth_file_.empty() || !vertices_.empty()) {
      // Per-vertex exact counts: at the requested ids (claim-sized work),
      // or sampled on a uniform stride (the --truth protocol). truth_file
      // streams the rows to disk so product-sized dumps never build a
      // product-sized report tree.
      const count_t n = ctx.two_factor() ? ctx.oracle().num_vertices()
                        : ctx.is_product() ? ctx.chain().num_vertices()
                                           : ctx.graph().num_vertices();
      std::vector<count_t> per_vertex;
      if (!ctx.is_product()) {
        per_vertex = triangle::participation_vertices(ctx.graph());
      }
      const auto count_at = [&](vid p) {
        return ctx.two_factor()  ? ctx.oracle().vertex_triangles(p)
               : ctx.is_product() ? ctx.chain().vertex_triangles(p)
                                  : per_vertex[p];
      };
      const vid step =
          sample_ == 0 ? 1 : std::max<vid>(1, static_cast<vid>(n / sample_));
      if (!truth_file_.empty()) {
        std::ofstream file(truth_file_);
        if (!file) {
          throw std::runtime_error("cannot open truth file \"" + truth_file_ +
                                   "\"");
        }
        file << "# kronotri ground truth: product vertex -> triangles\n";
        count_t rows = 0;
        for (vid p = 0; p < n; p += step) {
          file << p << ' ' << count_at(p) << '\n';
          ++rows;
        }
        r.data.set("truth_file", truth_file_);
        r.data.set("ground_truth_rows", rows);
      }
      if (truth_ || !vertices_.empty()) {
        util::json::Value truth = util::json::Value::array();
        const auto add_row = [&](vid p) {
          util::json::Value row = util::json::Value::array();
          row.push_back(p);
          row.push_back(count_at(p));
          truth.push_back(std::move(row));
        };
        if (!vertices_.empty()) {
          for (const vid p : vertices_) {
            if (p < n) add_row(p);  // out-of-range ids are simply absent
          }
        } else {
          for (vid p = 0; p < n; p += step) add_row(p);
        }
        r.data.set("ground_truth", std::move(truth));
      }
    }

    if (!sinks.empty()) {
      // Stream-pass ride-along: merge the per-partition edge censuses.
      auto& merged = dynamic_cast<TriangleCensusSink&>(*sinks.front());
      for (std::size_t i = 1; i < sinks.size(); ++i) {
        merged.merge(dynamic_cast<const TriangleCensusSink&>(*sinks[i]));
      }
      r.data.set("streamed_edge_triangle_sum", merged.triangle_sum());
      r.data.set("streamed_edge_histogram",
                 util::json::histogram(merged.histogram()));
    }

    std::ostringstream os;
    t.print(os);
    r.text = os.str();
    r.data.set("matrices", std::move(matrices));
    r.data.set("total_triangles", product_total);
    return r;
  }

 private:
  bool truth_;
  std::string truth_file_;
  count_t sample_;
  std::vector<vid> vertices_;
  bool edges_;
};

/// `degree` — degree census of the job. The default is the factor-side
/// summary (summarize_kron_degrees never expands the n_A·n_B vector, so it
/// works at any product scale); measured=1 instead rides the stream pass
/// with a per-partition DegreeCensusSink — stored out-degrees counted
/// DURING generation, at O(|V_C|) counter memory per partition. Non-product
/// jobs summarize the explicit graph.
class DegreeAnalysis final : public Analysis {
 public:
  explicit DegreeAnalysis(const Params& p)
      : histogram_(p.get_bool("histogram", true)),
        measured_(p.get_bool("measured", false)) {
    p.require_known({"histogram", "measured"});
  }

  bool needs_graph(const PlanContext& ctx) const override {
    return !ctx.two_factor();
  }

  bool wants_stream(const PlanContext& ctx) const override {
    return measured_ && ctx.two_factor();
  }

  std::unique_ptr<EdgeSink> make_sink(const PlanContext& ctx, std::uint64_t,
                                      std::uint64_t) override {
    if (!measured_ || !ctx.two_factor()) return nullptr;
    return std::make_unique<DegreeCensusSink>(ctx.view().num_vertices());
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const> sinks) override {
    AnalysisReport r = report();
    analysis::DegreeSummary summary;
    if (!sinks.empty()) {
      auto& merged = dynamic_cast<DegreeCensusSink&>(*sinks.front());
      for (std::size_t i = 1; i < sinks.size(); ++i) {
        merged.merge(dynamic_cast<const DegreeCensusSink&>(*sinks[i]));
      }
      summary = analysis::summarize_degrees(merged.degrees());
    } else if (ctx.two_factor()) {
      // No pass ran; the factor-side summary never expands the vector.
      summary = analysis::summarize_kron_degrees(ctx.factors()[0],
                                                 ctx.factors()[1]);
    } else {
      summary = analysis::summarize_degrees(ctx.graph());
    }
    r.data.set("max_degree", summary.max_degree);
    r.data.set("mean_degree", summary.mean_degree);
    r.data.set("max_ratio", summary.max_ratio);
    r.data.set("loglog_slope", summary.loglog_slope);
    if (histogram_) r.data.set("histogram", util::json::histogram(summary.histogram));
    std::ostringstream os;
    os << "max degree " << summary.max_degree << ", mean "
       << summary.mean_degree << ", max/n " << summary.max_ratio << "\n";
    r.text = os.str();
    return r;
  }

 private:
  bool histogram_;
  bool measured_;
};

/// `truss` — truss decomposition. With oracle=1 on a 2-factor product the
/// Thm 3 factor-side oracle is used (B must satisfy Δ_B ≤ 1, both factors
/// loop-free); otherwise the explicit graph is peeled directly.
class TrussAnalysis final : public Analysis {
 public:
  explicit TrussAnalysis(const Params& p)
      : oracle_(p.get_bool("oracle", false)) {
    p.require_known({"oracle"});
  }

  bool needs_graph(const PlanContext& ctx) const override {
    return !(oracle_ && ctx.two_factor());
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    util::json::Value rows = util::json::Value::array();
    util::Table table({"kappa", "|T^kappa|"});
    const auto add = [&](count_t kappa, count_t edges) {
      table.row({std::to_string(kappa), util::commas(edges)});
      util::json::Value row = util::json::Value::object();
      row.set("kappa", kappa);
      row.set("edges", edges);
      rows.push_back(std::move(row));
    };
    std::ostringstream os;
    if (oracle_ && ctx.two_factor()) {
      const truss::KronTrussOracle oracle(ctx.factors()[0], ctx.factors()[1]);
      os << "Thm 3 oracle for C = A (x) B ("
         << ctx.view().num_undirected_edges() << " edges); max truss "
         << oracle.max_truss() << "\n";
      for (count_t k = 3; k <= oracle.max_truss(); ++k) {
        add(k, oracle.edges_in_truss(k));
      }
      r.data.set("mode", "oracle");
      r.data.set("max_truss", oracle.max_truss());
    } else {
      if (oracle_) {
        throw std::invalid_argument(
            "truss: oracle=1 requires a 2-factor kron spec without outer "
            "modifiers");
      }
      const Graph& g = ctx.graph();
      util::WallTimer timer;
      const auto t = truss::decompose(g);
      os << "truss decomposition of " << g.num_undirected_edges()
         << " edges in " << timer.seconds() << " s; max truss " << t.max_truss
         << "\n";
      for (count_t k = 3; k <= t.max_truss; ++k) {
        add(k, t.edges_in_truss(k));
      }
      r.data.set("mode", "decompose");
      r.data.set("max_truss", t.max_truss);
    }
    table.print(os);
    r.text = os.str();
    r.data.set("trusses", std::move(rows));
    return r;
  }

 private:
  bool oracle_;
};

/// `components` — connected components: the factor-side Weichsel count for
/// 2-factor products, the parallel union-find labeling otherwise.
class ComponentsAnalysis final : public Analysis {
 public:
  explicit ComponentsAnalysis(const Params& p) { p.require_known({}); }

  bool needs_graph(const PlanContext& ctx) const override {
    return !ctx.two_factor();
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    count_t count = 0;
    if (ctx.two_factor()) {
      count = analysis::kron_component_count(ctx.factors()[0],
                                             ctx.factors()[1]);
      r.data.set("mode", "weichsel");
    } else {
      count = analysis::connected_components(ctx.graph()).count;
      r.data.set("mode", "union_find");
    }
    r.data.set("components", count);
    r.text = "connected components: " + util::commas(count) + "\n";
    return r;
  }
};

/// `clustering` — global and average clustering coefficients of the
/// explicit graph (the §I motivating statistics).
class ClusteringAnalysis final : public Analysis {
 public:
  explicit ClusteringAnalysis(const Params& p) { p.require_known({}); }

  bool needs_graph(const PlanContext&) const override { return true; }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    const Graph& g = ctx.graph();
    const double global = triangle::global_clustering(g);
    const double average = triangle::average_clustering(g);
    r.data.set("global_clustering", global);
    r.data.set("average_clustering", average);
    std::ostringstream os;
    os << "global clustering " << global << ", average clustering " << average
       << "\n";
    r.text = os.str();
    return r;
  }
};

/// `egonet` — the Fig. 7 protocol at one product vertex: materialize the
/// egonet from the implicit view and check its center triangle count
/// against the closed form. Params: vertex=P (required).
class EgonetAnalysis final : public Analysis {
 public:
  explicit EgonetAnalysis(const Params& p) : vertex_(p.get_uint("vertex", 0)) {
    p.require_known({"vertex"});
    if (!p.has("vertex")) {
      throw std::invalid_argument("egonet: param vertex=P is required");
    }
  }

  bool needs_graph(const PlanContext& ctx) const override {
    return !ctx.two_factor();
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    std::ostringstream os;
    count_t measured = 0, formula = 0;
    if (ctx.two_factor()) {
      const auto& c = ctx.view();
      if (vertex_ >= c.num_vertices()) {
        throw std::out_of_range("vertex out of range (product has " +
                                std::to_string(c.num_vertices()) +
                                " vertices)");
      }
      const auto ego = analysis::extract_egonet(c, vertex_);
      measured = analysis::center_triangles(ego);
      formula = ctx.oracle().vertex_triangles(vertex_);
      os << "product vertex " << vertex_ << " = (A:"
         << c.index().a_of(vertex_) << ", B:" << c.index().b_of(vertex_)
         << ")\n"
         << "  degree:             " << c.nonloop_degree(vertex_) << "\n"
         << "  egonet size:        " << ego.vertices.size() << " vertices, "
         << ego.graph.num_undirected_edges() << " edges\n";
      r.data.set("degree", c.nonloop_degree(vertex_));
      r.data.set("egonet_vertices", ego.vertices.size());
      r.data.set("egonet_edges", ego.graph.num_undirected_edges());
    } else {
      const Graph& g = ctx.graph();
      if (vertex_ >= g.num_vertices()) {
        throw std::out_of_range("vertex out of range (graph has " +
                                std::to_string(g.num_vertices()) +
                                " vertices)");
      }
      const auto ego = analysis::extract_egonet(g, vertex_);
      measured = analysis::center_triangles(ego);
      formula = triangle::participation_vertices(g)[vertex_];
      os << "vertex " << vertex_ << ": egonet "
         << ego.vertices.size() << " vertices, "
         << ego.graph.num_undirected_edges() << " edges\n";
      r.data.set("egonet_vertices", ego.vertices.size());
      r.data.set("egonet_edges", ego.graph.num_undirected_edges());
    }
    os << "  triangles (egonet): " << measured << "\n"
       << "  triangles (formula):" << formula << "\n"
       << "  " << (measured == formula ? "MATCH" : "MISMATCH") << "\n";
    r.text = os.str();
    r.data.set("vertex", vertex_);
    r.data.set("measured", measured);
    r.data.set("formula", formula);
    r.pass = measured == formula;
    r.data.set("pass", r.pass);
    return r;
  }

 private:
  vid vertex_;
};

/// `labeled-census` — the §V labeled triangle census on the explicit graph
/// with the deterministic labeling f(v) = v mod L. Params: labels=L,
/// mem_budget=BYTES[K|M|G] (accumulator clamp).
class LabeledCensusAnalysis final : public Analysis {
 public:
  explicit LabeledCensusAnalysis(const Params& p)
      : labels_(static_cast<std::uint32_t>(p.get_uint("labels", 3))),
        budget_(p.get_bytes("mem_budget",
                            triangle::kLabeledCensusAccumulatorBudget)) {
    p.require_known({"labels", "mem_budget"});
    if (labels_ == 0) {
      throw std::invalid_argument("labeled-census: labels must be >= 1");
    }
  }

  bool needs_graph(const PlanContext&) const override { return true; }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    const Graph& g = ctx.graph();
    triangle::Labeling lab;
    lab.num_labels = labels_;
    lab.label.resize(g.num_vertices());
    for (vid v = 0; v < g.num_vertices(); ++v) lab.label[v] = v % labels_;
    const auto census = triangle::labeled_census(g, lab, budget_);
    // Per-type totals: Σ_v t^{(q1,{qa,qb})}[v] over all center labels —
    // 3·(triangles of that unordered label triple) summed over rotations.
    util::json::Value types = util::json::Value::array();
    count_t vertex_sum = 0;
    for (std::uint32_t qa = 0; qa < labels_; ++qa) {
      for (std::uint32_t qb = qa; qb < labels_; ++qb) {
        count_t total = 0;
        for (const count_t c : census.at_vertices[census.pair_index(qa, qb)]) {
          total += c;
        }
        vertex_sum += total;
        util::json::Value row = util::json::Value::object();
        row.set("other_labels",
                std::to_string(qa) + "," + std::to_string(qb));
        row.set("vertex_count_sum", total);
        types.push_back(std::move(row));
      }
    }
    r.data.set("num_labels", labels_);
    r.data.set("vertex_count_sum", vertex_sum);
    r.data.set("types", std::move(types));
    std::ostringstream os;
    os << "labeled census with L=" << labels_ << " (f(v)=v mod L): Σ t = "
       << util::commas(vertex_sum) << " over "
       << (labels_ * (labels_ + 1) / 2) << " vertex types\n";
    r.text = os.str();
    return r;
  }

 private:
  std::uint32_t labels_;
  std::size_t budget_;
};

/// `validate` — the sharded streaming census checked against the closed
/// forms (never materializing C). Params: mem_budget=BYTES[K|M|G]
/// (defaults to the run option), shards=N (force a shard count),
/// unit=I + units=U (process only unit I's slice of the shard plan — the
/// partial-fragment mode the multi-process runner forks over).
class ValidateAnalysis final : public Analysis {
 public:
  explicit ValidateAnalysis(const Params& p)
      : shards_(p.get_uint("shards", 0)),
        unit_(p.get_uint("unit", 0)),
        units_(p.get_uint("units", 0)) {
    p.require_known({"mem_budget", "shards", "unit", "units"});
    if (p.has("mem_budget")) budget_ = p.get_bytes("mem_budget", 0);
    if (units_ > 0 && unit_ >= units_) {
      throw std::invalid_argument(
          "validate: unit must be < units (got unit=" +
          std::to_string(unit_) + ", units=" + std::to_string(units_) + ")");
    }
  }

  AnalysisReport execute(PlanContext& ctx,
                         std::span<EdgeSink* const>) override {
    AnalysisReport r = report();
    validate::StreamingOptions opt;
    opt.mem_budget_bytes =
        budget_.value_or(ctx.options().mem_budget_bytes);
    opt.force_shards = shards_;
    opt.unit = unit_;
    opt.units = units_;
    validate::ValidationReport vr;
    if (ctx.two_factor()) {
      vr = validate::validate_product(ctx.factors()[0], ctx.factors()[1],
                                      opt);
    } else if (ctx.is_product()) {
      vr = validate::validate_chain(ctx.chain(), opt);
    } else {
      // Single graph: a 1-factor chain is the census self-check.
      const kron::KronChain chain({ctx.graph()});
      vr = validate::validate_chain(chain, opt);
    }
    vr.spec = ctx.spec().to_string();
    std::ostringstream os;
    vr.print(os);
    r.text = os.str();
    r.data = vr.to_json();
    r.pass = vr.pass();
    return r;
  }

 private:
  std::optional<std::size_t> budget_;
  std::uint64_t shards_;
  std::uint64_t unit_;
  std::uint64_t units_;
};

}  // namespace

AnalysisRegistry& AnalysisRegistry::builtin() {
  static AnalysisRegistry* reg = [] {
    auto* r = new AnalysisRegistry();
    r->add("census",
           "V/E/triangle table of factors and product: truth=0/1, "
           "truth_file=PATH, sample=K, "
           "vertices=p1;p2;…, edges=0/1 (stream-pass edge census)",
           [](const Params& p) { return std::make_unique<CensusAnalysis>(p); });
    r->add("degree",
           "degree census (factor-side by default; measured=1 rides the "
           "stream pass): histogram=0/1, measured=0/1",
           [](const Params& p) { return std::make_unique<DegreeAnalysis>(p); });
    r->add("truss",
           "truss decomposition: oracle=0/1 (Thm 3 factor-side oracle, "
           "needs 2-factor product with Δ_B ≤ 1)",
           [](const Params& p) { return std::make_unique<TrussAnalysis>(p); });
    r->add("components",
           "connected components (Weichsel factor-side count on 2-factor "
           "products)",
           [](const Params& p) {
             return std::make_unique<ComponentsAnalysis>(p);
           });
    r->add("clustering", "global + average clustering coefficients",
           [](const Params& p) {
             return std::make_unique<ClusteringAnalysis>(p);
           });
    r->add("egonet",
           "Fig. 7 egonet check at one vertex: vertex=P (required)",
           [](const Params& p) { return std::make_unique<EgonetAnalysis>(p); });
    r->add("labeled-census",
           "§V labeled census with f(v)=v mod L: labels=L, "
           "mem_budget=BYTES[K|M|G]",
           [](const Params& p) {
             return std::make_unique<LabeledCensusAnalysis>(p);
           });
    r->add("validate",
           "sharded streaming census vs closed forms: "
           "mem_budget=BYTES[K|M|G], shards=N, unit=I units=U "
           "(shard-subset fragment)",
           [](const Params& p) {
             return std::make_unique<ValidateAnalysis>(p);
           });
    return r;
  }();
  return *reg;
}

}  // namespace kronotri::api
