// EdgeSink — where generated edges go.
//
// The streaming half of the pipeline facade: generation produces batches of
// EdgeRecords (kron::EdgeStream::next_batch) and pushes them into a sink, so
// writers and analyses consume C = A ⊗ B directly from the factor
// representation without ever materializing the product. Sinks are
// deliberately dumb — consume() takes a batch, finish() flushes — so one
// sink instance per partition composes with stream_parallel().
//
// The public consume()/finish() pair is non-virtual; implementations
// override do_consume()/do_finish(). The base class owns the consumed_
// bookkeeping and makes finish() idempotent: with TeeSink composition the
// same child is easily finished twice (once by the tee, once by a caller
// that also holds it), so the first finish() runs do_finish() and later
// calls are no-ops. Debug builds assert that no batch arrives after
// finish().
#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "kron/oracle.hpp"
#include "kron/stream.hpp"
#include "kron/view.hpp"

namespace kronotri::api {

class EdgeSink {
 public:
  virtual ~EdgeSink() = default;

  /// Consumes one batch of edges. Called repeatedly; batches are never
  /// interleaved on a single sink (each partition owns its sink).
  void consume(std::span<const kron::EdgeRecord> batch) {
    assert(!finished_ && "EdgeSink::consume() after finish()");
    consumed_ += batch.size();
    do_consume(batch);
  }

  /// Flushes. Idempotent: the first call runs do_finish(), every later
  /// call returns immediately.
  void finish() {
    if (finished_) return;
    finished_ = true;
    do_finish();
  }

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Total edges consumed so far.
  [[nodiscard]] esz edges_consumed() const noexcept { return consumed_; }

 protected:
  virtual void do_consume(std::span<const kron::EdgeRecord> batch) = 0;
  virtual void do_finish() {}

  esz consumed_ = 0;

 private:
  bool finished_ = false;
};

/// Fans every batch out to N child sinks, so ONE stream pass feeds N
/// consumers — the composition primitive behind api::run()'s single-pass
/// multi-analysis execution. Owns its children; finish() finishes each
/// child (idempotently, so a child finished elsewhere is fine). The tee's
/// own edges_consumed() counts the batches it saw once, not per child.
class TeeSink : public EdgeSink {
 public:
  explicit TeeSink(std::vector<std::unique_ptr<EdgeSink>> children)
      : children_(std::move(children)) {}

  [[nodiscard]] std::size_t num_children() const noexcept {
    return children_.size();
  }
  [[nodiscard]] EdgeSink& child(std::size_t i) { return *children_[i]; }
  [[nodiscard]] const EdgeSink& child(std::size_t i) const {
    return *children_[i];
  }

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override {
    for (const auto& c : children_) c->consume(batch);
  }
  void do_finish() override {
    for (const auto& c : children_) c->finish();
  }

 private:
  std::vector<std::unique_ptr<EdgeSink>> children_;
};

/// Writes "u v" text lines (the io::write_edge_list body format) to an
/// ostream the caller owns.
class TextEdgeSink : public EdgeSink {
 public:
  explicit TextEdgeSink(std::ostream& os) : os_(&os) {}

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;
  void do_finish() override;

 private:
  std::ostream* os_;
  std::string buffer_;
};

/// Writes raw native-endian u64 pairs — the compact exchange format for
/// piping partitions between processes.
class BinaryEdgeSink : public EdgeSink {
 public:
  explicit BinaryEdgeSink(std::ostream& os) : os_(&os) {}

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;
  void do_finish() override;

 private:
  std::ostream* os_;
};

/// Collects edges in memory (COO triplets); to_graph() builds the explicit
/// Graph — the materialization path expressed as a sink.
class CooCollectorSink : public EdgeSink {
 public:
  [[nodiscard]] const std::vector<std::pair<vid, vid>>& edges() const noexcept {
    return edges_;
  }
  std::vector<std::pair<vid, vid>>& edges() noexcept { return edges_; }

  /// Builds the graph on `n` vertices from the collected directed entries.
  [[nodiscard]] Graph to_graph(vid n, bool symmetrize = false) const;

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;

 private:
  std::vector<std::pair<vid, vid>> edges_;
};

/// Accumulates the out-degree of every product vertex — a full degree
/// census of C performed during generation. Each partition's counter array
/// is its own heap allocation, touched by exactly one worker until
/// merge(); the class alignment only keeps the sink objects themselves
/// (the consumed_ counter and vector header) off a shared cache line when
/// sinks are allocated back-to-back.
class alignas(64) DegreeCensusSink : public EdgeSink {
 public:
  explicit DegreeCensusSink(vid num_vertices) : degrees_(num_vertices, 0) {}

  [[nodiscard]] const std::vector<count_t>& degrees() const noexcept {
    return degrees_;
  }

  /// Merges another partition's census into this one (for fan-in after
  /// stream_parallel).
  void merge(const DegreeCensusSink& other);

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;

 private:
  std::vector<count_t> degrees_;
};

/// Annotates every edge with its exact triangle count Δ_C(e) from the
/// oracle and accumulates the total plus a histogram — the "validation
/// during generation" workflow of the paper as a sink.
class TriangleCensusSink : public EdgeSink {
 public:
  /// The oracle must outlive the sink.
  explicit TriangleCensusSink(const kron::TriangleOracle& oracle)
      : oracle_(&oracle) {}

  /// Σ Δ(e) over consumed stored entries (each undirected edge contributes
  /// once per stored direction; divide by 2 for loop-free products).
  [[nodiscard]] count_t triangle_sum() const noexcept { return sum_; }
  [[nodiscard]] const std::map<count_t, count_t>& histogram() const noexcept {
    return histogram_;
  }

  void merge(const TriangleCensusSink& other);

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;

 private:
  const kron::TriangleOracle* oracle_;
  count_t sum_ = 0;
  std::map<count_t, count_t> histogram_;
};

/// Validation-during-generation: for every consumed undirected edge (u,v),
/// MEASURES Δ_C(u,v) by intersecting the implicit view's neighbor lists
/// (never touching a materialized C) and checks it against the oracle's
/// closed form — the per-edge half of the paper's validation loop as a
/// sink. The view must be undirected (each edge arrives in both stored
/// directions; only the u < v copy is checked). View and oracle must
/// outlive the sink.
class ValidatingCensusSink : public EdgeSink {
 public:
  ValidatingCensusSink(const kron::KronGraphView& view,
                       const kron::TriangleOracle& oracle);

  [[nodiscard]] count_t edges_checked() const noexcept { return checked_; }
  [[nodiscard]] count_t mismatches() const noexcept { return mismatches_; }
  [[nodiscard]] count_t max_abs_error() const noexcept { return max_abs_err_; }
  /// Measured Δ → frequency over the checked edges.
  [[nodiscard]] const std::map<count_t, count_t>& histogram() const noexcept {
    return histogram_;
  }
  [[nodiscard]] bool pass() const noexcept { return mismatches_ == 0; }

  void merge(const ValidatingCensusSink& other);

 protected:
  void do_consume(std::span<const kron::EdgeRecord> batch) override;

 private:
  const kron::KronGraphView* view_;
  const kron::TriangleOracle* oracle_;
  count_t checked_ = 0;
  count_t mismatches_ = 0;
  count_t max_abs_err_ = 0;
  std::map<count_t, count_t> histogram_;
  // Source-vertex neighbor list reused across a run of same-u records.
  std::vector<vid> cache_nbrs_;
  vid cache_u_ = 0;
  bool cache_valid_ = false;
};

}  // namespace kronotri::api
