// RunPlan / api::run() — the declarative job engine.
//
// A RunPlan is the whole paper workflow as one value: a graph spec, a list
// of named analyses with parameters, and execution options (threads,
// batch size, memory budget, output). api::run() executes it in as few
// stream passes as possible — every sink-backed analysis (plus the edge-
// list writer and, when an analysis needs the explicit graph, a collector)
// rides ONE stream_parallel pass through a per-partition TeeSink, merged
// per partition in partition order so counts stay bit-identical to
// independent passes — and returns a RunReport: per-stage edge counts and
// wall/CPU timings, every analysis's typed result, and a pass/fail
// verdict, serializable to JSON.
//
// Plans round-trip through JSON (`kronotri run --plan plan.json`) and a
// one-line shorthand ("SPEC analysis[:k=v,…] …"); a plan is also the unit
// the ROADMAP's distributed partition scheduling will ship to remote
// nodes.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/analysis.hpp"
#include "api/registry.hpp"
#include "api/spec.hpp"
#include "util/json.hpp"

namespace kronotri::api {

/// One requested analysis: a registry key plus its parameter map.
struct AnalysisRequest {
  std::string name;
  std::map<std::string, std::string> params;

  /// Parses the shorthand token `name[:key=value,…]`.
  static AnalysisRequest parse(std::string_view token);
};

struct RunPlan {
  GraphSpec spec;
  std::vector<AnalysisRequest> analyses;
  RunOptions options;
  std::string description;  ///< free-form, echoed into the report

  /// Parses either form: a JSON document (first non-space byte '{') or the
  /// shorthand `SPEC [analysis[:k=v,…]]…` (whitespace-separated). Throws
  /// std::invalid_argument with an actionable message on unknown keys.
  static RunPlan parse(std::string_view text);
  static RunPlan from_json(const util::json::Value& v);

  [[nodiscard]] util::json::Value to_json() const;
};

/// One timed stage of a run (generate, stream, materialize, write, or one
/// analysis).
struct StageTiming {
  std::string name;
  double wall_s = 0;
  double cpu_s = 0;
  esz edges = 0;  ///< stored entries processed by the stage (0 if n/a)
};

/// One scheduling event of the multi-process runner: the outcome of a
/// single worker attempt, classified from waitpid status so crashes,
/// nonzero exits, timeouts and truncated result frames stay
/// distinguishable in the report.
struct WorkerEvent {
  unsigned unit = 0;     ///< work-unit index (0 = base plan when present)
  std::string kind;      ///< "base" | "validate" | "run"
  unsigned attempt = 0;  ///< 0-based attempt counter for the unit
  long pid = 0;          ///< worker process id (0 when never spawned)
  /// "ok" | "exit" | "signal" | "timeout" | "truncated" | "spawn_failed" |
  /// "speculative_loss" | "aborted" | "degraded" | "oom" (worker died at
  /// kOomExitCode after the RLIMIT_AS guard tripped its allocation path) |
  /// "resumed" (unit reloaded from a journal, not re-executed) | "corrupt"
  /// (a journaled fragment failed CRC/digest verification on resume and
  /// the unit was re-queued) | "disconnect" (the remote agent running the
  /// attempt lost its connection or missed its heartbeat deadline — the
  /// unit re-dispatches exactly like a SIGKILLed local child) | "garbled"
  /// (a result frame from the agent failed its CRC and was rejected)
  std::string outcome;
  int detail = 0;  ///< exit code ("exit") or signal number ("signal"/…)
  double wall_s = 0;
  /// Remote attempts only: the agent endpoint ("HOST:PORT") the attempt
  /// ran on; empty for local fork/exec workers.
  std::string host;
  /// Per-attempt resource accounting from the coordinator's wait4()
  /// rusage: the worker process's own peak RSS and split CPU time. All 0
  /// for attempts that never ran (spawn_failed, resumed) — and on the few
  /// platforms without wait4.
  std::size_t max_rss_bytes = 0;
  double cpu_user_s = 0;
  double cpu_sys_s = 0;

  [[nodiscard]] util::json::Value to_json() const;
  static WorkerEvent from_json(const util::json::Value& v);
};

struct RunReport {
  RunPlan plan;  ///< the executed plan, echoed
  vid num_vertices = 0;
  count_t num_undirected_edges = 0;
  esz stored_entries = 0;  ///< entries streamed (or nnz of the built graph)
  bool streamed = false;   ///< a stream_parallel pass ran
  unsigned partitions = 0;
  std::vector<StageTiming> stages;
  std::vector<AnalysisReport> analyses;
  bool pass = true;  ///< conjunction of every analysis verdict
  double total_wall_s = 0;
  double total_cpu_s = 0;
  /// Process peak RSS (getrusage ru_maxrss) sampled when the run finishes —
  /// a high-water mark over the whole process, so in a multi-job server it
  /// bounds, rather than attributes, this job's footprint. 0 when the
  /// platform has no getrusage.
  std::size_t peak_rss_bytes = 0;
  /// Time the job sat in a queue before execute started. api::run() cannot
  /// know it, so it stays 0 for direct runs; the service layer fills it in
  /// so its latency metrics decompose into wait vs. execute.
  double queue_wait_s = 0;
  util::json::Value metadata;  ///< util::run_metadata()
  /// Per-attempt scheduling trail of the multi-process runner; empty for
  /// in-process runs. Volatile (pids, timings) — comparison helpers strip
  /// it alongside the timing fields.
  std::vector<WorkerEvent> worker_events;
  /// obs::CounterRegistry delta over this run (edges streamed, shards
  /// executed, retries, …). Volatile like the timings — comparison helpers
  /// strip it. Null when nothing incremented.
  util::json::Value counters;
  /// Non-empty when the run failed structurally (a work unit exhausted its
  /// retry budget, a worker could not be spawned); pass is false then.
  std::string error;

  [[nodiscard]] util::json::Value to_json() const;
  /// Inverse of to_json() — how the runner coordinator reads worker
  /// fragments back. The echoed plan and metadata are restored verbatim.
  static RunReport from_json(const util::json::Value& v);
  /// Human-readable rendering: header, per-analysis text blocks, verdict.
  void print(std::ostream& os) const;
};

/// Executes the plan. Generator and analysis lookups use the given
/// registries (the builtins by default). Throws std::invalid_argument for
/// malformed plans/params, and propagates analysis errors.
RunReport run(const RunPlan& plan,
              const GeneratorRegistry& generators = GeneratorRegistry::builtin(),
              const AnalysisRegistry& analyses = AnalysisRegistry::builtin());

}  // namespace kronotri::api
