// GraphSpec — the declarative description of a graph to generate.
//
// A spec is a short string naming a generator family plus its parameters,
// the unit of configuration for the whole pipeline facade: the CLI, the
// examples and the benches all describe their inputs as specs and hand them
// to the GeneratorRegistry. Grammar:
//
//   spec    := family [':' params]
//            | 'kron:' '(' spec ')' ('x' '(' spec ')')+ [':' params]
//   params  := key '=' value (',' key '=' value)*
//
// Examples:
//   "hk:n=5000,m=3,p=0.6,seed=7"        Holme–Kim scale-free factor
//   "clique:n=5"                        K_5
//   "er:n=1000,p=0.01,seed=1,loops=1"   G(n,p) with all self loops added
//   "kron:(hk:n=300,seed=3)x(clique:n=3,loops=1)"   two-factor product
//
// The modifier params `loops` (A + I) and `prune` (§III.D(a) reduction to
// Δ ≤ 1) apply to every family; the registry applies them after the family
// factory runs. parse() and to_string() round-trip.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace kronotri::api {

struct GraphSpec {
  std::string family;                         ///< registry key, e.g. "hk"
  std::map<std::string, std::string> params;  ///< key=value parameters
  std::vector<GraphSpec> factors;             ///< non-empty iff family=="kron"

  /// Parses the grammar above; throws std::invalid_argument on bad syntax.
  static GraphSpec parse(std::string_view text);

  /// Canonical text form (params in sorted key order); parse(to_string())
  /// reproduces the spec exactly.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_kron() const noexcept { return family == "kron"; }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
};

}  // namespace kronotri::api
