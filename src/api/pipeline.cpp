#include "api/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/trace.hpp"

namespace kronotri::api {

namespace {

esz pump(kron::EdgeStream& stream, EdgeSink& sink, std::size_t batch_size) {
  std::vector<kron::EdgeRecord> batch(batch_size > 0 ? batch_size
                                                     : kDefaultBatchSize);
  esz total = 0;
  while (const std::size_t got = stream.next_batch(batch)) {
    sink.consume(std::span<const kron::EdgeRecord>(batch.data(), got));
    total += got;
  }
  sink.finish();
  return total;
}

}  // namespace

esz stream_into(const Graph& a, const Graph& b, EdgeSink& sink,
                const StreamOptions& options) {
  kron::EdgeStream stream(a, b, options.part, options.nparts);
  return pump(stream, sink, options.batch_size);
}

esz stream_into(const kron::FlatEdges& a, const kron::FlatEdges& b,
                EdgeSink& sink, const StreamOptions& options) {
  kron::EdgeStream stream(a, b, options.part, options.nparts);
  return pump(stream, sink, options.batch_size);
}

std::vector<std::unique_ptr<EdgeSink>> stream_parallel(
    const kron::FlatEdges& a, const kron::FlatEdges& b, unsigned nthreads,
    const SinkFactory& factory, std::size_t batch_size) {
  if (nthreads == 0) {
    nthreads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<std::unique_ptr<EdgeSink>> sinks;
  sinks.reserve(nthreads);
  for (unsigned part = 0; part < nthreads; ++part) {
    sinks.push_back(factory(part, nthreads));
  }

  std::vector<std::exception_ptr> errors(nthreads);
  std::vector<std::thread> workers;
  workers.reserve(nthreads);
  for (unsigned part = 0; part < nthreads; ++part) {
    workers.emplace_back([&, part] {
      try {
        // Each partition thread gets its own trace track (thread-local
        // buffer), so per-partition spans show the fan-out's balance.
        obs::Span span("stream:partition");
        span.arg("part", part).arg("nparts", nthreads);
        StreamOptions options;
        options.part = part;
        options.nparts = nthreads;
        options.batch_size = batch_size;
        const esz got = stream_into(a, b, *sinks[part], options);
        span.arg("edges", got);
      } catch (...) {
        errors[part] = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return sinks;
}

std::vector<std::unique_ptr<EdgeSink>> stream_parallel(
    const Graph& a, const Graph& b, unsigned nthreads,
    const SinkFactory& factory, std::size_t batch_size) {
  const kron::FlatEdges fa(a);
  const kron::FlatEdges fb(b);
  return stream_parallel(fa, fb, nthreads, factory, batch_size);
}

}  // namespace kronotri::api
