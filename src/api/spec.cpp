#include "api/spec.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/cli.hpp"

namespace kronotri::api {

namespace {

[[noreturn]] void bad(std::string_view text, const std::string& why) {
  throw std::invalid_argument("GraphSpec: " + why + " in \"" +
                              std::string(text) + "\"");
}

std::map<std::string, std::string> parse_params(std::string_view text,
                                                std::string_view whole) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view kv = text.substr(pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad(whole, "expected key=value, got \"" + std::string(kv) + "\"");
    }
    out[std::string(kv.substr(0, eq))] = std::string(kv.substr(eq + 1));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

GraphSpec GraphSpec::parse(std::string_view text) {
  GraphSpec spec;
  if (text.empty()) bad(text, "empty spec");

  const std::size_t colon = text.find(':');
  spec.family = std::string(text.substr(0, colon));
  if (spec.family.empty()) bad(text, "empty family name");

  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);

  if (spec.family != "kron") {
    spec.params = parse_params(rest, text);
    return spec;
  }

  // kron: '(' spec ')' ('x' '(' spec ')')* [':' params]
  std::size_t pos = 0;
  while (pos < rest.size() && rest[pos] == '(') {
    // Find the matching close paren (factor specs may nest kron specs).
    int depth = 0;
    std::size_t end = pos;
    for (; end < rest.size(); ++end) {
      if (rest[end] == '(') ++depth;
      if (rest[end] == ')' && --depth == 0) break;
    }
    if (depth != 0) bad(text, "unbalanced parentheses");
    spec.factors.push_back(parse(rest.substr(pos + 1, end - pos - 1)));
    pos = end + 1;
    if (pos < rest.size() && (rest[pos] == 'x' || rest[pos] == '*')) ++pos;
  }
  if (spec.factors.size() < 2) {
    bad(text, "kron needs at least two (factor) specs");
  }
  if (pos < rest.size()) {
    if (rest[pos] != ':') bad(text, "junk after factor list");
    spec.params = parse_params(rest.substr(pos + 1), text);
  }
  return spec;
}

std::string GraphSpec::to_string() const {
  std::ostringstream os;
  os << family;
  if (is_kron()) {
    os << ':';
    for (std::size_t i = 0; i < factors.size(); ++i) {
      os << (i ? "x(" : "(") << factors[i].to_string() << ')';
    }
    if (!params.empty()) os << ':';
  } else if (!params.empty()) {
    os << ':';
  }
  bool first = true;
  for (const auto& [k, v] : params) {
    os << (first ? "" : ",") << k << '=' << v;
    first = false;
  }
  return os.str();
}

bool GraphSpec::has(const std::string& key) const {
  return params.count(key) > 0;
}

std::string GraphSpec::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::uint64_t GraphSpec::get_uint(const std::string& key,
                                  std::uint64_t fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : std::strtoull(it->second.c_str(), nullptr, 10);
}

double GraphSpec::get_double(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : std::strtod(it->second.c_str(), nullptr);
}

bool GraphSpec::get_bool(const std::string& key, bool fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  return util::parse_bool_token(it->second, "GraphSpec param " + key);
}

}  // namespace kronotri::api
