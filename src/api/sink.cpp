#include "api/sink.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <stdexcept>

namespace kronotri::api {

namespace {

void append_u64(std::string& buf, std::uint64_t v) {
  char tmp[20];
  const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  buf.append(tmp, end);
}

}  // namespace

void TextEdgeSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  for (const auto& e : batch) {
    append_u64(buffer_, e.u);
    buffer_.push_back(' ');
    append_u64(buffer_, e.v);
    buffer_.push_back('\n');
  }
  if (buffer_.size() >= 1u << 20) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void TextEdgeSink::do_finish() {
  if (!buffer_.empty()) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  os_->flush();
}

void BinaryEdgeSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  static_assert(sizeof(kron::EdgeRecord) == 2 * sizeof(vid),
                "EdgeRecord must be two packed u64s for the binary format");
  os_->write(reinterpret_cast<const char*>(batch.data()),
             static_cast<std::streamsize>(batch.size() *
                                          sizeof(kron::EdgeRecord)));
}

void BinaryEdgeSink::do_finish() { os_->flush(); }

void CooCollectorSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  edges_.reserve(edges_.size() + batch.size());
  for (const auto& e : batch) edges_.emplace_back(e.u, e.v);
}

Graph CooCollectorSink::to_graph(vid n, bool symmetrize) const {
  return Graph::from_edges(n, edges_, symmetrize);
}

void DegreeCensusSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  count_t* const d = degrees_.data();
  for (const auto& e : batch) ++d[e.u];
}

void DegreeCensusSink::merge(const DegreeCensusSink& other) {
  consumed_ += other.consumed_;
  for (std::size_t v = 0; v < degrees_.size(); ++v) {
    degrees_[v] += other.degrees_[v];
  }
}

void TriangleCensusSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  for (const auto& e : batch) {
    const auto d = oracle_->edge_triangles(e.u, e.v);
    if (!d) continue;  // self-loop slots are not undirected edges
    sum_ += *d;
    ++histogram_[*d];
  }
}

void TriangleCensusSink::merge(const TriangleCensusSink& other) {
  consumed_ += other.consumed_;
  sum_ += other.sum_;
  for (const auto& [k, v] : other.histogram_) histogram_[k] += v;
}

namespace {

/// |N(u) ∩ N(v) \ {u, v}| — the measured Δ_C(u,v) of Def. 6 (common
/// neighbors that close a loop-free triangle).
count_t intersect_excluding(const std::vector<vid>& nu,
                            const std::vector<vid>& nv, vid u, vid v) {
  count_t delta = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      const vid w = nu[i];
      if (w != u && w != v) ++delta;
      ++i;
      ++j;
    }
  }
  return delta;
}

}  // namespace

ValidatingCensusSink::ValidatingCensusSink(const kron::KronGraphView& view,
                                           const kron::TriangleOracle& oracle)
    : view_(&view), oracle_(&oracle) {
  if (!view.is_undirected()) {
    throw std::invalid_argument(
        "ValidatingCensusSink requires an undirected product");
  }
}

void ValidatingCensusSink::do_consume(std::span<const kron::EdgeRecord> batch) {
  for (const auto& e : batch) {
    if (e.u >= e.v) continue;  // one check per undirected edge; skips loops
    // The stream emits edges grouped by source, so N(u) is materialized
    // once per run of u instead of once per edge (deg(u) fewer odometer
    // expansions).
    if (!cache_valid_ || cache_u_ != e.u) {
      cache_nbrs_ = view_->neighbors(e.u);
      cache_u_ = e.u;
      cache_valid_ = true;
    }
    const count_t measured =
        intersect_excluding(cache_nbrs_, view_->neighbors(e.v), e.u, e.v);
    ++checked_;
    ++histogram_[measured];
    const auto predicted = oracle_->edge_triangles(e.u, e.v);
    if (!predicted) {
      ++mismatches_;
      max_abs_err_ = std::max(max_abs_err_, measured);
    } else if (*predicted != measured) {
      ++mismatches_;
      max_abs_err_ = std::max(
          max_abs_err_,
          measured > *predicted ? measured - *predicted : *predicted - measured);
    }
  }
}

void ValidatingCensusSink::merge(const ValidatingCensusSink& other) {
  consumed_ += other.consumed_;
  checked_ += other.checked_;
  mismatches_ += other.mismatches_;
  max_abs_err_ = std::max(max_abs_err_, other.max_abs_err_);
  for (const auto& [k, v] : other.histogram_) histogram_[k] += v;
}

}  // namespace kronotri::api
