#include "api/sink.hpp"

#include <charconv>
#include <ostream>

namespace kronotri::api {

namespace {

void append_u64(std::string& buf, std::uint64_t v) {
  char tmp[20];
  const auto [end, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  buf.append(tmp, end);
}

}  // namespace

void TextEdgeSink::consume(std::span<const kron::EdgeRecord> batch) {
  consumed_ += batch.size();
  for (const auto& e : batch) {
    append_u64(buffer_, e.u);
    buffer_.push_back(' ');
    append_u64(buffer_, e.v);
    buffer_.push_back('\n');
  }
  if (buffer_.size() >= 1u << 20) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void TextEdgeSink::finish() {
  if (!buffer_.empty()) {
    os_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  os_->flush();
}

void BinaryEdgeSink::consume(std::span<const kron::EdgeRecord> batch) {
  consumed_ += batch.size();
  static_assert(sizeof(kron::EdgeRecord) == 2 * sizeof(vid),
                "EdgeRecord must be two packed u64s for the binary format");
  os_->write(reinterpret_cast<const char*>(batch.data()),
             static_cast<std::streamsize>(batch.size() *
                                          sizeof(kron::EdgeRecord)));
}

void BinaryEdgeSink::finish() { os_->flush(); }

void CooCollectorSink::consume(std::span<const kron::EdgeRecord> batch) {
  consumed_ += batch.size();
  edges_.reserve(edges_.size() + batch.size());
  for (const auto& e : batch) edges_.emplace_back(e.u, e.v);
}

Graph CooCollectorSink::to_graph(vid n, bool symmetrize) const {
  return Graph::from_edges(n, edges_, symmetrize);
}

void DegreeCensusSink::consume(std::span<const kron::EdgeRecord> batch) {
  consumed_ += batch.size();
  count_t* const d = degrees_.data();
  for (const auto& e : batch) ++d[e.u];
}

void DegreeCensusSink::merge(const DegreeCensusSink& other) {
  consumed_ += other.consumed_;
  for (std::size_t v = 0; v < degrees_.size(); ++v) {
    degrees_[v] += other.degrees_[v];
  }
}

void TriangleCensusSink::consume(std::span<const kron::EdgeRecord> batch) {
  consumed_ += batch.size();
  for (const auto& e : batch) {
    const auto d = oracle_->edge_triangles(e.u, e.v);
    if (!d) continue;  // self-loop slots are not undirected edges
    sum_ += *d;
    ++histogram_[*d];
  }
}

void TriangleCensusSink::merge(const TriangleCensusSink& other) {
  consumed_ += other.consumed_;
  sum_ += other.sum_;
  for (const auto& [k, v] : other.histogram_) histogram_[k] += v;
}

}  // namespace kronotri::api
