// Pipeline drivers: pump a partitioned kron::EdgeStream into EdgeSinks.
//
// This is the paper's "essentially communication-free" distributed
// generation ([3]) on one node: the nonzero pair space of C = A ⊗ B is
// split into contiguous partitions, each worker thread owns one partition's
// stream and one sink, and no worker ever talks to another. Fan-in (if any)
// is the caller's merge over the returned sinks. The factors are flattened
// into shared kron::FlatEdges views exactly once, before any worker starts
// — workers share the read-only views instead of re-flattening per
// partition.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/sink.hpp"
#include "core/graph.hpp"
#include "kron/stream.hpp"

namespace kronotri::api {

/// Default edges-per-batch for the pull loop: big enough to amortize the
/// virtual consume() call and the pair-space division, small enough to stay
/// in L1/L2 (8192 records = 128 KiB).
inline constexpr std::size_t kDefaultBatchSize = 8192;

struct StreamOptions {
  std::uint64_t part = 0;
  std::uint64_t nparts = 1;
  std::size_t batch_size = kDefaultBatchSize;
};

/// Streams one partition of C = A ⊗ B into `sink` using the batched pull
/// API, calls sink.finish(), and returns the number of edges emitted.
esz stream_into(const Graph& a, const Graph& b, EdgeSink& sink,
                const StreamOptions& options = {});

/// Same, over pre-flattened factors (no per-call flatten).
esz stream_into(const kron::FlatEdges& a, const kron::FlatEdges& b,
                EdgeSink& sink, const StreamOptions& options = {});

/// Makes the sink for partition `part` of `nparts`. Called on the spawning
/// thread, before any worker starts.
using SinkFactory =
    std::function<std::unique_ptr<EdgeSink>(std::uint64_t part,
                                            std::uint64_t nparts)>;

/// Fans C = A ⊗ B out over `nthreads` contiguous partitions, one worker
/// thread and one factory-made sink per partition (nthreads == 0 uses the
/// hardware concurrency). Both factors are flattened once and shared by all
/// workers. The union of the partitions is exactly the edge multiset of the
/// single-threaded stream. Returns the sinks, in partition order, after
/// every worker has finished; rethrows the first worker exception, if any.
std::vector<std::unique_ptr<EdgeSink>> stream_parallel(
    const Graph& a, const Graph& b, unsigned nthreads,
    const SinkFactory& factory, std::size_t batch_size = kDefaultBatchSize);

/// Same, over caller-owned pre-flattened factors (reusable across calls).
std::vector<std::unique_ptr<EdgeSink>> stream_parallel(
    const kron::FlatEdges& a, const kron::FlatEdges& b, unsigned nthreads,
    const SinkFactory& factory, std::size_t batch_size = kDefaultBatchSize);

}  // namespace kronotri::api
