#include "api/plan.hpp"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "api/pipeline.hpp"
#include "core/io.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/runmeta.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace kronotri::api {

namespace {

using util::json::Value;

[[noreturn]] void bad_plan(const std::string& why) {
  throw std::invalid_argument("RunPlan: " + why);
}

void require_keys(const Value& obj, const char* where,
                  std::initializer_list<const char*> known) {
  for (const auto& [key, value] : obj.members()) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) throw_unknown_key(std::string("RunPlan ") + where, key, known);
  }
}

/// A JSON param value as the string the Params getters parse.
std::string param_string(const std::string& analysis, const std::string& key,
                         const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kString: return v.as_string();
    case Value::Kind::kUInt: return std::to_string(v.as_uint());
    case Value::Kind::kInt: return std::to_string(v.as_int());
    case Value::Kind::kDouble: return v.dump_string(0);
    case Value::Kind::kBool: return v.as_bool() ? "1" : "0";
    default:
      bad_plan("analysis \"" + analysis + "\" param \"" + key +
               "\" must be a scalar");
  }
}

std::size_t byte_count_field(const Value& options, const char* key,
                             std::size_t fallback) {
  const Value* v = options.find(key);
  if (v == nullptr) return fallback;
  if (v->is_string()) return util::parse_byte_count(v->as_string());
  return static_cast<std::size_t>(v->as_uint());
}

}  // namespace

AnalysisRequest AnalysisRequest::parse(std::string_view token) {
  AnalysisRequest req;
  const std::size_t colon = token.find(':');
  req.name = std::string(token.substr(0, colon));
  if (req.name.empty()) bad_plan("empty analysis name");
  if (colon == std::string_view::npos) return req;
  std::string_view rest = token.substr(colon + 1);
  std::size_t pos = 0;
  while (pos < rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string_view::npos) comma = rest.size();
    const std::string_view kv = rest.substr(pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad_plan("analysis \"" + req.name + "\": expected key=value, got \"" +
               std::string(kv) + "\"");
    }
    req.params[std::string(kv.substr(0, eq))] = std::string(kv.substr(eq + 1));
    pos = comma + 1;
  }
  return req;
}

RunPlan RunPlan::from_json(const Value& v) {
  if (!v.is_object()) bad_plan("plan document must be a JSON object");
  require_keys(v, "plan", {"description", "spec", "analyses", "options"});

  RunPlan plan;
  plan.description = v.get_string("description", "");
  const Value* spec = v.find("spec");
  if (spec == nullptr) bad_plan("missing required key \"spec\"");
  plan.spec = GraphSpec::parse(spec->as_string());

  if (const Value* analyses = v.find("analyses")) {
    for (const Value& entry : analyses->items()) {
      if (entry.is_string()) {
        plan.analyses.push_back(AnalysisRequest::parse(entry.as_string()));
        continue;
      }
      require_keys(entry, "analyses[]", {"name", "params"});
      AnalysisRequest req;
      const Value* name = entry.find("name");
      if (name == nullptr) bad_plan("analyses[] entry missing \"name\"");
      req.name = name->as_string();
      if (const Value* params = entry.find("params")) {
        for (const auto& [key, val] : params->members()) {
          req.params[key] = param_string(req.name, key, val);
        }
      }
      plan.analyses.push_back(std::move(req));
    }
  }

  if (const Value* options = v.find("options")) {
    require_keys(*options, "options",
                 {"threads", "batch_size", "mem_budget", "seed", "output",
                  "format", "stream", "workers", "shard_timeout",
                  "max_retries", "fault"});
    RunOptions& o = plan.options;
    o.threads = static_cast<unsigned>(options->get_uint("threads", o.threads));
    o.batch_size = options->get_uint("batch_size", o.batch_size);
    o.mem_budget_bytes =
        byte_count_field(*options, "mem_budget", o.mem_budget_bytes);
    o.seed = options->get_uint("seed", o.seed);
    o.output = options->get_string("output", o.output);
    o.format = options->get_string("format", o.format);
    o.stream = options->get_bool("stream", o.stream);
    o.workers =
        static_cast<unsigned>(options->get_uint("workers", o.workers));
    if (const Value* t = options->find("shard_timeout")) {
      o.shard_timeout_s = t->as_double();
    }
    o.max_retries =
        static_cast<unsigned>(options->get_uint("max_retries", o.max_retries));
    o.fault = options->get_string("fault", o.fault);
    if (o.format != "text" && o.format != "binary") {
      bad_plan("options.format must be \"text\" or \"binary\"");
    }
  }
  return plan;
}

RunPlan RunPlan::parse(std::string_view text) {
  std::size_t start = 0;
  while (start < text.size() &&
         (text[start] == ' ' || text[start] == '\t' || text[start] == '\n' ||
          text[start] == '\r')) {
    ++start;
  }
  if (start == text.size()) bad_plan("empty plan");
  if (text[start] == '{') return from_json(Value::parse(text));

  // Shorthand: SPEC [analysis[:k=v,…]]… — whitespace-separated tokens.
  RunPlan plan;
  std::vector<std::string_view> tokens;
  std::size_t pos = start;
  while (pos < text.size()) {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < text.size() && !std::isspace(static_cast<unsigned char>(
                                    text[end]))) {
      ++end;
    }
    if (end > pos) tokens.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  plan.spec = GraphSpec::parse(tokens.front());
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    plan.analyses.push_back(AnalysisRequest::parse(tokens[i]));
  }
  return plan;
}

Value RunPlan::to_json() const {
  Value v = Value::object();
  if (!description.empty()) v.set("description", description);
  v.set("spec", spec.to_string());
  Value reqs = Value::array();
  for (const AnalysisRequest& req : analyses) {
    Value entry = Value::object();
    entry.set("name", req.name);
    Value params = Value::object();
    for (const auto& [key, value] : req.params) params.set(key, value);
    entry.set("params", std::move(params));
    reqs.push_back(std::move(entry));
  }
  v.set("analyses", std::move(reqs));
  Value opts = Value::object();
  opts.set("threads", options.threads);
  opts.set("batch_size", options.batch_size);
  opts.set("mem_budget", options.mem_budget_bytes);
  opts.set("seed", options.seed);
  opts.set("output", options.output);
  opts.set("format", options.format);
  opts.set("stream", options.stream);
  opts.set("workers", options.workers);
  opts.set("shard_timeout", options.shard_timeout_s);
  opts.set("max_retries", options.max_retries);
  opts.set("fault", options.fault);
  v.set("options", std::move(opts));
  return v;
}

Value WorkerEvent::to_json() const {
  Value v = Value::object();
  v.set("unit", unit);
  v.set("kind", kind);
  v.set("attempt", attempt);
  v.set("pid", static_cast<std::int64_t>(pid));
  v.set("outcome", outcome);
  v.set("detail", static_cast<std::int64_t>(detail));
  v.set("wall_s", wall_s);
  if (max_rss_bytes != 0) v.set("max_rss_bytes", max_rss_bytes);
  if (cpu_user_s != 0) v.set("cpu_user_s", cpu_user_s);
  if (cpu_sys_s != 0) v.set("cpu_sys_s", cpu_sys_s);
  if (!host.empty()) v.set("host", host);
  return v;
}

WorkerEvent WorkerEvent::from_json(const Value& v) {
  WorkerEvent e;
  e.unit = static_cast<unsigned>(v.get_uint("unit", 0));
  e.kind = v.get_string("kind", "");
  e.attempt = static_cast<unsigned>(v.get_uint("attempt", 0));
  if (const Value* pid = v.find("pid")) e.pid = pid->as_int();
  e.outcome = v.get_string("outcome", "");
  if (const Value* detail = v.find("detail")) {
    e.detail = static_cast<int>(detail->as_int());
  }
  if (const Value* wall = v.find("wall_s")) e.wall_s = wall->as_double();
  e.max_rss_bytes = v.get_uint("max_rss_bytes", 0);
  if (const Value* u = v.find("cpu_user_s")) e.cpu_user_s = u->as_double();
  if (const Value* s = v.find("cpu_sys_s")) e.cpu_sys_s = s->as_double();
  e.host = v.get_string("host", "");
  return e;
}

Value RunReport::to_json() const {
  Value v = Value::object();
  v.set("plan", plan.to_json());
  v.set("num_vertices", num_vertices);
  v.set("num_undirected_edges", num_undirected_edges);
  v.set("stored_entries", stored_entries);
  v.set("streamed", streamed);
  v.set("partitions", partitions);
  Value sts = Value::array();
  for (const StageTiming& st : stages) {
    Value s = Value::object();
    s.set("name", st.name);
    s.set("wall_s", st.wall_s);
    s.set("cpu_s", st.cpu_s);
    s.set("edges", st.edges);
    sts.push_back(std::move(s));
  }
  v.set("stages", std::move(sts));
  Value ars = Value::array();
  for (const AnalysisReport& ar : analyses) {
    Value a = Value::object();
    a.set("name", ar.name);
    a.set("pass", ar.pass);
    a.set("wall_s", ar.wall_s);
    a.set("text", ar.text);
    a.set("data", ar.data);
    ars.push_back(std::move(a));
  }
  v.set("analyses", std::move(ars));
  v.set("pass", pass);
  v.set("total_wall_s", total_wall_s);
  v.set("total_cpu_s", total_cpu_s);
  v.set("peak_rss_bytes", peak_rss_bytes);
  v.set("queue_wait_s", queue_wait_s);
  v.set("metadata", metadata);
  if (!worker_events.empty()) {
    Value evs = Value::array();
    for (const WorkerEvent& e : worker_events) evs.push_back(e.to_json());
    v.set("worker_events", std::move(evs));
  }
  if (counters.is_object() && !counters.members().empty()) {
    v.set("counters", counters);
  }
  if (!error.empty()) v.set("error", error);
  return v;
}

RunReport RunReport::from_json(const Value& v) {
  RunReport r;
  if (const Value* plan = v.find("plan")) r.plan = RunPlan::from_json(*plan);
  r.num_vertices = v.get_uint("num_vertices", 0);
  r.num_undirected_edges = v.get_uint("num_undirected_edges", 0);
  r.stored_entries = v.get_uint("stored_entries", 0);
  r.streamed = v.get_bool("streamed", false);
  r.partitions = static_cast<unsigned>(v.get_uint("partitions", 0));
  if (const Value* stages = v.find("stages")) {
    for (const Value& s : stages->items()) {
      StageTiming st;
      st.name = s.get_string("name", "");
      if (const Value* w = s.find("wall_s")) st.wall_s = w->as_double();
      if (const Value* c = s.find("cpu_s")) st.cpu_s = c->as_double();
      st.edges = s.get_uint("edges", 0);
      r.stages.push_back(std::move(st));
    }
  }
  if (const Value* analyses = v.find("analyses")) {
    for (const Value& a : analyses->items()) {
      AnalysisReport ar;
      ar.name = a.get_string("name", "");
      ar.pass = a.get_bool("pass", false);
      if (const Value* w = a.find("wall_s")) ar.wall_s = w->as_double();
      ar.text = a.get_string("text", "");
      if (const Value* data = a.find("data")) ar.data = *data;
      r.analyses.push_back(std::move(ar));
    }
  }
  r.pass = v.get_bool("pass", false);
  if (const Value* w = v.find("total_wall_s")) r.total_wall_s = w->as_double();
  if (const Value* c = v.find("total_cpu_s")) r.total_cpu_s = c->as_double();
  r.peak_rss_bytes = v.get_uint("peak_rss_bytes", 0);
  if (const Value* q = v.find("queue_wait_s")) {
    r.queue_wait_s = q->as_double();
  }
  if (const Value* m = v.find("metadata")) r.metadata = *m;
  if (const Value* evs = v.find("worker_events")) {
    for (const Value& e : evs->items()) {
      r.worker_events.push_back(WorkerEvent::from_json(e));
    }
  }
  if (const Value* c = v.find("counters")) r.counters = *c;
  r.error = v.get_string("error", "");
  return r;
}

void RunReport::print(std::ostream& os) const {
  os << "run: " << plan.spec.to_string() << "\n";
  if (!plan.description.empty()) os << "  " << plan.description << "\n";
  os << "  vertices " << util::commas(num_vertices) << ", undirected edges "
     << util::commas(num_undirected_edges);
  if (streamed) {
    os << ", streamed " << util::commas(stored_entries)
       << " stored entries over " << partitions << " partition"
       << (partitions > 1 ? "s" : "");
  }
  os << "\n";
  for (const StageTiming& st : stages) {
    os << "  stage " << st.name << ": " << st.wall_s << " s wall, "
       << st.cpu_s << " s cpu";
    if (st.edges > 0) os << ", " << util::commas(st.edges) << " entries";
    os << "\n";
  }
  if (!worker_events.empty()) {
    std::size_t recoveries = 0;
    for (const WorkerEvent& e : worker_events) {
      if (e.outcome != "ok" && e.outcome != "speculative_loss") ++recoveries;
    }
    os << "  workers: " << worker_events.size() << " attempt"
       << (worker_events.size() > 1 ? "s" : "") << ", " << recoveries
       << " fault" << (recoveries == 1 ? "" : "s") << " recovered or fatal\n";
    for (const WorkerEvent& e : worker_events) {
      os << "    unit " << e.unit << " (" << e.kind << ") attempt "
         << e.attempt << ": " << e.outcome;
      if (e.outcome == "exit") os << " code " << e.detail;
      if (e.outcome == "signal" || e.outcome == "timeout") {
        os << " sig " << e.detail;
      }
      os << " (" << e.wall_s << " s)\n";
    }
  }
  for (const AnalysisReport& ar : analyses) {
    os << "\n-- " << ar.name << " (" << ar.wall_s << " s) "
       << std::string(ar.name.size() < 40 ? 40 - ar.name.size() : 1, '-')
       << "\n"
       << ar.text;
  }
  if (!error.empty()) os << "\nerror: " << error << "\n";
  os << "\n" << (pass ? "PASS" : "FAIL") << " (" << total_wall_s
     << " s wall, " << total_cpu_s << " s cpu)\n";
}

RunReport run(const RunPlan& plan, const GeneratorRegistry& generators,
              const AnalysisRegistry& registry) {
  const util::WallTimer total_wall;
  const util::CpuTimer total_cpu;
  // The registry is process-global; the report carries this run's delta so
  // back-to-back runs (service worker loop, tests) don't inherit counts.
  const util::json::Value counters_start =
      obs::CounterRegistry::instance().snapshot();
  obs::Span run_span("api::run");
  RunReport report;
  report.plan = plan;

  // Build every analysis first: parameter validation is cheap and should
  // fail before any generation work starts.
  std::vector<std::unique_ptr<Analysis>> analyses;
  analyses.reserve(plan.analyses.size());
  for (const AnalysisRequest& req : plan.analyses) {
    analyses.push_back(registry.build(req.name, req.params));
  }

  // Default-seed injection: a plan-level seed seeds a non-kron root spec
  // that did not pin its own (kron factors keep their per-factor seeds).
  GraphSpec spec = plan.spec;
  if (plan.options.seed != 0 && !spec.is_kron() && !spec.has("seed")) {
    spec.params["seed"] = std::to_string(plan.options.seed);
  }

  // Generate. A kron spec with outer modifiers (loops/prune apply to the
  // product) is materialized here — its factor-side structures would
  // describe a different graph.
  const bool modified_kron =
      spec.is_kron() &&
      (spec.get_bool("prune", false) || spec.get_bool("loops", false));
  std::vector<Graph> factors;
  {
    StageTiming st{"generate", 0, 0, 0};
    obs::Span span("stage:generate");
    const util::WallTimer w;
    const util::CpuTimer c;
    if (modified_kron) {
      factors.push_back(generators.build(spec));
    } else if (spec.is_kron()) {
      // Build each distinct factor spec once: B defaulting to A (the
      // common census/validate shape) must not read or generate the same
      // factor twice. Repeats are copies — factors are small by design.
      std::map<std::string, std::size_t> built;
      for (const GraphSpec& f : spec.factors) {
        const auto [it, fresh] = built.emplace(f.to_string(), factors.size());
        if (fresh) {
          factors.push_back(generators.build(f));
        } else {
          factors.push_back(factors[it->second]);
        }
      }
    } else {
      factors = generators.build_factors(spec);
    }
    st.wall_s = w.seconds();
    st.cpu_s = c.seconds();
    span.arg("factors", factors.size());
    report.stages.push_back(st);
  }

  PlanContext ctx(spec, plan.options, std::move(factors));
  if (ctx.two_factor()) {
    report.num_vertices = ctx.view().num_vertices();
    report.num_undirected_edges = ctx.view().num_undirected_edges();
  } else if (ctx.is_product()) {
    report.num_vertices = ctx.chain().num_vertices();
    report.num_undirected_edges = ctx.chain().num_undirected_edges();
  } else {
    report.num_vertices = ctx.graph().num_vertices();
    report.num_undirected_edges = ctx.graph().num_undirected_edges();
    report.stored_entries = ctx.graph().nnz();
  }

  // Decide the stream pass: it runs when the product is streamable and
  // either the plan forces it (options.stream) or at least one analysis
  // rides it. Everything that wants the edges — file writers, sink-backed
  // analyses, the collector that materializes for kernel-backed analyses —
  // shares the ONE pass through a per-partition TeeSink.
  bool want_stream = plan.options.stream;
  if (plan.options.stream && !ctx.two_factor()) {
    bad_plan(
        "options.stream requires a 2-factor kron spec without loops/prune "
        "modifiers (got \"" +
        spec.to_string() + "\")");
  }
  for (const auto& a : analyses) want_stream = want_stream || a->wants_stream(ctx);
  const bool pass_runs = ctx.two_factor() && want_stream;

  bool needs_graph = false;
  for (const auto& a : analyses) needs_graph = needs_graph || a->needs_graph(ctx);
  // A non-stream run that must write output materializes and writes below.
  const bool write_materialized = !plan.options.output.empty() && !pass_runs;

  std::vector<std::unique_ptr<EdgeSink>> pass_sinks;   // own the tees
  std::vector<std::unique_ptr<std::ofstream>> files;   // output streams
  std::vector<std::vector<EdgeSink*>> analysis_sinks(analyses.size());

  if (pass_runs) {
    std::vector<CooCollectorSink*> collectors;
    const bool binary = plan.options.format == "binary";
    const bool collect = needs_graph && !ctx.graph_ready();
    StageTiming st{"stream", 0, 0, 0};
    obs::Span span("stage:stream");
    const util::WallTimer w;
    const util::CpuTimer c;
    pass_sinks = stream_parallel(
        ctx.factors()[0], ctx.factors()[1], plan.options.threads,
        [&](std::uint64_t part,
            std::uint64_t nparts) -> std::unique_ptr<EdgeSink> {
          std::vector<std::unique_ptr<EdgeSink>> children;
          if (!plan.options.output.empty()) {
            const std::string name =
                nparts == 1 ? plan.options.output
                            : plan.options.output + ".part" +
                                  std::to_string(part);
            files.push_back(std::make_unique<std::ofstream>(
                name, binary ? std::ios::binary : std::ios::out));
            if (!*files.back()) {
              throw std::runtime_error("cannot open " + name);
            }
            if (binary) {
              children.push_back(
                  std::make_unique<BinaryEdgeSink>(*files.back()));
            } else {
              children.push_back(
                  std::make_unique<TextEdgeSink>(*files.back()));
            }
          }
          for (std::size_t i = 0; i < analyses.size(); ++i) {
            if (auto sink = analyses[i]->make_sink(ctx, part, nparts)) {
              analysis_sinks[i].push_back(sink.get());
              children.push_back(std::move(sink));
            }
          }
          if (collect) {
            auto col = std::make_unique<CooCollectorSink>();
            collectors.push_back(col.get());
            children.push_back(std::move(col));
          }
          return std::make_unique<TeeSink>(std::move(children));
        },
        plan.options.batch_size);
    st.wall_s = w.seconds();
    st.cpu_s = c.seconds();
    esz total = 0;
    for (const auto& s : pass_sinks) total += s->edges_consumed();
    st.edges = total;
    span.arg("edges", total).arg("partitions", pass_sinks.size());
    obs::counter("api.edges_streamed").add(total);
    report.stages.push_back(st);
    report.streamed = true;
    report.partitions = static_cast<unsigned>(pass_sinks.size());
    report.stored_entries = total;

    if (collect) {
      // Per-partition merge in partition order: the concatenation is
      // exactly the single-threaded stream's edge multiset, so the
      // materialized graph is identical at every partition count.
      StageTiming mt{"materialize", 0, 0, 0};
      obs::Span mspan("stage:materialize");
      const util::WallTimer mw;
      const util::CpuTimer mc;
      std::vector<std::pair<vid, vid>> edges;
      edges.reserve(total);
      for (CooCollectorSink* col : collectors) {
        edges.insert(edges.end(), col->edges().begin(), col->edges().end());
      }
      ctx.set_graph(Graph::from_edges(report.num_vertices, edges, false));
      mt.wall_s = mw.seconds();
      mt.cpu_s = mc.seconds();
      mt.edges = total;
      report.stages.push_back(mt);
    }
  } else if ((needs_graph || write_materialized) && !ctx.graph_ready()) {
    StageTiming mt{"materialize", 0, 0, 0};
    obs::Span mspan("stage:materialize");
    const util::WallTimer mw;
    const util::CpuTimer mc;
    mt.edges = ctx.graph().nnz();  // forces the build
    report.stored_entries = mt.edges;
    mt.wall_s = mw.seconds();
    mt.cpu_s = mc.seconds();
    report.stages.push_back(mt);
  }

  if (write_materialized) {
    StageTiming wt{"write", 0, 0, 0};
    obs::Span wspan("stage:write");
    const util::WallTimer ww;
    const util::CpuTimer wc;
    if (plan.options.format == "binary") {
      // The validated format contract holds on the materialized path too:
      // raw native-endian u64 pairs, one record per stored entry.
      std::ofstream file(plan.options.output, std::ios::binary);
      if (!file) {
        throw std::runtime_error("cannot open " + plan.options.output);
      }
      BinaryEdgeSink sink(file);
      const auto& m = ctx.graph().matrix();
      std::vector<kron::EdgeRecord> batch;
      batch.reserve(kDefaultBatchSize);
      for (vid u = 0; u < m.rows(); ++u) {
        for (const vid v : m.row_cols(u)) {
          batch.push_back({u, v});
          if (batch.size() == kDefaultBatchSize) {
            sink.consume(batch);
            batch.clear();
          }
        }
      }
      if (!batch.empty()) sink.consume(batch);
      sink.finish();
    } else {
      io::write_edge_list(ctx.graph(), plan.options.output);
    }
    wt.wall_s = ww.seconds();
    wt.cpu_s = wc.seconds();
    wt.edges = ctx.graph().nnz();
    report.stages.push_back(wt);
  }

  for (std::size_t i = 0; i < analyses.size(); ++i) {
    obs::Span span("analyze:", analyses[i]->name());
    const util::WallTimer w;
    AnalysisReport ar = analyses[i]->execute(
        ctx, std::span<EdgeSink* const>(analysis_sinks[i].data(),
                                        analysis_sinks[i].size()));
    ar.name = analyses[i]->name();
    ar.wall_s = w.seconds();
    span.arg("pass", ar.pass);
    obs::counter("api.analyses_run").add();
    report.pass = report.pass && ar.pass;
    report.analyses.push_back(std::move(ar));
  }

  report.metadata = util::run_metadata(plan.options.batch_size);
  report.total_wall_s = total_wall.seconds();
  report.total_cpu_s = total_cpu.seconds();
  report.peak_rss_bytes = util::peak_rss_bytes();
  report.counters = obs::CounterRegistry::delta(
      counters_start, obs::CounterRegistry::instance().snapshot());
  return report;
}

}  // namespace kronotri::api
