#include "api/registry.hpp"

#include <mutex>
#include <stdexcept>

#include "core/io.hpp"
#include "gen/classic.hpp"
#include "gen/one_triangle_pa.hpp"
#include "gen/prune.hpp"
#include "gen/random.hpp"
#include "gen/rmat.hpp"
#include "kron/multi.hpp"

namespace kronotri::api {

void GeneratorRegistry::add(std::string family, std::string help,
                            Factory factory) {
  const std::unique_lock lock(mutex_);
  if (factories_.emplace(family, factory).second) {
    help_.emplace_back(family, std::move(help));
  } else {
    factories_[family] = std::move(factory);
    for (auto& [name, text] : help_) {
      if (name == family) text = help;
    }
  }
}

bool GeneratorRegistry::contains(const std::string& family) const {
  const std::shared_lock lock(mutex_);
  return family == "kron" || factories_.count(family) > 0;
}

Graph GeneratorRegistry::build_unlocked(const GraphSpec& spec) const {
  Graph g = [&] {
    if (spec.is_kron()) {
      return kron::KronChain(build_factors_unlocked(spec)).materialize();
    }
    const auto it = factories_.find(spec.family);
    if (it == factories_.end()) {
      throw std::invalid_argument("GeneratorRegistry: unknown family \"" +
                                  spec.family + "\"");
    }
    return it->second(spec);
  }();
  if (spec.get_bool("prune", false)) {
    g = gen::prune_to_one_triangle(g, spec.get_uint("seed", 0));
  }
  if (spec.get_bool("loops", false)) g = g.with_all_self_loops();
  return g;
}

Graph GeneratorRegistry::build(const GraphSpec& spec) const {
  const std::shared_lock lock(mutex_);
  return build_unlocked(spec);
}

Graph GeneratorRegistry::build(std::string_view spec_text) const {
  return build(GraphSpec::parse(spec_text));
}

std::vector<Graph> GeneratorRegistry::build_factors_unlocked(
    const GraphSpec& spec) const {
  std::vector<Graph> out;
  if (!spec.is_kron()) {
    out.push_back(build_unlocked(spec));
    return out;
  }
  out.reserve(spec.factors.size());
  for (const GraphSpec& f : spec.factors) out.push_back(build_unlocked(f));
  return out;
}

std::vector<Graph> GeneratorRegistry::build_factors(
    const GraphSpec& spec) const {
  const std::shared_lock lock(mutex_);
  return build_factors_unlocked(spec);
}

std::vector<std::pair<std::string, std::string>> GeneratorRegistry::families()
    const {
  const std::shared_lock lock(mutex_);
  auto out = help_;
  out.emplace_back("kron",
                   "kron:(spec)x(spec)[x(spec)…] — Kronecker product of the "
                   "factor specs (materialized when built as one graph)");
  return out;
}

GeneratorRegistry& GeneratorRegistry::builtin() {
  static GeneratorRegistry* reg = [] {
    auto* r = new GeneratorRegistry();
    r->add("clique", "K_n: n (loops=1 gives J_n = K_n + I)",
           [](const GraphSpec& s) { return gen::clique(s.get_uint("n", 5)); });
    r->add("cycle", "cycle on n >= 3 vertices: n",
           [](const GraphSpec& s) { return gen::cycle(s.get_uint("n", 5)); });
    r->add("path", "path on n vertices: n",
           [](const GraphSpec& s) { return gen::path(s.get_uint("n", 5)); });
    r->add("star", "star, vertex 0 joined to 1…n-1: n",
           [](const GraphSpec& s) { return gen::star(s.get_uint("n", 5)); });
    r->add("bipartite", "complete bipartite K_{a,b}: a, b",
           [](const GraphSpec& s) {
             return gen::complete_bipartite(s.get_uint("a", 3),
                                            s.get_uint("b", 3));
           });
    r->add("hubcycle", "the Ex. 2 / Fig. 3 hub-cycle graph (no params)",
           [](const GraphSpec&) { return gen::hub_cycle(); });
    r->add("er", "Erdős–Rényi G(n,p): n, p, seed",
           [](const GraphSpec& s) {
             return gen::erdos_renyi(s.get_uint("n", 1000),
                                     s.get_double("p", 0.01),
                                     s.get_uint("seed", 1));
           });
    r->add("er-m", "Erdős–Rényi G(n,m), exactly m edges: n, m, seed",
           [](const GraphSpec& s) {
             return gen::erdos_renyi_m(s.get_uint("n", 1000),
                                       s.get_uint("m", 2000),
                                       s.get_uint("seed", 1));
           });
    r->add("ba", "Barabási–Albert preferential attachment: n, m, seed",
           [](const GraphSpec& s) {
             return gen::barabasi_albert(s.get_uint("n", 1000),
                                         s.get_uint("m", 3),
                                         s.get_uint("seed", 1));
           });
    r->add("hk", "Holme–Kim (BA + triad closure): n, m, p, seed",
           [](const GraphSpec& s) {
             return gen::holme_kim(s.get_uint("n", 1000), s.get_uint("m", 3),
                                   s.get_double("p", 0.5),
                                   s.get_uint("seed", 1));
           });
    r->add("rmat",
           "R-MAT / stochastic Kronecker: scale, ef (edge factor), a, b, c, "
           "seed (d = 1-a-b-c)",
           [](const GraphSpec& s) {
             gen::RmatParams p;
             p.a = s.get_double("a", p.a);
             p.b = s.get_double("b", p.b);
             p.c = s.get_double("c", p.c);
             p.d = s.get_double("d", 1.0 - p.a - p.b - p.c);
             return gen::rmat(
                 static_cast<unsigned>(s.get_uint("scale", 10)),
                 s.get_uint("ef", 16), p, s.get_uint("seed", 1));
           });
    r->add("onetri",
           "§III.D(b) one-triangle-PA (scale-free, Δ ≤ 1): n, seed",
           [](const GraphSpec& s) {
             return gen::one_triangle_pa(s.get_uint("n", 1000),
                                         s.get_uint("seed", 1));
           });
    // Real datasets as specs: run plans and CLI graph arguments reference
    // edge-list files through the same registry as the synthetic families.
    // (Paths containing ',' or ')' cannot be spelled in the spec grammar.)
    r->add("file",
           "edge-list file: path, symmetrize=0/1, drop_loops=0/1",
           [](const GraphSpec& s) {
             const std::string path = s.get("path", "");
             if (path.empty()) {
               throw std::invalid_argument("file: param path is required");
             }
             io::ReadOptions opts;
             opts.symmetrize = s.get_bool("symmetrize", false);
             opts.drop_self_loops = s.get_bool("drop_loops", false);
             return io::read_edge_list(path, opts);
           });
    return r;
  }();
  return *reg;
}

}  // namespace kronotri::api
