// AnalysisRegistry — the one place analyses come from.
//
// The paper's workflow is generate → measure diverse triangle statistics →
// validate against the closed forms. GeneratorRegistry covers the first
// step; this module covers the rest: every analysis the library ships
// (census, degree, truss, components, clustering, egonet, labeled-census,
// validate) is registered under a string key as a factory from a parameter
// map to an Analysis object, so run plans, the CLI and any future scenario
// request analyses declaratively instead of hand-wiring kernel calls.
//
// An Analysis can consume the job in two ways, and the run engine picks
// the cheapest combination:
//   * sink-backed — make_sink() returns one EdgeSink per partition, and
//     the analysis rides THE single stream_parallel pass (composed with
//     every other sink-backed analysis through one TeeSink per partition);
//   * factor/graph-backed — execute() reads the PlanContext: the factor
//     list, the lazily built oracle/view/chain, or the materialized graph
//     (needs_graph() tells the engine to materialize — during the stream
//     pass via a CooCollectorSink when one runs anyway, by building the
//     spec otherwise).
// Either way execute() produces an AnalysisReport: a pass/fail verdict,
// a human-readable rendering, and a structured JSON payload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/sink.hpp"
#include "api/spec.hpp"
#include "core/graph.hpp"
#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "kron/view.hpp"
#include "util/json.hpp"

namespace kronotri::api {

/// Execution options shared by the whole run (plan "options" object).
struct RunOptions {
  /// stream_parallel partitions/workers (0 = hardware concurrency).
  unsigned threads = 1;
  std::size_t batch_size = kDefaultBatchSize;
  /// Default accumulator budget for budgeted analyses (validate).
  std::size_t mem_budget_bytes = 64ull << 20;
  /// Default generator seed, injected into the root spec iff it names a
  /// non-kron family without its own seed param.
  std::uint64_t seed = 0;
  /// When non-empty, the generated edge list is written here (text or
  /// binary); a multi-partition stream writes output.partN per partition.
  std::string output;
  std::string format = "text";  ///< "text" | "binary" (stream output only)
  /// Force the generate→sink stream pass even with no sink-backed
  /// analyses (the `generate --stream` contract: never materialize C).
  bool stream = false;
  /// Multi-process execution (runner::execute): number of forked worker
  /// processes the plan is decomposed over; <= 1 runs in-process.
  unsigned workers = 1;
  /// Per-attempt wall-clock timeout for one worker (seconds; 0 = none).
  /// A worker past its deadline is SIGKILLed and its unit re-dispatched.
  double shard_timeout_s = 0;
  /// Re-dispatch budget per work unit beyond the first attempt; exhausting
  /// it fails the whole run with a structured error report.
  unsigned max_retries = 2;
  /// Fault-injection spec (util::fault grammar) forwarded to workers;
  /// empty defers to the KRONOTRI_FAULT environment variable.
  std::string fault;
};

/// Throws std::invalid_argument naming the offending key and listing the
/// accepted ones — the one "actionable unknown key" message shared by
/// analysis params and plan-document keys.
[[noreturn]] void throw_unknown_key(const std::string& context,
                                    const std::string& key,
                                    std::initializer_list<const char*> known);

/// Typed, validated view over an analysis's key=value parameter map.
class Params {
 public:
  Params(std::string analysis, std::map<std::string, std::string> kv)
      : analysis_(std::move(analysis)), kv_(std::move(kv)) {}

  [[nodiscard]] const std::string& analysis() const noexcept {
    return analysis_;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) > 0;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Byte count with K/M/G suffix (util::parse_byte_count).
  [[nodiscard]] std::size_t get_bytes(const std::string& key,
                                      std::size_t fallback) const;

  /// Throws std::invalid_argument unless every supplied key is in `known`,
  /// naming the offending key and listing the accepted ones — the
  /// "actionable error" contract of the registry.
  void require_known(std::initializer_list<const char*> known) const;

  [[nodiscard]] const std::map<std::string, std::string>& raw() const noexcept {
    return kv_;
  }

 private:
  std::string analysis_;
  std::map<std::string, std::string> kv_;
};

/// Everything an Analysis may read about the job. Factor-side structures
/// (view, oracle, chain) are built lazily ONCE and shared by every
/// analysis — census and validate both need the oracle, but it is
/// constructed a single time per run. The context owns the factors.
class PlanContext {
 public:
  PlanContext(GraphSpec spec, RunOptions options, std::vector<Graph> factors);

  [[nodiscard]] const GraphSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }
  [[nodiscard]] const std::vector<Graph>& factors() const noexcept {
    return factors_;
  }

  /// True when the job is a Kronecker product of exactly two factors with
  /// no outer modifiers — the regime where the implicit view, the
  /// two-factor oracle and the partitioned edge stream all apply.
  [[nodiscard]] bool two_factor() const noexcept { return two_factor_; }
  /// True for any multi-factor product without outer modifiers (k >= 2).
  [[nodiscard]] bool is_product() const noexcept { return product_; }

  /// Implicit product view / closed-form oracle; require two_factor().
  [[nodiscard]] const kron::KronGraphView& view() const;
  [[nodiscard]] const kron::TriangleOracle& oracle() const;
  /// k-factor chain over the factor list; requires is_product().
  [[nodiscard]] const kron::KronChain& chain() const;

  /// The explicit graph of the job: the single built graph for non-product
  /// specs, the materialized product otherwise (built on first use, or
  /// injected by the run engine from the stream pass's collector).
  [[nodiscard]] const Graph& graph() const;
  [[nodiscard]] bool graph_ready() const noexcept;
  void set_graph(Graph g);

 private:
  GraphSpec spec_;
  RunOptions options_;
  std::vector<Graph> factors_;
  bool two_factor_ = false;
  bool product_ = false;
  mutable std::optional<kron::KronGraphView> view_;
  mutable std::optional<kron::TriangleOracle> oracle_;
  mutable std::optional<kron::KronChain> chain_;
  mutable std::optional<Graph> graph_;
};

/// One analysis's typed result inside a RunReport.
struct AnalysisReport {
  std::string name;
  bool pass = true;
  double wall_s = 0;
  /// Human-readable rendering — what the CLI prints for this stage.
  std::string text;
  /// Structured results (the `data` member of the report JSON).
  util::json::Value data;
};

class Analysis {
 public:
  virtual ~Analysis() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Whether execute() will read ctx.graph(). The engine materializes the
  /// product before execute() when any analysis answers true.
  [[nodiscard]] virtual bool needs_graph(const PlanContext&) const {
    return false;
  }

  /// Whether make_sink() would return a sink in this context — lets the
  /// engine decide if a stream pass is worth running without constructing
  /// throwaway sinks. Must agree with make_sink().
  [[nodiscard]] virtual bool wants_stream(const PlanContext&) const {
    return false;
  }

  /// Per-partition stream sink, or nullptr when this analysis does not
  /// consume the stream in the given context. Called once per partition on
  /// the spawning thread; the returned sinks come back to execute() in
  /// partition order.
  virtual std::unique_ptr<EdgeSink> make_sink(const PlanContext&,
                                              std::uint64_t /*part*/,
                                              std::uint64_t /*nparts*/) {
    return nullptr;
  }

  /// Runs the analysis. `sinks` holds this analysis's per-partition sinks
  /// in partition order (empty when not sink-backed or no pass ran).
  virtual AnalysisReport execute(PlanContext& ctx,
                                 std::span<EdgeSink* const> sinks) = 0;

 protected:
  /// Pre-filled report (name set, pass true).
  [[nodiscard]] AnalysisReport report() const {
    AnalysisReport r;
    r.name = name_;
    return r;
  }

 private:
  std::string name_;
};

/// String-keyed analysis factories — the mirror of GeneratorRegistry, with
/// the same thread-safety contract: builtin()'s lazy construction is a
/// magic static, lookups/builds take a shared lock, add() an exclusive one,
/// so service worker threads may race on first lookup and applications may
/// register analyses while a server is executing plans.
class AnalysisRegistry {
 public:
  using ParamMap = std::map<std::string, std::string>;
  using Factory = std::function<std::unique_ptr<Analysis>(const Params&)>;

  /// Registers (or replaces) an analysis. `help` is the one-line parameter
  /// summary printed by the CLI listing.
  void add(std::string name, std::string help, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Builds the named analysis; the factory validates `params`
  /// (unknown keys throw std::invalid_argument with the accepted list).
  /// Unknown analysis names throw, listing every registered name.
  [[nodiscard]] std::unique_ptr<Analysis> build(const std::string& name,
                                                const ParamMap& params) const;

  /// (name, help) pairs in registration order, for listings.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> families()
      const;

  /// The process-wide registry, pre-populated with every built-in analysis.
  static AnalysisRegistry& builtin();

 private:
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, std::string>> help_;  // insertion order
  std::map<std::string, Factory> factories_;
};

}  // namespace kronotri::api
