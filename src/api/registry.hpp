// GeneratorRegistry — the one place graphs come from.
//
// Every generator family the library ships (the deterministic validation
// instruments of gen/classic, the random models of gen/random + gen/rmat +
// gen/one_triangle_pa, and `kron:`-composed products over arbitrary factor
// specs) is registered under a string key, so the CLI, examples, benches and
// any future scenario construct graphs from a GraphSpec instead of
// hand-wiring free-function calls. New workloads are one add() away.
#pragma once

#include <functional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/spec.hpp"
#include "core/graph.hpp"

namespace kronotri::api {

/// Thread-safety: builtin()'s lazy construction is a C++11 magic static
/// (safe to race on first lookup from service worker threads), and every
/// member takes a reader/writer lock — concurrent contains()/build() run
/// shared, add() exclusive — so applications may keep registering scenarios
/// while a server is already executing plans.
class GeneratorRegistry {
 public:
  using Factory = std::function<Graph(const GraphSpec&)>;

  /// Registers (or replaces) a family. `help` is the one-line parameter
  /// summary printed by the CLI's family listing.
  void add(std::string family, std::string help, Factory factory);

  [[nodiscard]] bool contains(const std::string& family) const;

  /// Builds the graph a spec describes. Composite "kron" specs build every
  /// factor recursively and materialize the product via kron::KronChain.
  /// The universal modifier params are applied afterwards, in order:
  /// prune=1 (§III.D(a) reduction to Δ ≤ 1, with optional seed param as the
  /// tie-break seed), then loops=1 (A + I). Throws std::invalid_argument on
  /// unknown families.
  [[nodiscard]] Graph build(const GraphSpec& spec) const;
  [[nodiscard]] Graph build(std::string_view spec_text) const;

  /// Builds the factor list of a spec without forming the product: a "kron"
  /// spec yields one graph per factor (outer modifiers are NOT applied — a
  /// kron spec's own loops/prune refer to the product), anything else yields
  /// the single built graph. This is what streaming pipelines consume.
  [[nodiscard]] std::vector<Graph> build_factors(const GraphSpec& spec) const;

  /// (family, help) pairs in sorted order, for --list / usage output.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> families()
      const;

  /// The process-wide registry, pre-populated with every built-in family.
  /// Mutable so applications can register their own scenarios at startup.
  static GeneratorRegistry& builtin();

 private:
  /// build()/build_factors() recurse into each other for kron specs; the
  /// unlocked cores keep that recursion under the ONE shared lock taken at
  /// the public entry (recursively re-locking a shared_mutex is UB).
  [[nodiscard]] Graph build_unlocked(const GraphSpec& spec) const;
  [[nodiscard]] std::vector<Graph> build_factors_unlocked(
      const GraphSpec& spec) const;

  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, std::string>> help_;  // insertion order
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace kronotri::api
