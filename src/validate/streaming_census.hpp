// Sharded streaming triangle census over implicit Kronecker products.
//
// The paper's headline claim is validating per-vertex and per-edge triangle
// statistics at scales where C = A ⊗ B cannot be materialized. This engine
// computes the FULL census of C — t_C[p] for every product vertex and
// Δ_C(e) for every product edge — directly from the factor representation,
// without ever forming C's edge list:
//
//   * Product vertices are partitioned into contiguous shards sized by a
//     memory budget (HavoqGT-style partitioned processing on one node; a
//     shard is also the natural multi-node work unit).
//   * A shard owns its vertices' counters plus the counters of every edge
//     whose MIN endpoint lies in the shard. Every triangle {u,v,w} is seen
//     from each corner as a wedge: for center u, each adjacent pair
//     {a, b} ⊆ N(u), a < b, contributes to t[u] and — exactly when u is the
//     min endpoint — to Δ(u,a) / Δ(u,b). Edge (a,b) is counted by center
//     min(a,b). Ownership makes every counter single-writer: shards never
//     exchange contributions (the engine is communication-free, the same
//     discipline that makes the PR-2 census atomic-free), so counts are
//     bit-identical to triangle::CensusWorkspace on the materialized
//     product at any thread count and any shard count.
//   * Wedges are enumerated from the factors: N(u) is the odometer product
//     of the factor adjacency rows (sorted, with per-factor coordinates
//     kept alongside), and a wedge {a, b} closes iff every factor has the
//     corresponding coordinate edge — k sorted-row membership queries,
//     O(log d) each, never touching C.
//
// Work is Σ_p C(d(p), 2) wedge closures — the price of exact per-vertex
// counts with only shard-local memory (an oriented enumeration would need
// cross-shard writes for the two non-minimal corners). Accumulator memory
// is O(shard vertices + shard-owned edges), tracked and reported so callers
// can assert the product was censused under a budget its edge list exceeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace kronotri::kron {
class KronGraphView;
class KronChain;
}  // namespace kronotri::kron

namespace kronotri::validate {

struct StreamingOptions {
  /// Target size of one shard's accumulator blocks (vertex counters +
  /// owned-edge counters + offsets). A shard always holds at least one
  /// vertex, so a single vertex whose owned edges exceed the budget is
  /// processed alone rather than rejected.
  std::size_t mem_budget_bytes = 64ull << 20;

  /// Force exactly this many (equal-vertex-range) shards instead of
  /// deriving boundaries from the budget; 0 = use the budget.
  std::uint64_t force_shards = 0;

  /// Restrict the run to work unit `unit` of `units`: the report layer
  /// plans the full shard list as usual (budget-derived boundaries are
  /// identical in every process) and then processes only the unit's
  /// contiguous slice of shard indices — the decomposition the
  /// multi-process runner forks over. units == 0 disables (full run).
  std::uint64_t unit = 0;
  std::uint64_t units = 0;
};

/// Balanced contiguous index subrange [lo, hi) of `total` items for work
/// unit `unit` of `units` (empty for the tail units when total < units).
inline std::pair<std::size_t, std::size_t> unit_index_range(
    std::size_t total, std::uint64_t unit, std::uint64_t units) {
  return {static_cast<std::size_t>(total * unit / units),
          static_cast<std::size_t>(total * (unit + 1) / units)};
}

/// Contiguous product-vertex range [lo, hi) processed as one unit.
struct ShardRange {
  vid lo = 0;
  vid hi = 0;
};

/// Aggregates of one full census run.
struct StreamingStats {
  count_t total_triangles = 0;   ///< τ(C) on the loop-free simple part
  count_t vertex_count_sum = 0;  ///< Σ_p t_C[p] = 3·τ
  count_t edge_count_sum = 0;    ///< Σ_e Δ_C(e) = 3·τ
  count_t wedge_checks = 0;      ///< factor-membership closures performed
  esz num_edges = 0;             ///< undirected non-loop edges of C streamed
  std::size_t num_shards = 0;
  std::size_t peak_accumulator_bytes = 0;  ///< max over shards, blocks only
};

class StreamingCensus {
 public:
  /// Census of C = A ⊗ B. Factors must be undirected (same Def. 5/6
  /// precondition as triangle::CensusWorkspace; throws
  /// std::invalid_argument otherwise) and must outlive the engine. Self
  /// loops in the factors are fine — the census runs on C − I∘C.
  StreamingCensus(const Graph& a, const Graph& b, StreamingOptions opt = {});

  /// Same product, spelled as the implicit view the rest of the library
  /// passes around.
  explicit StreamingCensus(const kron::KronGraphView& view,
                           StreamingOptions opt = {});

  /// Census of a k-factor chain C = A₁ ⊗ … ⊗ A_k (k ≥ 1). The chain must
  /// outlive the engine.
  explicit StreamingCensus(const kron::KronChain& chain,
                           StreamingOptions opt = {});

  [[nodiscard]] vid num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_factors() const noexcept {
    return factors_.size();
  }

  /// Shard boundaries this engine will process (fixed at construction,
  /// independent of thread count).
  [[nodiscard]] const std::vector<ShardRange>& shards() const noexcept {
    return shards_;
  }

  /// One processed shard, valid only inside the run() consumer callback.
  class Shard {
   public:
    [[nodiscard]] vid lo() const noexcept { return range_.lo; }
    [[nodiscard]] vid hi() const noexcept { return range_.hi; }

    /// t_C[lo..hi) — exact triangle participation of the shard's vertices.
    [[nodiscard]] std::span<const count_t> vertex_counts() const noexcept {
      return {vertex_.data(), vertex_.size()};
    }

    [[nodiscard]] esz num_owned_edges() const noexcept {
      return offsets_.back();
    }

    /// Invokes fn(u, v, Δ_C(u,v)) for every edge owned by the shard
    /// (u ∈ [lo, hi), u < v), u ascending and v ascending within u.
    void for_each_owned_edge(
        const std::function<void(vid, vid, count_t)>& fn) const;

   private:
    friend class StreamingCensus;
    Shard(const StreamingCensus& engine, ShardRange range,
          const std::vector<count_t>& vertex, const std::vector<count_t>& edge,
          const std::vector<esz>& offsets)
        : engine_(&engine),
          range_(range),
          vertex_(vertex),
          edge_(edge),
          offsets_(offsets) {}

    const StreamingCensus* engine_;
    ShardRange range_;
    const std::vector<count_t>& vertex_;
    const std::vector<count_t>& edge_;
    const std::vector<esz>& offsets_;
  };

  using ShardConsumer = std::function<void(const Shard&)>;

  /// Runs the full census, shard by shard in ascending vertex order,
  /// invoking `consumer` (if any) once per shard on the spawning thread.
  /// Deterministic: identical counts, shard boundaries and stats at every
  /// OMP thread count.
  StreamingStats run(const ShardConsumer& consumer = {}) const;

  /// Runs only shards [begin, end) of shards() — the multi-process
  /// runner's work unit. Per-shard counts are identical to the shards'
  /// slice of a full run() (ownership makes shards independent), so
  /// disjoint subranges merge additively. total_triangles is only
  /// computed when the range covers every shard: a partial
  /// vertex_count_sum need not be divisible by 3.
  StreamingStats run_shards(std::size_t begin, std::size_t end,
                            const ShardConsumer& consumer = {}) const;

  // -- exposed for tests / the report layer --------------------------------

  /// #neighbors of p with id > p (loop excluded) in O(k log d), analytic —
  /// no neighbor enumeration. This is the shard planner's per-vertex
  /// owned-edge count.
  [[nodiscard]] esz upper_degree(vid p) const;

 private:
  explicit StreamingCensus(std::vector<const Graph*> factors,
                           StreamingOptions opt);

  void plan_shards();
  void process_shard(ShardRange range, std::vector<count_t>& vertex,
                     std::vector<count_t>& edge, std::vector<esz>& offsets,
                     count_t& wedge_checks) const;

  /// Decomposes p into per-factor coordinates (mixed radix, left factor
  /// most significant), writing into coords[0..k).
  void decompose(vid p, vid* coords) const noexcept;

  /// Materializes the sorted neighbor list of p (self excluded) with the
  /// per-factor coordinates of each neighbor kept alongside: ids[i] is the
  /// product id, coords[i*k .. i*k+k) its factor coordinates.
  void neighbors_with_coords(vid p, const vid* p_coords, std::vector<vid>& ids,
                             std::vector<vid>& coords) const;

  std::vector<const Graph*> factors_;
  std::vector<vid> radix_;   ///< per-factor vertex counts
  std::vector<vid> weight_;  ///< mixed-radix weights (suffix products)
  vid n_ = 1;
  StreamingOptions opt_;
  std::vector<ShardRange> shards_;
};

}  // namespace kronotri::validate
