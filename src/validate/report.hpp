// ValidationReport — measured streaming census vs closed-form predictions.
//
// The paper's validation loop, packaged: run the sharded StreamingCensus
// over the implicit product, and compare every measured per-vertex and
// per-edge triangle count against the factor-side closed forms (the
// kron::TriangleOracle Thm 1/2 / Cor 1/2 expressions for two factors, the
// KronChain generalization for longer chains). Per *Same Stats, Different
// Graphs*, the report keeps the full measured count distributions
// (histograms), not just totals, plus max-abs-error and a pass/fail
// verdict — the artifact the CLI prints and CI gates on.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>

#include "core/graph.hpp"
#include "util/json.hpp"
#include "validate/streaming_census.hpp"

namespace kronotri::kron {
class KronChain;
}

namespace kronotri::validate {

struct ValidationReport {
  std::string spec;  ///< human-readable product description (caller-set)
  vid num_vertices = 0;
  count_t num_edges = 0;  ///< undirected non-loop edges of C
  std::size_t num_factors = 0;
  std::size_t mem_budget_bytes = 0;

  count_t measured_total = 0;
  count_t predicted_total = 0;

  count_t vertices_checked = 0;
  count_t vertex_mismatches = 0;
  count_t vertex_max_abs_err = 0;
  count_t edges_checked = 0;
  count_t edge_mismatches = 0;
  count_t edge_max_abs_err = 0;

  /// Measured count → frequency over all vertices / all undirected edges.
  std::map<count_t, count_t> vertex_histogram;
  std::map<count_t, count_t> edge_histogram;

  /// Closed-form vertex histogram (factor-side, TriangleOracle) when the
  /// product's triangle formula is a single Kronecker term; empty (and
  /// histogram_checked = false) otherwise.
  std::map<count_t, count_t> predicted_vertex_histogram;
  bool histogram_checked = false;

  StreamingStats stats;

  /// True while the report covers only a shard subset (StreamingOptions
  /// unit/units) — a fragment of the multi-process runner. Total and
  /// histogram identities only hold on the whole census, so a partial
  /// report passes on pointwise mismatches alone; merge() + finalize()
  /// restore the full contract.
  bool partial = false;

  [[nodiscard]] bool pass() const noexcept {
    if (partial) return vertex_mismatches == 0 && edge_mismatches == 0;
    return vertex_mismatches == 0 && edge_mismatches == 0 &&
           measured_total == predicted_total &&
           stats.vertex_count_sum == 3 * measured_total &&
           stats.edge_count_sum == 3 * measured_total &&
           (!histogram_checked ||
            vertex_histogram == predicted_vertex_histogram);
  }

  /// Folds a fragment covering a DISJOINT shard subset of the same census
  /// into this one: counters add, maxima take max, histograms sum.
  /// Shard ownership makes the fold exact — no shard contributes to two
  /// fragments' counters.
  void merge(const ValidationReport& other);

  /// Marks a fully merged report complete again: recomputes the measured
  /// total from the merged vertex sum and drops `partial`, restoring the
  /// strict pass() contract. The result is field-identical to the
  /// single-process report when every unit was merged exactly once.
  void finalize_merged();

  /// Human-readable summary (the `kronotri validate --spec` output).
  void print(std::ostream& os) const;

  /// Single JSON object with every scalar field plus the histograms — the
  /// building block of BENCH_validate.json, `validate --json` and the
  /// RunReport `validate` stage.
  [[nodiscard]] util::json::Value to_json() const;
  void write_json(std::ostream& os) const;

  /// Inverse of to_json() — how the coordinator reads worker fragments.
  static ValidationReport from_json(const util::json::Value& v);

  /// Content digest (hash64 of the canonical JSON) — what the runner's
  /// journal records per fragment so a resumed unit is provably the same
  /// result, not merely a file that parses.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Streams the census of C = A ⊗ B under `opt` and validates it against the
/// two-factor closed forms (any self-loop configuration). Factors must be
/// undirected.
ValidationReport validate_product(const Graph& a, const Graph& b,
                                  const StreamingOptions& opt = {});

/// Same for a k-factor chain; predictions use the KronChain formulas, which
/// require at least one loop-free factor (std::invalid_argument otherwise).
ValidationReport validate_chain(const kron::KronChain& chain,
                                const StreamingOptions& opt = {});

}  // namespace kronotri::validate
