#include "validate/streaming_census.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kron/multi.hpp"
#include "kron/view.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace kronotri::validate {

namespace {

/// A chain of k factors with ≥ 2 vertices each has ≥ 2^k product vertices,
/// so 64 factors already saturates the vid space — a fixed cap lets the hot
/// loops keep per-vertex coordinate state on the stack.
constexpr std::size_t kMaxFactors = 64;

std::vector<const Graph*> chain_factor_ptrs(const kron::KronChain& chain) {
  std::vector<const Graph*> fs;
  fs.reserve(chain.num_factors());
  for (std::size_t i = 0; i < chain.num_factors(); ++i) {
    fs.push_back(&chain.factor(i));
  }
  return fs;
}

}  // namespace

StreamingCensus::StreamingCensus(std::vector<const Graph*> factors,
                                 StreamingOptions opt)
    : factors_(std::move(factors)), opt_(opt) {
  if (factors_.empty()) {
    throw std::invalid_argument("StreamingCensus needs at least one factor");
  }
  if (factors_.size() > kMaxFactors) {
    throw std::invalid_argument("StreamingCensus: too many factors");
  }
  radix_.reserve(factors_.size());
  for (const Graph* f : factors_) {
    if (!f->is_undirected()) {
      throw std::invalid_argument(
          "streaming census (Def. 5/6) requires undirected factors — an "
          "undirected product needs every factor undirected");
    }
    radix_.push_back(f->num_vertices());
    n_ *= f->num_vertices();
  }
  weight_.assign(factors_.size(), 1);
  for (std::size_t i = factors_.size() - 1; i-- > 0;) {
    weight_[i] = weight_[i + 1] * radix_[i + 1];
  }
  plan_shards();
}

StreamingCensus::StreamingCensus(const Graph& a, const Graph& b,
                                 StreamingOptions opt)
    : StreamingCensus(std::vector<const Graph*>{&a, &b}, opt) {}

StreamingCensus::StreamingCensus(const kron::KronGraphView& view,
                                 StreamingOptions opt)
    : StreamingCensus(
          std::vector<const Graph*>{&view.factor_a(), &view.factor_b()}, opt) {}

StreamingCensus::StreamingCensus(const kron::KronChain& chain,
                                 StreamingOptions opt)
    : StreamingCensus(chain_factor_ptrs(chain), opt) {}

void StreamingCensus::decompose(vid p, vid* coords) const noexcept {
  for (std::size_t i = factors_.size(); i-- > 0;) {
    coords[i] = p % radix_[i];
    p /= radix_[i];
  }
}

esz StreamingCensus::upper_degree(vid p) const {
  const std::size_t k = factors_.size();
  vid coords[kMaxFactors];
  decompose(p, coords);
  // suffix[f] = Π_{i ≥ f} d_i(x_i): the free choices once factor f−1 fixed
  // the comparison.
  esz suffix[kMaxFactors + 1];
  suffix[k] = 1;
  for (std::size_t i = k; i-- > 0;) {
    suffix[i] = suffix[i + 1] * factors_[i]->out_degree(coords[i]);
  }
  // A neighbor tuple composes to an id > p exactly when its first differing
  // coordinate exceeds p's; a tuple can only agree on the prefix 0..f−1 if
  // every prefix factor has a self loop at its coordinate.
  esz total = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const auto row = factors_[f]->neighbors(coords[f]);
    const esz greater = static_cast<esz>(
        row.end() - std::upper_bound(row.begin(), row.end(), coords[f]));
    total += greater * suffix[f + 1];
    if (!factors_[f]->has_edge(coords[f], coords[f])) return total;
  }
  return total;  // all-equal tuple is p itself, not > p
}

void StreamingCensus::neighbors_with_coords(vid p, const vid* p_coords,
                                            std::vector<vid>& ids,
                                            std::vector<vid>& coords) const {
  const std::size_t k = factors_.size();
  ids.clear();
  coords.clear();
  std::span<const vid> rows[kMaxFactors];
  esz deg = 1;
  for (std::size_t i = 0; i < k; ++i) {
    rows[i] = factors_[i]->neighbors(p_coords[i]);
    deg *= rows[i].size();
  }
  if (deg == 0) return;
  ids.reserve(deg);
  coords.reserve(deg * k);

  // Odometer over the factor rows, left digit most significant; rows are
  // sorted, so composed ids come out ascending. value[i] is the partial sum
  // of the first i digits.
  std::size_t idx[kMaxFactors] = {};
  vid value[kMaxFactors + 1];
  value[0] = 0;
  for (std::size_t i = 0; i < k; ++i) {
    value[i + 1] = value[i] + rows[i][0] * weight_[i];
  }
  for (;;) {
    const vid id = value[k];
    if (id != p) {  // drop the self loop — the census runs on C − I∘C
      ids.push_back(id);
      for (std::size_t i = 0; i < k; ++i) coords.push_back(rows[i][idx[i]]);
    }
    std::size_t i = k;
    while (i > 0 && idx[i - 1] + 1 == rows[i - 1].size()) --i;
    if (i == 0) return;
    ++idx[i - 1];
    for (std::size_t j = i; j < k; ++j) idx[j] = 0;
    for (std::size_t j = i - 1; j < k; ++j) {
      value[j + 1] = value[j] + rows[j][idx[j]] * weight_[j];
    }
  }
}

void StreamingCensus::plan_shards() {
  shards_.clear();
  if (n_ == 0) return;
  if (opt_.force_shards > 0) {
    const std::uint64_t s = std::min<std::uint64_t>(opt_.force_shards, n_);
    for (std::uint64_t i = 0; i < s; ++i) {
      const vid lo = static_cast<vid>(n_ / s * i + std::min<vid>(i, n_ % s));
      const vid hi =
          static_cast<vid>(n_ / s * (i + 1) + std::min<vid>(i + 1, n_ % s));
      if (lo < hi) shards_.push_back({lo, hi});
    }
    return;
  }
  const std::size_t budget = std::max<std::size_t>(opt_.mem_budget_bytes, 1);
  // Chunked planning keeps the cost scan O(chunk) in memory: per-vertex
  // accumulator cost is one vertex counter, one offset slot, and one edge
  // counter per owned edge (upper_degree is analytic — no enumeration).
  constexpr vid kChunk = 1u << 15;
  std::vector<std::size_t> cost;
  vid lo = 0;
  std::size_t used = sizeof(esz);  // the offsets array's sentinel entry
  for (vid base = 0; base < n_; base += kChunk) {
    const vid end = std::min<vid>(n_, base + kChunk);
    cost.assign(static_cast<std::size_t>(end - base), 0);
#pragma omp parallel for schedule(static)
    for (std::int64_t uu = 0; uu < static_cast<std::int64_t>(end - base);
         ++uu) {
      cost[static_cast<std::size_t>(uu)] =
          sizeof(count_t) + sizeof(esz) +
          sizeof(count_t) *
              static_cast<std::size_t>(upper_degree(base + static_cast<vid>(uu)));
    }
    for (vid u = base; u < end; ++u) {
      const std::size_t c = cost[static_cast<std::size_t>(u - base)];
      if (u > lo && used + c > budget) {
        shards_.push_back({lo, u});
        lo = u;
        used = sizeof(esz);
      }
      used += c;
    }
  }
  shards_.push_back({lo, n_});
}

void StreamingCensus::process_shard(ShardRange range,
                                    std::vector<count_t>& vertex,
                                    std::vector<count_t>& edge,
                                    std::vector<esz>& offsets,
                                    count_t& wedge_checks) const {
  const vid lo = range.lo;
  const std::int64_t len = static_cast<std::int64_t>(range.hi - range.lo);
  const std::size_t k = factors_.size();

  offsets.assign(static_cast<std::size_t>(len) + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t uu = 0; uu < len; ++uu) {
    offsets[static_cast<std::size_t>(uu) + 1] =
        upper_degree(lo + static_cast<vid>(uu));
  }
  for (std::int64_t uu = 0; uu < len; ++uu) {
    offsets[static_cast<std::size_t>(uu) + 1] +=
        offsets[static_cast<std::size_t>(uu)];
  }
  vertex.assign(static_cast<std::size_t>(len), 0);
  edge.assign(offsets[static_cast<std::size_t>(len)], 0);

  count_t checks = 0;
#pragma omp parallel reduction(+ : checks)
  {
    std::vector<vid> ids, coords;
#pragma omp for schedule(dynamic, 16) nowait
    for (std::int64_t uu = 0; uu < len; ++uu) {
      const vid u = lo + static_cast<vid>(uu);
      vid ucoords[kMaxFactors];
      decompose(u, ucoords);
      neighbors_with_coords(u, ucoords, ids, coords);
      const std::size_t deg = ids.size();
      const std::size_t split = static_cast<std::size_t>(
          std::upper_bound(ids.begin(), ids.end(), u) - ids.begin());
      assert(deg - split == offsets[static_cast<std::size_t>(uu) + 1] -
                                offsets[static_cast<std::size_t>(uu)]);
      // Every counter below is owned by this u alone: vertex[uu] and the
      // owned-edge slice [offsets[uu], offsets[uu+1]) — single-writer, so
      // no atomics, no thread-local copies, no reduction.
      count_t t = 0;
      count_t* const eb = edge.data() + offsets[static_cast<std::size_t>(uu)];
      for (std::size_t i = 0; i + 1 < deg; ++i) {
        const vid* const ci = coords.data() + i * k;
        for (std::size_t j = i + 1; j < deg; ++j) {
          const vid* const cj = coords.data() + j * k;
          ++checks;
          bool closed = true;
          for (std::size_t f = 0; f < k; ++f) {
            if (!factors_[f]->has_edge(ci[f], cj[f])) {
              closed = false;
              break;
            }
          }
          if (!closed) continue;
          ++t;
          if (i >= split) ++eb[i - split];
          if (j >= split) ++eb[j - split];
        }
      }
      vertex[static_cast<std::size_t>(uu)] = t;
    }
  }
  wedge_checks = checks;
}

StreamingStats StreamingCensus::run(const ShardConsumer& consumer) const {
  return run_shards(0, shards_.size(), consumer);
}

StreamingStats StreamingCensus::run_shards(std::size_t begin, std::size_t end,
                                           const ShardConsumer& consumer)
    const {
  if (begin > end || end > shards_.size()) {
    throw std::out_of_range("StreamingCensus::run_shards: bad range");
  }
  StreamingStats st;
  st.num_shards = end - begin;
  std::vector<count_t> vertex, edge;
  std::vector<esz> offsets;
  for (std::size_t s = begin; s < end; ++s) {
    obs::Span span("validate:shard");
    span.arg("shard", s);
    const ShardRange range = shards_[s];
    count_t checks = 0;
    process_shard(range, vertex, edge, offsets, checks);
    st.wedge_checks += checks;
    span.arg("wedge_checks", checks);
    obs::counter("validate.shards_executed").add();
    obs::counter("validate.wedge_checks").add(checks);
    st.peak_accumulator_bytes =
        std::max(st.peak_accumulator_bytes,
                 vertex.size() * sizeof(count_t) +
                     edge.size() * sizeof(count_t) + offsets.size() * sizeof(esz));
    count_t vsum = 0, esum = 0;
#pragma omp parallel for schedule(static) reduction(+ : vsum)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(vertex.size());
         ++i) {
      vsum += vertex[static_cast<std::size_t>(i)];
    }
#pragma omp parallel for schedule(static) reduction(+ : esum)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(edge.size()); ++i) {
      esum += edge[static_cast<std::size_t>(i)];
    }
    st.vertex_count_sum += vsum;
    st.edge_count_sum += esum;
    st.num_edges += edge.size();
    if (consumer) consumer(Shard(*this, range, vertex, edge, offsets));
  }
  if (begin == 0 && end == shards_.size()) {
    assert(st.vertex_count_sum % 3 == 0);
    st.total_triangles = st.vertex_count_sum / 3;
  }
  return st;
}

void StreamingCensus::Shard::for_each_owned_edge(
    const std::function<void(vid, vid, count_t)>& fn) const {
  std::vector<vid> ids, coords;
  vid ucoords[kMaxFactors];
  for (vid u = range_.lo; u < range_.hi; ++u) {
    engine_->decompose(u, ucoords);
    engine_->neighbors_with_coords(u, ucoords, ids, coords);
    const std::size_t split = static_cast<std::size_t>(
        std::upper_bound(ids.begin(), ids.end(), u) - ids.begin());
    const esz off = offsets_[static_cast<std::size_t>(u - range_.lo)];
    for (std::size_t i = split; i < ids.size(); ++i) {
      fn(u, ids[i], edge_[off + (i - split)]);
    }
  }
}

}  // namespace kronotri::validate
