#include "validate/report.hpp"

#include <functional>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "util/table.hpp"

namespace kronotri::validate {

namespace {

count_t abs_diff(count_t a, count_t b) { return a > b ? a - b : b - a; }

/// Shared report builder: runs the engine once, folding every shard's
/// measured counts against the supplied point predictors.
ValidationReport build_report(
    const StreamingCensus& census,
    const std::function<count_t(vid)>& vertex_pred,
    const std::function<std::optional<count_t>(vid, vid)>& edge_pred,
    count_t predicted_total, const StreamingOptions& opt) {
  ValidationReport r;
  r.num_vertices = census.num_vertices();
  r.num_factors = census.num_factors();
  r.mem_budget_bytes = opt.mem_budget_bytes;
  r.predicted_total = predicted_total;

  r.stats = census.run([&](const StreamingCensus::Shard& shard) {
    const auto vc = shard.vertex_counts();
    for (std::size_t i = 0; i < vc.size(); ++i) {
      const count_t measured = vc[i];
      const count_t predicted = vertex_pred(shard.lo() + static_cast<vid>(i));
      ++r.vertices_checked;
      ++r.vertex_histogram[measured];
      if (measured != predicted) {
        ++r.vertex_mismatches;
        r.vertex_max_abs_err =
            std::max(r.vertex_max_abs_err, abs_diff(measured, predicted));
      }
    }
    shard.for_each_owned_edge([&](vid u, vid v, count_t measured) {
      ++r.edges_checked;
      ++r.edge_histogram[measured];
      const std::optional<count_t> predicted = edge_pred(u, v);
      if (!predicted) {
        // The streamed pair is an edge of C by construction; a predictor
        // refusing it is itself a mismatch.
        ++r.edge_mismatches;
        r.edge_max_abs_err = std::max(r.edge_max_abs_err, measured);
      } else if (*predicted != measured) {
        ++r.edge_mismatches;
        r.edge_max_abs_err =
            std::max(r.edge_max_abs_err, abs_diff(measured, *predicted));
      }
    });
  });
  r.measured_total = r.stats.total_triangles;
  r.num_edges = r.stats.num_edges;
  return r;
}

}  // namespace

void ValidationReport::print(std::ostream& os) const {
  os << "streaming validation of " << (spec.empty() ? "product" : spec) << "\n";
  util::Table t({"", "value"});
  t.row({"product vertices", util::commas(num_vertices)});
  t.row({"product edges", util::commas(num_edges)});
  t.row({"factors", std::to_string(num_factors)});
  t.row({"shards", std::to_string(stats.num_shards)});
  t.row({"memory budget (B)", util::commas(mem_budget_bytes)});
  t.row({"peak accumulator (B)", util::commas(stats.peak_accumulator_bytes)});
  t.row({"wedge checks", util::commas(stats.wedge_checks)});
  t.row({"measured triangles", util::commas(measured_total)});
  t.row({"predicted triangles", util::commas(predicted_total)});
  t.row({"vertex mismatches", util::commas(vertex_mismatches) + " / " +
                                  util::commas(vertices_checked)});
  t.row({"edge mismatches",
         util::commas(edge_mismatches) + " / " + util::commas(edges_checked)});
  t.row({"max abs error (V/E)", util::commas(vertex_max_abs_err) + " / " +
                                    util::commas(edge_max_abs_err)});
  if (histogram_checked) {
    t.row({"vertex histogram",
           vertex_histogram == predicted_vertex_histogram
               ? "matches closed form"
               : "DIFFERS from closed form"});
  }
  t.print(os);
  os << (pass() ? "PASS" : "FAIL") << "\n";
}

util::json::Value ValidationReport::to_json() const {
  util::json::Value out = util::json::Value::object();
  out.set("spec", spec);
  out.set("num_vertices", num_vertices);
  out.set("num_edges", num_edges);
  out.set("num_factors", num_factors);
  out.set("mem_budget_bytes", mem_budget_bytes);
  out.set("num_shards", stats.num_shards);
  out.set("peak_accumulator_bytes", stats.peak_accumulator_bytes);
  out.set("wedge_checks", stats.wedge_checks);
  out.set("measured_total", measured_total);
  out.set("predicted_total", predicted_total);
  out.set("vertices_checked", vertices_checked);
  out.set("vertex_mismatches", vertex_mismatches);
  out.set("vertex_max_abs_err", vertex_max_abs_err);
  out.set("edges_checked", edges_checked);
  out.set("edge_mismatches", edge_mismatches);
  out.set("edge_max_abs_err", edge_max_abs_err);
  out.set("histogram_checked", histogram_checked);
  out.set("vertex_histogram", util::json::histogram(vertex_histogram));
  out.set("edge_histogram", util::json::histogram(edge_histogram));
  out.set("pass", pass());
  return out;
}

void ValidationReport::write_json(std::ostream& os) const {
  to_json().dump(os);
}

ValidationReport validate_product(const Graph& a, const Graph& b,
                                  const StreamingOptions& opt) {
  const kron::TriangleOracle oracle(a, b);
  const StreamingCensus census(a, b, opt);
  ValidationReport r = build_report(
      census, [&](vid p) { return oracle.vertex_triangles(p); },
      [&](vid p, vid q) { return oracle.edge_triangles(p, q); },
      oracle.total_triangles(), opt);
  try {
    r.predicted_vertex_histogram = oracle.triangle_histogram();
    r.histogram_checked = true;
  } catch (const std::logic_error&) {
    // Multi-term regime (both factors have loops): no closed-form
    // histogram, the pointwise comparison above still covers every vertex.
  }
  return r;
}

ValidationReport validate_chain(const kron::KronChain& chain,
                                const StreamingOptions& opt) {
  // Surface the ≥-one-loop-free-factor precondition before streaming.
  (void)chain.total_triangles();
  const StreamingCensus census(chain, opt);
  return build_report(
      census, [&](vid p) { return chain.vertex_triangles(p); },
      [&](vid p, vid q) -> std::optional<count_t> {
        if (!chain.has_edge(p, q)) return std::nullopt;
        return chain.edge_triangles(p, q);
      },
      chain.total_triangles(), opt);
}

}  // namespace kronotri::validate
