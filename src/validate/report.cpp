#include "validate/report.hpp"

#include <functional>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "util/table.hpp"

namespace kronotri::validate {

namespace {

count_t abs_diff(count_t a, count_t b) { return a > b ? a - b : b - a; }

/// Shared report builder: runs the engine once, folding every shard's
/// measured counts against the supplied point predictors.
ValidationReport build_report(
    const StreamingCensus& census,
    const std::function<count_t(vid)>& vertex_pred,
    const std::function<std::optional<count_t>(vid, vid)>& edge_pred,
    count_t predicted_total, const StreamingOptions& opt) {
  ValidationReport r;
  r.num_vertices = census.num_vertices();
  r.num_factors = census.num_factors();
  r.mem_budget_bytes = opt.mem_budget_bytes;
  r.predicted_total = predicted_total;

  // Work-unit restriction: the full shard plan is deterministic, so every
  // process derives the same boundaries and takes its own disjoint index
  // slice — the fragments merge() back into the single-process report.
  std::size_t begin = 0, end = census.shards().size();
  if (opt.units > 0) {
    std::tie(begin, end) = unit_index_range(end, opt.unit, opt.units);
    r.partial = true;
  }

  const auto fold = [&](const StreamingCensus::Shard& shard) {
    const auto vc = shard.vertex_counts();
    for (std::size_t i = 0; i < vc.size(); ++i) {
      const count_t measured = vc[i];
      const count_t predicted = vertex_pred(shard.lo() + static_cast<vid>(i));
      ++r.vertices_checked;
      ++r.vertex_histogram[measured];
      if (measured != predicted) {
        ++r.vertex_mismatches;
        r.vertex_max_abs_err =
            std::max(r.vertex_max_abs_err, abs_diff(measured, predicted));
      }
    }
    shard.for_each_owned_edge([&](vid u, vid v, count_t measured) {
      ++r.edges_checked;
      ++r.edge_histogram[measured];
      const std::optional<count_t> predicted = edge_pred(u, v);
      if (!predicted) {
        // The streamed pair is an edge of C by construction; a predictor
        // refusing it is itself a mismatch.
        ++r.edge_mismatches;
        r.edge_max_abs_err = std::max(r.edge_max_abs_err, measured);
      } else if (*predicted != measured) {
        ++r.edge_mismatches;
        r.edge_max_abs_err =
            std::max(r.edge_max_abs_err, abs_diff(measured, *predicted));
      }
    });
  };
  r.stats = census.run_shards(begin, end, fold);
  r.measured_total = r.stats.total_triangles;
  r.num_edges = r.stats.num_edges;
  return r;
}

std::map<count_t, count_t> histogram_from_json(const util::json::Value* v) {
  std::map<count_t, count_t> h;
  if (v == nullptr) return h;
  for (const auto& [key, freq] : v->members()) {
    h[static_cast<count_t>(std::stoull(key))] = freq.as_uint();
  }
  return h;
}

}  // namespace

void ValidationReport::print(std::ostream& os) const {
  os << "streaming validation of " << (spec.empty() ? "product" : spec) << "\n";
  util::Table t({"", "value"});
  t.row({"product vertices", util::commas(num_vertices)});
  t.row({"product edges", util::commas(num_edges)});
  t.row({"factors", std::to_string(num_factors)});
  t.row({"shards", std::to_string(stats.num_shards)});
  t.row({"memory budget (B)", util::commas(mem_budget_bytes)});
  t.row({"peak accumulator (B)", util::commas(stats.peak_accumulator_bytes)});
  t.row({"wedge checks", util::commas(stats.wedge_checks)});
  t.row({"measured triangles", util::commas(measured_total)});
  t.row({"predicted triangles", util::commas(predicted_total)});
  t.row({"vertex mismatches", util::commas(vertex_mismatches) + " / " +
                                  util::commas(vertices_checked)});
  t.row({"edge mismatches",
         util::commas(edge_mismatches) + " / " + util::commas(edges_checked)});
  t.row({"max abs error (V/E)", util::commas(vertex_max_abs_err) + " / " +
                                    util::commas(edge_max_abs_err)});
  if (partial) t.row({"coverage", "PARTIAL (shard-subset fragment)"});
  if (histogram_checked && !partial) {
    t.row({"vertex histogram",
           vertex_histogram == predicted_vertex_histogram
               ? "matches closed form"
               : "DIFFERS from closed form"});
  }
  t.print(os);
  os << (pass() ? "PASS" : "FAIL") << "\n";
}

util::json::Value ValidationReport::to_json() const {
  util::json::Value out = util::json::Value::object();
  out.set("spec", spec);
  out.set("num_vertices", num_vertices);
  out.set("num_edges", num_edges);
  out.set("num_factors", num_factors);
  out.set("mem_budget_bytes", mem_budget_bytes);
  out.set("num_shards", stats.num_shards);
  out.set("peak_accumulator_bytes", stats.peak_accumulator_bytes);
  out.set("wedge_checks", stats.wedge_checks);
  out.set("vertex_count_sum", stats.vertex_count_sum);
  out.set("edge_count_sum", stats.edge_count_sum);
  out.set("measured_total", measured_total);
  out.set("predicted_total", predicted_total);
  out.set("partial", partial);
  out.set("vertices_checked", vertices_checked);
  out.set("vertex_mismatches", vertex_mismatches);
  out.set("vertex_max_abs_err", vertex_max_abs_err);
  out.set("edges_checked", edges_checked);
  out.set("edge_mismatches", edge_mismatches);
  out.set("edge_max_abs_err", edge_max_abs_err);
  out.set("histogram_checked", histogram_checked);
  out.set("vertex_histogram", util::json::histogram(vertex_histogram));
  out.set("edge_histogram", util::json::histogram(edge_histogram));
  out.set("predicted_vertex_histogram",
          util::json::histogram(predicted_vertex_histogram));
  out.set("pass", pass());
  return out;
}

ValidationReport ValidationReport::from_json(const util::json::Value& v) {
  ValidationReport r;
  r.spec = v.get_string("spec", "");
  r.num_vertices = v.get_uint("num_vertices", 0);
  r.num_edges = v.get_uint("num_edges", 0);
  r.num_factors = v.get_uint("num_factors", 0);
  r.mem_budget_bytes = v.get_uint("mem_budget_bytes", 0);
  r.stats.num_shards = v.get_uint("num_shards", 0);
  r.stats.peak_accumulator_bytes = v.get_uint("peak_accumulator_bytes", 0);
  r.stats.wedge_checks = v.get_uint("wedge_checks", 0);
  r.stats.vertex_count_sum = v.get_uint("vertex_count_sum", 0);
  r.stats.edge_count_sum = v.get_uint("edge_count_sum", 0);
  r.stats.num_edges = r.num_edges;
  r.measured_total = v.get_uint("measured_total", 0);
  r.stats.total_triangles = r.measured_total;
  r.predicted_total = v.get_uint("predicted_total", 0);
  r.partial = v.get_bool("partial", false);
  r.vertices_checked = v.get_uint("vertices_checked", 0);
  r.vertex_mismatches = v.get_uint("vertex_mismatches", 0);
  r.vertex_max_abs_err = v.get_uint("vertex_max_abs_err", 0);
  r.edges_checked = v.get_uint("edges_checked", 0);
  r.edge_mismatches = v.get_uint("edge_mismatches", 0);
  r.edge_max_abs_err = v.get_uint("edge_max_abs_err", 0);
  r.histogram_checked = v.get_bool("histogram_checked", false);
  r.vertex_histogram = histogram_from_json(v.find("vertex_histogram"));
  r.edge_histogram = histogram_from_json(v.find("edge_histogram"));
  r.predicted_vertex_histogram =
      histogram_from_json(v.find("predicted_vertex_histogram"));
  return r;
}

void ValidationReport::merge(const ValidationReport& other) {
  num_edges += other.num_edges;
  stats.num_shards += other.stats.num_shards;
  stats.num_edges += other.stats.num_edges;
  stats.wedge_checks += other.stats.wedge_checks;
  stats.vertex_count_sum += other.stats.vertex_count_sum;
  stats.edge_count_sum += other.stats.edge_count_sum;
  stats.peak_accumulator_bytes =
      std::max(stats.peak_accumulator_bytes, other.stats.peak_accumulator_bytes);
  vertices_checked += other.vertices_checked;
  vertex_mismatches += other.vertex_mismatches;
  vertex_max_abs_err = std::max(vertex_max_abs_err, other.vertex_max_abs_err);
  edges_checked += other.edges_checked;
  edge_mismatches += other.edge_mismatches;
  edge_max_abs_err = std::max(edge_max_abs_err, other.edge_max_abs_err);
  for (const auto& [count, freq] : other.vertex_histogram) {
    vertex_histogram[count] += freq;
  }
  for (const auto& [count, freq] : other.edge_histogram) {
    edge_histogram[count] += freq;
  }
  histogram_checked = histogram_checked || other.histogram_checked;
  if (predicted_vertex_histogram.empty()) {
    predicted_vertex_histogram = other.predicted_vertex_histogram;
  }
}

void ValidationReport::finalize_merged() {
  partial = false;
  measured_total = stats.vertex_count_sum / 3;
  stats.total_triangles = measured_total;
}

void ValidationReport::write_json(std::ostream& os) const {
  to_json().dump(os);
}

std::uint64_t ValidationReport::fingerprint() const {
  return util::json::hash64(to_json().dump_canonical_string());
}

ValidationReport validate_product(const Graph& a, const Graph& b,
                                  const StreamingOptions& opt) {
  const kron::TriangleOracle oracle(a, b);
  const StreamingCensus census(a, b, opt);
  ValidationReport r = build_report(
      census, [&](vid p) { return oracle.vertex_triangles(p); },
      [&](vid p, vid q) { return oracle.edge_triangles(p, q); },
      oracle.total_triangles(), opt);
  try {
    r.predicted_vertex_histogram = oracle.triangle_histogram();
    r.histogram_checked = true;
  } catch (const std::logic_error&) {
    // Multi-term regime (both factors have loops): no closed-form
    // histogram, the pointwise comparison above still covers every vertex.
  }
  return r;
}

ValidationReport validate_chain(const kron::KronChain& chain,
                                const StreamingOptions& opt) {
  // Surface the ≥-one-loop-free-factor precondition before streaming.
  (void)chain.total_triangles();
  const StreamingCensus census(chain, opt);
  return build_report(
      census, [&](vid p) { return chain.vertex_triangles(p); },
      [&](vid p, vid q) -> std::optional<count_t> {
        if (!chain.has_edge(p, q)) return std::nullopt;
        return chain.edge_triangles(p, q);
      },
      chain.total_triangles(), opt);
}

}  // namespace kronotri::validate
