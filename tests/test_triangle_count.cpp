// Tests for undirected triangle analytics: the forward kernel, the masked
// linear-algebra kernel, diag(A³), and closed-form families.
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"
#include "triangle/bruteforce.hpp"
#include "triangle/count.hpp"
#include "triangle/forward.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;

TEST(TriangleCount, TriangleGraph) {
  const Graph k3 = gen::clique(3);
  const auto st = triangle::analyze(k3);
  EXPECT_EQ(st.total, 1u);
  for (vid v = 0; v < 3; ++v) EXPECT_EQ(st.per_vertex[v], 1u);
  for (const count_t c : st.per_edge.values()) EXPECT_EQ(c, 1u);
}

TEST(TriangleCount, CliqueClosedForm) {
  // K_n: each vertex in C(n−1,2) triangles, each edge in n−2 (Ex. 1 preamble).
  for (vid n : {4u, 5u, 7u, 10u}) {
    const Graph k = gen::clique(n);
    const auto st = triangle::analyze(k);
    const count_t per_vertex = (n - 1) * (n - 2) / 2;
    EXPECT_EQ(st.total, n * (n - 1) * (n - 2) / 6) << "n=" << n;
    for (vid v = 0; v < n; ++v) {
      EXPECT_EQ(st.per_vertex[v], per_vertex) << "n=" << n;
    }
    for (const count_t c : st.per_edge.values()) {
      EXPECT_EQ(c, n - 2) << "n=" << n;
    }
  }
}

TEST(TriangleCount, TriangleFreeFamilies) {
  EXPECT_EQ(triangle::count_total(gen::cycle(8)), 0u);
  EXPECT_EQ(triangle::count_total(gen::path(10)), 0u);
  EXPECT_EQ(triangle::count_total(gen::star(9)), 0u);
  EXPECT_EQ(triangle::count_total(gen::complete_bipartite(4, 5)), 0u);
}

TEST(TriangleCount, HubCycleFromPaper) {
  // Ex. 2: 5 vertices, 8 edges, 4 triangles; hub edges close 2, cycle edges 1.
  const Graph a = gen::hub_cycle();
  const auto st = triangle::analyze(a);
  EXPECT_EQ(a.num_undirected_edges(), 8u);
  EXPECT_EQ(st.total, 4u);
  // Hub participates in all 4 triangles; cycle vertices in 2 each.
  EXPECT_EQ(st.per_vertex[0], 4u);
  for (vid v = 1; v < 5; ++v) EXPECT_EQ(st.per_vertex[v], 2u);
  int ones = 0, twos = 0;
  for (vid u = 0; u < 5; ++u) {
    for (const vid v : a.neighbors(u)) {
      if (u < v) {
        const count_t c = st.per_edge.at(u, v);
        if (c == 1) ++ones;
        if (c == 2) ++twos;
      }
    }
  }
  EXPECT_EQ(ones, 4);  // cycle edges
  EXPECT_EQ(twos, 4);  // hub edges
}

TEST(TriangleCount, SelfLoopsAreIgnored) {
  const Graph k4 = gen::clique(4);
  const Graph j4 = k4.with_all_self_loops();
  EXPECT_EQ(triangle::count_total(j4), triangle::count_total(k4));
  const auto tk = triangle::participation_vertices(k4);
  const auto tj = triangle::participation_vertices(j4);
  EXPECT_EQ(tk, tj);
}

TEST(TriangleCount, DirectedInputThrows) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  EXPECT_THROW(triangle::analyze(d), std::invalid_argument);
  EXPECT_THROW(triangle::count_total(d), std::invalid_argument);
  EXPECT_THROW(triangle::edge_support_masked(d), std::invalid_argument);
  EXPECT_THROW(triangle::diag_cube(d), std::invalid_argument);
}

TEST(TriangleCount, WedgeChecksArePositiveOnDenseGraphs) {
  const auto st = triangle::analyze(gen::clique(10));
  EXPECT_GT(st.wedge_checks, 0u);
}

TEST(TriangleCount, VertexFromEdgeSupportIdentity) {
  // t_A = ½·Δ_A·1 (Def. 6 remark).
  const Graph g = kt_test::random_undirected(30, 0.2, 5);
  const auto delta = triangle::edge_support_masked(g);
  const auto t1 = triangle::vertex_from_edge_support(delta);
  const auto t2 = triangle::participation_vertices(g);
  EXPECT_EQ(t1, t2);
}

TEST(TriangleCount, DiagCubeEqualsTwiceTrianglesWhenLoopFree) {
  const Graph g = kt_test::random_undirected(25, 0.25, 6);
  const auto d3 = triangle::diag_cube(g);
  const auto t = triangle::participation_vertices(g);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(d3[v], 2 * t[v]);
  }
}

class TriangleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleProperty, AnalyzeMatchesBruteForce) {
  const Graph g = kt_test::random_undirected(24, 0.25, GetParam());
  const auto st = triangle::analyze(g);
  EXPECT_EQ(st.per_vertex, triangle::brute::vertex_participation(g));
  EXPECT_EQ(st.total, triangle::brute::total(g));
  kt_test::expect_matrix_eq(st.per_edge, triangle::brute::edge_participation(g),
                            "per-edge");
}

TEST_P(TriangleProperty, MaskedKernelMatchesForwardKernel) {
  const Graph g = kt_test::random_undirected(30, 0.2, GetParam() + 100);
  const auto st = triangle::analyze(g);
  EXPECT_TRUE(st.per_edge == triangle::edge_support_masked(g));
}

TEST_P(TriangleProperty, LoopsNeverChangeTriangleStats) {
  const Graph g = kt_test::random_undirected(20, 0.3, GetParam(), 0.4);
  const Graph s = g.without_self_loops();
  EXPECT_EQ(triangle::participation_vertices(g),
            triangle::participation_vertices(s));
  EXPECT_TRUE(triangle::edge_support_masked(g) ==
              triangle::edge_support_masked(s));
}

TEST_P(TriangleProperty, TotalIsOneThirdOfVertexSum) {
  const Graph g = kt_test::random_undirected(28, 0.22, GetParam() + 200);
  const auto t = triangle::participation_vertices(g);
  count_t sum = 0;
  for (const count_t v : t) sum += v;
  EXPECT_EQ(sum % 3, 0u);
  EXPECT_EQ(triangle::count_total(g), sum / 3);
}

TEST_P(TriangleProperty, ForwardEnumeratesEachTriangleOnce) {
  const Graph g = kt_test::random_undirected(22, 0.3, GetParam() + 300);
  const triangle::Oriented o = triangle::orient_by_degree(g.matrix());
  count_t count = 0;
  triangle::forward_triangles(o, g.num_vertices(), [&](vid u, vid v, vid w) {
    EXPECT_TRUE(g.has_edge(u, v));
    EXPECT_TRUE(g.has_edge(v, w));
    EXPECT_TRUE(g.has_edge(u, w));
    EXPECT_NE(u, v);
    EXPECT_NE(v, w);
    EXPECT_NE(u, w);
#pragma omp atomic
    ++count;
  });
  EXPECT_EQ(count, triangle::brute::total(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
