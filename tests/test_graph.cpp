// Unit tests for the Graph wrapper and its structural predicates.
#include <gtest/gtest.h>

#include "core/graph.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"

namespace {

using namespace kronotri;

TEST(Graph, RejectsNonSquare) {
  BoolCoo coo(2, 3);
  EXPECT_THROW(Graph(BoolCsr::from_coo(coo)), std::invalid_argument);
}

TEST(Graph, FromEdgesBasics) {
  const std::vector<std::pair<vid, vid>> e = {{0, 1}, {1, 2}, {0, 1}};
  const Graph g = Graph::from_edges(3, e, /*symmetrize=*/true);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.nnz(), 4u);  // duplicates collapse
  EXPECT_TRUE(g.is_undirected());
  EXPECT_FALSE(g.has_self_loops());
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DirectedDetection) {
  const std::vector<std::pair<vid, vid>> e = {{0, 1}};
  const Graph g = Graph::from_edges(2, e, /*symmetrize=*/false);
  EXPECT_FALSE(g.is_undirected());
  EXPECT_THROW((void)g.num_undirected_edges(), std::logic_error);
}

TEST(Graph, SelfLoopAccounting) {
  const std::vector<std::pair<vid, vid>> e = {{0, 0}, {0, 1}, {1, 0}, {2, 2}};
  const Graph g = Graph::from_edges(3, e, /*symmetrize=*/false);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.num_self_loops(), 2u);
  EXPECT_EQ(g.num_undirected_edges(), 3u);  // {0,1} + two loops
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.nonloop_degree(0), 1u);
  EXPECT_EQ(g.nonloop_degree(2), 0u);
}

TEST(Graph, WithoutSelfLoops) {
  const Graph j3 = gen::clique_with_loops(3);
  const Graph k3 = j3.without_self_loops();
  EXPECT_EQ(k3.num_self_loops(), 0u);
  EXPECT_TRUE(k3 == gen::clique(3));
}

TEST(Graph, WithAllSelfLoops) {
  const Graph k3 = gen::clique(3);
  const Graph j3 = k3.with_all_self_loops();
  EXPECT_EQ(j3.num_self_loops(), 3u);
  EXPECT_TRUE(j3 == gen::clique_with_loops(3));
  // Idempotent.
  EXPECT_TRUE(j3.with_all_self_loops() == j3);
}

TEST(Graph, UndirectedClosure) {
  const std::vector<std::pair<vid, vid>> e = {{0, 1}, {1, 2}, {2, 1}};
  const Graph g = Graph::from_edges(3, e, /*symmetrize=*/false);
  const Graph u = g.undirected_closure();
  EXPECT_TRUE(u.is_undirected());
  EXPECT_TRUE(u.has_edge(1, 0));
  EXPECT_TRUE(u.has_edge(2, 1));
  EXPECT_EQ(u.num_undirected_edges(), 2u);
}

TEST(Graph, TransposeReversesEdges) {
  const std::vector<std::pair<vid, vid>> e = {{0, 1}, {2, 0}};
  const Graph g = Graph::from_edges(3, e, /*symmetrize=*/false);
  const Graph t = g.transpose();
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_TRUE(t.has_edge(0, 2));
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_TRUE(t.transpose() == g);
}

TEST(Graph, NeighborsSorted) {
  const std::vector<std::pair<vid, vid>> e = {{0, 3}, {0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, e, /*symmetrize=*/false);
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {}, false);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.nnz(), 0u);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.num_undirected_edges(), 0u);
}

class GraphClosureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphClosureProperty, ClosureIsSymmetricSuperset) {
  const Graph g = kt_test::random_directed(12, 0.2, GetParam());
  const Graph u = g.undirected_closure();
  EXPECT_TRUE(u.is_undirected());
  for (vid a = 0; a < 12; ++a) {
    for (vid b = 0; b < 12; ++b) {
      if (g.has_edge(a, b)) {
        EXPECT_TRUE(u.has_edge(a, b));
        EXPECT_TRUE(u.has_edge(b, a));
      }
      if (u.has_edge(a, b)) {
        EXPECT_TRUE(g.has_edge(a, b) || g.has_edge(b, a));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphClosureProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
