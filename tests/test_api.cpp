// Tests for the pipeline facade: GraphSpec parsing, the GeneratorRegistry
// (every built-in family + kron composition + modifiers), and the EdgeSink
// implementations.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "api/pipeline.hpp"
#include "api/registry.hpp"
#include "api/sink.hpp"
#include "api/spec.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "truss/kron_truss.hpp"

namespace {

using namespace kronotri;
using api::GeneratorRegistry;
using api::GraphSpec;

TEST(GraphSpec, ParsesFamilyAndParams) {
  const auto s = GraphSpec::parse("hk:n=5000,m=3,p=0.6,seed=7");
  EXPECT_EQ(s.family, "hk");
  EXPECT_EQ(s.get_uint("n", 0), 5000u);
  EXPECT_EQ(s.get_uint("m", 0), 3u);
  EXPECT_DOUBLE_EQ(s.get_double("p", 0.0), 0.6);
  EXPECT_EQ(s.get_uint("seed", 0), 7u);
  EXPECT_FALSE(s.is_kron());
  EXPECT_TRUE(s.has("n"));
  EXPECT_FALSE(s.has("q"));
}

TEST(GraphSpec, ParsesBareFamily) {
  const auto s = GraphSpec::parse("hubcycle");
  EXPECT_EQ(s.family, "hubcycle");
  EXPECT_TRUE(s.params.empty());
}

TEST(GraphSpec, ParsesKronComposition) {
  const auto s =
      GraphSpec::parse("kron:(hk:n=300,seed=3)x(clique:n=3,loops=1)");
  ASSERT_TRUE(s.is_kron());
  ASSERT_EQ(s.factors.size(), 2u);
  EXPECT_EQ(s.factors[0].family, "hk");
  EXPECT_EQ(s.factors[1].family, "clique");
  EXPECT_TRUE(s.factors[1].get_bool("loops", false));
}

TEST(GraphSpec, ParsesNestedKronAndOuterParams) {
  const auto s = GraphSpec::parse(
      "kron:(kron:(clique:n=3)x(cycle:n=4))x(path:n=2):loops=1");
  ASSERT_TRUE(s.is_kron());
  ASSERT_EQ(s.factors.size(), 2u);
  EXPECT_TRUE(s.factors[0].is_kron());
  EXPECT_TRUE(s.get_bool("loops", false));
}

TEST(GraphSpec, RoundTripsThroughToString) {
  for (const char* text :
       {"hubcycle", "hk:m=3,n=5000,p=0.6,seed=7",
        "kron:(clique:n=3)x(hk:n=10,seed=2)",
        "kron:(kron:(clique:n=3)x(cycle:n=4))x(path:n=2):loops=1"}) {
    const auto s = GraphSpec::parse(text);
    EXPECT_EQ(s.to_string(), text);
    const auto reparsed = GraphSpec::parse(s.to_string());
    EXPECT_EQ(reparsed.to_string(), s.to_string());
  }
}

TEST(GraphSpec, RejectsMalformedInput) {
  EXPECT_THROW(GraphSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse(":n=1"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("hk:n"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("hk:=3"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3)"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3)x(cycle:n=4)junk"),
               std::invalid_argument);
}

TEST(Registry, BuildsEveryBuiltinFamily) {
  const auto& reg = GeneratorRegistry::builtin();
  EXPECT_EQ(reg.build("clique:n=5"), gen::clique(5));
  EXPECT_EQ(reg.build("clique:n=4,loops=1"), gen::clique_with_loops(4));
  EXPECT_EQ(reg.build("cycle:n=6"), gen::cycle(6));
  EXPECT_EQ(reg.build("path:n=7"), gen::path(7));
  EXPECT_EQ(reg.build("star:n=8"), gen::star(8));
  EXPECT_EQ(reg.build("bipartite:a=3,b=4"), gen::complete_bipartite(3, 4));
  EXPECT_EQ(reg.build("hubcycle"), gen::hub_cycle());
  EXPECT_EQ(reg.build("er:n=50,p=0.2,seed=9"), gen::erdos_renyi(50, 0.2, 9));
  EXPECT_EQ(reg.build("er-m:n=50,m=100,seed=9"),
            gen::erdos_renyi_m(50, 100, 9));
  EXPECT_EQ(reg.build("ba:n=50,m=2,seed=9"), gen::barabasi_albert(50, 2, 9));
  EXPECT_EQ(reg.build("hk:n=50,m=2,p=0.4,seed=9"),
            gen::holme_kim(50, 2, 0.4, 9));
  // rmat/onetri: structural sanity (they are seeded-deterministic too).
  const Graph r = reg.build("rmat:scale=6,ef=4,seed=3");
  EXPECT_EQ(r.num_vertices(), 64u);
  EXPECT_TRUE(r.is_undirected());
  const Graph o = reg.build("onetri:n=80,seed=3");
  EXPECT_EQ(o.num_vertices(), 80u);
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(o));
}

TEST(Registry, UnknownFamilyAndParamValidation) {
  const auto& reg = GeneratorRegistry::builtin();
  EXPECT_THROW(reg.build("frobnicate:n=3"), std::invalid_argument);
  EXPECT_FALSE(reg.contains("frobnicate"));
  EXPECT_TRUE(reg.contains("hk"));
  EXPECT_TRUE(reg.contains("kron"));
  EXPECT_THROW(reg.build("clique:n=3,loops=maybe"), std::invalid_argument);
}

TEST(Registry, KronSpecMaterializesTheProduct) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph c = reg.build("kron:(hubcycle)x(clique:n=3,loops=1)");
  const Graph expected =
      kron::kron_graph(gen::hub_cycle(), gen::clique_with_loops(3));
  EXPECT_EQ(c, expected);
}

TEST(Registry, ThreeFactorKronMatchesKronChain) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph c =
      reg.build("kron:(clique:n=3)x(cycle:n=4)x(hk:n=6,m=2,p=0.5,seed=1)");
  std::vector<Graph> factors = {gen::clique(3), gen::cycle(4),
                                gen::holme_kim(6, 2, 0.5, 1)};
  EXPECT_EQ(c, kron::KronChain(factors).materialize());
}

TEST(Registry, BuildFactorsReturnsFactorListWithoutMaterializing) {
  const auto& reg = GeneratorRegistry::builtin();
  const auto fs = reg.build_factors(
      GraphSpec::parse("kron:(hubcycle)x(clique:n=3,loops=1)"));
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0], gen::hub_cycle());
  EXPECT_EQ(fs[1], gen::clique_with_loops(3));
  const auto single = reg.build_factors(GraphSpec::parse("clique:n=4"));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], gen::clique(4));
}

TEST(Registry, ModifiersApplyPruneThenLoops) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph pruned = reg.build("hk:n=60,m=3,p=0.7,seed=4,prune=1");
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
  const Graph both = reg.build("hk:n=60,m=3,p=0.7,seed=4,prune=1,loops=1");
  EXPECT_EQ(both, pruned.with_all_self_loops());
}

TEST(Registry, CustomFamilyRegistration) {
  GeneratorRegistry reg;
  reg.add("two-cliques", "disjoint K_n pair: n", [](const GraphSpec& s) {
    const vid n = s.get_uint("n", 3);
    std::vector<std::pair<vid, vid>> edges;
    for (vid u = 0; u < n; ++u) {
      for (vid v = u + 1; v < n; ++v) {
        edges.emplace_back(u, v);
        edges.emplace_back(n + u, n + v);
      }
    }
    return Graph::from_edges(2 * n, edges, true);
  });
  EXPECT_TRUE(reg.contains("two-cliques"));
  const Graph g = reg.build("two-cliques:n=4");
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(triangle::count_total(g), 8u);  // 2 × C(4,3)
}

TEST(Registry, FamiliesListingCoversAllBuiltins) {
  const auto fams = GeneratorRegistry::builtin().families();
  std::size_t found = 0;
  for (const char* want : {"clique", "cycle", "path", "star", "bipartite",
                           "hubcycle", "er", "er-m", "ba", "hk", "rmat",
                           "onetri", "kron"}) {
    for (const auto& [name, help] : fams) {
      if (name == want) {
        ++found;
        EXPECT_FALSE(help.empty()) << name;
      }
    }
  }
  EXPECT_EQ(found, 13u);
}

// ---- sinks -----------------------------------------------------------------

TEST(Sinks, TextSinkWritesEdgeLines) {
  const Graph a = gen::path(3);
  std::ostringstream os;
  api::TextEdgeSink sink(os);
  api::stream_into(a, a, sink);
  std::istringstream is(os.str());
  std::size_t lines = 0;
  vid u = 0, v = 0;
  while (is >> u >> v) ++lines;
  EXPECT_EQ(lines, a.nnz() * a.nnz());
  EXPECT_EQ(sink.edges_consumed(), a.nnz() * a.nnz());
}

TEST(Sinks, BinarySinkRoundTrips) {
  const Graph a = gen::clique(4);
  std::ostringstream os;
  api::BinaryEdgeSink sink(os);
  api::stream_into(a, a, sink);
  const std::string bytes = os.str();
  ASSERT_EQ(bytes.size(), a.nnz() * a.nnz() * 2 * sizeof(vid));
  // Reinterpret and compare against the per-edge stream.
  kron::EdgeStream s(a, a);
  const char* p = bytes.data();
  while (auto e = s.next()) {
    vid u = 0, v = 0;
    std::memcpy(&u, p, sizeof(vid));
    std::memcpy(&v, p + sizeof(vid), sizeof(vid));
    p += 2 * sizeof(vid);
    EXPECT_EQ(u, e->u);
    EXPECT_EQ(v, e->v);
  }
}

TEST(Sinks, CooCollectorMaterializesTheProduct) {
  const Graph a = gen::hub_cycle();
  const Graph b = gen::clique(3);
  api::CooCollectorSink sink;
  api::stream_into(a, b, sink);
  const Graph c =
      sink.to_graph(a.num_vertices() * b.num_vertices());
  EXPECT_EQ(c, kron::kron_graph(a, b));
}

TEST(Sinks, DegreeCensusMatchesTheView) {
  const Graph a = gen::holme_kim(30, 2, 0.6, 2);
  const Graph b = a.with_all_self_loops();
  api::DegreeCensusSink sink(a.num_vertices() * b.num_vertices());
  api::stream_into(a, b, sink);
  const kron::KronGraphView c(a, b);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(sink.degrees()[p], c.out_degree(p)) << "vertex " << p;
  }
}

TEST(Sinks, TriangleCensusMatchesOracleTotals) {
  const Graph a = gen::holme_kim(25, 2, 0.7, 6);
  const Graph b = a;  // loop-free product: every stored entry is off-diagonal
  const kron::TriangleOracle oracle(a, b);
  api::TriangleCensusSink sink(oracle);
  api::stream_into(a, b, sink);
  // Σ_e Δ(e) over stored (directed) entries = 2·Σ_{undirected e} Δ(e)
  // = 2·3·τ(C): each triangle has 3 edges, each edge stored twice.
  EXPECT_EQ(sink.triangle_sum(), 6 * oracle.total_triangles());
}

TEST(Sinks, MergedParallelTriangleCensusEqualsSingleThreaded) {
  const Graph a = gen::holme_kim(25, 2, 0.7, 6);
  const kron::TriangleOracle oracle(a, a);
  auto sinks = api::stream_parallel(
      a, a, 4,
      [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::TriangleCensusSink>(oracle);
      },
      /*batch_size=*/64);
  auto& merged = static_cast<api::TriangleCensusSink&>(*sinks[0]);
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    merged.merge(static_cast<const api::TriangleCensusSink&>(*sinks[i]));
  }
  EXPECT_EQ(merged.triangle_sum(), 6 * oracle.total_triangles());
  EXPECT_EQ(merged.edges_consumed(), a.nnz() * a.nnz());
}

}  // namespace
