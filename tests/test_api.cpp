// Tests for the pipeline facade: GraphSpec parsing, the GeneratorRegistry
// (every built-in family + kron composition + modifiers), and the EdgeSink
// implementations.
#include <gtest/gtest.h>

#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif
#include <memory>
#include <sstream>
#include <stdexcept>

#include "api/analysis.hpp"
#include "api/pipeline.hpp"
#include "api/plan.hpp"
#include "api/registry.hpp"
#include "api/sink.hpp"
#include "api/spec.hpp"
#include "analysis/components.hpp"
#include "analysis/degree.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "kron/multi.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"

namespace {

using namespace kronotri;
using api::GeneratorRegistry;
using api::GraphSpec;

TEST(GraphSpec, ParsesFamilyAndParams) {
  const auto s = GraphSpec::parse("hk:n=5000,m=3,p=0.6,seed=7");
  EXPECT_EQ(s.family, "hk");
  EXPECT_EQ(s.get_uint("n", 0), 5000u);
  EXPECT_EQ(s.get_uint("m", 0), 3u);
  EXPECT_DOUBLE_EQ(s.get_double("p", 0.0), 0.6);
  EXPECT_EQ(s.get_uint("seed", 0), 7u);
  EXPECT_FALSE(s.is_kron());
  EXPECT_TRUE(s.has("n"));
  EXPECT_FALSE(s.has("q"));
}

TEST(GraphSpec, ParsesBareFamily) {
  const auto s = GraphSpec::parse("hubcycle");
  EXPECT_EQ(s.family, "hubcycle");
  EXPECT_TRUE(s.params.empty());
}

TEST(GraphSpec, ParsesKronComposition) {
  const auto s =
      GraphSpec::parse("kron:(hk:n=300,seed=3)x(clique:n=3,loops=1)");
  ASSERT_TRUE(s.is_kron());
  ASSERT_EQ(s.factors.size(), 2u);
  EXPECT_EQ(s.factors[0].family, "hk");
  EXPECT_EQ(s.factors[1].family, "clique");
  EXPECT_TRUE(s.factors[1].get_bool("loops", false));
}

TEST(GraphSpec, ParsesNestedKronAndOuterParams) {
  const auto s = GraphSpec::parse(
      "kron:(kron:(clique:n=3)x(cycle:n=4))x(path:n=2):loops=1");
  ASSERT_TRUE(s.is_kron());
  ASSERT_EQ(s.factors.size(), 2u);
  EXPECT_TRUE(s.factors[0].is_kron());
  EXPECT_TRUE(s.get_bool("loops", false));
}

TEST(GraphSpec, RoundTripsThroughToString) {
  for (const char* text :
       {"hubcycle", "hk:m=3,n=5000,p=0.6,seed=7",
        "kron:(clique:n=3)x(hk:n=10,seed=2)",
        "kron:(kron:(clique:n=3)x(cycle:n=4))x(path:n=2):loops=1"}) {
    const auto s = GraphSpec::parse(text);
    EXPECT_EQ(s.to_string(), text);
    const auto reparsed = GraphSpec::parse(s.to_string());
    EXPECT_EQ(reparsed.to_string(), s.to_string());
  }
}

TEST(GraphSpec, RejectsMalformedInput) {
  EXPECT_THROW(GraphSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse(":n=1"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("hk:n"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("hk:=3"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3)"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3"), std::invalid_argument);
  EXPECT_THROW(GraphSpec::parse("kron:(clique:n=3)x(cycle:n=4)junk"),
               std::invalid_argument);
}

TEST(Registry, BuildsEveryBuiltinFamily) {
  const auto& reg = GeneratorRegistry::builtin();
  EXPECT_EQ(reg.build("clique:n=5"), gen::clique(5));
  EXPECT_EQ(reg.build("clique:n=4,loops=1"), gen::clique_with_loops(4));
  EXPECT_EQ(reg.build("cycle:n=6"), gen::cycle(6));
  EXPECT_EQ(reg.build("path:n=7"), gen::path(7));
  EXPECT_EQ(reg.build("star:n=8"), gen::star(8));
  EXPECT_EQ(reg.build("bipartite:a=3,b=4"), gen::complete_bipartite(3, 4));
  EXPECT_EQ(reg.build("hubcycle"), gen::hub_cycle());
  EXPECT_EQ(reg.build("er:n=50,p=0.2,seed=9"), gen::erdos_renyi(50, 0.2, 9));
  EXPECT_EQ(reg.build("er-m:n=50,m=100,seed=9"),
            gen::erdos_renyi_m(50, 100, 9));
  EXPECT_EQ(reg.build("ba:n=50,m=2,seed=9"), gen::barabasi_albert(50, 2, 9));
  EXPECT_EQ(reg.build("hk:n=50,m=2,p=0.4,seed=9"),
            gen::holme_kim(50, 2, 0.4, 9));
  // rmat/onetri: structural sanity (they are seeded-deterministic too).
  const Graph r = reg.build("rmat:scale=6,ef=4,seed=3");
  EXPECT_EQ(r.num_vertices(), 64u);
  EXPECT_TRUE(r.is_undirected());
  const Graph o = reg.build("onetri:n=80,seed=3");
  EXPECT_EQ(o.num_vertices(), 80u);
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(o));
}

TEST(Registry, UnknownFamilyAndParamValidation) {
  const auto& reg = GeneratorRegistry::builtin();
  EXPECT_THROW(reg.build("frobnicate:n=3"), std::invalid_argument);
  EXPECT_FALSE(reg.contains("frobnicate"));
  EXPECT_TRUE(reg.contains("hk"));
  EXPECT_TRUE(reg.contains("kron"));
  EXPECT_THROW(reg.build("clique:n=3,loops=maybe"), std::invalid_argument);
}

TEST(Registry, KronSpecMaterializesTheProduct) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph c = reg.build("kron:(hubcycle)x(clique:n=3,loops=1)");
  const Graph expected =
      kron::kron_graph(gen::hub_cycle(), gen::clique_with_loops(3));
  EXPECT_EQ(c, expected);
}

TEST(Registry, ThreeFactorKronMatchesKronChain) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph c =
      reg.build("kron:(clique:n=3)x(cycle:n=4)x(hk:n=6,m=2,p=0.5,seed=1)");
  std::vector<Graph> factors = {gen::clique(3), gen::cycle(4),
                                gen::holme_kim(6, 2, 0.5, 1)};
  EXPECT_EQ(c, kron::KronChain(factors).materialize());
}

TEST(Registry, BuildFactorsReturnsFactorListWithoutMaterializing) {
  const auto& reg = GeneratorRegistry::builtin();
  const auto fs = reg.build_factors(
      GraphSpec::parse("kron:(hubcycle)x(clique:n=3,loops=1)"));
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0], gen::hub_cycle());
  EXPECT_EQ(fs[1], gen::clique_with_loops(3));
  const auto single = reg.build_factors(GraphSpec::parse("clique:n=4"));
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], gen::clique(4));
}

TEST(Registry, ModifiersApplyPruneThenLoops) {
  const auto& reg = GeneratorRegistry::builtin();
  const Graph pruned = reg.build("hk:n=60,m=3,p=0.7,seed=4,prune=1");
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(pruned));
  const Graph both = reg.build("hk:n=60,m=3,p=0.7,seed=4,prune=1,loops=1");
  EXPECT_EQ(both, pruned.with_all_self_loops());
}

TEST(Registry, CustomFamilyRegistration) {
  GeneratorRegistry reg;
  reg.add("two-cliques", "disjoint K_n pair: n", [](const GraphSpec& s) {
    const vid n = s.get_uint("n", 3);
    std::vector<std::pair<vid, vid>> edges;
    for (vid u = 0; u < n; ++u) {
      for (vid v = u + 1; v < n; ++v) {
        edges.emplace_back(u, v);
        edges.emplace_back(n + u, n + v);
      }
    }
    return Graph::from_edges(2 * n, edges, true);
  });
  EXPECT_TRUE(reg.contains("two-cliques"));
  const Graph g = reg.build("two-cliques:n=4");
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(triangle::count_total(g), 8u);  // 2 × C(4,3)
}

TEST(Registry, FamiliesListingCoversAllBuiltins) {
  const auto fams = GeneratorRegistry::builtin().families();
  std::size_t found = 0;
  for (const char* want : {"clique", "cycle", "path", "star", "bipartite",
                           "hubcycle", "er", "er-m", "ba", "hk", "rmat",
                           "onetri", "kron"}) {
    for (const auto& [name, help] : fams) {
      if (name == want) {
        ++found;
        EXPECT_FALSE(help.empty()) << name;
      }
    }
  }
  EXPECT_EQ(found, 13u);
}

// ---- sinks -----------------------------------------------------------------

TEST(Sinks, TextSinkWritesEdgeLines) {
  const Graph a = gen::path(3);
  std::ostringstream os;
  api::TextEdgeSink sink(os);
  api::stream_into(a, a, sink);
  std::istringstream is(os.str());
  std::size_t lines = 0;
  vid u = 0, v = 0;
  while (is >> u >> v) ++lines;
  EXPECT_EQ(lines, a.nnz() * a.nnz());
  EXPECT_EQ(sink.edges_consumed(), a.nnz() * a.nnz());
}

TEST(Sinks, BinarySinkRoundTrips) {
  const Graph a = gen::clique(4);
  std::ostringstream os;
  api::BinaryEdgeSink sink(os);
  api::stream_into(a, a, sink);
  const std::string bytes = os.str();
  ASSERT_EQ(bytes.size(), a.nnz() * a.nnz() * 2 * sizeof(vid));
  // Reinterpret and compare against the per-edge stream.
  kron::EdgeStream s(a, a);
  const char* p = bytes.data();
  while (auto e = s.next()) {
    vid u = 0, v = 0;
    std::memcpy(&u, p, sizeof(vid));
    std::memcpy(&v, p + sizeof(vid), sizeof(vid));
    p += 2 * sizeof(vid);
    EXPECT_EQ(u, e->u);
    EXPECT_EQ(v, e->v);
  }
}

TEST(Sinks, CooCollectorMaterializesTheProduct) {
  const Graph a = gen::hub_cycle();
  const Graph b = gen::clique(3);
  api::CooCollectorSink sink;
  api::stream_into(a, b, sink);
  const Graph c =
      sink.to_graph(a.num_vertices() * b.num_vertices());
  EXPECT_EQ(c, kron::kron_graph(a, b));
}

TEST(Sinks, DegreeCensusMatchesTheView) {
  const Graph a = gen::holme_kim(30, 2, 0.6, 2);
  const Graph b = a.with_all_self_loops();
  api::DegreeCensusSink sink(a.num_vertices() * b.num_vertices());
  api::stream_into(a, b, sink);
  const kron::KronGraphView c(a, b);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(sink.degrees()[p], c.out_degree(p)) << "vertex " << p;
  }
}

TEST(Sinks, TriangleCensusMatchesOracleTotals) {
  const Graph a = gen::holme_kim(25, 2, 0.7, 6);
  const Graph b = a;  // loop-free product: every stored entry is off-diagonal
  const kron::TriangleOracle oracle(a, b);
  api::TriangleCensusSink sink(oracle);
  api::stream_into(a, b, sink);
  // Σ_e Δ(e) over stored (directed) entries = 2·Σ_{undirected e} Δ(e)
  // = 2·3·τ(C): each triangle has 3 edges, each edge stored twice.
  EXPECT_EQ(sink.triangle_sum(), 6 * oracle.total_triangles());
}


// ---- finish() idempotence & TeeSink ---------------------------------------

TEST(Sinks, FinishIsIdempotentAcrossTheHierarchy) {
  const Graph a = gen::clique(4);
  std::ostringstream os;
  auto text = std::make_unique<api::TextEdgeSink>(os);
  api::TextEdgeSink* text_ptr = text.get();
  std::vector<std::unique_ptr<api::EdgeSink>> children;
  children.push_back(std::move(text));
  api::TeeSink tee(std::move(children));
  api::stream_into(a, a, tee);  // pump() calls tee.finish()
  EXPECT_TRUE(tee.finished());
  EXPECT_TRUE(text_ptr->finished());
  const std::string once = os.str();
  // Nested / repeated finish() calls must not re-flush or double-write.
  text_ptr->finish();
  tee.finish();
  tee.finish();
  EXPECT_EQ(os.str(), once);
  EXPECT_EQ(tee.edges_consumed(), a.nnz() * a.nnz());
  EXPECT_EQ(text_ptr->edges_consumed(), a.nnz() * a.nnz());
}

/// Runs one stream_parallel pass per sink kind (three passes) and one pass
/// with a TeeSink carrying all three, at the given partition count, and
/// expects bit-identical counts.
void expect_tee_bit_identical(const Graph& a, const Graph& b,
                              unsigned partitions) {
  const kron::KronGraphView view(a, b);
  const kron::TriangleOracle oracle(a, b);
  const vid n = view.num_vertices();

  const auto merge_degree = [&](auto& sinks, auto&& get) {
    api::DegreeCensusSink merged(n);
    for (auto& s : sinks) merged.merge(get(*s));
    return merged;
  };

  // Three independent passes.
  auto deg_sinks = api::stream_parallel(
      a, b, partitions, [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::DegreeCensusSink>(n);
      });
  auto tri_sinks = api::stream_parallel(
      a, b, partitions, [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::TriangleCensusSink>(oracle);
      });
  auto val_sinks = api::stream_parallel(
      a, b, partitions, [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::ValidatingCensusSink>(view, oracle);
      });
  api::DegreeCensusSink deg_ref = merge_degree(deg_sinks, [](api::EdgeSink& s)
      -> const api::DegreeCensusSink& {
    return static_cast<const api::DegreeCensusSink&>(s);
  });
  api::TriangleCensusSink tri_ref(oracle);
  for (auto& s : tri_sinks) {
    tri_ref.merge(static_cast<const api::TriangleCensusSink&>(*s));
  }
  api::ValidatingCensusSink val_ref(view, oracle);
  for (auto& s : val_sinks) {
    val_ref.merge(static_cast<const api::ValidatingCensusSink&>(*s));
  }

  // One pass, TeeSink fan-out of all three.
  auto tee_sinks = api::stream_parallel(
      a, b, partitions,
      [&](std::uint64_t, std::uint64_t) -> std::unique_ptr<api::EdgeSink> {
        std::vector<std::unique_ptr<api::EdgeSink>> children;
        children.push_back(std::make_unique<api::DegreeCensusSink>(n));
        children.push_back(std::make_unique<api::TriangleCensusSink>(oracle));
        children.push_back(
            std::make_unique<api::ValidatingCensusSink>(view, oracle));
        return std::make_unique<api::TeeSink>(std::move(children));
      });
  api::DegreeCensusSink deg_tee(n);
  api::TriangleCensusSink tri_tee(oracle);
  api::ValidatingCensusSink val_tee(view, oracle);
  for (auto& s : tee_sinks) {
    auto& tee = static_cast<api::TeeSink&>(*s);
    deg_tee.merge(static_cast<const api::DegreeCensusSink&>(tee.child(0)));
    tri_tee.merge(static_cast<const api::TriangleCensusSink&>(tee.child(1)));
    val_tee.merge(
        static_cast<const api::ValidatingCensusSink&>(tee.child(2)));
  }

  EXPECT_EQ(deg_tee.degrees(), deg_ref.degrees());
  EXPECT_EQ(deg_tee.edges_consumed(), deg_ref.edges_consumed());
  EXPECT_EQ(tri_tee.triangle_sum(), tri_ref.triangle_sum());
  EXPECT_EQ(tri_tee.histogram(), tri_ref.histogram());
  EXPECT_EQ(val_tee.edges_checked(), val_ref.edges_checked());
  EXPECT_EQ(val_tee.histogram(), val_ref.histogram());
  EXPECT_EQ(val_tee.mismatches(), 0u);
  EXPECT_EQ(val_ref.mismatches(), 0u);
}

TEST(TeeSink, FanOutBitIdenticalToSeparatePassesAcrossThreadCounts) {
  const Graph a = gen::holme_kim(40, 2, 0.6, 11);
  const Graph b = gen::clique_with_loops(3);
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int omp_threads : {1, 2, 8}) {
    omp_set_num_threads(omp_threads);
#else
  {
#endif
    for (const unsigned partitions : {1u, 4u}) {
      expect_tee_bit_identical(a, b, partitions);
    }
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
}

// ---- AnalysisRegistry ------------------------------------------------------

TEST(AnalysisRegistry, BuildsEveryBuiltinAnalysis) {
  auto& reg = api::AnalysisRegistry::builtin();
  for (const char* name : {"census", "degree", "truss", "components",
                           "clustering", "labeled-census", "validate"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_NO_THROW((void)reg.build(name, {})) << name;
  }
  EXPECT_TRUE(reg.contains("egonet"));
  EXPECT_NO_THROW((void)reg.build("egonet", {{"vertex", "3"}}));
  EXPECT_EQ(reg.families().size(), 8u);
}

TEST(AnalysisRegistry, RejectsUnknownAnalysisNamingTheRegistered) {
  auto& reg = api::AnalysisRegistry::builtin();
  try {
    (void)reg.build("frobnicate", {});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frobnicate"), std::string::npos);
    EXPECT_NE(what.find("census"), std::string::npos);   // lists registered
    EXPECT_NE(what.find("validate"), std::string::npos);
  }
}

TEST(AnalysisRegistry, RejectsUnknownParamsWithActionableError) {
  auto& reg = api::AnalysisRegistry::builtin();
  try {
    (void)reg.build("validate", {{"budget", "4M"}});  // typo for mem_budget
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("budget"), std::string::npos);      // the bad key
    EXPECT_NE(what.find("mem_budget"), std::string::npos);  // the accepted one
    EXPECT_NE(what.find("shards"), std::string::npos);
  }
  // Required params are enforced too.
  EXPECT_THROW((void)reg.build("egonet", {}), std::invalid_argument);
  // And bad values are rejected at build time, before any generation.
  EXPECT_THROW((void)reg.build("census", {{"sample", "many"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.build("validate", {{"mem_budget", "12Q"}}),
               std::invalid_argument);
}

// ---- RunPlan / api::run ----------------------------------------------------

TEST(RunPlan, ShorthandParsesSpecAndAnalyses) {
  const auto plan = api::RunPlan::parse(
      "kron:(hubcycle)x(clique:n=3,loops=1) census degree:histogram=0 "
      "validate:mem_budget=2K,shards=3");
  EXPECT_EQ(plan.spec.to_string(), "kron:(hubcycle)x(clique:loops=1,n=3)");
  ASSERT_EQ(plan.analyses.size(), 3u);
  EXPECT_EQ(plan.analyses[0].name, "census");
  EXPECT_EQ(plan.analyses[1].params.at("histogram"), "0");
  EXPECT_EQ(plan.analyses[2].params.at("mem_budget"), "2K");
}

TEST(RunPlan, JsonRoundTripsThroughToJson) {
  const char* doc = R"json({
    "description": "round trip",
    "spec": "kron:(hubcycle)x(clique:n=3,loops=1)",
    "analyses": [
      {"name": "census", "params": {"truth": 1, "sample": "5"}},
      "degree"
    ],
    "options": {"threads": 2, "mem_budget": "4M", "stream": true}
  })json";
  const auto plan = api::RunPlan::parse(doc);
  EXPECT_EQ(plan.options.threads, 2u);
  EXPECT_EQ(plan.options.mem_budget_bytes, 4u << 20);
  EXPECT_TRUE(plan.options.stream);
  EXPECT_EQ(plan.analyses[0].params.at("truth"), "1");
  EXPECT_EQ(plan.analyses[0].params.at("sample"), "5");
  const auto again = api::RunPlan::from_json(plan.to_json());
  EXPECT_EQ(again.spec.to_string(), plan.spec.to_string());
  EXPECT_EQ(again.options.threads, plan.options.threads);
  EXPECT_EQ(again.options.mem_budget_bytes, plan.options.mem_budget_bytes);
  ASSERT_EQ(again.analyses.size(), plan.analyses.size());
  EXPECT_EQ(again.analyses[0].params, plan.analyses[0].params);
}

TEST(RunPlan, RejectsUnknownKeys) {
  EXPECT_THROW((void)api::RunPlan::parse(R"json({"sepc": "hubcycle"})json"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)api::RunPlan::parse(
          R"json({"spec": "hubcycle", "options": {"treads": 4}})json"),
      std::invalid_argument);
  try {
    (void)api::RunPlan::parse(
        R"json({"spec": "hubcycle", "options": {"treads": 4}})json");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("treads"), std::string::npos);
    EXPECT_NE(what.find("threads"), std::string::npos);
  }
}

TEST(RunPlan, SinglePassRunMatchesIndependentComputation) {
  // One plan, one stream pass: degree + edge census + validate analyses,
  // plus a truss analysis that needs the materialized product (collector
  // rides the same pass).
  api::RunPlan plan = api::RunPlan::parse(
      "kron:(hk:n=30,m=2,p=0.6,seed=11)x(clique:n=3,loops=1) "
      "census:edges=1 degree truss validate components clustering");
  plan.options.threads = 3;
  const auto report = api::run(plan);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.streamed);
  EXPECT_EQ(report.partitions, 3u);
  ASSERT_EQ(report.analyses.size(), 6u);

  const Graph a = api::GeneratorRegistry::builtin().build(
      "hk:n=30,m=2,p=0.6,seed=11");
  const Graph b = api::GeneratorRegistry::builtin().build(
      "clique:n=3,loops=1");
  const kron::KronGraphView c(a, b);
  const kron::TriangleOracle oracle(a, b);
  EXPECT_EQ(report.num_vertices, c.num_vertices());
  EXPECT_EQ(report.num_undirected_edges, c.num_undirected_edges());
  EXPECT_EQ(report.stored_entries, c.nnz());

  // census: oracle totals.
  const auto& census = report.analyses[0];
  EXPECT_EQ(census.data.find("total_triangles")->as_uint(),
            oracle.total_triangles());
  // The streamed edge census rode the pass.
  EXPECT_NE(census.data.find("streamed_edge_triangle_sum"), nullptr);
  // degree: max over the product.
  const auto& degree = report.analyses[1];
  const auto summary = analysis::summarize_kron_degrees(a, b);
  EXPECT_EQ(degree.data.find("max_degree")->as_uint(), summary.max_degree);
  // truss ran on the collector-materialized product — compare against the
  // registry-materialized graph.
  const Graph mat = api::GeneratorRegistry::builtin().build(
      "kron:(hk:n=30,m=2,p=0.6,seed=11)x(clique:n=3,loops=1)");
  const auto truss_ref = truss::decompose(mat);
  EXPECT_EQ(report.analyses[2].data.find("max_truss")->as_uint(),
            truss_ref.max_truss);
  // validate: the streaming census verdict.
  EXPECT_TRUE(report.analyses[3].pass);
  EXPECT_EQ(report.analyses[3].data.find("measured_total")->as_uint(),
            oracle.total_triangles());
}

TEST(RunPlan, StreamedReportIsDeterministicAcrossPartitionCounts) {
  auto run_at = [](unsigned threads) {
    api::RunPlan plan = api::RunPlan::parse(
        "kron:(hk:n=25,m=2,p=0.5,seed=7)x(clique:n=3,loops=1) "
        "census:edges=1 degree:measured=1");
    plan.options.threads = threads;
    return api::run(plan);
  };
  const auto r1 = run_at(1);
  const auto r4 = run_at(4);
  ASSERT_EQ(r1.analyses.size(), r4.analyses.size());
  EXPECT_EQ(r1.stored_entries, r4.stored_entries);
  EXPECT_EQ(
      r1.analyses[0].data.find("streamed_edge_triangle_sum")->as_uint(),
      r4.analyses[0].data.find("streamed_edge_triangle_sum")->as_uint());
  EXPECT_EQ(r1.analyses[1].data.find("max_degree")->as_uint(),
            r4.analyses[1].data.find("max_degree")->as_uint());
}

TEST(RunPlan, NonProductSpecRunsGraphBackedAnalyses) {
  const auto report = api::run(api::RunPlan::parse(
      "hk:n=40,m=2,p=0.5,seed=3 census degree truss components clustering"));
  EXPECT_TRUE(report.pass);
  EXPECT_FALSE(report.streamed);
  const Graph g = api::GeneratorRegistry::builtin().build(
      "hk:n=40,m=2,p=0.5,seed=3");
  EXPECT_EQ(report.num_vertices, g.num_vertices());
  EXPECT_EQ(report.analyses[0].data.find("total_triangles")->as_uint(),
            triangle::count_total(g));
  EXPECT_EQ(report.analyses[3].data.find("components")->as_uint(),
            analysis::connected_components(g).count);
}

TEST(RunPlan, ReportJsonCarriesStagesAnalysesAndMetadata) {
  const auto report = api::run(
      api::RunPlan::parse("kron:(hubcycle)x(clique:n=3,loops=1) validate"));
  const auto j = report.to_json();
  EXPECT_TRUE(j.find("pass")->as_bool());
  EXPECT_GE(j.find("stages")->size(), 1u);
  EXPECT_EQ(j.find("analyses")->items()[0].find("name")->as_string(),
            "validate");
  EXPECT_GE(j.find("metadata")->get_uint("hardware_concurrency", 0), 1u);
  // The dump parses back.
  const auto round = util::json::Value::parse(j.dump_string());
  EXPECT_TRUE(round.find("pass")->as_bool());
}

TEST(Sinks, MergedParallelTriangleCensusEqualsSingleThreaded) {
  const Graph a = gen::holme_kim(25, 2, 0.7, 6);
  const kron::TriangleOracle oracle(a, a);
  auto sinks = api::stream_parallel(
      a, a, 4,
      [&](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::TriangleCensusSink>(oracle);
      },
      /*batch_size=*/64);
  auto& merged = static_cast<api::TriangleCensusSink&>(*sinks[0]);
  for (std::size_t i = 1; i < sinks.size(); ++i) {
    merged.merge(static_cast<const api::TriangleCensusSink&>(*sinks[i]));
  }
  EXPECT_EQ(merged.triangle_sum(), 6 * oracle.total_triangles());
  EXPECT_EQ(merged.edges_consumed(), a.nnz() * a.nnz());
}

}  // namespace
