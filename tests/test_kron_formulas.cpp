// The paper's central results, validated end-to-end: for small random and
// structured factors, materialize C = A ⊗ B, count triangles directly on C,
// and compare against the closed Kronecker formulas (Thm 1, Cor 1, both-loop
// general case; Thm 2, Cor 2, general case; §III.A degrees; Ex. 1(a)–(c)).
#include <gtest/gtest.h>

#include <tuple>

#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/formulas.hpp"
#include "kron/product.hpp"
#include "triangle/count.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;

// ---------------------------------------------------------------------------
// Ex. 1 closed forms
// ---------------------------------------------------------------------------

TEST(Ex1, CliqueTimesCliqueNoLoops) {
  // Ex. 1(a): C = K_nA ⊗ K_nB.
  const vid na = 4, nb = 5;
  const Graph a = gen::clique(na), b = gen::clique(nb);
  const Graph c = kron::kron_graph(a, b);
  const count_t deg = na * nb + 1 - na - nb;
  const count_t tri_v = deg * (na * nb + 4 - 2 * na - 2 * nb) / 2;
  const count_t tri_e = na * nb + 4 - 2 * na - 2 * nb;

  const auto tc = kron::vertex_triangles(a, b);
  const auto dc = kron::edge_triangles(a, b);
  const auto direct = triangle::analyze(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(c.nonloop_degree(p), deg);
    EXPECT_EQ(tc.at(p), tri_v);
    EXPECT_EQ(direct.per_vertex[p], tri_v);
  }
  const CountCsr dc_exp = dc.expand();
  for (const count_t v : dc_exp.values()) EXPECT_EQ(v, tri_e);
  for (const count_t v : direct.per_edge.values()) EXPECT_EQ(v, tri_e);
}

TEST(Ex1, CliqueTimesLoopedClique) {
  // Ex. 1(b): C = K_nA ⊗ J_nB — t = ½(n_A·n_B − n_B)(n_A·n_B − 2n_B);
  // Δ = n_A·n_B − 2n_B. Every vertex has degree (n_A−1)·n_B = n − n_B.
  // (The paper's prose says "n_A·n_B − n_A", but its own triangle formula
  // ½(n−n_B)(n−2n_B) = ½·d·(d−n_B) is consistent only with d = n − n_B;
  // the A/B subscripts are swapped there — a typo we verify against the
  // materialized product below.)
  const vid na = 4, nb = 3;
  const Graph a = gen::clique(na);
  const Graph b = gen::clique_with_loops(nb);
  const Graph c = kron::kron_graph(a, b);
  const count_t n = na * nb;
  const count_t tri_v = (n - nb) * (n - 2 * nb) / 2;
  const count_t tri_e = n - 2 * nb;

  const auto tc = kron::vertex_triangles(a, b);
  const auto dc = kron::edge_triangles(a, b);
  const auto direct = triangle::analyze(c);
  EXPECT_FALSE(c.has_self_loops());  // A loop-free kills all product loops
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(c.nonloop_degree(p), n - nb);
    EXPECT_EQ(tc.at(p), tri_v);
    EXPECT_EQ(direct.per_vertex[p], tri_v);
  }
  const CountCsr dc_exp = dc.expand();
  for (const count_t v : dc_exp.values()) EXPECT_EQ(v, tri_e);
}

TEST(Ex1, LoopedTimesLoopedIsClique) {
  // Ex. 1(c): J_nA ⊗ J_nB − I = K_{nA·nB}: degree n−1, t = C(n−1,2),
  // Δ = n−2 — maximum possible triangles.
  const vid na = 3, nb = 4;
  const Graph a = gen::clique_with_loops(na);
  const Graph b = gen::clique_with_loops(nb);
  const Graph c = kron::kron_graph(a, b);
  const count_t n = na * nb;
  EXPECT_TRUE(c.without_self_loops() == gen::clique(n));

  const auto tc = kron::vertex_triangles(a, b);
  const auto dc = kron::edge_triangles(a, b);
  for (vid p = 0; p < n; ++p) {
    EXPECT_EQ(tc.at(p), (n - 1) * (n - 2) / 2);
  }
  const auto expanded = dc.expand();
  for (vid p = 0; p < n; ++p) {
    for (vid q = 0; q < n; ++q) {
      if (p == q) {
        EXPECT_EQ(expanded.at(p, q), 0u) << "diagonal must carry no triangles";
      } else {
        EXPECT_EQ(expanded.at(p, q), n - 2);
      }
    }
  }
  EXPECT_EQ(kron::total_triangles(a, b), n * (n - 1) * (n - 2) / 6);
}

// ---------------------------------------------------------------------------
// Theorem sweeps over random factors in all four loop regimes
// ---------------------------------------------------------------------------

struct LoopConfig {
  double loop_a;
  double loop_b;
};

class KronFormulaSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {
 protected:
  static LoopConfig config(int regime) {
    switch (regime) {
      case 0: return {0.0, 0.0};   // Thm 1 / Thm 2
      case 1: return {0.0, 0.5};   // Cor 1 / Cor 2
      case 2: return {0.5, 0.0};   // mirrored corollaries
      default: return {0.5, 0.5};  // general formulas
    }
  }
};

TEST_P(KronFormulaSweep, VertexTrianglesMatchDirectCount) {
  const auto [seed, regime] = GetParam();
  const LoopConfig cfg = config(regime);
  const Graph a = kt_test::random_undirected(7, 0.45, seed, cfg.loop_a);
  const Graph b = kt_test::random_undirected(6, 0.5, seed + 77, cfg.loop_b);
  const Graph c = kron::kron_graph(a, b);

  const auto formula = kron::vertex_triangles(a, b).expand();
  const auto direct = triangle::participation_vertices(c);
  EXPECT_EQ(formula, direct) << "regime " << regime << " seed " << seed;
}

TEST_P(KronFormulaSweep, EdgeTrianglesMatchDirectCount) {
  const auto [seed, regime] = GetParam();
  const LoopConfig cfg = config(regime);
  const Graph a = kt_test::random_undirected(6, 0.5, seed + 1000, cfg.loop_a);
  const Graph b = kt_test::random_undirected(6, 0.45, seed + 2000, cfg.loop_b);
  const Graph c = kron::kron_graph(a, b);

  const auto formula = kron::edge_triangles(a, b).expand();
  const auto direct = triangle::edge_support_masked(c);
  // The formula expansion drops zero entries; compare entrywise.
  kt_test::expect_matrix_eq(direct, formula, "Δ_C");
}

TEST_P(KronFormulaSweep, PointQueriesMatchExpansion) {
  const auto [seed, regime] = GetParam();
  const LoopConfig cfg = config(regime);
  const Graph a = kt_test::random_undirected(6, 0.5, seed + 3000, cfg.loop_a);
  const Graph b = kt_test::random_undirected(5, 0.5, seed + 4000, cfg.loop_b);

  const auto tvec = kron::vertex_triangles(a, b);
  const auto expanded = tvec.expand();
  for (vid p = 0; p < tvec.size(); ++p) {
    EXPECT_EQ(tvec.at(p), expanded[p]);
  }
  count_t sum = 0;
  for (const count_t v : expanded) sum += v;
  EXPECT_EQ(tvec.sum(), sum);
}

TEST_P(KronFormulaSweep, DegreesMatchMaterialized) {
  const auto [seed, regime] = GetParam();
  const LoopConfig cfg = config(regime);
  const Graph a = kt_test::random_undirected(7, 0.4, seed + 5000, cfg.loop_a);
  const Graph b = kt_test::random_undirected(6, 0.4, seed + 6000, cfg.loop_b);
  const Graph c = kron::kron_graph(a, b);

  const auto formula = kron::degrees(a, b).expand();
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(formula[p], c.nonloop_degree(p)) << "p=" << p;
  }
}

TEST_P(KronFormulaSweep, TotalTrianglesMatchesDirect) {
  const auto [seed, regime] = GetParam();
  const LoopConfig cfg = config(regime);
  const Graph a = kt_test::random_undirected(7, 0.45, seed + 7000, cfg.loop_a);
  const Graph b = kt_test::random_undirected(5, 0.55, seed + 8000, cfg.loop_b);
  const Graph c = kron::kron_graph(a, b);
  EXPECT_EQ(kron::total_triangles(a, b), triangle::count_total(c));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRegimes, KronFormulaSweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 10),
                       ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------------
// The headline identity and misc properties
// ---------------------------------------------------------------------------

TEST(KronFormulas, TotalIsSixTauATauBWithoutLoops) {
  const Graph a = kt_test::random_undirected(12, 0.35, 42);
  const Graph b = kt_test::random_undirected(10, 0.4, 43);
  const count_t ta = triangle::count_total(a);
  const count_t tb = triangle::count_total(b);
  EXPECT_EQ(kron::total_triangles(a, b), 6 * ta * tb);
}

TEST(KronFormulas, VertexCountsAreEvenWithoutLoops) {
  // Thm 1 remark: without self loops every vertex of C has an even triangle
  // count (t_C = 2·t_A ⊗ t_B).
  const Graph a = kt_test::random_undirected(9, 0.4, 50);
  const Graph b = kt_test::random_undirected(8, 0.45, 51);
  for (const count_t v : kron::vertex_triangles(a, b).expand()) {
    EXPECT_EQ(v % 2, 0u);
  }
}

TEST(KronFormulas, DirectedFactorRejected) {
  const Graph a = kt_test::random_directed(5, 0.4, 60);
  const Graph b = kt_test::random_undirected(5, 0.4, 61);
  EXPECT_THROW(kron::vertex_triangles(a, b), std::invalid_argument);
  EXPECT_THROW(kron::edge_triangles(b, a), std::invalid_argument);
}

TEST(KronFormulas, ExprValidation) {
  EXPECT_THROW(kron::KronVectorExpr(0, {}), std::invalid_argument);
  EXPECT_THROW(kron::KronVectorExpr(1, {}), std::invalid_argument);
  std::vector<kron::KronVectorExpr::Term> bad;
  bad.push_back({1, {1, 2}, {3}});
  bad.push_back({1, {1}, {3}});
  EXPECT_THROW(kron::KronVectorExpr(1, std::move(bad)), std::invalid_argument);
}

TEST(KronFormulas, NegativeEvaluationDetected) {
  // A malformed expression (−1 · ones ⊗ ones) must throw on evaluation
  // rather than wrap around.
  std::vector<kron::KronVectorExpr::Term> terms;
  terms.push_back({-1, {1, 1}, {1, 1}});
  const kron::KronVectorExpr expr(1, std::move(terms));
  EXPECT_THROW((void)expr.at(0), std::logic_error);
  EXPECT_THROW((void)expr.sum(), std::logic_error);
}

TEST(KronFormulas, SelfLoopBoostObservedOnNotreDameShape) {
  // §VI's qualitative claim: B = A + I boosts triangles. Verify the ordering
  // τ(A⊗A) < τ(A⊗(A+I)) on a small scale-free-ish factor.
  const Graph a = kt_test::random_undirected(30, 0.15, 70);
  const Graph b = a.with_all_self_loops();
  EXPECT_GT(kron::total_triangles(a, b), kron::total_triangles(a, a));
}

}  // namespace
