// Tests for the oracle extensions: local clustering queries, factor-side
// triangle-count histograms (contribution (d)), and edge-level egonet
// validation (§VI samples edges as well as vertices).
#include <gtest/gtest.h>

#include <map>

#include "analysis/egonet.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"
#include "triangle/clustering.hpp"
#include "triangle/count.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;

class OracleExtras : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleExtras, LocalClusteringMatchesMaterialized) {
  const Graph a = kt_test::random_undirected(6, 0.45, GetParam());
  const Graph b = kt_test::random_undirected(5, 0.5, GetParam() + 1, 0.4);
  const kron::TriangleOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto cc = triangle::local_clustering(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_NEAR(oracle.local_clustering(p), cc[p], 1e-12) << "p=" << p;
  }
}

TEST_P(OracleExtras, TriangleHistogramMatchesExpansion) {
  const Graph a = kt_test::random_undirected(7, 0.4, GetParam() + 50);
  const Graph b = kt_test::random_undirected(6, 0.45, GetParam() + 51, 0.5);
  const kron::TriangleOracle oracle(a, b);
  const auto hist = oracle.triangle_histogram();
  std::map<count_t, count_t> direct;
  const Graph c = kron::kron_graph(a, b);
  for (const count_t v : triangle::participation_vertices(c)) ++direct[v];
  EXPECT_EQ(hist, direct);
}

TEST_P(OracleExtras, EdgeEgonetValidation) {
  const Graph a = kt_test::random_undirected(6, 0.45, GetParam() + 100);
  const Graph b = kt_test::random_undirected(5, 0.5, GetParam() + 101);
  const kron::KronGraphView view(a, b);
  const kron::TriangleOracle oracle(a, b);
  const Graph c = view.materialize();
  for (vid p = 0; p < c.num_vertices(); p += 3) {
    const auto ego = analysis::extract_egonet(view, p);
    for (const vid q : c.neighbors(p)) {
      if (q == p) continue;
      EXPECT_EQ(analysis::center_edge_triangles(ego, q),
                *oracle.edge_triangles(p, q))
          << "edge (" << p << "," << q << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleExtras,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(OracleExtras, HistogramUnavailableInGeneralSelfLoopRegime) {
  const Graph a = kt_test::random_undirected(5, 0.5, 7, 0.5);
  const Graph b = kt_test::random_undirected(5, 0.5, 8, 0.5);
  const kron::TriangleOracle oracle(a, b);
  EXPECT_THROW((void)oracle.triangle_histogram(), std::logic_error);
}

TEST(OracleExtras, HistogramOfCliqueProductIsSingleValue) {
  const Graph a = gen::clique(4), b = gen::clique(5);
  const kron::TriangleOracle oracle(a, b);
  const auto hist = oracle.triangle_histogram();
  ASSERT_EQ(hist.size(), 1u);
  // Ex. 1(a): every vertex in ½(n+1−nA−nB)(n+4−2nA−2nB) = ½·12·6 = 36
  // triangles for (nA,nB) = (4,5).
  EXPECT_EQ(hist.begin()->first, 36u);
  EXPECT_EQ(hist.begin()->second, 20u);
}

TEST(OracleExtras, CenterEdgeTrianglesRejectsNonEdges) {
  const Graph g = gen::star(5);
  const auto ego = analysis::extract_egonet(g, 0);
  EXPECT_THROW((void)analysis::center_edge_triangles(ego, 99),
               std::invalid_argument);
}

TEST(OracleExtras, ClusteringOfLowDegreeVertexIsZero) {
  // A path factor yields degree-1 product corners.
  const Graph a = gen::path(3), b = gen::path(3);
  const kron::TriangleOracle oracle(a, b);
  EXPECT_DOUBLE_EQ(oracle.local_clustering(0), 0.0);
}

}  // namespace
