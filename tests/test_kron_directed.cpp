// Thm 4 / Thm 5 validated end-to-end: the directed census of a materialized
// C = A ⊗ B (computed by the independent brute-force classifier) must equal
// t^{(τ)}_A ⊗ diag(B³) and Δ^{(τ)}_A ⊗ (B∘B²) for all 15 flavors.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/directed.hpp"
#include "kron/product.hpp"
#include "triangle/bruteforce.hpp"

namespace {

using namespace kronotri;

class Thm4Sweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(Thm4Sweep, DirectedVertexCensusTransfers) {
  const auto [seed, b_loops] = GetParam();
  const Graph a = kt_test::random_directed(5, 0.35, seed);
  const Graph b =
      kt_test::random_undirected(4, 0.5, seed + 10, b_loops ? 0.5 : 0.0);
  const Graph c = kron::kron_graph(a, b);

  const auto exprs = kron::directed_vertex_triangles(a, b);
  const auto direct = triangle::brute::directed_vertex_census(c);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    EXPECT_EQ(exprs[static_cast<std::size_t>(f)].expand(),
              direct[static_cast<std::size_t>(f)])
        << "flavor "
        << triangle::to_string(static_cast<triangle::VertexTriType>(f))
        << " seed " << seed << " loops " << b_loops;
  }
}

TEST_P(Thm4Sweep, DirectedEdgeCensusTransfers) {
  const auto [seed, b_loops] = GetParam();
  const Graph a = kt_test::random_directed(4, 0.4, seed + 100);
  const Graph b =
      kt_test::random_undirected(4, 0.5, seed + 110, b_loops ? 0.5 : 0.0);
  const Graph c = kron::kron_graph(a, b);

  const auto exprs = kron::directed_edge_triangles(a, b);
  const auto direct = triangle::brute::directed_edge_census(c);
  for (int f = 0; f < triangle::kNumEdgeTriTypes; ++f) {
    kt_test::expect_matrix_eq(
        exprs[static_cast<std::size_t>(f)].expand(),
        direct[static_cast<std::size_t>(f)],
        std::string(
            triangle::to_string(static_cast<triangle::EdgeTriType>(f)))
            .c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoops, Thm4Sweep,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 10),
                       ::testing::Bool()));

TEST(Thm4, PreconditionsEnforced) {
  const Graph a_loops =
      Graph::from_edges(3, {{{0, 0}, {0, 1}, {1, 2}}}, false);
  const Graph b = kt_test::random_undirected(4, 0.5, 1);
  EXPECT_THROW(kron::directed_vertex_triangles(a_loops, b),
               std::invalid_argument);
  const Graph a = kt_test::random_directed(4, 0.4, 2);
  const Graph b_directed = kt_test::random_directed(4, 0.4, 3);
  EXPECT_THROW(kron::directed_vertex_triangles(a, b_directed),
               std::invalid_argument);
  EXPECT_THROW(kron::directed_edge_triangles(a, b_directed),
               std::invalid_argument);
  EXPECT_THROW(kron::directed_degrees(a, b_directed), std::invalid_argument);
}

TEST(Thm4, ProductDecompositionIdentity) {
  // §IV.A: C_r = A_r ⊗ B and C_d = A_d ⊗ B when B is undirected.
  const Graph a = kt_test::random_directed(5, 0.35, 9);
  const Graph b = kt_test::random_undirected(4, 0.5, 10);
  const Graph c = kron::kron_graph(a, b);
  const auto pa = triangle::split_directed(a);
  const auto pc = triangle::split_directed(c);
  EXPECT_TRUE(pc.ar == kron::kron_matrix<std::uint8_t>(pa.ar, b.matrix()));
  EXPECT_TRUE(pc.ad == kron::kron_matrix<std::uint8_t>(pa.ad, b.matrix()));
}

TEST(DirectedDegrees, MatchMaterialized) {
  const Graph a = kt_test::random_directed(6, 0.3, 20);
  const Graph b = kt_test::random_undirected(5, 0.4, 21);
  const Graph c = kron::kron_graph(a, b);
  const auto dd = kron::directed_degrees(a, b);
  const auto pc = triangle::split_directed(c);

  const auto recip = dd.reciprocal.expand();
  const auto dout = dd.directed_out.expand();
  const auto din = dd.directed_in.expand();
  for (vid p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(recip[p], pc.ar.row_degree(p));
    EXPECT_EQ(dout[p], pc.ad.row_degree(p));
    EXPECT_EQ(din[p], pc.adt.row_degree(p));
  }
}

TEST(Thm4, PurelyDirectedFactorTimesClique) {
  // A = directed 3-cycle, B = K3: every vertex of A has one (s,t,·)
  // triangle, diag(B³) = 2 per vertex, so each C vertex gets 2 of them.
  const Graph a = Graph::from_edges(3, {{{0, 1}, {1, 2}, {2, 0}}}, false);
  const Graph b = gen::clique(3);
  const auto exprs = kron::directed_vertex_triangles(a, b);
  count_t st_total = 0;
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    const auto v = exprs[static_cast<std::size_t>(f)].expand();
    count_t sum = 0;
    for (const count_t x : v) sum += x;
    const auto flavor = static_cast<triangle::VertexTriType>(f);
    if (flavor == triangle::VertexTriType::kSTp ||
        flavor == triangle::VertexTriType::kSTm) {
      st_total += sum;
    } else {
      EXPECT_EQ(sum, 0u) << triangle::to_string(flavor);
    }
  }
  // Each of the 9 product vertices participates in exactly 2 directed
  // triangles (t_A = 1, diag(B³) = 2), all of (s,t,·) flavor.
  EXPECT_EQ(st_total, 9u * 2u);
  count_t per_vertex_total = 0;
  for (const auto flavor :
       {triangle::VertexTriType::kSTp, triangle::VertexTriType::kSTm}) {
    const auto v = exprs[static_cast<std::size_t>(flavor)].expand();
    per_vertex_total += v[0];
  }
  EXPECT_EQ(per_vertex_total, 2u);
}

}  // namespace
