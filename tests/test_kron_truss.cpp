// Thm 3 validated end-to-end: when Δ_B ≤ 1, the truss numbers of
// C = A ⊗ B given by the KronTrussOracle must equal a direct decomposition
// of the materialized product.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/one_triangle_pa.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"
#include "truss/decompose.hpp"
#include "truss/kron_truss.hpp"

namespace {

using namespace kronotri;

TEST(OneTrianglePa, SatisfiesThm3Precondition) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph b = gen::one_triangle_pa(60, seed);
    EXPECT_TRUE(truss::edges_in_at_most_one_triangle(b)) << "seed " << seed;
    EXPECT_TRUE(kt_test::is_connected(b)) << "seed " << seed;
    EXPECT_FALSE(b.has_self_loops());
    EXPECT_TRUE(b.is_undirected());
  }
}

TEST(KronTruss, RejectsViolatedPrecondition) {
  const Graph a = gen::hub_cycle();
  const Graph bad_b = gen::clique(4);  // Δ = 2 everywhere
  EXPECT_THROW(truss::KronTrussOracle(a, bad_b), std::invalid_argument);
  const Graph looped = gen::cycle(5).with_all_self_loops();
  EXPECT_THROW(truss::KronTrussOracle(a, looped), std::invalid_argument);
}

TEST(KronTruss, NonEdgeQueryThrows) {
  const Graph a = gen::clique(4);
  const Graph b = gen::one_triangle_pa(10, 3);
  const truss::KronTrussOracle oracle(a, b);
  // (0,0) is a self loop of C — not an edge since factors are loop-free.
  EXPECT_THROW((void)oracle.truss_number(0, 0), std::invalid_argument);
}

class KronTrussSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KronTrussSweep, OracleMatchesDirectDecomposition) {
  const std::uint64_t seed = GetParam();
  const Graph a = kt_test::random_undirected(6, 0.5, seed);
  const Graph b = gen::one_triangle_pa(7, seed + 1);
  const Graph c = kron::kron_graph(a, b);

  const truss::KronTrussOracle oracle(a, b);
  const auto direct = truss::decompose(c);

  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (const vid q : c.neighbors(p)) {
      EXPECT_EQ(oracle.truss_number(p, q), direct.truss_number.at(p, q))
          << "edge (" << p << "," << q << ") seed " << seed;
    }
  }
  for (count_t kappa = 3; kappa <= direct.max_truss + 1; ++kappa) {
    EXPECT_EQ(oracle.edges_in_truss(kappa), direct.edges_in_truss(kappa))
        << "kappa " << kappa;
  }
  EXPECT_EQ(oracle.max_truss(), direct.max_truss);
}

TEST_P(KronTrussSweep, TriangleFreeBGivesTrivialTruss) {
  // If B has no triangles at all, no edge of C closes one: T^{(3)}_C = ∅.
  const Graph a = kt_test::random_undirected(6, 0.5, GetParam() + 50);
  const Graph b = gen::cycle(6);
  const truss::KronTrussOracle oracle(a, b);
  EXPECT_EQ(oracle.max_truss(), 2u);
  EXPECT_EQ(oracle.edges_in_truss(3), 0u);
  const Graph c = kron::kron_graph(a, b);
  const auto direct = truss::decompose(c);
  EXPECT_EQ(direct.max_truss, 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KronTrussSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(KronTruss, CliqueTimesTriangle) {
  // A = K5 (truss 5 everywhere), B = K3 (Δ_B = 1): every product edge whose
  // B-part closes the triangle inherits truss 5.
  const Graph a = gen::clique(5);
  const Graph b = gen::clique(3);
  const truss::KronTrussOracle oracle(a, b);
  const Graph c = kron::kron_graph(a, b);
  const auto direct = truss::decompose(c);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (const vid q : c.neighbors(p)) {
      EXPECT_EQ(oracle.truss_number(p, q), direct.truss_number.at(p, q));
      EXPECT_EQ(oracle.truss_number(p, q), 5u);
    }
  }
}

}  // namespace
