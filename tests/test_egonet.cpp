// Egonet extraction tests — the Fig. 7 validation instrument.
#include <gtest/gtest.h>

#include "analysis/egonet.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"

namespace {

using namespace kronotri;

TEST(Egonet, CliqueCenter) {
  const Graph k5 = gen::clique(5);
  const auto ego = analysis::extract_egonet(k5, 2);
  EXPECT_EQ(ego.center, 2u);
  EXPECT_EQ(ego.vertices.size(), 5u);  // whole clique
  EXPECT_EQ(analysis::center_triangles(ego), 6u);  // C(4,2)
}

TEST(Egonet, StarCenterHasNoTriangles) {
  const Graph s = gen::star(6);
  const auto ego = analysis::extract_egonet(s, 0);
  EXPECT_EQ(ego.vertices.size(), 6u);
  EXPECT_EQ(analysis::center_triangles(ego), 0u);
}

TEST(Egonet, LeafEgonetIsSingleEdge) {
  const Graph s = gen::star(6);
  const auto ego = analysis::extract_egonet(s, 3);
  EXPECT_EQ(ego.vertices.size(), 2u);
  EXPECT_EQ(ego.graph.num_undirected_edges(), 1u);
}

TEST(Egonet, LocalIdsMapBackToGlobalIds) {
  const Graph g = kt_test::random_undirected(20, 0.25, 3);
  const auto ego = analysis::extract_egonet(g, 7);
  EXPECT_EQ(ego.vertices[ego.local_center], 7u);
  for (vid x = 0; x < ego.vertices.size(); ++x) {
    for (const vid y : ego.graph.neighbors(x)) {
      EXPECT_TRUE(g.has_edge(ego.vertices[x], ego.vertices[y]));
    }
  }
}

class EgonetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EgonetProperty, CenterTrianglesEqualGlobalParticipation) {
  const Graph g = kt_test::random_undirected(25, 0.25, GetParam());
  const auto t = triangle::participation_vertices(g);
  for (vid p = 0; p < g.num_vertices(); p += 3) {
    const auto ego = analysis::extract_egonet(g, p);
    EXPECT_EQ(analysis::center_triangles(ego), t[p]) << "p=" << p;
  }
}

TEST_P(EgonetProperty, ImplicitViewMatchesExplicitExtraction) {
  const Graph a = kt_test::random_undirected(6, 0.4, GetParam() + 100);
  const Graph b = kt_test::random_undirected(5, 0.5, GetParam() + 101, 0.4);
  const kron::KronGraphView view(a, b);
  const Graph c = view.materialize();
  for (vid p = 0; p < c.num_vertices(); p += 4) {
    const auto from_view = analysis::extract_egonet(view, p);
    const auto from_graph = analysis::extract_egonet(c, p);
    EXPECT_EQ(from_view.vertices, from_graph.vertices) << "p=" << p;
    EXPECT_TRUE(from_view.graph == from_graph.graph) << "p=" << p;
  }
}

TEST_P(EgonetProperty, EgonetValidatesOracleLikeFig7) {
  // The Fig. 7 protocol end-to-end at test scale: for sampled product
  // vertices, the egonet's center triangle count equals the Kronecker
  // formula value.
  const Graph a = kt_test::random_undirected(7, 0.4, GetParam() + 200);
  const Graph b = kt_test::random_undirected(6, 0.4, GetParam() + 201);
  const kron::KronGraphView view(a, b);
  const kron::TriangleOracle oracle(a, b);
  for (vid p = 0; p < view.num_vertices(); p += 5) {
    const auto ego = analysis::extract_egonet(view, p);
    EXPECT_EQ(analysis::center_triangles(ego), oracle.vertex_triangles(p))
        << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EgonetProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
