// Edge-case and failure-injection tests across the library: degenerate
// graphs, boundary partitions, expression API misuse, and formula
// preconditions.
#include <gtest/gtest.h>

#include "analysis/degree.hpp"
#include "analysis/egonet.hpp"
#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/formulas.hpp"
#include "kron/oracle.hpp"
#include "kron/product.hpp"
#include "kron/stream.hpp"
#include "kron/view.hpp"
#include "triangle/count.hpp"
#include "triangle/directed.hpp"
#include "triangle/support.hpp"
#include "truss/decompose.hpp"

namespace {

using namespace kronotri;

TEST(EdgeCases, SingleVertexGraph) {
  const Graph g = Graph::from_edges(1, {}, false);
  EXPECT_EQ(triangle::count_total(g), 0u);
  EXPECT_EQ(truss::decompose(g).max_truss, 2u);
  const auto ego = analysis::extract_egonet(g, 0);
  EXPECT_EQ(ego.vertices.size(), 1u);
  EXPECT_EQ(analysis::center_triangles(ego), 0u);
}

TEST(EdgeCases, SingleVertexWithLoop) {
  const Graph g = Graph::from_edges(1, {{{0, 0}}}, false);
  EXPECT_EQ(g.num_self_loops(), 1u);
  EXPECT_EQ(triangle::count_total(g), 0u);
  // Loop ⊗ loop: product has one loop, zero triangles.
  const auto t = kron::vertex_triangles(g, g);
  EXPECT_EQ(t.at(0), 0u);
  EXPECT_EQ(kron::total_triangles(g, g), 0u);
}

TEST(EdgeCases, EmptyFactorProducesEmptyProduct) {
  const Graph e = Graph::from_edges(3, {}, false);
  const Graph k = gen::clique(4);
  const kron::KronGraphView view(e, k);
  EXPECT_EQ(view.nnz(), 0u);
  EXPECT_EQ(view.num_undirected_edges(), 0u);
  EXPECT_EQ(kron::total_triangles(e, k), 0u);
  kron::EdgeStream stream(e, k);
  EXPECT_EQ(stream.partition_size(), 0u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(EdgeCases, StreamMorePartitionsThanEdges) {
  const Graph k2 = gen::clique(2);  // nnz = 2
  const Graph c = kron::kron_graph(k2, k2);
  esz total = 0;
  for (std::uint64_t part = 0; part < 10; ++part) {
    kron::EdgeStream stream(k2, k2, part, 10);
    while (stream.next()) ++total;
  }
  EXPECT_EQ(total, c.nnz());
}

TEST(EdgeCases, TriangleFreeFactorKillsAllProductTriangles) {
  const Graph tree = gen::star(6);
  const Graph rich = gen::clique(5);
  EXPECT_EQ(kron::total_triangles(tree, rich), 0u);
  const auto tv = kron::vertex_triangles(tree, rich);
  for (vid p = 0; p < tv.size(); ++p) EXPECT_EQ(tv.at(p), 0u);
}

TEST(EdgeCases, OracleOnTinyFactors) {
  const Graph k2 = gen::clique(2);
  const kron::TriangleOracle oracle(k2, k2);
  EXPECT_EQ(oracle.total_triangles(), 0u);
  EXPECT_EQ(oracle.num_vertices(), 4u);
  EXPECT_EQ(oracle.num_undirected_edges(), 2u);
  EXPECT_FALSE(oracle.edge_triangles(0, 1).has_value());  // not an edge of C
  ASSERT_TRUE(oracle.edge_triangles(0, 3).has_value());
  EXPECT_EQ(*oracle.edge_triangles(0, 3), 0u);
}

TEST(EdgeCases, KronMatrixExprPointVsExpand) {
  const Graph a = kt_test::random_undirected(5, 0.5, 1, 0.5);
  const Graph b = kt_test::random_undirected(4, 0.5, 2, 0.5);
  const auto expr = kron::edge_triangles(a, b);
  const CountCsr expanded = expr.expand();
  for (vid p = 0; p < expr.rows(); ++p) {
    for (vid q = 0; q < expr.rows(); ++q) {
      EXPECT_EQ(expr.at(p, q), expanded.at(p, q));
    }
  }
  count_t total = 0;
  for (const count_t v : expanded.values()) total += v;
  EXPECT_EQ(expr.sum(), total);
}

TEST(EdgeCases, DirectedCensusOnEmptyGraph) {
  const Graph e = Graph::from_edges(4, {}, false);
  const auto census = triangle::directed_vertex_census(e);
  for (const auto& flavor : census) {
    for (const count_t v : flavor) EXPECT_EQ(v, 0u);
  }
}

TEST(EdgeCases, SupportOnGraphWithIsolatedVertices) {
  Graph g = Graph::from_edges(10, {{{0, 1}, {1, 2}, {0, 2}}}, true);
  const auto st = triangle::analyze(g);
  EXPECT_EQ(st.total, 1u);
  for (vid v = 3; v < 10; ++v) EXPECT_EQ(st.per_vertex[v], 0u);
}

TEST(EdgeCases, DegreeSummaryOfEmptyGraph) {
  const Graph e = Graph::from_edges(5, {}, false);
  const auto s = analysis::summarize_degrees(e);
  EXPECT_EQ(s.max_degree, 0u);
  const auto sk = analysis::summarize_kron_degrees(e, e);
  EXPECT_EQ(sk.max_degree, 0u);
}

TEST(EdgeCases, ViewOnMismatchedLifetimesIsCallerProblemButQueriesWork) {
  const Graph a = gen::clique(3);
  const Graph b = gen::cycle(4);
  const kron::KronGraphView view(a, b);
  // 12 vertices, every vertex degree 2·2 = 4.
  for (vid p = 0; p < view.num_vertices(); ++p) {
    EXPECT_EQ(view.out_degree(p), 4u);
  }
}

TEST(EdgeCases, TrussOfDisconnectedGraph) {
  // Two disjoint triangles: all edges truss 3.
  const Graph g = Graph::from_edges(
      6, {{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}}, true);
  const auto t = truss::decompose(g);
  EXPECT_EQ(t.max_truss, 3u);
  EXPECT_EQ(t.edges_in_truss(3), 6u);
}

TEST(EdgeCases, HistogramOfEmptyProduct) {
  const Graph e = Graph::from_edges(2, {}, false);
  const kron::TriangleOracle oracle(e, e);
  const auto hist = oracle.triangle_histogram();
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.at(0), 4u);  // all four vertices have zero triangles
}

}  // namespace
