// Clustering-coefficient tests (the motivating consumers of t and Δ, §I).
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "triangle/clustering.hpp"

namespace {

using namespace kronotri;

TEST(Clustering, CliqueIsFullyClustered) {
  const auto c = triangle::local_clustering(gen::clique(6));
  for (const double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(triangle::global_clustering(gen::clique(6)), 1.0);
  EXPECT_DOUBLE_EQ(triangle::average_clustering(gen::clique(6)), 1.0);
}

TEST(Clustering, TriangleFreeGraphsAreZero) {
  EXPECT_DOUBLE_EQ(triangle::global_clustering(gen::cycle(8)), 0.0);
  EXPECT_DOUBLE_EQ(triangle::average_clustering(gen::star(7)), 0.0);
}

TEST(Clustering, DegreeOneVerticesContributeZero) {
  const auto c = triangle::local_clustering(gen::path(4));
  for (const double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Clustering, HubCycleValues) {
  // Hub: 4 triangles over C(4,2)=6 wedges = 2/3; cycle vertices: 2 triangles
  // over C(3,2)=3 wedges = 2/3.
  const auto c = triangle::local_clustering(gen::hub_cycle());
  for (const double v : c) EXPECT_NEAR(v, 2.0 / 3.0, 1e-12);
}

TEST(Clustering, SelfLoopsDoNotCount) {
  const Graph k4 = gen::clique(4);
  const auto plain = triangle::local_clustering(k4);
  const auto looped = triangle::local_clustering(k4.with_all_self_loops());
  EXPECT_EQ(plain, looped);
}

TEST(Clustering, HolmeKimBeatsErdosRenyiAtEqualDensity) {
  const Graph hk = gen::holme_kim(500, 3, 0.8, 3);
  const double density =
      static_cast<double>(hk.num_undirected_edges()) /
      static_cast<double>(500 * 499 / 2);
  const Graph er = gen::erdos_renyi(500, density, 4);
  EXPECT_GT(triangle::average_clustering(hk),
            3.0 * triangle::average_clustering(er));
}

TEST(Clustering, GlobalCoefficientDefinition) {
  const Graph g = kt_test::random_undirected(30, 0.25, 5);
  const double gc = triangle::global_clustering(g);
  EXPECT_GE(gc, 0.0);
  EXPECT_LE(gc, 1.0);
}

}  // namespace
