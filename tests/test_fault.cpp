// util::fault::Injector spec grammar + match semantics, and the
// util::Backoff delay schedule shared by the runner and service::Client.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "util/backoff.hpp"
#include "util/fault.hpp"

namespace {

using namespace kronotri;
using util::fault::Injector;

TEST(Fault, EmptySpecMatchesNothing) {
  const Injector inj{std::string_view{}};
  EXPECT_TRUE(inj.empty());
  EXPECT_EQ(inj.match("kill", 0, 0), nullptr);
}

TEST(Fault, ParsesTheCiSmokeSpec) {
  const Injector inj{std::string_view{"kill:shard=1:attempt=0"}};
  ASSERT_EQ(inj.actions().size(), 1u);
  EXPECT_EQ(inj.actions()[0].kind, "kill");
  EXPECT_EQ(inj.actions()[0].shard, 1);
  EXPECT_EQ(inj.actions()[0].attempt, 0);
  // Fires exactly at (shard 1, attempt 0) — nowhere else.
  EXPECT_NE(inj.match("kill", 1, 0), nullptr);
  EXPECT_EQ(inj.match("kill", 1, 1), nullptr);
  EXPECT_EQ(inj.match("kill", 0, 0), nullptr);
  EXPECT_EQ(inj.match("stall", 1, 0), nullptr);
}

TEST(Fault, OmittedKeysMatchAnyCoordinate) {
  const Injector inj{std::string_view{"exit:code=7"}};
  const auto* a = inj.match("exit", 3, 2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->code, 7);
  EXPECT_NE(inj.match("exit", 0, 0), nullptr);
}

TEST(Fault, MultipleActionsAndStallSeconds) {
  const Injector inj{
      std::string_view{"stall:shard=2:secs=0.25,truncate:shard=0:attempt=1"}};
  ASSERT_EQ(inj.actions().size(), 2u);
  const auto* stall = inj.match("stall", 2, 5);
  ASSERT_NE(stall, nullptr);
  EXPECT_DOUBLE_EQ(stall->secs, 0.25);
  EXPECT_NE(inj.match("truncate", 0, 1), nullptr);
  EXPECT_EQ(inj.match("truncate", 0, 0), nullptr);
}

TEST(Fault, RejectsMalformedSpecs) {
  EXPECT_THROW(Injector{std::string_view{"explode"}}, std::invalid_argument);
  EXPECT_THROW(Injector{std::string_view{"kill:shard"}},
               std::invalid_argument);
  EXPECT_THROW(Injector{std::string_view{"kill:shard=x"}},
               std::invalid_argument);
  EXPECT_THROW(Injector{std::string_view{"kill:boom=1"}},
               std::invalid_argument);
}

TEST(Fault, FromEnvReadsKronotriFault) {
  ::setenv("KRONOTRI_FAULT", "kill:shard=4", 1);
  const Injector inj = Injector::from_env();
  EXPECT_NE(inj.match("kill", 4, 9), nullptr);
  ::unsetenv("KRONOTRI_FAULT");
  EXPECT_TRUE(Injector::from_env().empty());
}

TEST(Backoff, ExponentialWithCeiling) {
  const util::Backoff b{0.05, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(b.delay_s(0), 0.05);
  EXPECT_DOUBLE_EQ(b.delay_s(1), 0.1);
  EXPECT_DOUBLE_EQ(b.delay_s(2), 0.2);
  EXPECT_DOUBLE_EQ(b.delay_s(10), 2.0);   // clamped
  EXPECT_DOUBLE_EQ(b.delay_s(100), 2.0);  // no overflow at large attempts
}

}  // namespace
