// Unit tests for src/util: PRNG, formatting, tables, CLI parsing, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/types.hpp"
#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace kronotri;

TEST(Prng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(util::splitmix64(s1), util::splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Prng, SplitMixAdvancesState) {
  std::uint64_t s = 42;
  const auto a = util::splitmix64(s);
  const auto b = util::splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Prng, Hash64IsStateless) {
  EXPECT_EQ(util::hash64(123), util::hash64(123));
  EXPECT_NE(util::hash64(123), util::hash64(124));
}

TEST(Prng, XoshiroSeedDeterminism) {
  util::Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  util::Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Prng, BoundedStaysInRange) {
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Prng, BoundedCoversRange) {
  util::Xoshiro256 rng(2);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 2000; ++i) ++seen[rng.bounded(5)];
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, UniformInUnitInterval) {
  util::Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BernoulliFrequency) {
  util::Xoshiro256 rng(4);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Format, Commas) {
  EXPECT_EQ(util::commas(0), "0");
  EXPECT_EQ(util::commas(999), "999");
  EXPECT_EQ(util::commas(1000), "1,000");
  EXPECT_EQ(util::commas(1234567), "1,234,567");
  EXPECT_EQ(util::commas(106099381441ULL), "106,099,381,441");
}

TEST(Format, HumanSuffixes) {
  EXPECT_EQ(util::human(325729), "326K");
  EXPECT_EQ(util::human(1090108), "1.09M");
  EXPECT_EQ(util::human(2.376670903328e12), "2.38T");
  EXPECT_EQ(util::human(42), "42");
}

TEST(Table, AlignsColumns) {
  util::Table t({"Matrix", "Vertices"});
  t.row({"A", "325.7K"}).row({"A⊗A", "106.1B"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Matrix"), std::string::npos);
  EXPECT_NE(s.find("106.1B"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n", "42", "--name=web", "pos1", "--flag"};
  util::Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_uint("n", 0), 42u);
  EXPECT_EQ(cli.get("name", ""), "web");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", -7), -7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--p", "0.25"};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_double("q", 0.5), 0.5);
}

TEST(Cli, GetBoolBareFlagAndExplicitValues) {
  const char* argv[] = {"prog", "--verbose", "--cache=0",   "--warm", "yes",
                        "--x",  "off",       "--bad=maybe"};
  util::Cli cli(8, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("cache", true));
  EXPECT_TRUE(cli.get_bool("warm", false));
  EXPECT_FALSE(cli.get_bool("x", true));
  EXPECT_TRUE(cli.get_bool("absent", true));
  EXPECT_FALSE(cli.get_bool("absent", false));
  EXPECT_THROW(static_cast<void>(cli.get_bool("bad", false)),
               std::invalid_argument);
}

TEST(Cli, DoubleDashTerminatorMakesRestPositional) {
  const char* argv[] = {"prog", "--n", "3", "--", "--weird-name", "--x=1"};
  util::Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_uint("n", 0), 3u);
  EXPECT_FALSE(cli.has("weird-name"));
  EXPECT_FALSE(cli.has("x"));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "--weird-name");
  EXPECT_EQ(cli.positional()[1], "--x=1");
}

TEST(Cli, EqualsFormCarriesValuesStartingWithDashes) {
  // `--out --weird-name` is ambiguous (two boolean flags); the `=` form is
  // the supported way to pass a value that itself starts with `--`.
  const char* argv[] = {"prog", "--out=--weird-name", "--flag"};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("out", ""), "--weird-name");
  EXPECT_TRUE(cli.get_bool("flag", false));
}

TEST(Cli, FlagFollowedByFlagParsesAsTwoBooleans) {
  // Documented behavior the `--` terminator and `=` form exist to avoid.
  const char* argv[] = {"prog", "--out", "--weird-name"};
  util::Cli cli(3, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("out", false));
  EXPECT_TRUE(cli.get_bool("weird-name", false));
}

TEST(Stats, HistogramCounts) {
  const std::vector<count_t> v = {1, 2, 2, 3, 3, 3};
  const auto h = util::histogram(std::span<const count_t>(v));
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(2), 2u);
  EXPECT_EQ(h.at(3), 3u);
}

TEST(Stats, MeanAndMax) {
  const std::vector<count_t> v = {2, 4, 6};
  EXPECT_DOUBLE_EQ(util::mean(std::span<const count_t>(v)), 4.0);
  EXPECT_EQ(util::max_value(std::span<const count_t>(v)), 6u);
}

TEST(Stats, LogLogSlopeOfPowerLaw) {
  // count(d) = 1000 · d^{-2} exactly → slope ≈ −2.
  std::map<count_t, std::uint64_t> h;
  for (count_t d = 1; d <= 64; d *= 2) {
    h[d] = static_cast<std::uint64_t>(65536.0 / static_cast<double>(d * d));
  }
  EXPECT_NEAR(util::log_log_slope(h), -2.0, 0.05);
}

TEST(Backoff, NoJitterDefaultKeepsExactSchedule) {
  // The service client's documented contract: delay_s is never jittered,
  // and with jitter unset delay_jittered_s IS delay_s.
  const util::Backoff b{0.05, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(b.delay_s(0), 0.05);
  EXPECT_DOUBLE_EQ(b.delay_s(1), 0.1);
  EXPECT_DOUBLE_EQ(b.delay_s(10), 1.0);  // capped
  for (unsigned a = 0; a < 6; ++a) {
    EXPECT_DOUBLE_EQ(b.delay_jittered_s(a, 42), b.delay_s(a));
  }
}

TEST(Backoff, JitterStaysInBandAndIsDeterministic) {
  util::Backoff b{0.05, 2.0, 2.0};
  b.jitter = 0.5;
  b.seed = 7;
  for (unsigned a = 0; a < 8; ++a) {
    for (std::uint64_t stream = 0; stream < 16; ++stream) {
      const double d = b.delay_s(a);
      const double j = b.delay_jittered_s(a, stream);
      EXPECT_GE(j, d * 0.5 - 1e-12) << "a=" << a << " stream=" << stream;
      EXPECT_LE(j, d + 1e-12);
      // Deterministic: same (seed, stream, attempt) → same delay.
      EXPECT_DOUBLE_EQ(j, b.delay_jittered_s(a, stream));
    }
  }
}

TEST(Backoff, JitterSpreadsStreamsApart) {
  // The point of per-unit streams: a mass re-queue must NOT re-dispatch
  // in lockstep. At least two of the first eight units draw different
  // delays for the same attempt.
  util::Backoff b{0.05, 2.0, 2.0};
  b.jitter = 0.5;
  b.seed = 0x6b726f6e6f747269ULL;
  bool any_differ = false;
  for (std::uint64_t s = 1; s < 8; ++s) {
    any_differ = any_differ ||
                 b.delay_jittered_s(0, s) != b.delay_jittered_s(0, 0);
  }
  EXPECT_TRUE(any_differ);
  // Different seeds give different schedules for the same stream.
  util::Backoff c = b;
  c.seed = 1;
  bool seed_matters = false;
  for (std::uint64_t s = 0; s < 8; ++s) {
    seed_matters = seed_matters ||
                   b.delay_jittered_s(1, s) != c.delay_jittered_s(1, s);
  }
  EXPECT_TRUE(seed_matters);
}

}  // namespace
