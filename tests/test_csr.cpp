// Unit tests for the COO builder and CSR matrix invariants.
#include <gtest/gtest.h>

#include "core/coo.hpp"
#include "core/csr.hpp"
#include "helpers.hpp"

namespace {

using namespace kronotri;

TEST(Coo, CollectsEntries) {
  Coo<count_t> coo(3, 4);
  coo.add(0, 1, 5);
  coo.add(2, 3, 7);
  EXPECT_EQ(coo.size(), 2u);
  EXPECT_EQ(coo.rows(), 3u);
  EXPECT_EQ(coo.cols(), 4u);
}

TEST(Coo, AddSymmetricSkipsDiagonalDuplicate) {
  BoolCoo coo(3, 3);
  coo.add_symmetric(0, 1, 1);
  coo.add_symmetric(2, 2, 1);
  EXPECT_EQ(coo.size(), 3u);  // (0,1), (1,0), (2,2)
}

TEST(Csr, FromCooSortsAndSumsDuplicates) {
  Coo<count_t> coo(2, 2);
  coo.add(1, 0, 3);
  coo.add(0, 1, 1);
  coo.add(1, 0, 4);
  const auto m = CountCsr::from_coo(coo, DupPolicy::kSum);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.at(1, 0), 7u);
  EXPECT_EQ(m.at(0, 1), 1u);
}

TEST(Csr, FromCooKeepPolicyCollapsesDuplicates) {
  BoolCoo coo(2, 2);
  coo.add(0, 1, 1);
  coo.add(0, 1, 1);
  const auto m = BoolCsr::from_coo(coo, DupPolicy::kKeep);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.at(0, 1), 1);
}

TEST(Csr, FromCooRejectsOutOfRange) {
  Coo<count_t> coo(2, 2);
  coo.add(2, 0, 1);
  EXPECT_THROW(CountCsr::from_coo(coo), std::out_of_range);
}

TEST(Csr, FromPartsValidates) {
  // Non-monotone row_ptr.
  EXPECT_THROW(CountCsr::from_parts(2, 2, {0, 2, 1}, {0, 1}, {1, 1}),
               std::invalid_argument);
  // Unsorted row.
  EXPECT_THROW(CountCsr::from_parts(1, 3, {0, 2}, {2, 0}, {1, 1}),
               std::invalid_argument);
  // Duplicate column in a row.
  EXPECT_THROW(CountCsr::from_parts(1, 3, {0, 2}, {1, 1}, {1, 1}),
               std::invalid_argument);
  // Column out of range.
  EXPECT_THROW(CountCsr::from_parts(1, 2, {0, 1}, {5}, {1}),
               std::invalid_argument);
  // Size mismatch between row_ptr tail and arrays.
  EXPECT_THROW(CountCsr::from_parts(1, 2, {0, 2}, {0}, {1}),
               std::invalid_argument);
}

TEST(Csr, Identity) {
  const auto eye = CountCsr::identity(4, 3);
  EXPECT_EQ(eye.nnz(), 4u);
  for (vid i = 0; i < 4; ++i) {
    EXPECT_EQ(eye.at(i, i), 3u);
  }
  EXPECT_EQ(eye.at(0, 1), 0u);
}

TEST(Csr, FindAndContains) {
  Coo<count_t> coo(3, 3);
  coo.add(1, 0, 9);
  coo.add(1, 2, 8);
  const auto m = CountCsr::from_coo(coo);
  EXPECT_TRUE(m.contains(1, 0));
  EXPECT_TRUE(m.contains(1, 2));
  EXPECT_FALSE(m.contains(1, 1));
  EXPECT_FALSE(m.contains(0, 0));
  EXPECT_EQ(m.find(1, 1), m.nnz());
  EXPECT_EQ(m.at(1, 2), 8u);
  EXPECT_EQ(m.at(2, 2), 0u);
}

TEST(Csr, RowAccessors) {
  Coo<count_t> coo(2, 5);
  coo.add(0, 4, 1);
  coo.add(0, 2, 2);
  const auto m = CountCsr::from_coo(coo);
  const auto rc = m.row_cols(0);
  ASSERT_EQ(rc.size(), 2u);
  EXPECT_EQ(rc[0], 2u);
  EXPECT_EQ(rc[1], 4u);
  EXPECT_EQ(m.row_degree(0), 2u);
  EXPECT_EQ(m.row_degree(1), 0u);
  EXPECT_EQ(m.row_vals(0)[0], 2u);
}

TEST(Csr, EqualityAndStructure) {
  Coo<count_t> c1(2, 2), c2(2, 2);
  c1.add(0, 1, 1);
  c2.add(0, 1, 2);
  const auto m1 = CountCsr::from_coo(c1);
  const auto m2 = CountCsr::from_coo(c2);
  EXPECT_FALSE(m1 == m2);
  EXPECT_TRUE(m1.same_structure(m2));
  EXPECT_TRUE(m1 == m1);
}

TEST(Csr, EmptyMatrix) {
  const CountCsr m(3, 3);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.row_degree(2), 0u);
  EXPECT_FALSE(m.contains(0, 0));
}

class CsrRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRoundTrip, DenseAgreesWithRandomCoo) {
  kronotri::util::Xoshiro256 rng(GetParam());
  const vid n = 8 + rng.bounded(24);
  std::vector<std::vector<long long>> dense(n, std::vector<long long>(n, 0));
  Coo<count_t> coo(n, n);
  const int entries = static_cast<int>(rng.bounded(3 * n));
  for (int e = 0; e < entries; ++e) {
    const vid r = rng.bounded(n), c = rng.bounded(n);
    const count_t v = 1 + rng.bounded(9);
    coo.add(r, c, v);
    dense[r][c] += static_cast<long long>(v);
  }
  const auto m = CountCsr::from_coo(coo, DupPolicy::kSum);
  for (vid r = 0; r < n; ++r) {
    for (vid c = 0; c < n; ++c) {
      ASSERT_EQ(static_cast<long long>(m.at(r, c)), dense[r][c])
          << "at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRoundTrip, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
