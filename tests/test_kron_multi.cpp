// Multi-factor Kronecker chain tests: the k-factor generalization of
// Thm 1/2 validated against materialized products and the two-factor
// machinery.
#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/formulas.hpp"
#include "kron/multi.hpp"
#include "kron/product.hpp"
#include "triangle/count.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;
using kron::KronChain;

TEST(KronChain, RejectsEmptyAndDirected) {
  EXPECT_THROW(KronChain({}), std::invalid_argument);
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  EXPECT_THROW(KronChain({gen::clique(3), d}), std::invalid_argument);
}

TEST(KronChain, SingleFactorIsIdentityOperation) {
  const Graph g = kt_test::random_undirected(10, 0.3, 1);
  const KronChain chain({g});
  EXPECT_EQ(chain.num_vertices(), g.num_vertices());
  EXPECT_EQ(chain.nnz(), g.nnz());
  EXPECT_TRUE(chain.materialize() == g);
  const auto t = triangle::participation_vertices(g);
  for (vid p = 0; p < g.num_vertices(); ++p) {
    EXPECT_EQ(chain.vertex_triangles(p), t[p]);
  }
  EXPECT_EQ(chain.total_triangles(), triangle::count_total(g));
}

TEST(KronChain, IndexRoundTrip) {
  const KronChain chain({gen::clique(3), gen::clique(4), gen::clique(5)});
  EXPECT_EQ(chain.num_vertices(), 60u);
  for (vid p = 0; p < 60; ++p) {
    EXPECT_EQ(chain.compose(chain.decompose(p)), p);
  }
  EXPECT_EQ(chain.decompose(0), (std::vector<vid>{0, 0, 0}));
  EXPECT_EQ(chain.decompose(59), (std::vector<vid>{2, 3, 4}));
  EXPECT_THROW((void)chain.compose({0, 0}), std::invalid_argument);
}

TEST(KronChain, TwoFactorsMatchPairwiseMachinery) {
  const Graph a = kt_test::random_undirected(6, 0.45, 2);
  const Graph b = kt_test::random_undirected(5, 0.5, 3, 0.4);  // loops in B
  const KronChain chain({a, b});
  const auto tvec = kron::vertex_triangles(a, b);
  const auto dmat = kron::edge_triangles(a, b);
  for (vid p = 0; p < chain.num_vertices(); ++p) {
    EXPECT_EQ(chain.vertex_triangles(p), tvec.at(p));
  }
  const Graph c = kron::kron_graph(a, b);
  for (vid p = 0; p < c.num_vertices(); ++p) {
    for (const vid q : c.neighbors(p)) {
      EXPECT_EQ(chain.edge_triangles(p, q), dmat.at(p, q));
    }
  }
  EXPECT_EQ(chain.total_triangles(), kron::total_triangles(a, b));
}

class KronChainSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KronChainSweep, ThreeFactorsMatchMaterialized) {
  const std::uint64_t seed = GetParam();
  const Graph a = kt_test::random_undirected(4, 0.5, seed);
  const Graph b = kt_test::random_undirected(3, 0.6, seed + 1, 0.5);
  const Graph c = kt_test::random_undirected(4, 0.5, seed + 2);
  const KronChain chain({a, b, c});
  const Graph m = chain.materialize();

  EXPECT_EQ(chain.num_vertices(), m.num_vertices());
  EXPECT_EQ(chain.nnz(), m.nnz());
  EXPECT_EQ(chain.num_undirected_edges(), m.num_undirected_edges());

  const auto t = triangle::participation_vertices(m);
  for (vid p = 0; p < m.num_vertices(); ++p) {
    EXPECT_EQ(chain.vertex_triangles(p), t[p]) << "p=" << p;
    EXPECT_EQ(chain.out_degree(p), m.out_degree(p));
    EXPECT_EQ(chain.nonloop_degree(p), m.nonloop_degree(p));
  }
  const auto delta = triangle::edge_support_masked(m);
  for (vid p = 0; p < m.num_vertices(); ++p) {
    for (const vid q : m.neighbors(p)) {
      if (p == q) continue;
      EXPECT_EQ(chain.edge_triangles(p, q), delta.at(p, q));
    }
  }
  EXPECT_EQ(chain.total_triangles(), triangle::count_total(m));
  for (vid p = 0; p < m.num_vertices(); ++p) {
    for (vid q = 0; q < m.num_vertices(); ++q) {
      ASSERT_EQ(chain.has_edge(p, q), m.has_edge(p, q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KronChainSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(KronChain, PowerProductOfCliques) {
  // K₃^{⊗3}: τ = 6²·τ(K₃)³ = 36, every vertex in ½·2³ = 4 triangles.
  const KronChain chain({gen::clique(3), gen::clique(3), gen::clique(3)});
  EXPECT_EQ(chain.num_vertices(), 27u);
  EXPECT_EQ(chain.total_triangles(), 36u);
  for (vid p = 0; p < 27; ++p) {
    EXPECT_EQ(chain.vertex_triangles(p), 4u);
  }
  const Graph m = chain.materialize();
  EXPECT_EQ(triangle::count_total(m), 36u);
}

TEST(KronChain, SelfLoopBoostingAcrossChain) {
  // Loops in all but one factor are allowed; τ grows with each J factor.
  const Graph k = gen::clique(3);
  const Graph j = gen::clique_with_loops(3);
  const count_t plain = KronChain({k, k, k}).total_triangles();
  const count_t one_j = KronChain({k, k, j}).total_triangles();
  const count_t two_j = KronChain({k, j, j}).total_triangles();
  EXPECT_LT(plain, one_j);
  EXPECT_LT(one_j, two_j);
  // Verify the boosted chain against materialization.
  const KronChain boosted({k, j, j});
  EXPECT_EQ(two_j, triangle::count_total(boosted.materialize()));
}

TEST(KronChain, AllLoopedFactorsRejectedForTriangleStats) {
  const Graph j = gen::clique_with_loops(3);
  const KronChain chain({j, j});
  EXPECT_EQ(chain.num_vertices(), 9u);  // structural queries still fine
  EXPECT_THROW((void)chain.total_triangles(), std::invalid_argument);
  EXPECT_THROW((void)chain.vertex_triangles(0), std::invalid_argument);
}

TEST(KronChain, NonEdgeQueryThrows) {
  const KronChain chain({gen::clique(3), gen::clique(3)});
  EXPECT_THROW((void)chain.edge_triangles(0, 0), std::invalid_argument);
}

TEST(KronChain, FourFactorChainTotals) {
  const Graph k3 = gen::clique(3);
  const KronChain chain({k3, k3, k3, k3});
  // τ(K₃^{⊗4}) = 6³·1 = 216; n = 81; every vertex: ½·2⁴ = 8.
  EXPECT_EQ(chain.num_vertices(), 81u);
  EXPECT_EQ(chain.total_triangles(), 216u);
  EXPECT_EQ(chain.vertex_triangles(80), 8u);
}

}  // namespace
