// Determinism suite for the parallel kernels that replaced the serial seed
// implementations: PKT-style truss peeling, Afforest-style connected
// components, the counting-sort COO→CSR build, and the blocked parallel
// SpGEMM. Every kernel must be bit-identical to its serial reference
// (decompose_serial / connected_components_serial / from_coo_serial / a
// dense brute-force product) at OMP_NUM_THREADS 1, 2 and 8.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "analysis/components.hpp"
#include "core/ops.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"
#include "truss/decompose.hpp"
#include "util/prng.hpp"

namespace {

using namespace kronotri;

/// Runs `fn` under each thread count and returns the collected results.
template <typename Fn>
auto with_thread_counts(Fn&& fn) {
  std::vector<decltype(fn())> results;
#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  for (const int t : {1, 2, 8}) {
    omp_set_num_threads(t);
    results.push_back(fn());
  }
  omp_set_num_threads(saved);
#else
  results.push_back(fn());
#endif
  return results;
}

class ParallelKernels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelKernels, TrussMatchesSerialAcrossThreadCounts) {
  for (const double loop_p : {0.0, 0.25}) {
    const Graph g = kt_test::random_undirected(50, 0.22, GetParam(), loop_p);
    const truss::TrussDecomposition ref = truss::decompose_serial(g);
    const auto runs = with_thread_counts([&] { return truss::decompose(g); });
    for (const auto& run : runs) {
      EXPECT_TRUE(run.truss_number == ref.truss_number);
      EXPECT_EQ(run.max_truss, ref.max_truss);
    }
  }
}

TEST_P(ParallelKernels, ComponentsMatchSerialAcrossThreadCounts) {
  // Sparse → frequently disconnected; exercises singleton and multi-vertex
  // components plus self loops.
  const Graph g =
      kt_test::random_undirected(80, 0.02, GetParam(), GetParam() % 2 ? 0.1 : 0.0);
  const analysis::Components ref = analysis::connected_components_serial(g);
  const auto runs =
      with_thread_counts([&] { return analysis::connected_components(g); });
  for (const auto& run : runs) {
    EXPECT_EQ(run.count, ref.count);
    EXPECT_EQ(run.component, ref.component);
  }
}

TEST_P(ParallelKernels, FromCooMatchesSerialAcrossThreadCounts) {
  // Above CsrMatrix::kParallelCooCutoff so the counting-sort path runs, with
  // plenty of duplicates to exercise the combine step under both policies.
  util::Xoshiro256 rng(GetParam() + 7);
  const vid n = 160;
  Coo<count_t> coo(n, n);
  const std::size_t nz = BoolCsr::kParallelCooCutoff * 2 + 123;
  for (std::size_t i = 0; i < nz; ++i) {
    coo.add(static_cast<vid>(rng() % n), static_cast<vid>(rng() % n),
            static_cast<count_t>(1 + rng() % 5));
  }
  for (const DupPolicy policy : {DupPolicy::kSum, DupPolicy::kKeep}) {
    const CountCsr ref = CountCsr::from_coo_serial(coo, policy);
    const auto runs =
        with_thread_counts([&] { return CountCsr::from_coo(coo, policy); });
    for (const auto& run : runs) EXPECT_TRUE(run == ref);
  }
}

TEST_P(ParallelKernels, SpgemmIdenticalAcrossThreadCountsAndDense) {
  const Graph a = kt_test::random_undirected(60, 0.15, GetParam() + 31);
  const Graph b = kt_test::random_undirected(60, 0.15, GetParam() + 32);
  const auto runs = with_thread_counts(
      [&] { return ops::spgemm(a.matrix(), b.matrix()); });
  for (const auto& run : runs) EXPECT_TRUE(run == runs.front());
  const auto dense = kt_test::dense_matmul(kt_test::to_dense(a.matrix()),
                                           kt_test::to_dense(b.matrix()));
  const auto& c = runs.front();
  for (vid i = 0; i < c.rows(); ++i) {
    for (vid j = 0; j < c.cols(); ++j) {
      ASSERT_EQ(static_cast<long long>(c.at(i, j)), dense[i][j])
          << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelKernels,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(ParallelTruss, KroneckerProductMatchesSerial) {
  // Paper-style validation input: a dense-ish Kronecker product where the
  // frontier actually holds many edges per level.
  const Graph g =
      kron::kron_graph(gen::clique(5), gen::holme_kim(60, 3, 0.6, 17));
  const auto ref = truss::decompose_serial(g);
  const auto par = truss::decompose(g);
  EXPECT_TRUE(par.truss_number == ref.truss_number);
  EXPECT_EQ(par.max_truss, ref.max_truss);
  EXPECT_EQ(par.edges_in_truss(3), ref.edges_in_truss(3));
}

TEST(ParallelTruss, StructuredFamilies) {
  for (const Graph& g : {gen::clique(8), gen::cycle(9), gen::star(7),
                         gen::complete_bipartite(4, 5)}) {
    const auto ref = truss::decompose_serial(g);
    const auto par = truss::decompose(g);
    EXPECT_TRUE(par.truss_number == ref.truss_number);
    EXPECT_EQ(par.max_truss, ref.max_truss);
  }
}

TEST(ParallelComponents, EdgeCases) {
  // Empty graph, all-isolated vertices, and a directed graph (closure path).
  const Graph empty = Graph::from_edges(0, {}, false);
  EXPECT_EQ(analysis::connected_components(empty).count, 0u);
  const Graph isolated = Graph::from_edges(5, {}, false);
  const auto iso = analysis::connected_components(isolated);
  EXPECT_EQ(iso.count, 5u);
  for (vid v = 0; v < 5; ++v) EXPECT_EQ(iso.component[v], v);
  const Graph directed = Graph::from_edges(4, {{{0, 1}, {3, 2}}}, false);
  const auto ref = analysis::connected_components_serial(directed);
  const auto par = analysis::connected_components(directed);
  EXPECT_EQ(par.count, ref.count);
  EXPECT_EQ(par.component, ref.component);
}

TEST(ParallelComponents, WeichselCountUnchanged) {
  // kron_component_count consumes the component labels; the parallel
  // relabeling must keep it exact against the materialized product.
  const Graph a = kt_test::random_undirected(9, 0.15, 3);
  const Graph b = kt_test::random_undirected(8, 0.2, 4);
  EXPECT_EQ(analysis::kron_component_count(a, b),
            analysis::connected_components(kron::kron_graph(a, b)).count);
}

TEST(ParallelFromCoo, OutOfRangeThrowsOnParallelPath) {
  Coo<count_t> coo(10, 10);
  const std::size_t nz = BoolCsr::kParallelCooCutoff + 50;
  for (std::size_t i = 0; i < nz; ++i) {
    coo.add(static_cast<vid>(i % 10), static_cast<vid>((i * 7) % 10), 1);
  }
  coo.add(10, 0, 1);  // row out of range
  EXPECT_THROW(CountCsr::from_coo(coo), std::out_of_range);
}

TEST(ParallelFromCoo, KeepPolicyRetainsFirstTriplet) {
  // kKeep must keep the value that appears first in the triplet list — on
  // both paths, at every thread count.
  Coo<count_t> coo(40, 40);
  util::Xoshiro256 rng(99);
  const std::size_t nz = BoolCsr::kParallelCooCutoff + 1000;
  for (std::size_t i = 0; i < nz; ++i) {
    coo.add(static_cast<vid>(rng() % 40), static_cast<vid>(rng() % 40),
            static_cast<count_t>(i + 1));
  }
  const auto runs = with_thread_counts(
      [&] { return CountCsr::from_coo(coo, DupPolicy::kKeep); });
  for (const auto& run : runs) EXPECT_TRUE(run == runs.front());
  // First triplet wins: find the first entry for a spot-check cell.
  const auto& e0 = coo.entries().front();
  EXPECT_EQ(runs.front().at(e0.row, e0.col), e0.value);
  EXPECT_TRUE(runs.front() == CountCsr::from_coo_serial(coo, DupPolicy::kKeep));
}

TEST(ParallelSpgemm, EmptyAndRectangular) {
  const CountCsr empty(0, 0);
  EXPECT_EQ(ops::spgemm(empty, empty).nnz(), 0u);
  // Rectangular chain with known structure: (3x5)·(5x2).
  Coo<count_t> ca(3, 5), cb(5, 2);
  ca.add(0, 1, 2);
  ca.add(0, 4, 1);
  ca.add(2, 4, 3);
  cb.add(1, 0, 5);
  cb.add(4, 1, 7);
  const auto c =
      ops::spgemm(CountCsr::from_coo(ca), CountCsr::from_coo(cb));
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c.at(0, 0), 10u);
  EXPECT_EQ(c.at(0, 1), 7u);
  EXPECT_EQ(c.at(2, 1), 21u);
  EXPECT_EQ(c.nnz(), 3u);
}

}  // namespace
