// Tests for the directed triangle census (Def. 8–11, Figs. 4–5).
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "triangle/bruteforce.hpp"
#include "triangle/count.hpp"
#include "triangle/directed.hpp"
#include "triangle/support.hpp"

namespace {

using namespace kronotri;
using triangle::EdgeTriType;
using triangle::VertexTriType;

TEST(DirectedSplit, PartitionsEdges) {
  // 0<->1 reciprocal, 1->2 directed.
  const Graph g = Graph::from_edges(3, {{{0, 1}, {1, 0}, {1, 2}}}, false);
  const auto p = triangle::split_directed(g);
  EXPECT_EQ(p.ar.nnz(), 2u);
  EXPECT_EQ(p.ad.nnz(), 1u);
  EXPECT_TRUE(p.ad.contains(1, 2));
  EXPECT_TRUE(p.ar.contains(0, 1));
  EXPECT_TRUE(p.ar.contains(1, 0));
  EXPECT_TRUE(p.adt.contains(2, 1));
}

TEST(DirectedSplit, RejectsSelfLoops) {
  const Graph g = Graph::from_edges(2, {{{0, 0}, {0, 1}}}, false);
  EXPECT_THROW(triangle::split_directed(g), std::invalid_argument);
}

TEST(DirectedSplit, UndirectedGraphIsAllReciprocal) {
  const Graph g = kt_test::random_undirected(12, 0.3, 3);
  const auto p = triangle::split_directed(g);
  EXPECT_EQ(p.ar.nnz(), g.nnz());
  EXPECT_EQ(p.ad.nnz(), 0u);
}

TEST(DirectedCensus, CyclicTriangleIsStPlus) {
  // 0->1->2->0: from each vertex's perspective the flavor is (s,t,+) —
  // source on one incident edge, target on the other, third edge directed.
  const Graph g = Graph::from_edges(3, {{{0, 1}, {1, 2}, {2, 0}}}, false);
  const auto census = triangle::directed_vertex_census(g);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    const auto& v = census[static_cast<std::size_t>(f)];
    const count_t expected =
        (f == static_cast<int>(VertexTriType::kSTp) ||
         f == static_cast<int>(VertexTriType::kSTm))
            ? 1u  // canonical (s,t,±): orientation determines which
            : 0u;
    if (f == static_cast<int>(VertexTriType::kSTp) ||
        f == static_cast<int>(VertexTriType::kSTm)) {
      continue;  // checked below
    }
    for (const count_t x : v) EXPECT_EQ(x, expected) << "flavor " << f;
  }
  // Each vertex participates in the cycle triangle exactly once, in exactly
  // one of the two (s,t,·) directed flavors.
  const auto& stp = census[static_cast<std::size_t>(VertexTriType::kSTp)];
  const auto& stm = census[static_cast<std::size_t>(VertexTriType::kSTm)];
  for (vid v = 0; v < 3; ++v) {
    EXPECT_EQ(stp[v] + stm[v], 1u);
  }
}

TEST(DirectedCensus, ReciprocalTriangleIsUUo) {
  const Graph g = kt_test::random_undirected(3, 1.1, 0);  // K3 reciprocal
  const auto census = triangle::directed_vertex_census(g);
  const auto& uuo = census[static_cast<std::size_t>(VertexTriType::kUUo)];
  for (vid v = 0; v < 3; ++v) EXPECT_EQ(uuo[v], 1u);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    if (f == static_cast<int>(VertexTriType::kUUo)) continue;
    for (const count_t x : census[static_cast<std::size_t>(f)]) {
      EXPECT_EQ(x, 0u);
    }
  }
}

TEST(DirectedCensus, EdgeCensusOnReciprocalTriangle) {
  const Graph g = kt_test::random_undirected(3, 1.1, 0);
  const auto census = triangle::directed_edge_census(g);
  const auto& roo = census[static_cast<std::size_t>(EdgeTriType::kRoo)];
  EXPECT_EQ(roo.nnz(), 6u);
  for (const count_t v : roo.values()) EXPECT_EQ(v, 1u);
}

class DirectedCensusProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DirectedCensusProperty, VertexCensusMatchesBruteForce) {
  const Graph g = kt_test::random_directed(14, 0.25, GetParam());
  const auto fast = triangle::directed_vertex_census(g);
  const auto slow = triangle::brute::directed_vertex_census(g);
  for (int f = 0; f < triangle::kNumVertexTriTypes; ++f) {
    EXPECT_EQ(fast[static_cast<std::size_t>(f)],
              slow[static_cast<std::size_t>(f)])
        << "flavor " << triangle::to_string(static_cast<VertexTriType>(f));
  }
}

TEST_P(DirectedCensusProperty, EdgeCensusMatchesBruteForce) {
  const Graph g = kt_test::random_directed(13, 0.25, GetParam() + 50);
  const auto fast = triangle::directed_edge_census(g);
  const auto slow = triangle::brute::directed_edge_census(g);
  for (int f = 0; f < triangle::kNumEdgeTriTypes; ++f) {
    kt_test::expect_matrix_eq(
        fast[static_cast<std::size_t>(f)], slow[static_cast<std::size_t>(f)],
        std::string(triangle::to_string(static_cast<EdgeTriType>(f))).c_str());
  }
}

TEST_P(DirectedCensusProperty, FlavorsPartitionAllTriangles) {
  // Σ_τ t^{(τ)}[v] over the 15 flavors = t[v] of the undirected closure —
  // every triangle is classified exactly once per vertex.
  const Graph g = kt_test::random_directed(16, 0.22, GetParam() + 99);
  const auto census = triangle::directed_vertex_census(g);
  const auto closure_t =
      triangle::participation_vertices(g.undirected_closure());
  for (vid v = 0; v < g.num_vertices(); ++v) {
    count_t sum = 0;
    for (const auto& flavor : census) sum += flavor[v];
    EXPECT_EQ(sum, closure_t[v]) << "vertex " << v;
  }
}

TEST_P(DirectedCensusProperty, EdgeFlavorsPartitionEdgeTriangles) {
  // For a directed central edge (i,j) ∈ E_d the 9 '+' flavors partition the
  // triangles at the undirected edge {i,j}.
  const Graph g = kt_test::random_directed(14, 0.25, GetParam() + 123);
  const auto census = triangle::directed_edge_census(g);
  const auto parts = triangle::split_directed(g);
  const auto closure = g.undirected_closure();
  const auto delta = triangle::edge_support_masked(closure);
  for (vid i = 0; i < g.num_vertices(); ++i) {
    for (const vid j : parts.ad.row_cols(i)) {
      count_t sum = 0;
      for (int f = 0; f < 9; ++f) {
        sum += census[static_cast<std::size_t>(f)].at(i, j);
      }
      EXPECT_EQ(sum, delta.at(i, j)) << "edge (" << i << "," << j << ")";
    }
  }
  // For a reciprocal central edge: the 6 canonical entries at (i,j) plus the
  // three mirrored entries at (j,i) partition the triangles at {i,j}.
  for (vid i = 0; i < g.num_vertices(); ++i) {
    for (const vid j : parts.ar.row_cols(i)) {
      count_t sum = 0;
      for (int f = 9; f < triangle::kNumEdgeTriTypes; ++f) {
        sum += census[static_cast<std::size_t>(f)].at(i, j);
      }
      sum += census[static_cast<std::size_t>(EdgeTriType::kRpp)].at(j, i);
      sum += census[static_cast<std::size_t>(EdgeTriType::kRpo)].at(j, i);
      sum += census[static_cast<std::size_t>(EdgeTriType::kRmo)].at(j, i);
      EXPECT_EQ(sum, delta.at(i, j)) << "edge (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedCensusProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
