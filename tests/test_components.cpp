// Connectivity / bipartiteness / Weichsel-theorem tests (paper ref [2]).
#include <gtest/gtest.h>

#include "analysis/components.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"

namespace {

using namespace kronotri;
using analysis::connected_components;
using analysis::is_bipartite;
using analysis::kron_component_count;

Graph disjoint_union(const Graph& a, const Graph& b) {
  std::vector<std::pair<vid, vid>> edges;
  for (vid u = 0; u < a.num_vertices(); ++u) {
    for (const vid v : a.neighbors(u)) edges.emplace_back(u, v);
  }
  for (vid u = 0; u < b.num_vertices(); ++u) {
    for (const vid v : b.neighbors(u)) {
      edges.emplace_back(a.num_vertices() + u, a.num_vertices() + v);
    }
  }
  return Graph::from_edges(a.num_vertices() + b.num_vertices(), edges, false);
}

TEST(Components, BasicCounts) {
  EXPECT_EQ(connected_components(gen::clique(5)).count, 1u);
  EXPECT_EQ(connected_components(Graph::from_edges(4, {}, false)).count, 4u);
  const Graph two = disjoint_union(gen::clique(3), gen::cycle(4));
  const auto c = connected_components(two);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_NE(c.component[0], c.component[3]);
}

TEST(Components, IsConnected) {
  EXPECT_TRUE(analysis::is_connected(gen::cycle(6)));
  EXPECT_FALSE(
      analysis::is_connected(disjoint_union(gen::clique(3), gen::clique(3))));
  EXPECT_TRUE(analysis::is_connected(Graph::from_edges(0, {}, false)));
}

TEST(Components, DirectedGraphUsesClosure) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {2, 1}}}, false);
  EXPECT_EQ(connected_components(d).count, 1u);
}

TEST(Bipartite, Classification) {
  EXPECT_TRUE(is_bipartite(gen::cycle(6)));       // even cycle
  EXPECT_FALSE(is_bipartite(gen::cycle(5)));      // odd cycle
  EXPECT_TRUE(is_bipartite(gen::path(7)));
  EXPECT_TRUE(is_bipartite(gen::star(5)));
  EXPECT_TRUE(is_bipartite(gen::complete_bipartite(3, 4)));
  EXPECT_FALSE(is_bipartite(gen::clique(3)));
  EXPECT_FALSE(is_bipartite(gen::hub_cycle()));
  // Self loop is an odd closed walk.
  EXPECT_FALSE(is_bipartite(Graph::from_edges(2, {{{0, 0}, {0, 1}}}, true)));
  // Empty graph is bipartite.
  EXPECT_TRUE(is_bipartite(Graph::from_edges(3, {}, false)));
}

TEST(Weichsel, ClassicStatements) {
  // Connected × connected: connected iff one factor is non-bipartite.
  EXPECT_EQ(kron_component_count(gen::cycle(4), gen::cycle(6)), 2u);  // bip×bip
  EXPECT_EQ(kron_component_count(gen::cycle(5), gen::cycle(6)), 1u);  // odd×bip
  EXPECT_EQ(kron_component_count(gen::clique(3), gen::clique(4)), 1u);
  // K2 ⊗ K2 = two disjoint edges.
  EXPECT_EQ(kron_component_count(gen::clique(2), gen::clique(2)), 2u);
}

TEST(Weichsel, SelfLoopsConnect) {
  // A looped single factor acts like an identity: J-type factors keep the
  // product in one piece even against bipartite partners.
  const Graph looped = gen::cycle(4).with_all_self_loops();
  EXPECT_EQ(kron_component_count(looped, gen::cycle(6)), 1u);
}

TEST(Weichsel, IsolatedVertexBlocks) {
  // Factor with an isolated vertex: that row of blocks is all isolated.
  Graph iso = Graph::from_edges(4, {{{0, 1}, {1, 2}}}, true);  // vertex 3 isolated
  const Graph k3 = gen::clique(3);
  // components: path{0,1,2} (bipartite, edges) × K3 (non-bip) → 1, plus
  // isolated vertex × K3 → 3 singletons.
  EXPECT_EQ(kron_component_count(iso, k3), 4u);
}

class WeichselSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeichselSweep, FactorSideCountMatchesMaterialized) {
  const std::uint64_t seed = GetParam();
  // Sparse random factors frequently disconnected and sometimes bipartite.
  const Graph a = kt_test::random_undirected(9, 0.12, seed, seed % 3 == 0 ? 0.2 : 0.0);
  const Graph b = kt_test::random_undirected(8, 0.15, seed + 100);
  const Graph c = kron::kron_graph(a, b);
  EXPECT_EQ(kron_component_count(a, b), connected_components(c).count)
      << "seed " << seed;
}

TEST_P(WeichselSweep, StructuredFamilies) {
  const std::uint64_t s = GetParam();
  const Graph families[] = {gen::cycle(3 + s % 5), gen::path(2 + s % 4),
                            gen::star(3 + s % 3), gen::clique(2 + s % 4)};
  for (const Graph& a : families) {
    for (const Graph& b : families) {
      const Graph c = kron::kron_graph(a, b);
      ASSERT_EQ(kron_component_count(a, b), connected_components(c).count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeichselSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Weichsel, DirectedFactorRejected) {
  const Graph d = Graph::from_edges(3, {{{0, 1}}}, false);
  EXPECT_THROW(kron_component_count(d, gen::clique(3)), std::invalid_argument);
}

}  // namespace
