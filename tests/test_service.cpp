// Service failure paths and guarantees, driven through service::Client
// against an in-process Server: admission rejections (full queue,
// over-budget), malformed input, client disconnect mid-job, graceful
// drain, byte-identical cache replay, and concurrent-client survival.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "api/analysis.hpp"
#include "api/plan.hpp"
#include "service/cache.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"

namespace {

using namespace kronotri;
using util::json::Value;

/// Short, unique AF_UNIX path (sun_path is ~108 bytes; TempDir can be long).
std::string test_socket(const std::string& tag) {
  return "/tmp/kronotri_t" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// Test-only analysis: sleeps `ms`, then passes. `tag` only differentiates
/// cache keys. Registered into the builtin registry — which the registry
/// thread-safety contract explicitly allows while a server is running.
class SleepAnalysis final : public api::Analysis {
 public:
  explicit SleepAnalysis(std::uint64_t ms) : ms_(ms) {}
  api::AnalysisReport execute(api::PlanContext&,
                              std::span<api::EdgeSink* const>) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    api::AnalysisReport r = report();
    r.text = "slept " + std::to_string(ms_) + "ms\n";
    r.data = Value::object();
    r.data.set("slept_ms", ms_);
    return r;
  }

 private:
  std::uint64_t ms_;
};

const bool g_sleep_registered = [] {
  api::AnalysisRegistry::builtin().add(
      "test-sleep", "ms=N [tag=S] — test-only: sleep then pass",
      [](const api::Params& p) {
        p.require_known({"ms", "tag"});
        return std::make_unique<SleepAnalysis>(p.get_uint("ms", 100));
      });
  return true;
}();

service::ServerOptions small_options(const std::string& tag) {
  service::ServerOptions opt;
  opt.socket_path = test_socket(tag);
  opt.workers = 2;
  opt.queue_depth = 8;
  return opt;
}

Value stats_of(const Value& response) {
  const Value* s = response.find("stats");
  EXPECT_NE(s, nullptr);
  return s == nullptr ? Value::object() : *s;
}

/// Polls `pred` on a fresh stats snapshot until true or ~5s elapse.
template <typename Pred>
bool wait_for_stats(const std::string& socket, Pred pred) {
  service::Client c;
  c.connect(socket);
  for (int i = 0; i < 500; ++i) {
    if (pred(stats_of(c.stats()))) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// Writes raw bytes on a fresh connection and returns the first response
/// line — for malformed-frame tests below the Client abstraction.
std::string raw_request(const std::string& socket, const std::string& bytes) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  EXPECT_TRUE(service::write_all(fd, bytes));
  std::string line;
  char ch = 0;
  while (::read(fd, &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(fd);
  return line;
}

std::string error_code(const Value& response) {
  const Value* err = response.find("error");
  if (err == nullptr) return "";
  return err->get_string("code", "");
}

TEST(Service, PingStatsAndConfigShape) {
  service::Server server(small_options("ping"));
  server.start();
  service::Client c;
  c.connect(server.options().socket_path);

  Value ping = Value::object();
  ping.set("type", "ping");
  const Value pong = c.request(ping);
  EXPECT_TRUE(pong.get_bool("ok", false));
  EXPECT_TRUE(pong.get_bool("pong", false));

  const Value response = c.stats();
  ASSERT_TRUE(response.get_bool("ok", false));
  const Value& s = stats_of(response);
  EXPECT_NE(s.find("uptime_s"), nullptr);
  EXPECT_NE(s.find("latency"), nullptr);
  EXPECT_NE(s.find("cache"), nullptr);
  EXPECT_NE(s.find("cache_store"), nullptr);
  ASSERT_NE(s.find("config"), nullptr);
  EXPECT_EQ(s.find("config")->get_uint("workers", 0), 2u);
  EXPECT_EQ(s.find("config")->get_uint("queue_depth", 0), 8u);
}

TEST(Service, SubmitExecutesPlanAndFillsReportFields) {
  service::Server server(small_options("submit"));
  server.start();
  service::Client c;
  c.connect(server.options().socket_path);

  const Value response = c.submit(
      api::RunPlan::parse("kron:(hk:n=80,seed=3)x(clique:n=3,loops=1) "
                          "census degree"));
  ASSERT_TRUE(response.get_bool("ok", false));
  EXPECT_EQ(response.get_string("cache", ""), "miss");
  EXPECT_EQ(response.get_string("plan_hash", "").size(), 16u);  // hex u64
  const Value* report = response.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_TRUE(report->get_bool("pass", false));
  // Satellite: api::run now reports the getrusage high-water mark, and the
  // service fills in the queueing delay.
  EXPECT_GT(report->get_uint("peak_rss_bytes", 0), 0u);
  ASSERT_NE(report->find("queue_wait_s"), nullptr);
  EXPECT_GE(report->find("queue_wait_s")->as_double(), 0.0);
}

TEST(Service, CacheHitReplaysByteIdentical) {
  service::Server server(small_options("cache"));
  server.start();
  service::Client c;
  c.connect(server.options().socket_path);

  const std::string plan =
      "kron:(hk:n=90,seed=7)x(clique:n=3,loops=1) census validate";
  const Value first = c.submit_text(plan);
  const Value second = c.submit_text(plan);
  ASSERT_TRUE(first.get_bool("ok", false));
  ASSERT_TRUE(second.get_bool("ok", false));
  EXPECT_EQ(first.get_string("cache", ""), "miss");
  EXPECT_EQ(second.get_string("cache", ""), "hit");
  EXPECT_EQ(first.get_string("plan_hash", "a"),
            second.get_string("plan_hash", "b"));
  // The byte-level guarantee: the replayed report serializes to exactly the
  // bytes of the first execution's report.
  EXPECT_EQ(first.find("report")->dump_string(0),
            second.find("report")->dump_string(0));

  // Execution-shape options are not part of the result identity: the same
  // plan at a different thread count must hit the same entry (results are
  // bit-identical across threads by the repo's determinism contract).
  api::RunPlan threaded = api::RunPlan::parse(plan);
  threaded.options.threads = 4;
  const Value third = c.submit(threaded);
  ASSERT_TRUE(third.get_bool("ok", false));
  EXPECT_EQ(third.get_string("cache", ""), "hit");
}

TEST(Service, FullQueueRejectsWithReason) {
  service::ServerOptions opt = small_options("queuefull");
  opt.workers = 1;
  opt.queue_depth = 1;
  service::Server server(opt);
  server.start();

  // Occupy the single worker, then the single queue slot, with distinct
  // cache tags; stats polling makes the saturation deterministic.
  service::Client a;
  a.connect(opt.socket_path);
  Value req_a = Value::object();
  req_a.set("type", "submit");
  req_a.set("plan",
            api::RunPlan::parse("clique:n=3 test-sleep:ms=400,tag=qa")
                .to_json());
  a.send(req_a);
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_active", 0) == 1;
  }));

  service::Client b;
  b.connect(opt.socket_path);
  Value req_b = Value::object();
  req_b.set("type", "submit");
  req_b.set("plan",
            api::RunPlan::parse("clique:n=3 test-sleep:ms=50,tag=qb")
                .to_json());
  b.send(req_b);
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("queue_depth", 0) == 1;
  }));

  // Worker busy + queue full: the third submit must be REJECTED, not hang.
  service::Client c;
  c.connect(opt.socket_path);
  const Value rejected =
      c.submit_text("clique:n=3 test-sleep:ms=10,tag=qc");
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(error_code(rejected), "queue_full");

  // The occupants complete normally.
  EXPECT_TRUE(a.read_response().get_bool("ok", false));
  EXPECT_TRUE(b.read_response().get_bool("ok", false));
  service::Client s;
  s.connect(opt.socket_path);
  EXPECT_GE(stats_of(s.stats()).find("rejected")->get_uint("queue_full", 0),
            1u);
}

TEST(Service, OverBudgetPlanRejectedWithoutRunning) {
  service::ServerOptions opt = small_options("budget");
  opt.mem_budget_bytes = 1u << 20;  // 1 MiB per job
  service::Server server(opt);
  server.start();
  service::Client c;
  c.connect(opt.socket_path);

  // ~2^22 vertices, ~1.3e8 stored entries, materializing analysis: the
  // analytic estimate is gigabytes. Rejection must come from the cost
  // model, not from attempting generation (the response is immediate).
  const Value rejected = c.submit_text("rmat:scale=22,ef=16 truss");
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(error_code(rejected), "over_budget");
  EXPECT_NE(rejected.find("error")->get_string("message", "").find("budget"),
            std::string::npos);

  // A small plan on the same server is still admitted.
  const Value ok = c.submit_text("hk:n=60,seed=1 census");
  EXPECT_TRUE(ok.get_bool("ok", false));
  EXPECT_EQ(stats_of(c.stats()).find("rejected")->get_uint("over_budget", 0),
            1u);
}

TEST(Service, MalformedInputGetsBadRequestAndServerSurvives) {
  service::Server server(small_options("malformed"));
  server.start();
  const std::string socket = server.options().socket_path;
  service::Client c;
  c.connect(socket);

  // Malformed plan text (parsed server-side).
  const Value bad_plan = c.submit_text("{\"spec\": ");
  EXPECT_FALSE(bad_plan.get_bool("ok", true));
  EXPECT_EQ(error_code(bad_plan), "bad_request");

  // Unknown request type.
  Value unknown = Value::object();
  unknown.set("type", "frobnicate");
  EXPECT_EQ(error_code(c.request(unknown)), "bad_request");

  // Missing plan member.
  Value no_plan = Value::object();
  no_plan.set("type", "submit");
  EXPECT_EQ(error_code(no_plan = c.request(no_plan)), "bad_request");

  // Raw garbage that is not even JSON, below the Client abstraction.
  const Value garbage = Value::parse(raw_request(socket, "not json at all\n"));
  EXPECT_FALSE(garbage.get_bool("ok", true));
  EXPECT_EQ(error_code(garbage), "bad_request");

  // Plans demanding server-side file writes are refused.
  api::RunPlan writes = api::RunPlan::parse("hk:n=50,seed=1 census");
  writes.options.output = "/tmp/should_not_be_written.txt";
  EXPECT_EQ(error_code(c.submit(writes)), "bad_request");

  // After all that abuse the server still executes plans.
  const Value ok = c.submit_text("hk:n=50,seed=1 census");
  EXPECT_TRUE(ok.get_bool("ok", false));
  EXPECT_GE(stats_of(c.stats()).find("rejected")->get_uint("bad_request", 0),
            4u);
}

TEST(Service, ExecutionFailureIsIsolatedToTheJob) {
  service::Server server(small_options("execfail"));
  server.start();
  service::Client c;
  c.connect(server.options().socket_path);

  // Parses and passes admission (stat() fails -> zero-cost estimate), then
  // throws inside api::run when the file cannot be opened.
  const Value failed =
      c.submit_text("file:path=/nonexistent/kronotri_missing.txt census");
  EXPECT_FALSE(failed.get_bool("ok", true));
  EXPECT_EQ(error_code(failed), "execution_failed");

  // The worker survived: the next job on the same server runs fine.
  const Value ok = c.submit_text("hk:n=50,seed=2 census");
  EXPECT_TRUE(ok.get_bool("ok", false));
  const Value& s = stats_of(c.stats());
  EXPECT_EQ(s.get_uint("jobs_failed", 0), 1u);
  EXPECT_GE(s.get_uint("jobs_completed", 0), 1u);
}

TEST(Service, ClientDisconnectMidJobOnlyDropsThatConnection) {
  service::ServerOptions opt = small_options("disconnect");
  opt.workers = 1;
  service::Server server(opt);
  server.start();

  {
    service::Client rude;
    rude.connect(opt.socket_path);
    Value req = Value::object();
    req.set("type", "submit");
    req.set("plan",
            api::RunPlan::parse("clique:n=3 test-sleep:ms=200,tag=rude")
                .to_json());
    rude.send(req);
    rude.close();  // hang up while the job is queued/executing
  }

  // The job still completes (and is cached); the disconnect is counted.
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_completed", 0) == 1 &&
           s.get_uint("client_disconnects", 0) >= 1;
  }));
  // And the server keeps serving.
  service::Client polite;
  polite.connect(opt.socket_path);
  EXPECT_TRUE(polite.submit_text("hk:n=40,seed=5 census").get_bool("ok",
                                                                   false));
}

TEST(Service, GracefulDrainDeliversInFlightResponses) {
  service::ServerOptions opt = small_options("drain");
  opt.workers = 1;
  service::Server server(opt);
  server.start();

  Value response;
  std::thread in_flight([&] {
    service::Client c;
    c.connect(opt.socket_path);
    response =
        c.submit_text("clique:n=3 test-sleep:ms=300,tag=drain");
  });
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_active", 0) == 1;
  }));

  server.stop();  // drain: the sleeping job finishes, its response lands
  in_flight.join();
  EXPECT_TRUE(response.get_bool("ok", false));
  EXPECT_TRUE(response.find("report")->get_bool("pass", false));
  EXPECT_EQ(server.metrics().jobs_completed.load(), 1u);
  EXPECT_EQ(server.metrics().jobs_failed.load(), 0u);

  // After the drain the socket is gone: new connections are refused.
  service::Client late;
  EXPECT_THROW(late.connect(opt.socket_path), std::runtime_error);
}

TEST(Service, DrainingServerRejectsNewSubmits) {
  service::ServerOptions opt = small_options("drainreject");
  opt.workers = 1;
  service::Server server(opt);
  server.start();

  service::Client held;
  held.connect(opt.socket_path);
  Value req = Value::object();
  req.set("type", "submit");
  req.set("plan",
          api::RunPlan::parse("clique:n=3 test-sleep:ms=400,tag=hold")
              .to_json());
  held.send(req);
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_active", 0) == 1;
  }));

  service::Client late;
  late.connect(opt.socket_path);
  std::thread stopper([&] { server.stop(); });
  // stop() first shuts down the listener, then drains; this submit races
  // that window, so EITHER a structured "draining" rejection OR a
  // connection teardown is acceptable — a hang is not.
  try {
    const Value r = late.submit_text("hk:n=30,seed=9 census");
    if (!r.get_bool("ok", false)) {
      EXPECT_EQ(error_code(r), "draining");
    }
  } catch (const std::runtime_error&) {
    // server closed the connection mid-round-trip: also a clean refusal
  }
  stopper.join();
  EXPECT_TRUE(held.read_response().get_bool("ok", false));  // still delivered
}

TEST(Service, CacheEvictionStaysWithinByteBudget) {
  service::ServerOptions opt = small_options("evict");
  opt.cache_bytes = 2048;  // roughly one report entry
  service::Server server(opt);
  server.start();
  service::Client c;
  c.connect(opt.socket_path);

  ASSERT_TRUE(c.submit_text("hk:n=50,seed=11 census").get_bool("ok", false));
  ASSERT_TRUE(c.submit_text("hk:n=50,seed=12 census").get_bool("ok", false));
  const Value& s = stats_of(c.stats());
  const Value* store = s.find("cache_store");
  ASSERT_NE(store, nullptr);
  EXPECT_LE(store->get_uint("bytes", 1u << 30), 2048u);
  EXPECT_GE(store->get_uint("evictions", 0), 1u);
  // The evicted first plan misses again.
  const Value again = c.submit_text("hk:n=50,seed=11 census");
  EXPECT_EQ(again.get_string("cache", ""), "miss");
}

TEST(Service, SurvivesClientDisconnectMidResponseWrite) {
  // A client that hangs up while the server is writing its (large)
  // response must cost the server exactly one EPIPE, never a SIGPIPE
  // death. The report with the full edge list is far bigger than an
  // AF_UNIX socket buffer, so the server's write_all is still in flight
  // when the socket dies.
  service::ServerOptions opt = small_options("midwrite");
  opt.workers = 1;
  service::Server server(opt);
  server.start();

  {
    service::Client rude;
    rude.connect(opt.socket_path);
    Value req = Value::object();
    req.set("type", "submit");
    req.set("plan",
            api::RunPlan::parse("hk:n=6000,seed=3 census:edges=1").to_json());
    rude.send(req);
    // The job may finish between stats polls, so accept either state: the
    // response is bigger than the socket buffer either way, so the
    // server's write is (or will be) blocked mid-frame when we hang up.
    ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
      return s.get_uint("jobs_active", 0) + s.get_uint("jobs_completed", 0) >=
             1;
    }));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    rude.close();  // mid-write: the rest of the frame hits EPIPE
  }

  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_completed", 0) == 1;
  }));
  // Server process survived the broken pipe and still round-trips.
  service::Client polite;
  polite.connect(opt.socket_path);
  Value ping = Value::object();
  ping.set("type", "ping");
  EXPECT_TRUE(polite.request(ping).get_bool("ok", false));
  EXPECT_GE(stats_of(polite.stats()).get_uint("client_disconnects", 0), 1u);
}

TEST(Service, RequestTimeoutFiresOnSilentServer) {
  // A socket that listens but never accepts: connect() succeeds via the
  // backlog, then no response ever arrives. Without request_timeout_s the
  // old client would block forever.
  const std::string path = test_socket("silent");
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0)
      << std::strerror(errno);
  ASSERT_EQ(::listen(listener, 4), 0);

  service::ClientOptions copt;
  copt.request_timeout_s = 0.3;
  service::Client c(copt);
  c.connect(path);
  Value ping = Value::object();
  ping.set("type", "ping");
  c.send(ping);
  try {
    (void)c.read_response();
    FAIL() << "expected a request timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
  ::close(listener);
  ::unlink(path.c_str());
}

TEST(Service, ConnectRetriesUntilServerAppears) {
  // The daemon-still-binding race: the socket appears ~250ms after the
  // client starts dialing. Backoff (0.05, x2) reaches that well inside
  // the 10-attempt budget.
  const std::string path = test_socket("lateserver");
  ::unlink(path.c_str());
  std::thread late_binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 4), 0);
    std::this_thread::sleep_for(std::chrono::seconds(2));
    ::close(listener);
  });

  service::ClientOptions copt;
  copt.connect_attempts = 10;
  copt.connect_timeout_s = 1.0;
  service::Client c(copt);
  c.connect(path);  // throws on failure
  EXPECT_TRUE(c.connected());
  c.close();
  late_binder.join();
  ::unlink(path.c_str());
}

TEST(Service, ConnectFailureReportsAttemptBudget) {
  service::ClientOptions copt;
  copt.connect_attempts = 3;
  copt.connect_timeout_s = 0.2;
  copt.backoff = util::Backoff{0.01, 2.0, 0.05};
  service::Client c(copt);
  try {
    c.connect(test_socket("nobody_home"));
    FAIL() << "expected connect to fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3 attempts"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(c.connected());
}

TEST(Service, SurvivesManyConcurrentClients) {
  service::ServerOptions opt = small_options("many");
  opt.workers = 4;
  opt.queue_depth = 64;
  service::Server server(opt);
  server.start();

  constexpr int kClients = 16;
  std::vector<std::thread> threads;
  std::vector<int> ok_count(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      service::Client c;
      c.connect(opt.socket_path);
      // Half the clients share a plan (exercising concurrent cache hits),
      // half get unique seeds (concurrent executions).
      const int seed = (i % 2 == 0) ? 1000 : 2000 + i;
      const Value r = c.submit_text("hk:n=70,seed=" + std::to_string(seed) +
                                    " census degree");
      if (r.get_bool("ok", false) &&
          r.find("report")->get_bool("pass", false)) {
        ok_count[i] = 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int total = 0;
  for (const int ok : ok_count) total += ok;
  EXPECT_EQ(total, kClients);
  EXPECT_EQ(server.metrics().jobs_failed.load(), 0u);

  // The shared plan is cached by now: one more submit must hit (during the
  // race itself all 8 sharers may legitimately miss simultaneously).
  service::Client c;
  c.connect(opt.socket_path);
  EXPECT_EQ(c.submit_text("hk:n=70,seed=1000 census degree")
                .get_string("cache", ""),
            "hit");
  const Value& s = stats_of(c.stats());
  const Value* exec = s.find("latency")->find("execute");
  ASSERT_NE(exec, nullptr);
  EXPECT_GT(exec->get_uint("count", 0), 0u);
  EXPECT_GE(exec->find("p99_s")->as_double(),
            exec->find("p50_s")->as_double());
}

/// Scratch directory for --state journals; removed with contents on exit.
struct StateDir {
  std::string path;
  explicit StateDir(const std::string& tag)
      : path("/tmp/kronotri_st" + std::to_string(::getpid()) + "_" + tag) {
    util::journal::ensure_dir(path);
  }
  ~StateDir() {
    ::unlink((path + "/state.journal").c_str());
    ::rmdir(path.c_str());
  }
};

TEST(ServiceDurable, StaleSocketFromDeadServerIsReclaimed) {
  // A dead predecessor's residue: a bound-but-unserved socket file. The
  // new server must probe it, find nobody home, and take the path over.
  const std::string path = test_socket("stale");
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int dead = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(dead, 0);
  ASSERT_EQ(::bind(dead, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  ::close(dead);  // fd gone, socket FILE left behind — the kill -9 residue

  service::ServerOptions opt = small_options("stale");
  opt.socket_path = path;
  service::Server server(opt);
  server.start();  // must reclaim, not throw
  service::Client c;
  c.connect(path);
  Value ping = Value::object();
  ping.set("type", "ping");
  EXPECT_TRUE(c.request(ping).get_bool("pong", false));
}

TEST(ServiceDurable, RefusesToStealALiveServersSocket) {
  service::ServerOptions opt = small_options("liveguard");
  service::Server first(opt);
  first.start();

  service::Server second(opt);
  EXPECT_THROW(second.start(), std::runtime_error);

  // The refusal must be collateral-free: the live server keeps serving on
  // the same path (second's destructor must NOT have unlinked its socket).
  service::Client c;
  c.connect(opt.socket_path);
  EXPECT_TRUE(c.submit_text("hk:n=40,seed=21 census").get_bool("ok", false));
}

TEST(ServiceDurable, NonSocketFileAtPathIsNeverDeleted) {
  const std::string path = test_socket("notasock");
  ::unlink(path.c_str());
  util::journal::atomic_write_file(path, "precious bytes");

  service::ServerOptions opt = small_options("notasock");
  opt.socket_path = path;
  service::Server server(opt);
  EXPECT_THROW(server.start(), std::runtime_error);
  // Refusal means refusal: the file survives, contents intact.
  EXPECT_EQ(util::journal::read_file(path).value_or(""), "precious bytes");
  ::unlink(path.c_str());
}

TEST(ServiceDurable, StateJournalReplaysAdmittedButUnfinishedWork) {
  // Simulate a kill -9 after admission: a state journal holding a submit
  // record with no matching done record. start() must re-enqueue it; the
  // result lands in the cache, so the re-submitting client hits.
  StateDir state("replay");
  const api::RunPlan plan =
      api::RunPlan::parse("kron:(hk:n=80,seed=13)x(clique:n=3,loops=1) "
                          "census degree");
  {
    Value submit = Value::object();
    submit.set("type", "submit");
    submit.set("key", service::cache_key(plan));
    submit.set("plan", plan.to_json().dump_string(0));
    util::journal::Journal wal;
    wal.open(state.path + "/state.journal");
    wal.append(submit.dump_string(0));
  }

  service::ServerOptions opt = small_options("replay");
  opt.state_dir = state.path;
  service::Server server(opt);
  server.start();
  ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
    return s.get_uint("jobs_replayed", 0) == 1 &&
           s.get_uint("jobs_completed", 0) >= 1;
  }));

  service::Client c;
  c.connect(opt.socket_path);
  const Value response = c.submit(plan);
  ASSERT_TRUE(response.get_bool("ok", false));
  EXPECT_EQ(response.get_string("cache", ""), "hit");
  EXPECT_EQ(stats_of(c.stats()).find("config")->get_string("state_dir", ""),
            state.path);
}

TEST(ServiceDurable, CompletedWorkIsJournaledAndNotReplayed) {
  StateDir state("noreplay");
  const std::string plan_text = "hk:n=60,seed=31 census";
  {
    service::ServerOptions opt = small_options("noreplay1");
    opt.state_dir = state.path;
    service::Server server(opt);
    server.start();
    service::Client c;
    c.connect(opt.socket_path);
    ASSERT_TRUE(c.submit_text(plan_text).get_bool("ok", false));
    ASSERT_TRUE(wait_for_stats(opt.socket_path, [](const Value& s) {
      return s.get_uint("jobs_completed", 0) == 1;
    }));
    server.stop();
  }

  // The journal pairs the submit with its done record...
  const util::journal::Decoded dec =
      util::journal::Journal::read(state.path + "/state.journal");
  EXPECT_EQ(dec.tail, util::journal::Decoded::Tail::kClean);
  int submits = 0, dones = 0;
  for (const std::string& frame : dec.frames) {
    const Value rec = Value::parse(frame);
    if (rec.get_string("type", "") == "submit") ++submits;
    if (rec.get_string("type", "") == "done") ++dones;
  }
  EXPECT_EQ(submits, 1);
  EXPECT_EQ(dones, 1);

  // ...so a restart replays nothing.
  service::ServerOptions opt = small_options("noreplay2");
  opt.state_dir = state.path;
  service::Server server(opt);
  server.start();
  service::Client c;
  c.connect(opt.socket_path);
  EXPECT_EQ(stats_of(c.stats()).get_uint("jobs_replayed", 1), 0u);
}

}  // namespace
