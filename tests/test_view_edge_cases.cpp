// Regression pins for the implicit product views (KronGraphView /
// KronChain): neighbor enumeration, degrees and membership must agree with
// the materialized product in every edge case — self loops in one or both
// factors (loops × loops), directed factors, mixed/zero degrees. The
// streaming census and the validating sinks trust these queries blindly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/classic.hpp"
#include "helpers.hpp"
#include "kron/multi.hpp"
#include "kron/product.hpp"
#include "kron/view.hpp"

namespace {

using namespace kronotri;

void expect_view_matches_materialized(const Graph& a, const Graph& b,
                                      const char* what) {
  const kron::KronGraphView view(a, b);
  const Graph c = kron::kron_graph(a, b);
  ASSERT_EQ(view.num_vertices(), c.num_vertices()) << what;
  ASSERT_EQ(view.nnz(), c.nnz()) << what;
  EXPECT_EQ(view.num_self_loops(), c.num_self_loops()) << what;
  EXPECT_EQ(view.is_undirected(), c.is_undirected()) << what;
  if (c.is_undirected()) {
    EXPECT_EQ(view.num_undirected_edges(), c.num_undirected_edges()) << what;
  }
  for (vid p = 0; p < c.num_vertices(); ++p) {
    const std::vector<vid> vn = view.neighbors(p);
    const auto cn = c.neighbors(p);
    ASSERT_EQ(vn.size(), cn.size()) << what << " degree mismatch at " << p;
    EXPECT_TRUE(std::equal(vn.begin(), vn.end(), cn.begin()))
        << what << " neighbor list mismatch at " << p;
    EXPECT_TRUE(std::is_sorted(vn.begin(), vn.end()))
        << what << " unsorted neighbors at " << p;
    EXPECT_EQ(view.out_degree(p), c.out_degree(p)) << what << " @ " << p;
    EXPECT_EQ(view.nonloop_degree(p), c.nonloop_degree(p)) << what << " @ "
                                                           << p;
    for (vid q = 0; q < c.num_vertices(); ++q) {
      ASSERT_EQ(view.has_edge(p, q), c.has_edge(p, q))
          << what << " membership mismatch at (" << p << "," << q << ")";
    }
  }
}

TEST(KronGraphView, LoopsTimesLoopsAgreesWithMaterialized) {
  const Graph a = kt_test::random_undirected(6, 0.4, 1, 0.5);
  const Graph b = kt_test::random_undirected(5, 0.4, 2, 0.6);
  expect_view_matches_materialized(a, b, "loops x loops");
  expect_view_matches_materialized(a.with_all_self_loops(),
                                   b.with_all_self_loops(),
                                   "all-loops x all-loops");
}

TEST(KronGraphView, MixedDegreeFactorsAgreeWithMaterialized) {
  // A star has one hub and many degree-1 leaves; a path has degree-1 ends —
  // the widest degree spread the small classics offer.
  expect_view_matches_materialized(gen::star(6), gen::path(5),
                                   "star x path");
  expect_view_matches_materialized(gen::star(5).with_all_self_loops(),
                                   gen::complete_bipartite(2, 3),
                                   "star+I x bipartite");
}

TEST(KronGraphView, IsolatedVerticesAgreeWithMaterialized) {
  // Vertex 3 of A and vertex 2 of B have degree 0: whole product rows and
  // columns must come out empty on both paths.
  const Graph a = Graph::from_edges(4, {{{0, 1}, {1, 2}, {0, 0}}}, true);
  const Graph b = Graph::from_edges(3, {{{0, 1}}}, true);
  expect_view_matches_materialized(a, b, "isolated vertices");
}

TEST(KronGraphView, DirectedFactorsAgreeWithMaterialized) {
  const Graph a = kt_test::random_directed(5, 0.35, 3);
  const Graph b = kt_test::random_directed(4, 0.4, 4);
  expect_view_matches_materialized(a, b, "directed x directed");
  const Graph u = kt_test::random_undirected(4, 0.5, 5, 0.3);
  expect_view_matches_materialized(a, u, "directed x undirected");
  expect_view_matches_materialized(u, a, "undirected x directed");
}

TEST(KronGraphView, DirectedSelfLoopsAgreeWithMaterialized) {
  // Directed factor with a loop: (0,0),(0,1),(1,2),(2,0) plus loop at 2.
  const Graph a =
      Graph::from_edges(3, {{{0, 0}, {0, 1}, {1, 2}, {2, 0}, {2, 2}}}, false);
  const Graph b = Graph::from_edges(2, {{{0, 1}, {1, 0}, {1, 1}}}, false);
  expect_view_matches_materialized(a, b, "directed loops");
}

TEST(KronChain, NeighborsAgreeWithMaterializedThreeFactors) {
  const Graph f1 = kt_test::random_undirected(4, 0.5, 6, 0.5);
  const Graph f2 = gen::star(3);
  const Graph f3 = kt_test::random_undirected(3, 0.6, 7, 0.4);
  const kron::KronChain chain({f1, f2, f3});
  const Graph c = chain.materialize();
  ASSERT_EQ(chain.num_vertices(), c.num_vertices());
  for (vid p = 0; p < c.num_vertices(); ++p) {
    const std::vector<vid> vn = chain.neighbors(p);
    const auto cn = c.neighbors(p);
    ASSERT_EQ(vn.size(), cn.size()) << "degree mismatch at " << p;
    EXPECT_TRUE(std::equal(vn.begin(), vn.end(), cn.begin()))
        << "neighbor list mismatch at " << p;
    EXPECT_TRUE(std::is_sorted(vn.begin(), vn.end()));
    EXPECT_EQ(chain.out_degree(p), c.out_degree(p));
    EXPECT_EQ(chain.nonloop_degree(p), c.nonloop_degree(p));
    for (vid q = 0; q < c.num_vertices(); ++q) {
      ASSERT_EQ(chain.has_edge(p, q), c.has_edge(p, q))
          << "membership mismatch at (" << p << "," << q << ")";
    }
  }
}

TEST(KronChain, NeighborsHandleIsolatedFactorVertices) {
  const Graph a = Graph::from_edges(3, {{{0, 1}}}, true);  // vertex 2 isolated
  const kron::KronChain chain({a, gen::clique(2)});
  const Graph c = chain.materialize();
  for (vid p = 0; p < c.num_vertices(); ++p) {
    const auto vn = chain.neighbors(p);
    const auto cn = c.neighbors(p);
    ASSERT_EQ(vn.size(), cn.size());
    EXPECT_TRUE(std::equal(vn.begin(), vn.end(), cn.begin()));
  }
}

}  // namespace
