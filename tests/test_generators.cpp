// Generator tests: structural invariants of every graph family.
#include <gtest/gtest.h>

#include "analysis/degree.hpp"
#include "gen/classic.hpp"
#include "gen/one_triangle_pa.hpp"
#include "gen/random.hpp"
#include "gen/rmat.hpp"
#include "helpers.hpp"
#include "triangle/count.hpp"

namespace {

using namespace kronotri;

TEST(Classic, CliqueStats) {
  const Graph k5 = gen::clique(5);
  EXPECT_EQ(k5.num_vertices(), 5u);
  EXPECT_EQ(k5.num_undirected_edges(), 10u);
  EXPECT_FALSE(k5.has_self_loops());
  EXPECT_TRUE(k5.is_undirected());
}

TEST(Classic, LoopedCliqueStats) {
  const Graph j4 = gen::clique_with_loops(4);
  EXPECT_EQ(j4.num_self_loops(), 4u);
  EXPECT_EQ(j4.nnz(), 16u);  // J_n is all-ones
}

TEST(Classic, CycleAndPath) {
  EXPECT_EQ(gen::cycle(7).num_undirected_edges(), 7u);
  EXPECT_EQ(gen::path(7).num_undirected_edges(), 6u);
  EXPECT_THROW(gen::cycle(2), std::invalid_argument);
}

TEST(Classic, StarAndBipartite) {
  const Graph s = gen::star(6);
  EXPECT_EQ(s.nonloop_degree(0), 5u);
  for (vid v = 1; v < 6; ++v) EXPECT_EQ(s.nonloop_degree(v), 1u);
  const Graph kb = gen::complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_undirected_edges(), 12u);
  EXPECT_EQ(triangle::count_total(kb), 0u);
}

TEST(Classic, HubCycleMatchesPaperEx2) {
  const Graph a = gen::hub_cycle();
  EXPECT_EQ(a.num_vertices(), 5u);
  EXPECT_EQ(a.num_undirected_edges(), 8u);
  EXPECT_EQ(triangle::count_total(a), 4u);
  EXPECT_EQ(a.nonloop_degree(0), 4u);  // hub
  for (vid v = 1; v < 5; ++v) EXPECT_EQ(a.nonloop_degree(v), 3u);
}

TEST(ErdosRenyi, EdgeProbabilityExtremes) {
  EXPECT_EQ(gen::erdos_renyi(20, 0.0, 1).nnz(), 0u);
  const Graph full = gen::erdos_renyi(10, 1.0, 2);
  EXPECT_TRUE(full == gen::clique(10));
  EXPECT_THROW(gen::erdos_renyi(10, 1.5, 3), std::invalid_argument);
}

TEST(ErdosRenyi, DensityNearExpectation) {
  const vid n = 200;
  const double p = 0.1;
  const Graph g = gen::erdos_renyi(n, p, 7);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  const auto edges = static_cast<double>(g.num_undirected_edges());
  EXPECT_NEAR(edges / expected, 1.0, 0.1);
  EXPECT_FALSE(g.has_self_loops());
}

TEST(ErdosRenyi, Deterministic) {
  EXPECT_TRUE(gen::erdos_renyi(50, 0.2, 9) == gen::erdos_renyi(50, 0.2, 9));
  EXPECT_FALSE(gen::erdos_renyi(50, 0.2, 9) == gen::erdos_renyi(50, 0.2, 10));
}

TEST(ErdosRenyiM, ExactEdgeCount) {
  const Graph g = gen::erdos_renyi_m(40, 100, 11);
  EXPECT_EQ(g.num_undirected_edges(), 100u);
  EXPECT_THROW(gen::erdos_renyi_m(4, 100, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, SizeAndConnectivity) {
  const Graph g = gen::barabasi_albert(200, 3, 13);
  EXPECT_EQ(g.num_vertices(), 200u);
  EXPECT_TRUE(kt_test::is_connected(g));
  // m+1 seed clique + m edges per later vertex (deduped, so ≤).
  EXPECT_LE(g.num_undirected_edges(), 6u + 3u * 196u);
  EXPECT_THROW(gen::barabasi_albert(3, 3, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, HeavyTail) {
  const Graph g = gen::barabasi_albert(2000, 3, 17);
  const auto s = analysis::summarize_degrees(g);
  // Hubs far above the mean are the signature of preferential attachment.
  EXPECT_GT(static_cast<double>(s.max_degree), 8.0 * s.mean_degree);
  EXPECT_LT(s.loglog_slope, -1.0);
}

TEST(HolmeKim, TriadStepBoostsClustering) {
  const Graph plain = gen::barabasi_albert(800, 3, 19);
  const Graph clustered = gen::holme_kim(800, 3, 0.9, 19);
  EXPECT_GT(triangle::count_total(clustered), 2 * triangle::count_total(plain));
}

TEST(HolmeKim, Deterministic) {
  EXPECT_TRUE(gen::holme_kim(300, 2, 0.5, 23) == gen::holme_kim(300, 2, 0.5, 23));
}

TEST(Rmat, BasicShape) {
  const Graph g = gen::rmat(8, 8, {}, 29);
  EXPECT_EQ(g.num_vertices(), 256u);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_FALSE(g.has_self_loops());
  EXPECT_LE(g.num_undirected_edges(), 8u * 256u);
  EXPECT_GT(g.num_undirected_edges(), 0u);
}

TEST(Rmat, RejectsBadParams) {
  EXPECT_THROW(gen::rmat(4, 4, {0.5, 0.5, 0.5, 0.5}, 1),
               std::invalid_argument);
  EXPECT_THROW(gen::rmat(64, 4, {}, 1), std::invalid_argument);
}

TEST(Rmat, SkewProducesHubs) {
  const Graph skewed = gen::rmat(10, 8, {0.7, 0.1, 0.1, 0.1}, 31);
  const Graph uniform = gen::rmat(10, 8, {0.25, 0.25, 0.25, 0.25}, 31);
  EXPECT_GT(analysis::summarize_degrees(skewed).max_degree,
            analysis::summarize_degrees(uniform).max_degree);
}

TEST(OneTrianglePa, InvariantsAcrossSizes) {
  for (vid n : {2u, 3u, 10u, 100u, 500u}) {
    const Graph g = gen::one_triangle_pa(n, 37);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(g.is_undirected());
    EXPECT_FALSE(g.has_self_loops());
    EXPECT_TRUE(kt_test::is_connected(g));
  }
}

TEST(OneTrianglePa, HeavyTailedDegrees) {
  const Graph g = gen::one_triangle_pa(3000, 41);
  const auto s = analysis::summarize_degrees(g);
  EXPECT_GT(static_cast<double>(s.max_degree), 6.0 * s.mean_degree);
}

TEST(RandomLabels, RangeAndDeterminism) {
  const auto lab = gen::random_labels(100, 4, 43);
  lab.validate(100);
  const auto lab2 = gen::random_labels(100, 4, 43);
  EXPECT_EQ(lab.label, lab2.label);
  EXPECT_THROW(gen::random_labels(10, 0, 1), std::invalid_argument);
}

TEST(RandomlyOrient, ReciprocalFraction) {
  const Graph g = gen::erdos_renyi(100, 0.2, 47);
  const Graph d = gen::randomly_orient(g, 0.5, 48);
  count_t reciprocal = 0, directed = 0;
  for (vid u = 0; u < d.num_vertices(); ++u) {
    for (const vid v : d.neighbors(u)) {
      if (d.has_edge(v, u)) {
        ++reciprocal;
      } else {
        ++directed;
      }
    }
  }
  // Undirected closure must equal the input graph's structure.
  EXPECT_TRUE(d.undirected_closure() == g);
  const double frac = static_cast<double>(reciprocal) /
                      static_cast<double>(reciprocal + directed);
  EXPECT_NEAR(frac, 0.5 * 2.0 / 1.5, 0.1);  // reciprocal stored twice
  EXPECT_THROW(gen::randomly_orient(d, 0.5, 1), std::invalid_argument);
}

}  // namespace
