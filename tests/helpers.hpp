// Shared test utilities: random graph builders and dense reference
// implementations used to validate the sparse kernels.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/csr.hpp"
#include "core/graph.hpp"
#include "util/prng.hpp"

namespace kt_test {

using namespace kronotri;

/// Erdős–Rényi-style undirected simple graph, plus independent self loops
/// with probability loop_p.
inline Graph random_undirected(vid n, double p, std::uint64_t seed,
                               double loop_p = 0.0) {
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<vid, vid>> edges;
  for (vid u = 0; u < n; ++u) {
    if (rng.bernoulli(loop_p)) edges.emplace_back(u, u);
    for (vid v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/true);
}

/// Random directed graph: every ordered pair (u,v), u != v, independently
/// with probability p. Produces a healthy mix of directed and reciprocal
/// edges for the Def. 8 model.
inline Graph random_directed(vid n, double p, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<vid, vid>> edges;
  for (vid u = 0; u < n; ++u) {
    for (vid v = 0; v < n; ++v) {
      if (u != v && rng.bernoulli(p)) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges, /*symmetrize=*/false);
}

template <typename T>
std::vector<std::vector<long long>> to_dense(const CsrMatrix<T>& m) {
  std::vector<std::vector<long long>> d(
      m.rows(), std::vector<long long>(m.cols(), 0));
  for (vid r = 0; r < m.rows(); ++r) {
    const auto rc = m.row_cols(r);
    const auto rv = m.row_vals(r);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      d[r][rc[k]] = static_cast<long long>(rv[k]);
    }
  }
  return d;
}

inline std::vector<std::vector<long long>> dense_matmul(
    const std::vector<std::vector<long long>>& a,
    const std::vector<std::vector<long long>>& b) {
  const std::size_t n = a.size(), m = b.empty() ? 0 : b[0].size(),
                    k = b.size();
  std::vector<std::vector<long long>> c(n, std::vector<long long>(m, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t x = 0; x < k; ++x) {
      if (a[i][x] == 0) continue;
      for (std::size_t j = 0; j < m; ++j) c[i][j] += a[i][x] * b[x][j];
    }
  }
  return c;
}

template <typename TA, typename TB>
void expect_matrix_eq(const CsrMatrix<TA>& a, const CsrMatrix<TB>& b,
                      const char* what = "") {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (vid r = 0; r < a.rows(); ++r) {
    for (vid c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(static_cast<long long>(a.at(r, c)),
                static_cast<long long>(b.at(r, c)))
          << what << " mismatch at (" << r << "," << c << ")";
    }
  }
}

/// True when every vertex can reach vertex 0 (undirected connectivity).
inline bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<vid> stack = {0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const vid u = stack.back();
    stack.pop_back();
    for (const vid v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == g.num_vertices();
}

}  // namespace kt_test
