// Truss decomposition tests: closed-form families, the paper's Ex. 2
// numbers, and a property sweep against a naive reference implementation of
// the paper's own "simple (yet inefficient) algorithm".
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "gen/classic.hpp"
#include "gen/one_triangle_pa.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"
#include "triangle/support.hpp"
#include "truss/decompose.hpp"

namespace {

using namespace kronotri;

/// The paper's §III.D algorithm, literally: for κ = 3, 4, …, repeatedly
/// recompute Δ and remove edges with fewer than κ−2 triangles; what remains
/// before each increment is T^{(κ)}. Returns per-edge truss numbers.
CountCsr naive_truss(const Graph& g) {
  BoolCsr current =
      g.has_self_loops() ? ops::remove_diag(g.matrix()) : g.matrix();
  // truss number defaults to 2 (edges dropped before T^{(3)} stabilizes).
  CountCsr result = CountCsr::from_parts(
      current.rows(), current.cols(), current.row_ptr(), current.col_idx(),
      std::vector<count_t>(current.nnz(), 2));

  for (count_t kappa = 3;; ++kappa) {
    // Peel to the κ-truss.
    bool removed = true;
    while (removed) {
      removed = false;
      const Graph cg{Graph(current)};
      if (current.nnz() == 0) break;
      const CountCsr delta = triangle::edge_support_masked(cg);
      Coo<std::uint8_t> keep(current.rows(), current.cols());
      for (vid u = 0; u < current.rows(); ++u) {
        const auto row = current.row_cols(u);
        for (std::size_t k = 0; k < row.size(); ++k) {
          if (delta.values()[current.row_ptr()[u] + k] >= kappa - 2) {
            keep.add(u, row[k], 1);
          } else {
            removed = true;
          }
        }
      }
      current = BoolCsr::from_coo(keep, DupPolicy::kKeep);
    }
    if (current.nnz() == 0) break;
    // Everything remaining is in the κ-truss.
    for (vid u = 0; u < current.rows(); ++u) {
      for (const vid v : current.row_cols(u)) {
        result.values_mut()[result.find(u, v)] = kappa;
      }
    }
  }
  return result;
}

TEST(Truss, CliqueIsMaximalTruss) {
  for (vid n : {3u, 4u, 6u}) {
    const auto t = truss::decompose(gen::clique(n));
    EXPECT_EQ(t.max_truss, n) << "K_" << n;
    for (const count_t v : t.truss_number.values()) EXPECT_EQ(v, n);
    EXPECT_EQ(t.edges_in_truss(n), n * (n - 1) / 2);
    EXPECT_EQ(t.edges_in_truss(n + 1), 0u);
  }
}

TEST(Truss, TriangleFreeGraphsAreTwoTruss) {
  for (const Graph& g : {gen::cycle(6), gen::star(7), gen::path(5),
                         gen::complete_bipartite(3, 4)}) {
    const auto t = truss::decompose(g);
    EXPECT_EQ(t.max_truss, 2u);
    for (const count_t v : t.truss_number.values()) EXPECT_EQ(v, 2u);
  }
}

TEST(Truss, HubCycleIsThreeTruss) {
  // Ex. 2 preamble: all edges of A are in the 3-truss, none in the 4-truss.
  const auto t = truss::decompose(gen::hub_cycle());
  EXPECT_EQ(t.max_truss, 3u);
  EXPECT_EQ(t.edges_in_truss(3), 8u);
  EXPECT_EQ(t.edges_in_truss(4), 0u);
}

TEST(Truss, Ex2ProductNumbersFromPaper) {
  // Ex. 2: C = A ⊗ A has 25 vertices, 128 edges, 96 triangles; Δ histogram
  // 32/64/32 at 1/2/4; |T^{(3)}| = 128, |T^{(4)}| = 80, |T^{(5)}| = 0.
  const Graph a = gen::hub_cycle();
  const Graph c = kron::kron_graph(a, a);
  EXPECT_EQ(c.num_vertices(), 25u);
  EXPECT_EQ(c.num_undirected_edges(), 128u);

  const auto delta = triangle::edge_support_masked(c);
  std::map<count_t, count_t> hist;
  for (const count_t v : delta.values()) ++hist[v];
  EXPECT_EQ(hist[1] / 2, 32u);
  EXPECT_EQ(hist[2] / 2, 64u);
  EXPECT_EQ(hist[4] / 2, 32u);

  const auto t = truss::decompose(c);
  EXPECT_EQ(t.edges_in_truss(3), 128u);
  EXPECT_EQ(t.edges_in_truss(4), 80u);
  EXPECT_EQ(t.edges_in_truss(5), 0u);
  EXPECT_EQ(t.max_truss, 4u);
}

TEST(Truss, DirectedInputThrows) {
  const Graph d = Graph::from_edges(3, {{{0, 1}, {1, 2}}}, false);
  EXPECT_THROW(truss::decompose(d), std::invalid_argument);
}

TEST(Truss, SelfLoopsIgnored) {
  const Graph k4 = gen::clique(4);
  const auto plain = truss::decompose(k4);
  const auto looped = truss::decompose(k4.with_all_self_loops());
  EXPECT_TRUE(plain.truss_number == looped.truss_number);
}

TEST(Truss, EmptyGraph) {
  const Graph g = Graph::from_edges(4, {}, false);
  const auto t = truss::decompose(g);
  EXPECT_EQ(t.max_truss, 2u);
  EXPECT_EQ(t.edges_in_truss(3), 0u);
}

TEST(Truss, AtMostOneTrianglePredicate) {
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(gen::cycle(5)));
  EXPECT_TRUE(truss::edges_in_at_most_one_triangle(gen::clique(3)));
  EXPECT_FALSE(truss::edges_in_at_most_one_triangle(gen::clique(4)));
  EXPECT_FALSE(truss::edges_in_at_most_one_triangle(gen::hub_cycle()));
}

class TrussProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrussProperty, MatchesNaiveAlgorithm) {
  const Graph g = kt_test::random_undirected(18, 0.3, GetParam());
  const auto fast = truss::decompose(g);
  const auto slow = naive_truss(g);
  kt_test::expect_matrix_eq(fast.truss_number, slow, "truss numbers");
}

TEST_P(TrussProperty, DenserGraphsMatchToo) {
  const Graph g = kt_test::random_undirected(14, 0.5, GetParam() + 500);
  const auto fast = truss::decompose(g);
  const auto slow = naive_truss(g);
  kt_test::expect_matrix_eq(fast.truss_number, slow, "truss numbers");
}

TEST_P(TrussProperty, TrussNumberIsSymmetric) {
  const Graph g = kt_test::random_undirected(16, 0.35, GetParam() + 900);
  const auto t = truss::decompose(g);
  EXPECT_TRUE(ops::is_symmetric(t.truss_number));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
