// runner::execute — fault-tolerant multi-process RunPlan execution.
//
// Every test compares the merged multi-process report against the
// in-process serial run through runner::comparable(), the one shared
// definition of "bit-identical modulo timings/metadata/worker_events".
// Faults are injected with util::fault specs at chosen (unit, attempt)
// coordinates; unit 0 is the base (non-validate) unit, units 1..U are the
// validate shard-subset units.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <string>

#include "api/plan.hpp"
#include "runner/runner.hpp"

namespace {

using namespace kronotri;

// Small two-factor product with a base unit (census + degree) and several
// validate shards: big enough that every validate unit owns real work,
// small enough for a fork-heavy test on one core.
constexpr const char* kPlanText =
    "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
    "census:edges=1 degree:histogram=0 validate:mem_budget=8K";

api::RunPlan test_plan() {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 2;
  return plan;
}

runner::Options test_opts() {
  runner::Options opt;
  opt.workers = 3;
  opt.straggler_min_s = 60;  // no accidental speculation on a loaded box
  return opt;
}

std::string comparable_dump(const api::RunReport& report) {
  return runner::comparable(report.to_json()).dump_string(2);
}

int count_events(const api::RunReport& report, unsigned unit,
                 const std::string& outcome) {
  int n = 0;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.unit == unit && e.outcome == outcome) ++n;
  }
  return n;
}

TEST(Runner, ComparableStripsVolatileFields) {
  const api::RunPlan plan = test_plan();
  api::RunReport a = api::run(plan);
  api::RunReport b = a;
  // Everything volatile differs; everything semantic is untouched.
  b.total_wall_s += 1;
  b.total_cpu_s += 2;
  b.peak_rss_bytes += 4096;
  b.queue_wait_s += 3;
  b.metadata = util::json::Value::object();
  for (auto& st : b.stages) st.wall_s += 0.5;
  for (auto& ar : b.analyses) ar.wall_s += 0.5;
  b.plan.options.workers = 4;
  b.plan.options.shard_timeout_s = 9;
  b.plan.options.max_retries = 7;
  b.plan.options.fault = "kill";
  api::WorkerEvent e;
  e.outcome = "ok";
  b.worker_events.push_back(e);
  EXPECT_EQ(comparable_dump(a), comparable_dump(b));

  b.num_vertices += 1;  // a semantic field must NOT be stripped
  EXPECT_NE(comparable_dump(a), comparable_dump(b));
}

TEST(Runner, MultiprocessMatchesSerial) {
  const api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);
  const api::RunReport multi = runner::execute(plan, test_opts());
  EXPECT_TRUE(multi.pass);
  EXPECT_TRUE(multi.error.empty()) << multi.error;
  EXPECT_FALSE(multi.worker_events.empty());
  EXPECT_EQ(comparable_dump(serial), comparable_dump(multi));
  // Every attempt succeeded first try.
  for (const api::WorkerEvent& e : multi.worker_events) {
    EXPECT_EQ(e.outcome, "ok") << "unit " << e.unit;
  }
}

TEST(Runner, WorkersOneRunsInProcess) {
  const api::RunPlan plan = test_plan();
  runner::Options opt;
  opt.workers = 1;
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.worker_events.empty());
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
}

TEST(Runner, InjectedKillRecovers) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "kill:shard=1:attempt=0";  // first validate unit, once
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  // The crash is recorded as a SIGKILL death, then the retry succeeds.
  ASSERT_EQ(count_events(multi, 1, "signal"), 1);
  for (const api::WorkerEvent& e : multi.worker_events) {
    if (e.outcome != "signal") continue;
    EXPECT_EQ(e.unit, 1u);
    EXPECT_EQ(e.attempt, 0u);
    EXPECT_EQ(e.detail, SIGKILL);
    EXPECT_EQ(e.kind, "validate");
  }
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, InjectedTimeoutRecovers) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "stall:shard=1:attempt=0:secs=30";
  opt.shard_timeout_s = 1.0;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 1, "timeout"), 1);
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, TruncatedFragmentRetries) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "truncate:shard=2:attempt=0";
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 2, "truncated"), 1);
  EXPECT_EQ(count_events(multi, 2, "ok"), 1);
}

TEST(Runner, RetryBudgetExhaustedFailsStructurally) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "exit:shard=1:code=7";  // every attempt of unit 1 fails
  opt.max_retries = 1;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_FALSE(multi.pass);
  EXPECT_FALSE(multi.error.empty());
  EXPECT_NE(multi.error.find("unit 1"), std::string::npos) << multi.error;
  // attempt 0 + one retry, both recorded with the worker's exit code.
  EXPECT_EQ(count_events(multi, 1, "exit"), 2);
  for (const api::WorkerEvent& e : multi.worker_events) {
    if (e.outcome == "exit") {
      EXPECT_EQ(e.detail, 7);
    }
  }
  EXPECT_EQ(count_events(multi, 1, "ok"), 0);
}

TEST(Runner, SpeculativeRedispatchBeatsStraggler) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  // Unit 1's first attempt stalls well past the straggler threshold; the
  // speculative duplicate (attempt 1, no fault match) wins.
  opt.fault_spec = "stall:shard=1:attempt=0:secs=20";
  opt.straggler_min_s = 0.2;
  opt.speculate = true;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 1, "speculative_loss"), 1);
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, DegradesWithoutWorkerBinary) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.worker_exe = "/nonexistent/kronotri";
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
  ASSERT_EQ(report.worker_events.size(), 1u);
  EXPECT_EQ(report.worker_events[0].outcome, "degraded");
}

TEST(Runner, ValidateOnlyPlanDecomposesWithoutBaseUnit) {
  // No non-validate analyses: every unit is a validate shard subset, so
  // the skeleton comes from a validate fragment and must still merge to
  // the serial report.
  api::RunPlan plan = api::RunPlan::parse(
      "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
      "validate:mem_budget=8K");
  plan.options.threads = 2;
  const api::RunReport multi = runner::execute(plan, test_opts());
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  for (const api::WorkerEvent& e : multi.worker_events) {
    EXPECT_EQ(e.kind, "validate");
  }
}

TEST(Runner, OptionsFromPlanMapsRunnerKnobs) {
  api::RunPlan plan = test_plan();
  plan.options.workers = 4;
  plan.options.shard_timeout_s = 12.5;
  plan.options.max_retries = 5;
  plan.options.fault = "kill:shard=1";
  const runner::Options opt = runner::options_from(plan);
  EXPECT_EQ(opt.workers, 4u);
  EXPECT_DOUBLE_EQ(opt.shard_timeout_s, 12.5);
  EXPECT_EQ(opt.max_retries, 5u);
  EXPECT_EQ(opt.fault_spec, "kill:shard=1");
}

}  // namespace
