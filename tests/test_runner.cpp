// runner::execute — fault-tolerant multi-process RunPlan execution.
//
// Every test compares the merged multi-process report against the
// in-process serial run through runner::comparable(), the one shared
// definition of "bit-identical modulo timings/metadata/worker_events".
// Faults are injected with util::fault specs at chosen (unit, attempt)
// coordinates; unit 0 is the base (non-validate) unit, units 1..U are the
// validate shard-subset units.
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <set>
#include <string>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "api/plan.hpp"
#include "runner/runner.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define KRONOTRI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KRONOTRI_ASAN 1
#endif
#endif

namespace {

using namespace kronotri;

// Small two-factor product with a base unit (census + degree) and several
// validate shards: big enough that every validate unit owns real work,
// small enough for a fork-heavy test on one core.
constexpr const char* kPlanText =
    "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
    "census:edges=1 degree:histogram=0 validate:mem_budget=8K";

api::RunPlan test_plan() {
  api::RunPlan plan = api::RunPlan::parse(kPlanText);
  plan.options.threads = 2;
  return plan;
}

runner::Options test_opts() {
  runner::Options opt;
  opt.workers = 3;
  opt.straggler_min_s = 60;  // no accidental speculation on a loaded box
  return opt;
}

std::string comparable_dump(const api::RunReport& report) {
  return runner::comparable(report.to_json()).dump_string(2);
}

int count_events(const api::RunReport& report, unsigned unit,
                 const std::string& outcome) {
  int n = 0;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.unit == unit && e.outcome == outcome) ++n;
  }
  return n;
}

TEST(Runner, ComparableStripsVolatileFields) {
  const api::RunPlan plan = test_plan();
  api::RunReport a = api::run(plan);
  api::RunReport b = a;
  // Everything volatile differs; everything semantic is untouched.
  b.total_wall_s += 1;
  b.total_cpu_s += 2;
  b.peak_rss_bytes += 4096;
  b.queue_wait_s += 3;
  b.metadata = util::json::Value::object();
  for (auto& st : b.stages) st.wall_s += 0.5;
  for (auto& ar : b.analyses) ar.wall_s += 0.5;
  b.plan.options.workers = 4;
  b.plan.options.shard_timeout_s = 9;
  b.plan.options.max_retries = 7;
  b.plan.options.fault = "kill";
  api::WorkerEvent e;
  e.outcome = "ok";
  b.worker_events.push_back(e);
  EXPECT_EQ(comparable_dump(a), comparable_dump(b));

  b.num_vertices += 1;  // a semantic field must NOT be stripped
  EXPECT_NE(comparable_dump(a), comparable_dump(b));
}

TEST(Runner, MultiprocessMatchesSerial) {
  const api::RunPlan plan = test_plan();
  const api::RunReport serial = api::run(plan);
  const api::RunReport multi = runner::execute(plan, test_opts());
  EXPECT_TRUE(multi.pass);
  EXPECT_TRUE(multi.error.empty()) << multi.error;
  EXPECT_FALSE(multi.worker_events.empty());
  EXPECT_EQ(comparable_dump(serial), comparable_dump(multi));
  // Every attempt succeeded first try.
  for (const api::WorkerEvent& e : multi.worker_events) {
    EXPECT_EQ(e.outcome, "ok") << "unit " << e.unit;
  }
}

TEST(Runner, WorkersOneRunsInProcess) {
  const api::RunPlan plan = test_plan();
  runner::Options opt;
  opt.workers = 1;
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.worker_events.empty());
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
}

TEST(Runner, InjectedKillRecovers) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "kill:shard=1:attempt=0";  // first validate unit, once
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  // The crash is recorded as a SIGKILL death, then the retry succeeds.
  ASSERT_EQ(count_events(multi, 1, "signal"), 1);
  for (const api::WorkerEvent& e : multi.worker_events) {
    if (e.outcome != "signal") continue;
    EXPECT_EQ(e.unit, 1u);
    EXPECT_EQ(e.attempt, 0u);
    EXPECT_EQ(e.detail, SIGKILL);
    EXPECT_EQ(e.kind, "validate");
  }
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, InjectedTimeoutRecovers) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "stall:shard=1:attempt=0:secs=30";
  opt.shard_timeout_s = 1.0;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 1, "timeout"), 1);
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, TruncatedFragmentRetries) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "truncate:shard=2:attempt=0";
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 2, "truncated"), 1);
  EXPECT_EQ(count_events(multi, 2, "ok"), 1);
}

TEST(Runner, RetryBudgetExhaustedFailsStructurally) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "exit:shard=1:code=7";  // every attempt of unit 1 fails
  opt.max_retries = 1;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_FALSE(multi.pass);
  EXPECT_FALSE(multi.error.empty());
  EXPECT_NE(multi.error.find("unit 1"), std::string::npos) << multi.error;
  // attempt 0 + one retry, both recorded with the worker's exit code.
  EXPECT_EQ(count_events(multi, 1, "exit"), 2);
  for (const api::WorkerEvent& e : multi.worker_events) {
    if (e.outcome == "exit") {
      EXPECT_EQ(e.detail, 7);
    }
  }
  EXPECT_EQ(count_events(multi, 1, "ok"), 0);
}

TEST(Runner, SpeculativeRedispatchBeatsStraggler) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  // Unit 1's first attempt stalls well past the straggler threshold; the
  // speculative duplicate (attempt 1, no fault match) wins.
  opt.fault_spec = "stall:shard=1:attempt=0:secs=20";
  opt.straggler_min_s = 0.2;
  opt.speculate = true;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  EXPECT_EQ(count_events(multi, 1, "speculative_loss"), 1);
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(Runner, DegradesWithoutWorkerBinary) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.worker_exe = "/nonexistent/kronotri";
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
  ASSERT_EQ(report.worker_events.size(), 1u);
  EXPECT_EQ(report.worker_events[0].outcome, "degraded");
}

TEST(Runner, ValidateOnlyPlanDecomposesWithoutBaseUnit) {
  // No non-validate analyses: every unit is a validate shard subset, so
  // the skeleton comes from a validate fragment and must still merge to
  // the serial report.
  api::RunPlan plan = api::RunPlan::parse(
      "kron:(hk:n=40,m=2,p=0.5,seed=7)x(hk:n=40,m=2,p=0.5,seed=7,loops=1) "
      "validate:mem_budget=8K");
  plan.options.threads = 2;
  const api::RunReport multi = runner::execute(plan, test_opts());
  EXPECT_TRUE(multi.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  for (const api::WorkerEvent& e : multi.worker_events) {
    EXPECT_EQ(e.kind, "validate");
  }
}

TEST(Runner, OptionsFromPlanMapsRunnerKnobs) {
  api::RunPlan plan = test_plan();
  plan.options.workers = 4;
  plan.options.shard_timeout_s = 12.5;
  plan.options.max_retries = 5;
  plan.options.fault = "kill:shard=1";
  const runner::Options opt = runner::options_from(plan);
  EXPECT_EQ(opt.workers, 4u);
  EXPECT_DOUBLE_EQ(opt.shard_timeout_s, 12.5);
  EXPECT_EQ(opt.max_retries, 5u);
  EXPECT_EQ(opt.fault_spec, "kill:shard=1");
}

// ---------------------------------------------------------------------------
// Durable runs: --journal / --resume / resource guards.

/// A private journal directory per test, emptied on entry and exit.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& tag)
      : path("/tmp/kronotri_rt" + std::to_string(::getpid()) + "_" + tag) {
    nuke();
    ::mkdir(path.c_str(), 0755);
  }
  ~TempDir() {
    nuke();
    ::rmdir(path.c_str());
  }
  void nuke() const {
    DIR* d = ::opendir(path.c_str());
    if (d == nullptr) return;
    while (dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((path + "/" + n).c_str());
    }
    ::closedir(d);
  }
};

std::set<unsigned> units_with(const api::RunReport& report,
                              const std::string& outcome) {
  std::set<unsigned> out;
  for (const api::WorkerEvent& e : report.worker_events) {
    if (e.outcome == outcome) out.insert(e.unit);
  }
  return out;
}

TEST(RunnerJournal, JournaledRunMatchesSerialAndPersists) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("journaled");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass);
  EXPECT_TRUE(multi.error.empty()) << multi.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));

  // The durable artifacts: a WAL whose head is the plan record, and one
  // verified fragment frame per unit.
  const util::journal::Decoded dec =
      util::journal::Journal::read(dir.path + "/run.journal");
  EXPECT_EQ(dec.tail, util::journal::Decoded::Tail::kClean);
  ASSERT_FALSE(dec.frames.empty());
  const util::json::Value head = util::json::Value::parse(dec.frames[0]);
  EXPECT_EQ(head.get_string("type", ""), "plan");
  EXPECT_EQ(head.get_uint("identity", 0), runner::plan_identity_hash(plan));
  const std::uint64_t unit_count = head.get_uint("units", 0);
  ASSERT_GT(unit_count, 1u);
  for (std::uint64_t u = 0; u < unit_count; ++u) {
    const auto bytes = util::journal::read_file(
        dir.path + "/unit" + std::to_string(u) + ".frag");
    ASSERT_TRUE(bytes.has_value()) << "unit " << u;
    const util::journal::Decoded frag = util::journal::decode_frames(*bytes);
    EXPECT_EQ(frag.tail, util::journal::Decoded::Tail::kClean);
    EXPECT_EQ(frag.frames.size(), 1u);
  }
}

TEST(RunnerJournal, ResumeOfCompleteRunReloadsEveryUnit) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("resume_complete");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  const api::RunReport first = runner::execute(plan, opt);
  ASSERT_TRUE(first.pass);

  opt.resume = true;
  const api::RunReport second = runner::execute(plan, opt);
  EXPECT_TRUE(second.pass);
  EXPECT_EQ(comparable_dump(first), comparable_dump(second));
  // Nothing re-executes: every unit comes back from the journal.
  EXPECT_TRUE(units_with(second, "ok").empty());
  EXPECT_EQ(units_with(second, "resumed").size(),
            units_with(first, "ok").size());
}

TEST(RunnerJournal, ResumeSkipsCompletedUnitsAndMatchesSerial) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("resume_partial");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  // The LAST validate unit fails every attempt with no retry budget: units
  // dispatched earlier finish (and journal their fragments) first, then
  // the run aborts — the journaled prefix of a crashed run.
  opt.fault_spec = "exit:shard=6:code=9";
  opt.max_retries = 0;
  const api::RunReport first = runner::execute(plan, opt);
  ASSERT_FALSE(first.pass);
  ASSERT_FALSE(first.error.empty());

  opt.fault_spec.clear();
  opt.max_retries = 2;
  opt.resume = true;
  const api::RunReport second = runner::execute(plan, opt);
  EXPECT_TRUE(second.pass);
  EXPECT_TRUE(second.error.empty()) << second.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(second));

  // The resume contract: a unit is reloaded XOR re-executed, never both;
  // the unit that never completed is re-executed.
  const std::set<unsigned> resumed = units_with(second, "resumed");
  const std::set<unsigned> executed = units_with(second, "ok");
  for (const unsigned u : resumed) {
    EXPECT_EQ(executed.count(u), 0u) << "unit " << u << " resumed AND re-run";
  }
  EXPECT_EQ(executed.count(6), 1u) << "failed unit must re-execute";
  // Every unit arrived one way or the other: 1 base + 6 validate units.
  EXPECT_EQ(resumed.size() + executed.size(), 7u);
}

TEST(RunnerJournal, TornWriteReexecutesOnlyTheDamagedUnit) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("torn");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  // The coordinator tears unit 2's fragment mid-persist: the live run
  // still passes (its in-memory fragment is fine) but the durable copy is
  // damaged goods a resume must refuse.
  opt.fault_spec = "torn_write:shard=2:attempt=0";
  const api::RunReport first = runner::execute(plan, opt);
  ASSERT_TRUE(first.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(first));

  opt.fault_spec.clear();
  opt.resume = true;
  const api::RunReport second = runner::execute(plan, opt);
  EXPECT_TRUE(second.pass);
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(second));
  // Only unit 2 is detected corrupt and re-executed; everything else
  // resumes from its verified fragment.
  EXPECT_EQ(units_with(second, "corrupt"), std::set<unsigned>{2u});
  EXPECT_EQ(units_with(second, "ok"), std::set<unsigned>{2u});
  EXPECT_EQ(units_with(second, "resumed").count(2u), 0u);
  EXPECT_FALSE(units_with(second, "resumed").empty());
}

TEST(RunnerJournal, PlanMismatchFailsStructurally) {
  api::RunPlan plan = test_plan();
  const TempDir dir("mismatch");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  ASSERT_TRUE(runner::execute(plan, opt).pass);

  api::RunPlan other = api::RunPlan::parse(
      "kron:(hk:n=40,m=2,p=0.5,seed=8)x(hk:n=40,m=2,p=0.5,seed=8,loops=1) "
      "census:edges=1 degree:histogram=0 validate:mem_budget=8K");
  other.options.threads = 2;
  opt.resume = true;
  const api::RunReport report = runner::execute(other, opt);
  EXPECT_FALSE(report.pass);
  EXPECT_NE(report.error.find("different plan"), std::string::npos)
      << report.error;
  // Distribution knobs are NOT identity: resuming with different workers
  // and retry budget must still verify.
  opt.workers = 2;
  opt.max_retries = 7;
  const api::RunReport ok = runner::execute(plan, opt);
  EXPECT_TRUE(ok.pass) << ok.error;
}

TEST(RunnerJournal, TruncatedJournalTailResumesFromValidPrefix) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("torn_tail");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  ASSERT_TRUE(runner::execute(plan, opt).pass);

  // A crash mid-append: half a frame of a would-be record on the tail.
  {
    util::journal::Journal wal;
    wal.open(dir.path + "/run.journal");
    wal.append_torn("{\"type\":\"dispatch\",\"unit\":1,\"attempt\":9}", 14);
  }
  opt.resume = true;
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
  EXPECT_TRUE(units_with(report, "ok").empty());
}

TEST(RunnerJournal, FlippedJournalByteResumesFromValidPrefix) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("flipped");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  ASSERT_TRUE(runner::execute(plan, opt).pass);

  // Flip one byte in the LAST record's CRC: the damaged record (and only
  // it) is dropped; that unit re-executes off the surviving prefix.
  const std::string jpath = dir.path + "/run.journal";
  std::string bytes = util::journal::read_file(jpath).value();
  bytes.back() ^= 0x10;
  util::journal::atomic_write_file(jpath, bytes);

  opt.resume = true;
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(report));
}

TEST(RunnerJournal, DuplicateDoneRecordIsIdempotent) {
  const api::RunPlan plan = test_plan();
  const TempDir dir("dup");
  runner::Options opt = test_opts();
  opt.journal_dir = dir.path;
  const api::RunReport first = runner::execute(plan, opt);
  ASSERT_TRUE(first.pass);

  // Re-append an existing done record verbatim (a crash between persist
  // and WAL-ack could produce exactly this on a real resume-of-a-resume).
  const util::journal::Decoded dec =
      util::journal::Journal::read(dir.path + "/run.journal");
  std::string done_payload;
  for (const std::string& payload : dec.frames) {
    if (util::json::Value::parse(payload).get_string("type", "") == "done") {
      done_payload = payload;
      break;
    }
  }
  ASSERT_FALSE(done_payload.empty());
  {
    util::journal::Journal wal;
    wal.open(dir.path + "/run.journal");
    wal.append(done_payload);
  }

  opt.resume = true;
  const api::RunReport report = runner::execute(plan, opt);
  EXPECT_TRUE(report.pass) << report.error;
  EXPECT_EQ(comparable_dump(first), comparable_dump(report));
  // Merged exactly once: the duplicate must not double any unit's counts
  // (the comparable equality above is the real assertion; no re-runs is
  // the cheap structural one).
  EXPECT_TRUE(units_with(report, "ok").empty());
}

TEST(RunnerJournal, ResumeWithoutJournalDirThrows) {
  runner::Options opt = test_opts();
  opt.resume = true;
  EXPECT_THROW(runner::execute(test_plan(), opt), std::invalid_argument);
}

TEST(RunnerJournal, IdentityHashStripsDistributionOptions) {
  api::RunPlan a = test_plan();
  api::RunPlan b = test_plan();
  b.options.workers = 9;
  b.options.shard_timeout_s = 3;
  b.options.max_retries = 0;
  b.options.fault = "kill";
  EXPECT_EQ(runner::plan_identity_hash(a), runner::plan_identity_hash(b));
  b.options.seed = 12345;  // content-bearing → different identity
  EXPECT_NE(runner::plan_identity_hash(a), runner::plan_identity_hash(b));
}

TEST(RunnerGuard, OomFaultClassifiedAndRetried) {
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.fault_spec = "oom:shard=1:attempt=0";
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass) << multi.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  // Classified as a resource verdict, not a generic nonzero exit.
  EXPECT_EQ(count_events(multi, 1, "oom"), 1);
  EXPECT_EQ(count_events(multi, 1, "exit"), 0);
  EXPECT_EQ(count_events(multi, 1, "ok"), 1);
}

TEST(RunnerGuard, GenerousMemLimitStillPasses) {
#ifdef KRONOTRI_ASAN
  GTEST_SKIP() << "RLIMIT_AS is incompatible with ASan shadow memory";
#else
  const api::RunPlan plan = test_plan();
  runner::Options opt = test_opts();
  opt.worker_mem_limit_bytes = 4ull << 30;  // plenty for this tiny plan
  const api::RunReport multi = runner::execute(plan, opt);
  EXPECT_TRUE(multi.pass) << multi.error;
  EXPECT_EQ(comparable_dump(api::run(plan)), comparable_dump(multi));
  for (const api::WorkerEvent& e : multi.worker_events) {
    EXPECT_EQ(e.outcome, "ok");
  }
#endif
}

}  // namespace
