// EdgeStream contract tests: partitions are an exact disjoint cover of the
// product's edge multiset for ANY nparts (including ones that do not divide
// nnz(A)·nnz(B)), the batched pull equals the per-edge pull, and the
// parallel fan-out equals the single-threaded stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "api/pipeline.hpp"
#include "api/sink.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "helpers.hpp"
#include "kron/product.hpp"
#include "kron/stream.hpp"

namespace {

using namespace kronotri;

using EdgeList = std::vector<std::pair<vid, vid>>;

EdgeList drain_per_edge(const Graph& a, const Graph& b, std::uint64_t part,
                        std::uint64_t nparts) {
  kron::EdgeStream s(a, b, part, nparts);
  EdgeList out;
  while (auto e = s.next()) out.emplace_back(e->u, e->v);
  return out;
}

EdgeList drain_batched(const Graph& a, const Graph& b, std::uint64_t part,
                       std::uint64_t nparts, std::size_t batch_size) {
  kron::EdgeStream s(a, b, part, nparts);
  std::vector<kron::EdgeRecord> buf(batch_size);
  EdgeList out;
  while (const std::size_t got = s.next_batch(buf)) {
    for (std::size_t i = 0; i < got; ++i) out.emplace_back(buf[i].u, buf[i].v);
  }
  return out;
}

/// Every stored nonzero of the materialized product, in stream order
/// (row-major over (A-edge, B-edge) pairs is NOT sorted product order, so
/// comparisons sort first).
EdgeList materialized_edges(const Graph& a, const Graph& b) {
  const Graph c = kron::kron_graph(a, b);
  EdgeList out;
  for (vid u = 0; u < c.num_vertices(); ++u) {
    for (const vid v : c.neighbors(u)) out.emplace_back(u, v);
  }
  return out;
}

class StreamPartitionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamPartitionTest, PartitionsExactlyDisjointlyCoverProductEdges) {
  const Graph a = kt_test::random_undirected(9, 0.4, 11, /*loop_p=*/0.3);
  const Graph b = kt_test::random_undirected(7, 0.5, 12, /*loop_p=*/0.5);
  const std::uint64_t nparts = GetParam();
  const esz total = a.nnz() * b.nnz();
  ASSERT_NE(total % nparts, 0u)
      << "pick nparts that does not divide " << total
      << " so the remainder path is exercised";

  EdgeList all;
  esz size_sum = 0;
  for (std::uint64_t part = 0; part < nparts; ++part) {
    kron::EdgeStream s(a, b, part, nparts);
    size_sum += s.partition_size();
    const EdgeList mine = drain_per_edge(a, b, part, nparts);
    EXPECT_EQ(mine.size(), s.partition_size());
    all.insert(all.end(), mine.begin(), mine.end());
  }
  EXPECT_EQ(size_sum, total);
  EXPECT_EQ(all.size(), total);

  // Disjoint: concatenating in partition order reproduces the 1-partition
  // stream exactly (same order, no overlap, no gap).
  EXPECT_EQ(all, drain_per_edge(a, b, 0, 1));

  // Exact cover: as a multiset, the union is the stored nonzeros of C.
  EdgeList expected = materialized_edges(a, b);
  std::sort(all.begin(), all.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

INSTANTIATE_TEST_SUITE_P(NonDividingCounts, StreamPartitionTest,
                         ::testing::Values(3u, 7u, 13u, 17u));

TEST(EdgeStreamBatch, BatchedEqualsPerEdgeForAssortedBatchSizes) {
  const Graph a = gen::holme_kim(40, 3, 0.6, 5);
  const Graph b = a.with_all_self_loops();
  const EdgeList reference = drain_per_edge(a, b, 0, 1);
  for (const std::size_t bs : {1u, 2u, 3u, 64u, 4096u, 1u << 20}) {
    EXPECT_EQ(drain_batched(a, b, 0, 1, bs), reference) << "batch " << bs;
  }
}

TEST(EdgeStreamBatch, BatchedEqualsPerEdgePerPartition) {
  const Graph a = kt_test::random_undirected(8, 0.5, 21);
  const Graph b = kt_test::random_undirected(6, 0.5, 22, 0.4);
  const std::uint64_t nparts = 5;
  for (std::uint64_t part = 0; part < nparts; ++part) {
    EXPECT_EQ(drain_batched(a, b, part, nparts, 7),
              drain_per_edge(a, b, part, nparts))
        << "partition " << part;
  }
}

TEST(EdgeStreamBatch, MixedPullsInterleave) {
  const Graph a = gen::clique(4);
  const Graph b = gen::cycle(5);
  kron::EdgeStream s(a, b);
  const EdgeList reference = drain_per_edge(a, b, 0, 1);
  EdgeList got;
  std::vector<kron::EdgeRecord> buf(3);
  while (got.size() < reference.size()) {
    if (got.size() % 2 == 0) {
      const auto e = s.next();
      ASSERT_TRUE(e.has_value());
      got.emplace_back(e->u, e->v);
    } else {
      const std::size_t n = s.next_batch(buf);
      for (std::size_t i = 0; i < n; ++i) got.emplace_back(buf[i].u, buf[i].v);
    }
  }
  EXPECT_FALSE(s.next().has_value());
  EXPECT_EQ(s.next_batch(buf), 0u);
  EXPECT_EQ(got, reference);
}

TEST(EdgeStreamBatch, ExhaustionAndReset) {
  const Graph a = gen::path(3);
  kron::EdgeStream s(a, a);
  std::vector<kron::EdgeRecord> buf(1024);
  EXPECT_EQ(s.next_batch(buf), a.nnz() * a.nnz());
  EXPECT_EQ(s.next_batch(buf), 0u);
  s.reset();
  EXPECT_EQ(s.next_batch(buf), a.nnz() * a.nnz());
}

TEST(StreamParallel, FourThreadEdgeMultisetMatchesSingleThreaded) {
  const Graph a = gen::holme_kim(60, 3, 0.6, 33);
  const Graph b = a.with_all_self_loops();

  auto sinks = api::stream_parallel(
      a, b, 4,
      [](std::uint64_t, std::uint64_t) {
        return std::make_unique<api::CooCollectorSink>();
      },
      /*batch_size=*/101);
  ASSERT_EQ(sinks.size(), 4u);

  EdgeList parallel_edges;
  for (const auto& sink : sinks) {
    const auto& coo = static_cast<const api::CooCollectorSink&>(*sink);
    parallel_edges.insert(parallel_edges.end(), coo.edges().begin(),
                          coo.edges().end());
  }
  EdgeList reference = drain_per_edge(a, b, 0, 1);
  EXPECT_EQ(parallel_edges.size(), reference.size());
  std::sort(parallel_edges.begin(), parallel_edges.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(parallel_edges, reference);
}

TEST(StreamParallel, MoreThreadsThanEdgesStillCoversExactly) {
  const Graph a = gen::path(3);  // nnz = 4; 9 partitions, most empty
  auto sinks = api::stream_parallel(a, a, 9, [](std::uint64_t, std::uint64_t) {
    return std::make_unique<api::CooCollectorSink>();
  });
  esz total = 0;
  for (const auto& s : sinks) total += s->edges_consumed();
  EXPECT_EQ(total, a.nnz() * a.nnz());
}

TEST(StreamInto, CountsAndFinishes) {
  const Graph a = gen::clique(5);
  api::CooCollectorSink sink;
  api::StreamOptions options;
  options.batch_size = 16;
  const esz n = api::stream_into(a, a, sink, options);
  EXPECT_EQ(n, a.nnz() * a.nnz());
  EXPECT_EQ(sink.edges_consumed(), n);
  EXPECT_EQ(sink.edges().size(), n);
}

}  // namespace
