// Tests for the kronotri CLI layer (src/cli/commands.cpp): every
// subcommand driven through its library entry point with real files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/registry.hpp"
#include "cli/commands.hpp"
#include "core/io.hpp"
#include "gen/classic.hpp"
#include "kron/oracle.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace kronotri;

class CliTest : public ::testing::Test {
 protected:
  std::string tmp(const std::string& name) {
    const std::string path = ::testing::TempDir() + "kt_cli_" + name;
    created_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }

  static int run_cmd(std::vector<std::string> args, std::string* out_text,
                     std::string* err_text = nullptr) {
    std::vector<char*> argv;
    args.insert(args.begin(), "kronotri");
    argv.reserve(args.size());
    for (auto& a : args) argv.push_back(a.data());
    std::ostringstream out, err;
    const int rc = cli::run(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text) *out_text = out.str();
    if (err_text) *err_text = err.str();
    return rc;
  }

  std::vector<std::string> created_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  std::string out, err;
  EXPECT_EQ(run_cmd({"help"}, &out, &err), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
  EXPECT_EQ(run_cmd({"frobnicate"}, &out, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}


TEST_F(CliTest, RunPlanJsonRoundTripsToReportJson) {
  // Plan JSON in → report JSON out, through the one execution path.
  const std::string plan_path = tmp("plan.json");
  {
    std::ofstream f(plan_path);
    f << R"json({
      "description": "test plan",
      "spec": "kron:(hk:n=40,m=2,p=0.6,seed=5)x(clique:n=3,loops=1)",
      "analyses": [
        {"name": "census", "params": {"edges": 1}},
        "degree",
        {"name": "validate", "params": {"mem_budget": "4K"}}
      ],
      "options": {"threads": 2}
    })json";
  }
  const std::string report_path = tmp("report.json");
  std::string out;
  ASSERT_EQ(run_cmd({"run", "--plan", plan_path, "--json", report_path}, &out),
            0);
  EXPECT_NE(out.find("run:"), std::string::npos);
  EXPECT_NE(out.find("PASS"), std::string::npos);

  std::ifstream jf(report_path);
  std::stringstream buf;
  buf << jf.rdbuf();
  const auto report = util::json::Value::parse(buf.str());
  EXPECT_TRUE(report.find("pass")->as_bool());
  EXPECT_TRUE(report.find("streamed")->as_bool());
  EXPECT_EQ(report.find("partitions")->as_uint(), 2u);
  ASSERT_EQ(report.find("analyses")->size(), 3u);
  const auto& analyses = report.find("analyses")->items();
  EXPECT_EQ(analyses[0].find("name")->as_string(), "census");
  EXPECT_EQ(analyses[2].find("name")->as_string(), "validate");
  EXPECT_TRUE(analyses[2].find("pass")->as_bool());
  // The echoed plan round-trips: spec and description survive.
  const auto* plan = report.find("plan");
  EXPECT_EQ(plan->get_string("description", ""), "test plan");
  EXPECT_NE(plan->get_string("spec", "").find("kron:"), std::string::npos);
  // Metadata makes the artifact self-describing.
  EXPECT_GE(report.find("metadata")->get_uint("hardware_concurrency", 0), 1u);
}

TEST_F(CliTest, RunAcceptsShorthandPlanStrings) {
  std::string out;
  EXPECT_EQ(run_cmd({"run", "--plan",
                     "kron:(clique:n=4)x(clique:n=3) validate truss"},
                    &out),
            0);
  EXPECT_NE(out.find("PASS"), std::string::npos);
  EXPECT_NE(out.find("validate"), std::string::npos);
  EXPECT_NE(out.find("truss"), std::string::npos);
}

TEST_F(CliTest, RunListsRegisteredAnalyses) {
  std::string out;
  ASSERT_EQ(run_cmd({"run", "--list"}, &out), 0);
  for (const char* name : {"census", "degree", "truss", "components",
                           "clustering", "egonet", "labeled-census",
                           "validate"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST_F(CliTest, RunRejectsUnknownAnalysesAndParams) {
  std::string err;
  EXPECT_EQ(run_cmd({"run", "--plan", "hubcycle frobnicate"}, nullptr, &err),
            1);
  EXPECT_NE(err.find("frobnicate"), std::string::npos);
  EXPECT_NE(err.find("census"), std::string::npos);  // lists registered
  // Unknown analysis params are rejected with the accepted list.
  EXPECT_EQ(run_cmd({"run", "--plan", "hubcycle validate:budget=4M"}, nullptr,
                    &err),
            1);
  EXPECT_NE(err.find("budget"), std::string::npos);
  EXPECT_NE(err.find("mem_budget"), std::string::npos);
  // Unknown plan keys too.
  EXPECT_EQ(run_cmd({"run", "--plan", R"json({"sepc": "hubcycle"})json"},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("sepc"), std::string::npos);
  // Missing --plan is a usage error.
  EXPECT_EQ(run_cmd({"run"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--plan"), std::string::npos);
}

TEST_F(CliTest, RunExitsNonZeroWhenAnAnalysisFails) {
  // Force a failing egonet check is hard on exact oracles; instead, a
  // failing validate is impossible by construction — so use egonet's
  // out-of-range error path and a bad plan for the nonzero paths, and
  // check the pass path separately above. Here: exit 1 surfaces analysis
  // exceptions.
  std::string err;
  EXPECT_EQ(run_cmd({"run", "--plan", "hubcycle egonet:vertex=99"}, nullptr,
                    &err),
            1);
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesReadableGraph) {
  const std::string path = tmp("gen.txt");
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--type", "hk", "--n", "200", "--m", "2",
                     "--out", path},
                    &out),
            0);
  EXPECT_NE(out.find("200 vertices"), std::string::npos);
  const Graph g = io::read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 200u);
  EXPECT_TRUE(g.is_undirected());
}

TEST_F(CliTest, GenerateWithPruneSatisfiesThm3) {
  const std::string path = tmp("pruned.txt");
  ASSERT_EQ(run_cmd({"generate", "--type", "hk", "--n", "150", "--out", path,
                     "--prune"},
                    nullptr),
            0);
  const Graph g = io::read_edge_list(path);
  // Δ ≤ 1 by §III.D(a).
  std::string out;
  EXPECT_EQ(run_cmd({"generate", "--type", "hubcycle", "--out", tmp("a.txt")},
                    nullptr),
            0);
  EXPECT_EQ(run_cmd({"truss", "--a", tmp("a.txt"), "--b", path}, &out), 0);
  EXPECT_NE(out.find("Thm 3 oracle"), std::string::npos);
}

TEST_F(CliTest, GenerateRequiresOut) {
  std::string err;
  EXPECT_EQ(run_cmd({"generate", "--type", "hk"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--out"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsUnknownType) {
  std::string err;
  EXPECT_EQ(run_cmd({"generate", "--type", "nope", "--out", tmp("x.txt")},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("unknown --type"), std::string::npos);
}

TEST_F(CliTest, GenerateListPrintsRegisteredFamilies) {
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--list"}, &out), 0);
  for (const char* fam : {"clique", "cycle", "path", "star", "bipartite",
                          "hubcycle", "er", "er-m", "ba", "hk", "rmat",
                          "onetri", "kron"}) {
    EXPECT_NE(out.find(fam), std::string::npos) << fam;
  }
}

TEST_F(CliTest, GenerateAcceptsEveryRegistryFamilyAsType) {
  for (const char* type : {"path", "star", "cycle", "er-m", "ba"}) {
    const std::string path = tmp(std::string("fam_") + type + ".txt");
    std::string out;
    ASSERT_EQ(run_cmd({"generate", "--type", type, "--n", "30", "--m", "2",
                       "--out", path},
                      &out),
              0)
        << type;
    const Graph g = io::read_edge_list(path);
    EXPECT_GE(g.num_vertices(), 2u) << type;
  }
}

TEST_F(CliTest, GenerateSpecRoundTripsThroughRegistry) {
  const std::string path = tmp("spec.txt");
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--spec=kron:(hubcycle)x(clique:n=3,loops=1)",
                     "--out", path},
                    &out),
            0);
  const Graph g = io::read_edge_list(path);
  EXPECT_EQ(g.num_vertices(), 15u);  // 5 × 3
  // Same product built directly through the registry.
  const Graph direct = api::GeneratorRegistry::builtin().build(
      "kron:(hubcycle)x(clique:n=3,loops=1)");
  EXPECT_EQ(g, direct);
}

TEST_F(CliTest, GenerateStreamedKronMatchesMaterialized) {
  const std::string mat = tmp("mat.txt");
  const std::string streamed = tmp("streamed.txt");
  const std::string spec = "kron:(hubcycle)x(clique:n=3)";
  ASSERT_EQ(run_cmd({"generate", "--spec", spec, "--out", mat}, nullptr), 0);
  std::string out;
  ASSERT_EQ(run_cmd({"generate", "--spec", spec, "--stream", "--out", streamed},
                    &out),
            0);
  EXPECT_NE(out.find("streamed"), std::string::npos);
  const Graph a = io::read_edge_list(mat);
  const Graph b = io::read_edge_list(streamed);
  EXPECT_EQ(a, b);
}

TEST_F(CliTest, GenerateStreamRefusesIneligibleSpecs) {
  std::string err;
  // Non-kron spec: refuse rather than silently materializing.
  EXPECT_EQ(run_cmd({"generate", "--spec", "hk:n=50", "--stream", "--out",
                     tmp("s1.txt")},
                    nullptr, &err),
            2);
  EXPECT_NE(err.find("--stream requires"), std::string::npos);
  // Modifier on the product: also refused.
  EXPECT_EQ(run_cmd({"generate", "--spec",
                     "kron:(hubcycle)x(clique:n=3):loops=1", "--stream",
                     "--out", tmp("s2.txt")},
                    nullptr, &err),
            2);
  EXPECT_NE(err.find("--stream requires"), std::string::npos);
}

TEST_F(CliTest, GenerateTypeKronPointsAtSpec) {
  std::string err;
  EXPECT_EQ(run_cmd({"generate", "--type", "kron", "--out", tmp("k.txt")},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("--spec"), std::string::npos);
}

TEST_F(CliTest, CensusAcceptsSpecArguments) {
  std::string out;
  ASSERT_EQ(run_cmd({"census", "--a", "hubcycle", "--loops-b"}, &out), 0);
  EXPECT_NE(out.find("C = A (x) B"), std::string::npos);
}

TEST_F(CliTest, EgonetAcceptsSpecArguments) {
  std::string out;
  EXPECT_EQ(run_cmd({"egonet", "--a", "hk:n=60,m=2,p=0.5,seed=3", "--loops-b",
                     "--vertex", "17"},
                    &out),
            0);
  EXPECT_NE(out.find("MATCH"), std::string::npos);
}

TEST_F(CliTest, TrussAcceptsSpecArguments) {
  std::string out;
  EXPECT_EQ(run_cmd({"truss", "--a", "er:n=20,p=0.35,seed=2", "--b",
                     "onetri:n=30,seed=4"},
                    &out),
            0);
  EXPECT_NE(out.find("Thm 3 oracle"), std::string::npos);
}

TEST_F(CliTest, CensusPrintsTableAndTruth) {
  const std::string a = tmp("ca.txt");
  io::write_edge_list(gen::hub_cycle(), a);
  const std::string truth = tmp("truth.txt");
  std::string out;
  ASSERT_EQ(run_cmd({"census", "--a", a, "--loops-b", "--truth", truth}, &out),
            0);
  EXPECT_NE(out.find("C = A (x) B"), std::string::npos);
  // Truth file parses and matches the oracle.
  const Graph ga = io::read_edge_list(a);
  const Graph gb = ga.with_all_self_loops();
  const kron::TriangleOracle oracle(ga, gb);
  std::ifstream in(truth);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t p = 0, c = 0;
    ASSERT_TRUE(static_cast<bool>(ls >> p >> c));
    EXPECT_EQ(c, oracle.vertex_triangles(p));
    ++rows;
  }
  EXPECT_EQ(rows, oracle.num_vertices());
}

TEST_F(CliTest, ValidatePassesOnExactClaimsAndFailsOnWrongOnes) {
  const std::string a = tmp("va.txt");
  io::write_edge_list(gen::clique(4), a);
  const Graph ga = io::read_edge_list(a);
  const kron::TriangleOracle oracle(ga, ga);

  const std::string good = tmp("good.txt");
  {
    std::ofstream f(good);
    for (vid p = 0; p < oracle.num_vertices(); ++p) {
      f << p << ' ' << oracle.vertex_triangles(p) << '\n';
    }
  }
  std::string out;
  EXPECT_EQ(run_cmd({"validate", "--a", a, "--claims", good}, &out), 0);
  EXPECT_NE(out.find("PASS"), std::string::npos);

  const std::string bad = tmp("bad.txt");
  {
    std::ofstream f(bad);
    f << 0 << ' ' << oracle.vertex_triangles(0) + 1 << '\n';
  }
  EXPECT_EQ(run_cmd({"validate", "--a", a, "--claims", bad}, &out), 1);
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_NE(out.find("MISMATCH"), std::string::npos);
}

TEST_F(CliTest, ValidateSpecStreamsShardedCensus) {
  std::string out;
  // Tiny budget → many shards; every count must still match the closed
  // forms, and the report echoes the shard count and budget.
  EXPECT_EQ(run_cmd({"validate", "--spec",
                     "kron:(hk:n=60,m=2,p=0.5,seed=3)x(clique:n=3,loops=1)",
                     "--mem-budget", "2K"},
                    &out),
            0);
  EXPECT_NE(out.find("PASS"), std::string::npos);
  EXPECT_NE(out.find("shards"), std::string::npos);
  EXPECT_NE(out.find("2,048"), std::string::npos);

  // 3-factor chains go through the KronChain predictor.
  EXPECT_EQ(run_cmd({"validate", "--spec",
                     "kron:(er:n=12,p=0.3,seed=1)x(clique:n=3)x(path:n=3)",
                     "--shards", "5"},
                    &out),
            0);
  EXPECT_NE(out.find("PASS"), std::string::npos);

  // --json emits the machine-readable report.
  const std::string json = tmp("report.json");
  EXPECT_EQ(run_cmd({"validate", "--spec",
                     "kron:(clique:n=4)x(clique:n=3)", "--json", json},
                    &out),
            0);
  std::ifstream jf(json);
  std::stringstream buf;
  buf << jf.rdbuf();
  EXPECT_NE(buf.str().find("\"pass\": true"), std::string::npos);
  EXPECT_NE(buf.str().find("\"edge_mismatches\": 0"), std::string::npos);
}

TEST_F(CliTest, ValidateSpecRejectsBadBudget) {
  std::string err;
  EXPECT_EQ(run_cmd({"validate", "--spec", "kron:(clique:n=3)x(clique:n=3)",
                     "--mem-budget", "12Q"},
                    nullptr, &err),
            1);
  EXPECT_NE(err.find("byte suffix"), std::string::npos);
}

TEST_F(CliTest, EgonetChecksFormula) {
  const std::string a = tmp("ea.txt");
  io::write_edge_list(gen::hub_cycle(), a);
  std::string out;
  EXPECT_EQ(run_cmd({"egonet", "--a", a, "--vertex", "7"}, &out), 0);
  EXPECT_NE(out.find("MATCH"), std::string::npos);
  std::string err;
  EXPECT_EQ(run_cmd({"egonet", "--a", a, "--vertex", "99"}, nullptr, &err), 2);
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST_F(CliTest, TrussDirectAndOracle) {
  const std::string g = tmp("tg.txt");
  io::write_edge_list(gen::clique(5), g);
  std::string out;
  EXPECT_EQ(run_cmd({"truss", "--graph", g}, &out), 0);
  EXPECT_NE(out.find("max truss 5"), std::string::npos);
  std::string err;
  EXPECT_EQ(run_cmd({"truss"}, nullptr, &err), 2);
}

}  // namespace
