// Unit + property tests for the sparse linear-algebra kernels (core/ops).
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "helpers.hpp"
#include "util/prng.hpp"

namespace {

using namespace kronotri;
using kt_test::dense_matmul;
using kt_test::expect_matrix_eq;
using kt_test::to_dense;

CountCsr random_count_matrix(vid rows, vid cols, double density,
                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Coo<count_t> coo(rows, cols);
  for (vid r = 0; r < rows; ++r) {
    for (vid c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) coo.add(r, c, 1 + rng.bounded(5));
    }
  }
  return CountCsr::from_coo(coo);
}

TEST(Ops, TransposeSmall) {
  Coo<count_t> coo(2, 3);
  coo.add(0, 2, 5);
  coo.add(1, 0, 7);
  const auto t = ops::transpose(CountCsr::from_coo(coo));
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 5u);
  EXPECT_EQ(t.at(0, 1), 7u);
}

TEST(Ops, AddDimensionMismatchThrows) {
  const CountCsr a(2, 2), b(3, 3);
  EXPECT_THROW(ops::add(a, b), std::invalid_argument);
}

TEST(Ops, DiagOperators) {
  Coo<count_t> coo(3, 3);
  coo.add(0, 0, 4);
  coo.add(1, 2, 5);
  coo.add(2, 2, 6);
  const auto m = CountCsr::from_coo(coo);
  const auto d = ops::diag_vec(m);
  EXPECT_EQ(d[0], 4u);
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[2], 6u);
  const auto dm = ops::diag_matrix(m);
  EXPECT_EQ(dm.nnz(), 2u);
  EXPECT_EQ(dm.at(0, 0), 4u);
  const auto nd = ops::remove_diag(m);
  EXPECT_EQ(nd.nnz(), 1u);
  EXPECT_EQ(nd.at(1, 2), 5u);
}

TEST(Ops, WithUnitDiag) {
  Coo<count_t> coo(3, 3);
  coo.add(0, 0, 9);  // existing loop gets overwritten to 1
  coo.add(1, 2, 5);
  const auto m = ops::with_unit_diag(CountCsr::from_coo(coo));
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.at(1, 1), 1u);
  EXPECT_EQ(m.at(2, 2), 1u);
  EXPECT_EQ(m.at(1, 2), 5u);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(Ops, WithUnitDiagRequiresSquare) {
  const CountCsr m(2, 3);
  EXPECT_THROW(ops::with_unit_diag(m), std::invalid_argument);
}

TEST(Ops, RowSums) {
  Coo<count_t> coo(2, 3);
  coo.add(0, 0, 1);
  coo.add(0, 2, 2);
  coo.add(1, 1, 10);
  const auto s = ops::row_sums<count_t>(CountCsr::from_coo(coo));
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[1], 10u);
}

TEST(Ops, IsSymmetric) {
  Coo<count_t> coo(2, 2);
  coo.add(0, 1, 3);
  coo.add(1, 0, 3);
  EXPECT_TRUE(ops::is_symmetric(CountCsr::from_coo(coo)));
  Coo<count_t> coo2(2, 2);
  coo2.add(0, 1, 3);
  coo2.add(1, 0, 4);  // asymmetric values
  EXPECT_FALSE(ops::is_symmetric(CountCsr::from_coo(coo2)));
  EXPECT_FALSE(ops::is_symmetric(CountCsr(2, 3)));
}

class OpsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpsProperty, TransposeIsInvolution) {
  const auto m = random_count_matrix(9, 13, 0.2, GetParam());
  EXPECT_TRUE(ops::transpose(ops::transpose(m)) == m);
}

TEST_P(OpsProperty, AddMatchesDense) {
  const auto a = random_count_matrix(10, 10, 0.2, GetParam());
  const auto b = random_count_matrix(10, 10, 0.2, GetParam() + 1000);
  const auto c = ops::add(a, b);
  const auto da = to_dense(a), db = to_dense(b);
  for (vid r = 0; r < 10; ++r) {
    for (vid col = 0; col < 10; ++col) {
      ASSERT_EQ(static_cast<long long>(c.at(r, col)), da[r][col] + db[r][col]);
    }
  }
}

TEST_P(OpsProperty, HadamardMatchesDense) {
  const auto a = random_count_matrix(10, 10, 0.3, GetParam());
  const auto b = random_count_matrix(10, 10, 0.3, GetParam() + 2000);
  const auto c = ops::hadamard(a, b);
  const auto da = to_dense(a), db = to_dense(b);
  for (vid r = 0; r < 10; ++r) {
    for (vid col = 0; col < 10; ++col) {
      ASSERT_EQ(static_cast<long long>(c.at(r, col)), da[r][col] * db[r][col]);
    }
  }
}

TEST_P(OpsProperty, StructuralDifference) {
  const auto a = random_count_matrix(10, 10, 0.3, GetParam());
  const auto b = random_count_matrix(10, 10, 0.3, GetParam() + 3000);
  const auto c = ops::structural_difference(a, b);
  for (vid r = 0; r < 10; ++r) {
    for (vid col = 0; col < 10; ++col) {
      const count_t expected = b.contains(r, col) ? 0 : a.at(r, col);
      ASSERT_EQ(c.at(r, col), expected);
    }
  }
}

TEST_P(OpsProperty, SpgemmMatchesDense) {
  const auto a = random_count_matrix(8, 11, 0.25, GetParam());
  const auto b = random_count_matrix(11, 9, 0.25, GetParam() + 4000);
  const auto c = ops::spgemm(a, b);
  const auto expected = dense_matmul(to_dense(a), to_dense(b));
  for (vid r = 0; r < 8; ++r) {
    for (vid col = 0; col < 9; ++col) {
      ASSERT_EQ(static_cast<long long>(c.at(r, col)), expected[r][col]);
    }
  }
}

TEST_P(OpsProperty, MaskedProductMatchesHadamardOfSpgemm) {
  const auto a = random_count_matrix(10, 10, 0.3, GetParam());
  const auto b = random_count_matrix(10, 10, 0.3, GetParam() + 5000);
  const auto mask = random_count_matrix(10, 10, 0.4, GetParam() + 6000);
  const auto via_mask = ops::masked_product(mask, a, ops::transpose(b));
  const auto full = ops::spgemm(a, b);
  // masked_product keeps the mask's structure with (A·B) values (mask values
  // NOT multiplied in).
  for (vid r = 0; r < 10; ++r) {
    for (vid c = 0; c < 10; ++c) {
      const count_t expected = mask.contains(r, c) ? full.at(r, c) : 0;
      ASSERT_EQ(via_mask.at(r, c), expected);
    }
  }
}

TEST_P(OpsProperty, DiagTripleMatchesSpgemm) {
  const Graph x = kt_test::random_directed(9, 0.3, GetParam());
  const Graph y = kt_test::random_directed(9, 0.3, GetParam() + 7000);
  const Graph z = kt_test::random_directed(9, 0.3, GetParam() + 8000);
  const auto d = ops::diag_triple(x.matrix(), y.matrix(), z.matrix());
  const auto xyz =
      ops::spgemm(ops::spgemm(x.matrix(), y.matrix()), z.matrix());
  for (vid i = 0; i < 9; ++i) {
    ASSERT_EQ(d[i], xyz.at(i, i));
  }
}

TEST_P(OpsProperty, DiagCubeMatchesSpgemm) {
  const Graph g = kt_test::random_undirected(10, 0.4, GetParam(), 0.3);
  const auto d = ops::diag_cube_symmetric(g.matrix());
  const auto a3 = ops::spgemm(ops::spgemm(g.matrix(), g.matrix()), g.matrix());
  for (vid i = 0; i < 10; ++i) {
    ASSERT_EQ(d[i], a3.at(i, i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsProperty, ::testing::Range<std::uint64_t>(0, 10));

TEST(Ops, SpgemmInnerDimensionMismatch) {
  const CountCsr a(2, 3), b(4, 2);
  EXPECT_THROW(ops::spgemm(a, b), std::invalid_argument);
}

TEST(Ops, DiagTripleRejectsMismatchedSizes) {
  const BoolCsr x(3, 3), y(4, 4), z(3, 3);
  EXPECT_THROW(ops::diag_triple(x, y, z), std::invalid_argument);
}

}  // namespace
